"""Smoke tests: every shipped example runs to completion.

These execute the real scripts in a subprocess (the same way a user
would), assert a clean exit and check for the output each example
promises.  They are the repository's guarantee that the README's
"runnable examples" claim stays true.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["HotTiles speedup over best baseline", "simulated runtimes"],
    "gnn_adjacency.py": ["aggregation check", "preprocessing"],
    "architecture_exploration.py": ["predicted best", "power-law graph"],
    "custom_accelerator.py": ["calibrated vis_lat", "chosen heuristic"],
    "kernel_variants.py": ["gSpMM arithmetic-intensity sweep", "min-plus"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs_clean(name):
    stdout = run_example(name)
    for marker in CASES[name]:
        assert marker in stdout, f"{name} output missing {marker!r}"


def test_every_example_has_a_smoke_test():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(CASES), "add new examples to CASES"
