"""Error taxonomy: retryable/terminal classification and StructuredError."""

import pytest

from repro.faults.errors import (
    RetryableError,
    SimFault,
    StructuredError,
    TerminalError,
    is_retryable,
)


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            TimeoutError("t"),
            ConnectionError("c"),
            ConnectionResetError("cr"),
            InterruptedError("i"),
            BlockingIOError(),
            RetryableError("transient"),
        ],
    )
    def test_retryable(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            ValueError("v"),
            KeyError("k"),
            RuntimeError("r"),
            TerminalError("deterministic"),
            SimFault("cold", 0.5, "cold-1"),
        ],
    )
    def test_terminal(self, exc):
        assert not is_retryable(exc)

    def test_terminal_marker_beats_retryable_base(self):
        class DeterministicTimeout(TerminalError, TimeoutError):
            pass

        assert not is_retryable(DeterministicTimeout("never retry"))


class TestSimFault:
    def test_carries_context(self):
        fault = SimFault("hot", 1.25, "hot-0")
        assert fault.kind == "hot"
        assert fault.t_s == 1.25
        assert fault.instance == "hot-0"
        assert "hot" in str(fault) and "pending" in str(fault)


class TestStructuredError:
    def test_from_exception_captures_traceback_tail(self):
        try:
            raise ValueError("bad matrix spec")
        except ValueError as exc:
            record = StructuredError.from_exception(exc)
        assert record.type == "ValueError"
        assert record.message == "bad matrix spec"
        assert record.retryable is False
        assert "ValueError: bad matrix spec" in record.traceback_tail
        assert "test_errors" in record.traceback_tail  # a real frame, not ''

    def test_retryable_flag_follows_classification(self):
        record = StructuredError.from_exception(TimeoutError("slow"))
        assert record.retryable is True

    def test_explicit_retryable_override(self):
        record = StructuredError.from_exception(ValueError("v"), retryable=True)
        assert record.retryable is True

    def test_str_is_type_colon_message(self):
        record = StructuredError.from_exception(ValueError("boom"))
        assert str(record) == "ValueError: boom"

    def test_dict_roundtrip(self):
        record = StructuredError.from_exception(TimeoutError("slow"))
        assert StructuredError.from_dict(record.to_dict()) == record

    def test_tail_lines_bound(self):
        def deep(n):
            if n == 0:
                raise RuntimeError("bottom")
            deep(n - 1)

        try:
            deep(40)
        except RuntimeError as exc:
            record = StructuredError.from_exception(exc, tail_lines=4)
        assert len(record.traceback_tail.splitlines()) <= 4
