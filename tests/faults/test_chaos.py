"""Chaos config: seeded injection decisions and outcome expectations."""

import pytest

from repro.faults.chaos import CHAOS_KINDS, ChaosConfig, ChaosDecision


def payload():
    return {"arch": "spade-sextans", "generator": {"kind": "rmat", "scale": 8}}


class TestConfigValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_rate_range(self, rate):
        with pytest.raises(ValueError):
            ChaosConfig(rate=rate)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            ChaosConfig(kinds=("earthquake",))

    def test_empty_kinds(self):
        with pytest.raises(ValueError):
            ChaosConfig(kinds=())

    def test_known_kinds_cover_timeout_and_malformed(self):
        assert set(CHAOS_KINDS) == {"timeout", "malformed"}


class TestDecide:
    def test_rate_zero_never_injects(self):
        config = ChaosConfig(rate=0.0, seed=0)
        for _ in range(50):
            decision = config.decide(payload())
            assert not decision.injected
            assert decision.payload == payload()

    def test_rate_one_always_injects(self):
        config = ChaosConfig(rate=1.0, seed=0, kinds=("timeout",))
        for _ in range(20):
            assert config.decide(payload()).kind == "timeout"

    def test_seeded_sequences_reproduce(self):
        a = ChaosConfig(rate=0.5, seed=9, kinds=("timeout", "malformed"))
        b = ChaosConfig(rate=0.5, seed=9, kinds=("timeout", "malformed"))
        seq_a = [a.decide(payload()).kind for _ in range(40)]
        seq_b = [b.decide(payload()).kind for _ in range(40)]
        assert seq_a == seq_b
        assert any(k is not None for k in seq_a)
        assert any(k is None for k in seq_a)

    def test_timeout_mutation_shrinks_timeout_only(self):
        decision = ChaosConfig(rate=1.0, kinds=("timeout",)).decide(payload())
        assert 0 < decision.payload["timeout_s"] < 0.05
        assert decision.payload["generator"] == payload()["generator"]

    def test_malformed_mutation_corrupts_generator(self):
        decision = ChaosConfig(rate=1.0, kinds=("malformed",)).decide(payload())
        assert "chaos_bogus_param" in decision.payload["generator"]

    def test_original_payload_untouched(self):
        original = payload()
        ChaosConfig(rate=1.0, kinds=("malformed",)).decide(original)
        assert original == payload()


class TestExpectations:
    def test_timeout_accepts_success_shed_and_backpressure(self):
        decision = ChaosDecision(kind="timeout", payload={})
        assert decision.expects(200)
        assert decision.expects(504)
        assert decision.expects(429)
        assert not decision.expects(500)

    def test_malformed_expects_bad_request_only(self):
        decision = ChaosDecision(kind="malformed", payload={})
        assert decision.expects(400)
        assert not decision.expects(200)

    def test_untouched_expects_success(self):
        decision = ChaosDecision(kind=None, payload={})
        assert not decision.injected
        assert decision.expects(200) and not decision.expects(504)
