"""RetryPolicy: backoff shape, jitter bounds, and the call() loop."""

import pytest

from repro.faults.errors import RetryableError
from repro.faults.retry import RetryExhausted, RetryPolicy


class TestDelay:
    def test_exponential_then_capped(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.0)
        delays = [policy.delay_s(k) for k in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounded_fraction(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=10.0, jitter=0.25, seed=1)
        rng = policy.rng()
        for attempt in range(1, 8):
            base = policy.delay_s(attempt)
            jittered = policy.delay_s(attempt, rng)
            assert base <= jittered <= base * 1.25

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCall:
    def test_first_try_success_never_sleeps(self):
        slept = []
        result = RetryPolicy(max_attempts=3).call(lambda: 42, sleep=slept.append)
        assert result == 42 and slept == []

    def test_terminal_raises_immediately(self):
        calls = []

        def fail():
            calls.append(1)
            raise ValueError("deterministic")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(fail, sleep=lambda _: None)
        assert len(calls) == 1

    def test_retryable_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RetryableError("transient")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0)
        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(attempts) == 3
        assert slept == [0.01, 0.02]

    def test_exhaustion_wraps_last_exception(self):
        def always():
            raise TimeoutError("still slow")

        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        with pytest.raises(RetryExhausted) as info:
            policy.call(always, sleep=lambda _: None)
        assert info.value.attempts == 2
        assert isinstance(info.value.last, TimeoutError)

    def test_on_retry_callback_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise TimeoutError("slow")
            return "done"

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        policy.call(
            flaky,
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc).__name__)),
        )
        assert seen == [(1, "TimeoutError"), (2, "TimeoutError")]
