"""FaultSchedule construction, validation, serialization, generation."""

import pytest

from repro.faults.errors import FaultScheduleError
from repro.faults.schedule import (
    BandwidthWindow,
    FaultSchedule,
    FaultSummary,
    WorkerFailure,
    WorkerSlowdown,
)


def sample_events():
    return [
        WorkerSlowdown(t_s=0.5, kind="hot", index=0, factor=2.0),
        WorkerFailure(t_s=0.25, kind="cold", index=1),
        BandwidthWindow(t_start_s=0.1, t_end_s=0.9, factor=0.5),
    ]


class TestConstruction:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(sample_events())
        times = [
            e.t_start_s if isinstance(e, BandwidthWindow) else e.t_s
            for e in schedule.events
        ]
        assert times == sorted(times)

    def test_empty_len_bool(self):
        empty = FaultSchedule()
        assert empty.empty and len(empty) == 0 and not empty
        full = FaultSchedule(sample_events())
        assert not full.empty and len(full) == 3 and full

    def test_equality_and_hash_order_insensitive(self):
        a = FaultSchedule(sample_events())
        b = FaultSchedule(list(reversed(sample_events())))
        assert a == b and hash(a) == hash(b)
        assert a != FaultSchedule()

    def test_immutable(self):
        schedule = FaultSchedule()
        with pytest.raises(AttributeError):
            schedule.events = ()

    def test_rejects_non_event(self):
        with pytest.raises(FaultScheduleError):
            FaultSchedule([object()])

    def test_failures_for(self):
        schedule = FaultSchedule(sample_events())
        assert [e.index for e in schedule.failures_for("cold")] == [1]
        assert schedule.failures_for("hot") == []


class TestValidation:
    @pytest.mark.parametrize("factor", [0.0, 0.5, float("nan"), float("inf")])
    def test_slowdown_factor_must_be_finite_ge_one(self, factor):
        with pytest.raises(FaultScheduleError):
            FaultSchedule([WorkerSlowdown(t_s=0.0, kind="hot", index=0, factor=factor)])

    def test_bad_kind(self):
        with pytest.raises(FaultScheduleError):
            FaultSchedule([WorkerFailure(t_s=0.0, kind="warm", index=0)])

    @pytest.mark.parametrize("index", [-1, True, 1.5])
    def test_bad_index(self, index):
        with pytest.raises(FaultScheduleError):
            FaultSchedule([WorkerFailure(t_s=0.0, kind="hot", index=index)])

    def test_negative_time(self):
        with pytest.raises(FaultScheduleError):
            FaultSchedule([WorkerFailure(t_s=-1.0, kind="hot", index=0)])

    @pytest.mark.parametrize(
        "start,end,factor",
        [(0.5, 0.5, 0.5), (0.9, 0.1, 0.5), (0.1, 0.9, 0.0), (0.1, 0.9, 1.5)],
    )
    def test_bad_bandwidth_window(self, start, end, factor):
        with pytest.raises(FaultScheduleError):
            FaultSchedule(
                [BandwidthWindow(t_start_s=start, t_end_s=end, factor=factor)]
            )

    def test_validate_against_architecture_counts(self):
        schedule = FaultSchedule([WorkerFailure(t_s=0.0, kind="cold", index=3)])
        schedule.validate_against(hot_count=1, cold_count=4)  # fits
        with pytest.raises(FaultScheduleError):
            schedule.validate_against(hot_count=1, cold_count=3)


class TestSerialization:
    def test_dict_roundtrip(self):
        schedule = FaultSchedule(sample_events())
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_file_roundtrip(self, tmp_path):
        schedule = FaultSchedule(sample_events())
        path = str(tmp_path / "faults.json")
        schedule.save(path)
        assert FaultSchedule.load(path) == schedule

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FaultScheduleError):
            FaultSchedule.load(str(path))

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {"events": [{"event": "meteor", "t_s": 0.0}]},
            {"events": [{"event": "failure", "kind": "hot"}]},  # missing fields
            {"events": ["not-an-object"]},
        ],
    )
    def test_from_dict_rejects_malformed(self, payload):
        with pytest.raises(FaultScheduleError):
            FaultSchedule.from_dict(payload)


class TestRandom:
    def test_deterministic_per_seed(self):
        kwargs = dict(
            horizon_s=1.0,
            hot_instances=2,
            cold_instances=4,
            failure_rate=2.0,
            slowdown_rate=2.0,
            bandwidth_rate=2.0,
        )
        assert FaultSchedule.random(seed=7, **kwargs) == FaultSchedule.random(
            seed=7, **kwargs
        )
        assert FaultSchedule.random(seed=7, **kwargs) != FaultSchedule.random(
            seed=8, **kwargs
        )

    def test_zero_rates_give_empty_schedule(self):
        schedule = FaultSchedule.random(
            seed=0, horizon_s=1.0, hot_instances=2, cold_instances=2
        )
        assert schedule.empty

    @pytest.mark.parametrize("seed", range(8))
    def test_failures_never_wipe_out_a_group(self, seed):
        schedule = FaultSchedule.random(
            seed=seed,
            horizon_s=1.0,
            hot_instances=1,
            cold_instances=3,
            failure_rate=50.0,
        )
        assert len(schedule.failures_for("hot")) == 0  # lone instance spared
        assert len(schedule.failures_for("cold")) <= 2
        # No instance dies twice.
        targets = [(e.kind, e.index) for e in schedule.failures_for("cold")]
        assert len(targets) == len(set(targets))

    def test_events_within_horizon(self):
        schedule = FaultSchedule.random(
            seed=3,
            horizon_s=2.0,
            hot_instances=2,
            cold_instances=4,
            failure_rate=1.0,
            slowdown_rate=3.0,
            bandwidth_rate=1.0,
        )
        for event in schedule.events:
            start = (
                event.t_start_s if isinstance(event, BandwidthWindow) else event.t_s
            )
            assert 0.0 <= start < 2.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(FaultScheduleError):
            FaultSchedule.random(seed=0, horizon_s=0.0, hot_instances=1, cold_instances=1)
        with pytest.raises(FaultScheduleError):
            FaultSchedule.random(
                seed=0, horizon_s=1.0, hot_instances=1, cold_instances=1,
                failure_rate=-1.0,
            )


class TestSummary:
    def test_injected_totals(self):
        summary = FaultSummary(
            slowdowns=2, failures=1, bandwidth_windows=3, reassigned_phases=5,
            failed_instances=("cold-1",),
        )
        assert summary.injected == 6
        payload = summary.to_dict()
        assert payload["failed_instances"] == ["cold-1"]
        assert payload["reassigned_phases"] == 5
