"""Tracing-enabled vs tracing-disabled simulation must be bit-identical.

The acceptance criterion of the observability layer: instrumentation
observes the fluid engine, it never feeds back into the arithmetic.
Every matrix in ``tests/conftest.py`` is simulated both ways and every
``SimResult`` field is compared with exact equality -- no tolerances.
"""

import numpy as np
import pytest

from repro.core.partition import ExecutionMode
from repro.obs import Tracer, use_tracer
from repro.sim.engine import simulate, simulate_homogeneous
from repro.core.traits import WorkerKind
from repro.sparse.tiling import TiledMatrix

MATRIX_FIXTURES = ["tiny_matrix", "small_rmat", "small_uniform", "small_banded"]


def _assignment(tiled, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(tiled.n_tiles) < 0.5


def _assert_bit_identical(traced, plain):
    assert traced.time_s == plain.time_s
    assert traced.merge_time_s == plain.merge_time_s
    assert traced.mode == plain.mode
    assert traced.hot == plain.hot  # instances, nnz, flops, bytes, busy_s
    assert traced.cold == plain.cold
    assert traced.bandwidth_profile == plain.bandwidth_profile
    assert traced.bytes_total == plain.bytes_total


@pytest.mark.parametrize("fixture", MATRIX_FIXTURES)
@pytest.mark.parametrize("mode", [ExecutionMode.PARALLEL, ExecutionMode.SERIAL])
def test_tracing_does_not_perturb_simulate(fixture, mode, request, spade_sextans_arch):
    matrix = request.getfixturevalue(fixture)
    arch = spade_sextans_arch
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    assignment = _assignment(tiled)

    plain = simulate(arch, tiled, assignment, mode)
    with use_tracer(Tracer(enabled=True)) as tracer:
        traced = simulate(arch, tiled, assignment, mode)

    assert len(tracer) > 0, "tracer recorded nothing with tracing enabled"
    _assert_bit_identical(traced, plain)


@pytest.mark.parametrize("fixture", MATRIX_FIXTURES)
def test_tracing_does_not_perturb_homogeneous(fixture, request, piuma_arch):
    matrix = request.getfixturevalue(fixture)
    tiled = TiledMatrix(matrix, piuma_arch.tile_height, piuma_arch.tile_width)

    plain = simulate_homogeneous(piuma_arch, tiled, WorkerKind.COLD)
    with use_tracer(Tracer(enabled=True)):
        traced = simulate_homogeneous(piuma_arch, tiled, WorkerKind.COLD)
    _assert_bit_identical(traced, plain)


def test_traced_run_narrates_chunks_and_bandwidth(small_rmat, spade_sextans_arch):
    """The sim tracks carry the expected record kinds and totals."""
    arch = spade_sextans_arch
    tiled = TiledMatrix(small_rmat, arch.tile_height, arch.tile_width)
    assignment = _assignment(tiled)
    with use_tracer(Tracer(enabled=True)) as tracer:
        result = simulate(arch, tiled, assignment, ExecutionMode.PARALLEL)

    sim_spans = [s for s in tracer.spans() if s.process == "sim"]
    assert sim_spans, "no virtual-time spans recorded"
    # Chunk spans land inside the makespan and cover each group's work.
    for span in sim_spans:
        assert span.ts >= 0.0
        assert span.end <= result.time_s + 1e-12
    chunk_bytes = sum(
        s.args["bytes"] for s in sim_spans if s.name.startswith("chunk")
    )
    assert chunk_bytes == pytest.approx(result.bytes_total)
    # Bandwidth counter samples exist and end at zero.
    counters = [c for c in tracer.counters() if c.name == "bandwidth"]
    assert counters and counters[-1].value == 0.0
    # One rebalance event per fluid-engine interval (plus none spurious).
    rebalances = [e for e in tracer.events() if e.name == "rebalance"]
    assert len(rebalances) == len(result.bandwidth_profile) - (
        1 if result.merge_time_s > 0 else 0
    )
