"""Degraded-mode simulator: fault injection, recovery, and invariants.

Three layers of guarantees from docs/faults.md:

- an empty schedule takes the untouched clean path, bit-identical to the
  frozen :mod:`repro.sim._reference` oracle (``faults`` stays ``None``),
- any seeded random schedule still conserves bytes (bandwidth-profile
  integral == bytes drained + merge pass) and completes with a finite
  makespan at least the fault-free one,
- a failure with no same-kind survivor raises a typed
  :class:`~repro.faults.errors.SimFault` instead of dropping nonzeros.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.configs import piuma, spade_sextans, spade_sextans_pcie
from repro.core.partition import ExecutionMode
from repro.faults.errors import SimFault
from repro.faults.schedule import (
    BandwidthWindow,
    FaultSchedule,
    WorkerFailure,
    WorkerSlowdown,
)
from repro.sim._reference import simulate_reference
from repro.sim.engine import simulate
from repro.sparse import generators
from repro.sparse.tiling import TiledMatrix

ARCH = spade_sextans(4)
ARCH_PCIE = spade_sextans_pcie(4)
ARCH_PIUMA = piuma()


def _profile_integral(profile):
    total, prev = 0.0, 0.0
    for t, bw in profile:
        total += (t - prev) * bw
        prev = t
    return total


def _case(arch=ARCH, frac=0.0, seed=0, nnz=4_000):
    matrix = generators.rmat(scale=9, nnz=nnz, seed=seed)
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    rng = np.random.default_rng(seed)
    assignment = rng.random(tiled.n_tiles) < frac
    return tiled, assignment


class TestEmptyScheduleIsBitIdentical:
    @pytest.mark.parametrize("arch", [ARCH, ARCH_PCIE, ARCH_PIUMA],
                             ids=["spade", "pcie", "piuma"])
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_matches_frozen_reference_exactly(self, arch, mode):
        tiled, assignment = _case(arch, frac=0.4, seed=11)
        via_empty = simulate(arch, tiled, assignment, mode, faults=FaultSchedule())
        via_none = simulate(arch, tiled, assignment, mode)
        reference = simulate_reference(arch, tiled, assignment, mode)
        for result in (via_empty, via_none):
            assert result.faults is None
            assert result.time_s == reference.time_s
            assert result.merge_time_s == reference.merge_time_s
            assert result.mode == reference.mode
            assert result.hot == reference.hot
            assert result.cold == reference.cold
            assert result.bandwidth_profile == reference.bandwidth_profile
        assert via_empty == via_none


class TestFailureRecovery:
    def test_single_failure_reassigns_and_degrades(self):
        tiled, assignment = _case(frac=0.0)  # everything on the 16 cold workers
        base = simulate(ARCH, tiled, assignment, ExecutionMode.PARALLEL)
        schedule = FaultSchedule(
            [WorkerFailure(t_s=base.time_s * 0.1, kind="cold", index=0)]
        )
        result = simulate(
            ARCH, tiled, assignment, ExecutionMode.PARALLEL, faults=schedule
        )
        assert result.faults is not None
        assert result.faults.failures == 1
        assert result.faults.failed_instances == ("cold-0",)
        assert result.faults.reassigned_phases > 0
        assert result.time_s >= base.time_s
        assert np.isfinite(result.time_s)

    def test_all_survivors_dead_raises_simfault(self):
        tiled, assignment = _case(frac=0.0)
        schedule = FaultSchedule(
            [WorkerFailure(t_s=1e-9, kind="cold", index=i)
             for i in range(ARCH.cold.count)]
        )
        with pytest.raises(SimFault) as info:
            simulate(ARCH, tiled, assignment, ExecutionMode.PARALLEL, faults=schedule)
        assert info.value.kind == "cold"
        assert info.value.instance.startswith("cold-")

    def test_killing_idle_group_is_harmless(self):
        # All nonzeros on the hot worker: the cold group has no plans, so
        # events aimed at it are dropped and can never raise SimFault.
        tiled, assignment = _case(frac=1.0)
        assignment[:] = True
        schedule = FaultSchedule(
            [WorkerFailure(t_s=1e-9, kind="cold", index=i)
             for i in range(ARCH.cold.count)]
        )
        result = simulate(
            ARCH, tiled, assignment, ExecutionMode.PARALLEL, faults=schedule
        )
        base = simulate(ARCH, tiled, assignment, ExecutionMode.PARALLEL)
        assert result.faults.failures == 0
        assert result.faults.reassigned_phases == 0
        assert result.time_s == base.time_s
        assert np.isfinite(result.time_s)

    def test_unknown_target_rejected(self):
        from repro.faults.errors import FaultScheduleError

        tiled, assignment = _case()
        schedule = FaultSchedule(
            [WorkerFailure(t_s=0.0, kind="cold", index=ARCH.cold.count)]
        )
        with pytest.raises(FaultScheduleError):
            simulate(ARCH, tiled, assignment, ExecutionMode.PARALLEL, faults=schedule)


class TestSlowdownsAndBandwidth:
    def test_slowdown_inflates_makespan(self):
        tiled, assignment = _case(frac=0.0)
        base = simulate(ARCH, tiled, assignment, ExecutionMode.PARALLEL)
        schedule = FaultSchedule(
            [WorkerSlowdown(t_s=0.0, kind="cold", index=i, factor=20.0)
             for i in range(ARCH.cold.count)]
        )
        result = simulate(
            ARCH, tiled, assignment, ExecutionMode.PARALLEL, faults=schedule
        )
        assert result.faults.slowdowns == ARCH.cold.count
        assert result.time_s > base.time_s

    def test_bandwidth_window_inflates_makespan(self):
        tiled, assignment = _case(frac=0.0)
        base = simulate(ARCH, tiled, assignment, ExecutionMode.PARALLEL)
        schedule = FaultSchedule(
            [BandwidthWindow(t_start_s=0.0, t_end_s=base.time_s * 10, factor=0.25)]
        )
        result = simulate(
            ARCH, tiled, assignment, ExecutionMode.PARALLEL, faults=schedule
        )
        assert result.faults.bandwidth_windows == 1
        assert result.time_s > base.time_s

    def test_serial_mode_fault_during_cold_phase(self):
        tiled, assignment = _case(frac=0.4, seed=5)
        base = simulate(ARCH, tiled, assignment, ExecutionMode.SERIAL)
        # Timed after the hot span, i.e. while the cold group is running.
        schedule = FaultSchedule(
            [WorkerFailure(t_s=base.hot.busy_s + base.cold.busy_s * 0.25,
                           kind="cold", index=2)]
        )
        result = simulate(
            ARCH, tiled, assignment, ExecutionMode.SERIAL, faults=schedule
        )
        assert result.faults.failures == 1
        assert result.merge_time_s == 0.0
        assert result.time_s >= base.time_s
        assert np.isfinite(result.time_s)

    def test_deterministic(self):
        tiled, assignment = _case(frac=0.3, seed=2)
        schedule = FaultSchedule.random(
            seed=4, horizon_s=1.0, hot_instances=ARCH.hot.count,
            cold_instances=ARCH.cold.count,
            failure_rate=2.0, slowdown_rate=2.0, bandwidth_rate=2.0,
        )
        a = simulate(ARCH, tiled, assignment, ExecutionMode.PARALLEL, faults=schedule)
        b = simulate(ARCH, tiled, assignment, ExecutionMode.PARALLEL, faults=schedule)
        assert a == b


@st.composite
def faulted_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    nnz = draw(st.integers(min_value=100, max_value=3_000))
    kind = draw(st.sampled_from(["rmat", "uniform"]))
    if kind == "rmat":
        matrix = generators.rmat(scale=8, nnz=nnz, seed=seed)
    else:
        matrix = generators.uniform_random(256, 256, nnz, seed=seed)
    frac = draw(st.floats(min_value=0.0, max_value=1.0))
    mode = draw(st.sampled_from([ExecutionMode.PARALLEL, ExecutionMode.SERIAL]))
    arch = draw(st.sampled_from([ARCH, ARCH_PCIE]))
    failure_rate = draw(st.floats(min_value=0.0, max_value=4.0))
    slowdown_rate = draw(st.floats(min_value=0.0, max_value=4.0))
    bandwidth_rate = draw(st.floats(min_value=0.0, max_value=3.0))
    return matrix, frac, mode, arch, seed, failure_rate, slowdown_rate, bandwidth_rate


@settings(max_examples=20, deadline=None)
@given(case=faulted_cases())
def test_random_schedules_conserve_bytes_and_complete(case):
    """Any survivable seeded schedule: finite makespan, exact byte budget."""
    matrix, frac, mode, arch, seed, f_rate, s_rate, b_rate = case
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    rng = np.random.default_rng(seed)
    assignment = rng.random(tiled.n_tiles) < frac

    base = simulate(arch, tiled, assignment, mode)
    schedule = FaultSchedule.random(
        seed=seed,
        horizon_s=max(base.time_s, 1e-9),
        hot_instances=arch.hot.count,
        cold_instances=arch.cold.count,
        failure_rate=f_rate,
        slowdown_rate=s_rate,
        bandwidth_rate=b_rate,
    )
    result = simulate(arch, tiled, assignment, mode, faults=schedule)

    if schedule.empty:
        assert result == base
        return
    assert result.faults is not None
    # Events aimed at idle groups are dropped, so at most the scheduled count
    # lands; bandwidth windows always land.
    assert result.faults.injected <= len(schedule)
    assert result.faults.failures <= len(schedule.failures_for("hot")) + len(
        schedule.failures_for("cold")
    )
    assert np.isfinite(result.time_s) and result.time_s >= 0.0
    # The slowest instance of each group finishes inside the makespan.
    assert result.hot.busy_s <= result.time_s + 1e-12
    assert result.cold.busy_s <= result.time_s + 1e-12
    # Conservation: every byte the plans carry shows up under the
    # bandwidth profile exactly once, merge pass included.
    merge_bytes = result.merge_time_s * arch.mem_bw_bytes_per_sec
    assert _profile_integral(result.bandwidth_profile) == pytest.approx(
        result.bytes_total + merge_bytes, rel=1e-9, abs=1e-6
    )
    # Reassignment never loses or duplicates nonzero work.
    assert result.bytes_total == base.bytes_total
    assert result.hot.nnz + result.cold.nnz == base.hot.nnz + base.cold.nnz
