"""Windowed-LRU cache approximation tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import exact_lru_misses, windowed_lru_misses


class TestWindowedLru:
    def test_all_miss_without_cache(self):
        assert windowed_lru_misses(np.array([1, 1, 1]), 0).all()

    def test_empty_sequence(self):
        assert windowed_lru_misses(np.zeros(0, dtype=np.int64), 4).shape == (0,)

    def test_immediate_repeat_hits(self):
        misses = windowed_lru_misses(np.array([7, 7, 7, 7]), 1)
        assert misses.tolist() == [True, False, False, False]

    def test_gap_beyond_capacity_misses(self):
        # 5 and the next 5 are 3 apart; capacity 2 -> miss.
        ids = np.array([5, 1, 2, 5])
        assert windowed_lru_misses(ids, 2).tolist() == [True, True, True, True]
        assert windowed_lru_misses(ids, 3).tolist() == [True, True, True, False]

    def test_first_access_always_misses(self):
        ids = np.array([1, 2, 3, 4])
        assert windowed_lru_misses(ids, 100).all()

    def test_matches_exact_lru_on_distinct_interleave(self):
        # When every interleaved id is distinct, window == true LRU.
        ids = np.array([1, 2, 3, 1, 2, 3])
        for cap in (1, 2, 3, 4):
            np.testing.assert_array_equal(
                windowed_lru_misses(ids, cap), exact_lru_misses(ids, cap)
            )


class TestEdgeCases:
    """Degenerate inputs, exercised symmetrically on both kernels."""

    def test_empty_sequence_both_kernels(self):
        empty = np.zeros(0, dtype=np.int64)
        for cap in (0, 1, 8):
            assert windowed_lru_misses(empty, cap).shape == (0,)
            assert exact_lru_misses(empty, cap).shape == (0,)

    def test_nonpositive_capacity_disables_cache(self):
        ids = np.array([3, 3, 3])
        for cap in (0, -1):
            assert windowed_lru_misses(ids, cap).all()
            assert exact_lru_misses(ids, cap).all()

    def test_capacity_one_identical_ids(self):
        # A single-row cache still serves back-to-back repeats.
        ids = np.full(16, 9, dtype=np.int64)
        expected = [True] + [False] * 15
        assert windowed_lru_misses(ids, 1).tolist() == expected
        assert exact_lru_misses(ids, 1).tolist() == expected

    def test_capacity_one_distinct_ids_all_miss(self):
        ids = np.array([1, 2, 1, 2])
        assert windowed_lru_misses(ids, 1).all()
        assert exact_lru_misses(ids, 1).all()

    def test_all_identical_ids_any_capacity(self):
        ids = np.full(8, 4, dtype=np.int64)
        for cap in (1, 2, 100):
            assert windowed_lru_misses(ids, cap).sum() == 1
            assert exact_lru_misses(ids, cap).sum() == 1


class TestExactLru:
    def test_classic_eviction(self):
        # Capacity 2: access 1,2,3 evicts 1, so the second 1 misses.
        ids = np.array([1, 2, 3, 1])
        assert exact_lru_misses(ids, 2).tolist() == [True, True, True, True]

    def test_mru_protection(self):
        # Capacity 2: 1,2,1,3 keeps 1 (recently used), evicts 2.
        ids = np.array([1, 2, 1, 3, 1])
        assert exact_lru_misses(ids, 2).tolist() == [True, True, False, True, False]


@settings(max_examples=200, deadline=None)
@given(
    ids=st.lists(st.integers(min_value=0, max_value=12), min_size=0, max_size=64),
    capacity=st.integers(min_value=0, max_value=16),
)
def test_window_never_over_credits_lru(ids, capacity):
    """Property: every windowed hit is a true-LRU hit (the approximation is
    conservative), so window misses >= exact misses pointwise."""
    arr = np.array(ids, dtype=np.int64)
    window = windowed_lru_misses(arr, capacity)
    exact = exact_lru_misses(arr, capacity)
    # window hit (False) implies exact hit (False).
    assert window.shape == exact.shape
    assert not np.any(~window & exact)


@settings(max_examples=100, deadline=None)
@given(
    ids=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40),
)
def test_infinite_capacity_misses_once_per_distinct_id(ids):
    arr = np.array(ids, dtype=np.int64)
    misses = windowed_lru_misses(arr, capacity_rows=10_000)
    assert misses.sum() == np.unique(arr).size
