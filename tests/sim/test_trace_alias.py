"""The ``repro.sim.trace`` compat alias must warn loudly, and only once."""

import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")

_PROBE = """
import warnings

with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    import repro.sim.trace
    import repro.sim.trace as again  # cached module: must NOT warn again

dep = [
    w
    for w in caught
    if issubclass(w.category, DeprecationWarning)
    and "repro.sim.utilization" in str(w.message)
]
assert len(dep) == 1, [str(w.message) for w in caught]
print("exactly-once")
"""


def test_deprecation_warning_fires_exactly_once():
    """A fresh interpreter importing the alias twice sees one warning."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE], capture_output=True, text=True, env=env
    )
    assert proc.returncode == 0, proc.stderr
    assert "exactly-once" in proc.stdout


def test_alias_still_reexports_objects():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.sim import trace, utilization

    assert trace.utilization_row is utilization.utilization_row
    assert trace.bandwidth_sparkline is utilization.bandwidth_sparkline
