"""Native (compiled) backend: kernel bit-identity + backend selection.

Two halves:

* **Kernel differential** -- the un-jitted kernel sources in
  :mod:`repro.sim._native.kernels` (``jit=False``) must be bit-identical
  to the pure-Python engine over the same matrix/arch/assignment grid as
  ``test_perf_differential.py``.  This pins the kernel *logic* on every
  machine, numba or not; the CI ``native-smoke`` job re-runs the whole
  suite with ``HOTTILES_BACKEND=native`` to pin the *compiled* artifacts.
* **Backend selection** -- ``HOTTILES_BACKEND`` / ``set_backend`` /
  ``use_backend`` resolution, the ``BackendUnavailable`` contract for an
  unsatisfiable explicit ``native`` request, and the JSON snapshot that
  ``/stats`` and ``BENCH_PERF.json`` embed.

Exact ``==`` throughout, no tolerances.
"""

import numpy as np
import pytest

from repro.arch.configs import spade_sextans_pcie
from repro.core.partition import ExecutionMode
from repro.sim import _native
from repro.sim import backend as sim_backend
from repro.sim import cache
from repro.sim.engine import _run_fluid, simulate
from repro.sim.worker_sim import build_plans
from repro.sparse.tiling import TiledMatrix

MATRIX_FIXTURES = ["tiny_matrix", "small_rmat", "small_uniform", "small_banded"]
ASSIGNMENT_FRACS = [0.0, 0.3, 1.0]


@pytest.fixture(scope="session")
def pcie_arch():
    return spade_sextans_pcie(4)


ARCH_FIXTURES = ["spade_sextans_arch", "piuma_arch", "pcie_arch"]


def _assignment(tiled, frac, seed=5):
    if frac == 0.0:
        return np.zeros(tiled.n_tiles, dtype=bool)
    if frac == 1.0:
        return np.ones(tiled.n_tiles, dtype=bool)
    rng = np.random.default_rng(seed)
    return rng.random(tiled.n_tiles) < frac


def _python_fluid(arch, plans):
    with sim_backend.use_backend("python"):
        return _run_fluid(arch, plans)


def _assert_fluid_identical(native, python):
    n_time, n_completions, n_profile = native
    p_time, p_completions, p_profile = python
    assert n_time == p_time
    assert n_completions.tolist() == p_completions.tolist()
    assert n_profile == p_profile


class TestFluidKernelDifferential:
    """Un-jitted ``_native.run_fluid`` vs the Python event loop."""

    @pytest.mark.parametrize("frac", ASSIGNMENT_FRACS)
    @pytest.mark.parametrize("arch_fixture", ARCH_FIXTURES)
    @pytest.mark.parametrize("fixture", MATRIX_FIXTURES)
    def test_bit_identical_on_differential_grid(
        self, fixture, arch_fixture, frac, request
    ):
        matrix = request.getfixturevalue(fixture)
        arch = request.getfixturevalue(arch_fixture)
        tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
        assignment = _assignment(tiled, frac)
        hot, cold = build_plans(arch, tiled, assignment)

        # Parallel-mode shape (everything at once) and each side alone
        # (the serial-mode sub-runs) -- covers PCIe-capped and
        # single-kind demand sets.
        for plans in (hot + cold, hot, cold):
            _assert_fluid_identical(
                _native.run_fluid(arch, plans, jit=False),
                _python_fluid(arch, plans),
            )

    def test_empty_plan_list(self, spade_sextans_arch):
        t, completions, profile = _native.run_fluid(
            spade_sextans_arch, [], jit=False
        )
        assert t == 0.0
        assert completions.shape == (0,)
        assert profile == ()


class TestLruKernelDifferential:
    """Un-jitted ``_native.lru_misses`` vs the vectorized window kernel."""

    @pytest.mark.parametrize("capacity", [1, 2, 7, 64, 10_000])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_sequences(self, capacity, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 200, size=2_000).astype(np.int64)
        with sim_backend.use_backend("python"):
            expected = cache.windowed_lru_misses(ids, capacity)
        got = _native.lru_misses(ids, capacity, int(ids.max()), jit=False)
        assert got.tolist() == expected.tolist()

    @pytest.mark.parametrize(
        "ids",
        [
            [7, 7, 7, 7],
            [5, 1, 2, 5],
            [1, 2, 3, 1, 2, 3],
            [0],
        ],
    )
    @pytest.mark.parametrize("capacity", [1, 2, 3])
    def test_structured_sequences(self, ids, capacity):
        arr = np.array(ids, dtype=np.int64)
        with sim_backend.use_backend("python"):
            expected = cache.windowed_lru_misses(arr, capacity)
        got = _native.lru_misses(arr, capacity, int(arr.max()), jit=False)
        assert got.tolist() == expected.tolist()

    def test_cache_entrypoint_guards_dense_limit(self, monkeypatch):
        """Ids beyond ``DENSE_ID_LIMIT`` must take the numpy path even
        when the native backend is nominally active."""
        ids = np.array([_native.DENSE_ID_LIMIT + 5, 0], dtype=np.int64)
        with sim_backend.use_backend("python"):
            expected = cache.windowed_lru_misses(ids, 4)
        # Fake an active native backend whose kernel would blow up if
        # called with an over-limit id range.
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("dense kernel called past DENSE_ID_LIMIT")

        monkeypatch.setattr(sim_backend, "native_lru", lambda: boom)
        assert cache.windowed_lru_misses(ids, 4).tolist() == expected.tolist()


class TestBackendSelection:
    def test_defaults_to_auto(self):
        assert sim_backend.requested_backend() == "auto"
        expected = "native" if sim_backend.native_available() else "python"
        assert sim_backend.active_backend() == expected

    def test_invalid_name_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            sim_backend.set_backend("fortran")
        assert sim_backend.requested_backend() == "auto"

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(sim_backend.ENV_VAR, "python")
        assert sim_backend.requested_backend() == "python"
        assert sim_backend.active_backend() == "python"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(sim_backend.ENV_VAR, "python")
        with sim_backend.use_backend("auto"):
            assert sim_backend.requested_backend() == "auto"
        assert sim_backend.requested_backend() == "python"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with sim_backend.use_backend("python"):
                assert sim_backend.requested_backend() == "python"
                raise RuntimeError("boom")
        assert sim_backend.requested_backend() == "auto"

    def test_explicit_native_without_numba_raises(self):
        if sim_backend.native_available():
            pytest.skip("numba present: explicit native is satisfiable")
        with sim_backend.use_backend("native"):
            with pytest.raises(sim_backend.BackendUnavailable, match="numba"):
                sim_backend.active_backend()

    def test_native_hooks_inactive_under_python(self):
        with sim_backend.use_backend("python"):
            assert sim_backend.native_fluid() is None
            assert sim_backend.native_lru() is None

    def test_backend_info_never_raises(self):
        with sim_backend.use_backend("native"):
            info = sim_backend.backend_info()
        assert info["requested"] == "native"
        if sim_backend.native_available():
            assert info["active"] == "native"
            assert info["numba_version"]
        else:
            assert info["active"] == "python"
            assert "numba" in info["error"]
            assert info["numba_version"] is None

    def test_backend_info_is_json_safe(self):
        import json

        json.dumps(sim_backend.backend_info())


class TestEndToEnd:
    @pytest.mark.parametrize("mode", [ExecutionMode.PARALLEL, ExecutionMode.SERIAL])
    def test_simulate_matches_python_under_active_backend(
        self, small_rmat, spade_sextans_arch, mode
    ):
        """Whatever ``auto`` resolves to must reproduce the python run
        bit for bit (trivial without numba, the real pin in native-smoke)."""
        arch = spade_sextans_arch
        tiled = TiledMatrix(small_rmat, arch.tile_height, arch.tile_width)
        assignment = _assignment(tiled, 0.3)
        with sim_backend.use_backend("python"):
            expected = simulate(arch, tiled, assignment, mode)
        with sim_backend.use_backend("auto"):
            got = simulate(arch, tiled, assignment, mode)
        assert got.time_s == expected.time_s
        assert got.merge_time_s == expected.merge_time_s
        assert got.hot == expected.hot
        assert got.cold == expected.cold
        assert got.bandwidth_profile == expected.bandwidth_profile

    @pytest.mark.skipif(
        not sim_backend.native_available(), reason="requires numba"
    )
    def test_jitted_kernels_match_sources(self, small_rmat, piuma_arch):
        """Compiled artifacts vs their own sources (numba machines only)."""
        arch = piuma_arch
        tiled = TiledMatrix(small_rmat, arch.tile_height, arch.tile_width)
        hot, cold = build_plans(arch, tiled, _assignment(tiled, 0.3))
        plans = hot + cold
        _assert_fluid_identical(
            _native.run_fluid(arch, plans, jit=True),
            _native.run_fluid(arch, plans, jit=False),
        )
        rng = np.random.default_rng(3)
        ids = rng.integers(0, 500, size=5_000).astype(np.int64)
        assert (
            _native.lru_misses(ids, 32, int(ids.max()), jit=True).tolist()
            == _native.lru_misses(ids, 32, int(ids.max()), jit=False).tolist()
        )
