"""Utilization aggregation tests (:mod:`repro.sim.utilization`).

This file was ``test_trace.py`` before the span tracer (:mod:`repro.obs`)
claimed the "trace" name; the helpers moved to ``repro.sim.utilization``
and ``repro.sim.trace`` became a compatibility alias (tested at the
bottom).
"""

import numpy as np
import pytest

from repro.core.partition import ExecutionMode
from repro.core.traits import WorkerKind
from repro.sim.engine import GroupStats, SimResult, simulate, simulate_homogeneous
from repro.sim.utilization import (
    bandwidth_sparkline,
    geomean,
    utilization_row,
)
from tests.core.test_partition import mixed_tiled, tiny_arch


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_all_zero(self):
        assert geomean([0.0, 0.0]) == 0.0

    def test_mixed_zero_floored(self):
        # One idle entry must not annihilate the aggregate.
        assert geomean([0.0, 100.0], floor=1.0) == pytest.approx(10.0)


class TestUtilizationRow:
    def test_row_fields(self):
        tiled = mixed_tiled()
        arch = tiny_arch()
        results = [
            simulate_homogeneous(arch, tiled, WorkerKind.COLD),
            simulate_homogeneous(arch, tiled, WorkerKind.COLD),
        ]
        row = utilization_row("cold-only", results, [tiled.matrix.nnz] * 2)
        assert row.strategy == "cold-only"
        assert row.bandwidth_gbs > 0
        assert row.cache_lines_per_nnz > 0
        assert row.cold_gflops > 0
        assert row.hot_gflops == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="one nnz count"):
            utilization_row("x", [], [])

    def test_zero_nnz_yields_zero_lines_per_nnz(self):
        # An empty matrix moved bytes per nonzero is defined as 0, and the
        # geomean of all-zero samples must stay 0 rather than the floor.
        tiled = mixed_tiled()
        result = simulate_homogeneous(tiny_arch(), tiled, WorkerKind.COLD)
        row = utilization_row("cold-only", [result], [0])
        assert row.cache_lines_per_nnz == 0.0

    def test_single_result(self):
        tiled = mixed_tiled()
        result = simulate_homogeneous(tiny_arch(), tiled, WorkerKind.COLD)
        row = utilization_row("cold-only", [result], [tiled.matrix.nnz])
        # Geomean of one sample is the sample itself.
        assert row.bandwidth_gbs == pytest.approx(
            result.bandwidth_utilization_bytes_per_sec / 1e9
        )
        assert row.cold_gflops == pytest.approx(result.cold.busy_gflops)


def _result(profile, time_s=1.0, busy=True):
    stats = (
        GroupStats(instances=1, nnz=10, flops=1.0, bytes=5.0, busy_s=1.0)
        if busy
        else GroupStats(instances=0, nnz=0, flops=0.0, bytes=0.0, busy_s=0.0)
    )
    return SimResult(
        time_s=time_s,
        merge_time_s=0.0,
        mode=ExecutionMode.PARALLEL,
        hot=stats,
        cold=stats,
        bandwidth_profile=profile,
    )


class TestBandwidthProfile:
    def test_profile_recorded_and_consistent(self):
        tiled = mixed_tiled()
        result = simulate_homogeneous(tiny_arch(), tiled, WorkerKind.COLD)
        profile = result.bandwidth_profile
        assert profile
        # Interval ends are increasing and finish at the makespan.
        ends = [t for t, _ in profile]
        assert all(a <= b + 1e-15 for a, b in zip(ends, ends[1:]))
        assert ends[-1] == pytest.approx(result.time_s)
        # Integrating the profile recovers the total bytes moved.
        total = 0.0
        prev = 0.0
        for t, bw in profile:
            total += (t - prev) * bw
            prev = t
        assert total == pytest.approx(result.bytes_total, rel=1e-6)

    def test_sparkline_shape(self):
        tiled = mixed_tiled()
        result = simulate_homogeneous(tiny_arch(), tiled, WorkerKind.COLD)
        line = bandwidth_sparkline(result, buckets=30)
        assert len(line) == 30
        assert any(c != " " for c in line)

    def test_sparkline_validates_buckets(self):
        tiled = mixed_tiled()
        result = simulate_homogeneous(tiny_arch(), tiled, WorkerKind.COLD)
        with pytest.raises(ValueError, match="buckets"):
            bandwidth_sparkline(result, buckets=0)

    def test_sparkline_empty_profile_is_blank(self):
        line = bandwidth_sparkline(_result((), time_s=0.0, busy=False), buckets=12)
        assert line == " " * 12

    def test_sparkline_zero_peak_is_blank(self):
        result = _result(((1.0, 0.0),))
        assert bandwidth_sparkline(result, buckets=8) == " " * 8

    def test_sparkline_single_interval_is_flat_peak(self):
        result = _result(((1.0, 5.0),))
        line = bandwidth_sparkline(result, buckets=10)
        # One constant-rate interval at the peak: every bucket renders the
        # top glyph.
        assert line == "@" * 10

    def test_sparkline_collapsed_profile_renders_last_rate(self):
        # Regression: a profile whose every interval ends at t=0 (an
        # instantaneous run with a nonzero reported makespan) used to
        # render blank because the zero-width overlaps carried no weight.
        # It now renders the final recorded rate flat across the line.
        result = _result(((0.0, 5.0),))
        assert bandwidth_sparkline(result, buckets=10) == "@" * 10

    def test_sparkline_collapsed_profile_ending_idle_is_blank(self):
        result = _result(((0.0, 5.0), (0.0, 0.0)))
        assert bandwidth_sparkline(result, buckets=10) == " " * 10

    def test_serial_profile_spans_both_phases(self):
        tiled = mixed_tiled()
        arch = tiny_arch()
        assignment = tiled.stats.nnz > np.median(tiled.stats.nnz)
        result = simulate(arch, tiled, assignment, ExecutionMode.SERIAL)
        ends = [t for t, _ in result.bandwidth_profile]
        assert ends[-1] == pytest.approx(result.time_s)


class TestTraceModuleAlias:
    def test_trace_reexports_same_objects(self):
        # ``repro.sim.trace`` must keep working for existing imports.
        from repro.sim import trace, utilization

        assert trace.bandwidth_sparkline is utilization.bandwidth_sparkline
        assert trace.geomean is utilization.geomean
        assert trace.utilization_row is utilization.utilization_row
        assert trace.UtilizationRow is utilization.UtilizationRow
