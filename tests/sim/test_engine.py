"""Fluid engine tests: analytically solvable scenarios."""

import numpy as np
import pytest

from repro.arch.heterogeneous import Architecture, WorkerGroup
from repro.core.partition import ExecutionMode
from repro.core.traits import WorkerKind
from repro.sim.engine import simulate, simulate_homogeneous
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix
from tests.core.test_model import PROBLEM, cold_worker, hot_worker
from tests.core.test_partition import mixed_tiled, tiny_arch


def single_tile():
    """One 4x4 tile with 4 nonzeros in distinct rows/cols."""
    m = SparseMatrix(4, 4, [0, 1, 2, 3], [0, 1, 2, 3])
    return TiledMatrix(m, 4, 4)


def arch_with(cold=None, hot=None, n_cold=1, n_hot=1, bw_gbs=100.0, atomic=False, pcie=None):
    return Architecture(
        name="e",
        hot=WorkerGroup(hot or hot_worker(), n_hot),
        cold=WorkerGroup(cold or cold_worker(), n_cold),
        mem_bw_gbs=bw_gbs,
        problem=PROBLEM,
        tile_height=4,
        tile_width=4,
        atomic_updates=atomic,
        pcie_bw_gbs=pcie,
    )


class TestSingleWorker:
    def test_memory_bound_time(self):
        """One cold worker, no contention: time = bytes / worker rate."""
        tiled = single_tile()
        # Worker rate: 10 B/cycle at 1 GHz = 10 GB/s, below the 100 GB/s BW.
        cold = cold_worker(mem_bytes_per_cycle=10.0, cache_bytes=0)
        arch = arch_with(cold=cold)
        result = simulate_homogeneous(arch, tiled, WorkerKind.COLD)
        # Bytes: sparse 4*12 + din 4*16 + dout 2*uniq_rids(4)*16 = 240.
        assert result.bytes_total == pytest.approx(240.0)
        expected = 240.0 / 10e9
        assert result.time_s == pytest.approx(expected, rel=1e-9)

    def test_compute_bound_time(self):
        """Slow compute dominates when memory is fast."""
        tiled = single_tile()
        cold = cold_worker(
            macs_per_cycle=0.001, mem_bytes_per_cycle=1000.0, cache_bytes=0
        )
        arch = arch_with(cold=cold)
        result = simulate_homogeneous(arch, tiled, WorkerKind.COLD)
        cycles = cold.cycles_per_nonzero(PROBLEM.k) * 4
        assert result.time_s == pytest.approx(cycles / 1e9, rel=1e-9)

    def test_bandwidth_cap_binds(self):
        """Worker rate above system BW: system BW is the limit."""
        tiled = single_tile()
        cold = cold_worker(mem_bytes_per_cycle=1e6, cache_bytes=0)
        arch = arch_with(cold=cold, bw_gbs=1.0)
        result = simulate_homogeneous(arch, tiled, WorkerKind.COLD)
        assert result.time_s == pytest.approx(240.0 / 1e9, rel=1e-9)

    def test_empty_matrix(self):
        tiled = TiledMatrix(SparseMatrix.empty(8, 8), 4, 4)
        result = simulate(arch_with(), tiled, np.zeros(0, dtype=bool))
        assert result.time_s == 0.0
        assert result.bytes_total == 0.0


class TestContention:
    def test_two_workers_share_bandwidth(self):
        """Two identical cold workers on disjoint panels, BW half their
        combined demand: runtime doubles vs unconstrained."""
        rows = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        cols = np.array([0, 1, 2, 3, 0, 1, 2, 3])
        tiled = TiledMatrix(SparseMatrix(8, 4, rows, cols), 4, 4)
        cold = cold_worker(mem_bytes_per_cycle=10.0, cache_bytes=0)
        free = simulate_homogeneous(
            arch_with(cold=cold, n_cold=2, bw_gbs=1000.0), tiled, WorkerKind.COLD
        )
        squeezed = simulate_homogeneous(
            arch_with(cold=cold, n_cold=2, bw_gbs=10.0), tiled, WorkerKind.COLD
        )
        assert squeezed.time_s == pytest.approx(2 * free.time_s, rel=1e-6)

    def test_pcie_throttles_hot_worker(self):
        tiled = single_tile()
        fast = simulate_homogeneous(arch_with(), tiled, WorkerKind.HOT)
        slow = simulate_homogeneous(
            arch_with(pcie=0.5), tiled, WorkerKind.HOT
        )
        assert slow.time_s > fast.time_s


class TestModes:
    def test_parallel_adds_merge(self):
        tiled = mixed_tiled()
        arch = tiny_arch()
        assignment = np.zeros(tiled.n_tiles, dtype=bool)
        assignment[np.argmax(tiled.stats.nnz)] = True
        result = simulate(arch, tiled, assignment, ExecutionMode.PARALLEL)
        assert result.merge_time_s == pytest.approx(
            arch.merge_time_s(tiled.matrix.n_rows)
        )

    def test_atomic_arch_skips_merge(self):
        tiled = mixed_tiled()
        arch = tiny_arch(atomic=True)
        assignment = np.zeros(tiled.n_tiles, dtype=bool)
        assignment[0] = True
        result = simulate(arch, tiled, assignment, ExecutionMode.PARALLEL)
        assert result.merge_time_s == 0.0

    def test_homogeneous_skips_merge(self):
        tiled = mixed_tiled()
        result = simulate_homogeneous(tiny_arch(), tiled, WorkerKind.COLD)
        assert result.merge_time_s == 0.0

    def test_serial_has_no_merge_and_consistent_bytes(self):
        tiled = mixed_tiled()
        arch = tiny_arch()
        assignment = tiled.stats.nnz > np.median(tiled.stats.nnz)
        serial = simulate(arch, tiled, assignment, ExecutionMode.SERIAL)
        assert serial.merge_time_s == 0.0
        assert serial.time_s > 0
        assert serial.hot.bytes + serial.cold.bytes == pytest.approx(
            serial.bytes_total
        )

    def test_serial_matches_manual_two_phase(self):
        tiled = mixed_tiled()
        arch = tiny_arch()
        assignment = tiled.stats.nnz > np.median(tiled.stats.nnz)
        if not assignment.any() or assignment.all():
            pytest.skip("degenerate split")
        serial = simulate(arch, tiled, assignment, ExecutionMode.SERIAL)
        # The hot phase alone: give the cold side nothing.
        from repro.sim.worker_sim import build_plans
        from repro.sim.engine import _run_fluid

        hot_plans, cold_plans = build_plans(arch, tiled, assignment)
        t_hot, _, _ = _run_fluid(arch, hot_plans)
        t_cold, _, _ = _run_fluid(arch, cold_plans)
        assert serial.time_s == pytest.approx(t_hot + t_cold, rel=1e-9)


class TestRowBlockGranularity:
    def test_finer_blocks_never_slow_cold_execution(self):
        """Row-block scheduling exists to spread heavy panels; finer
        blocks can only improve (or match) the cold makespan."""
        rng = np.random.default_rng(11)
        # One hub panel holding most nonzeros.
        rows = np.concatenate([rng.integers(0, 4, 600), rng.integers(0, 64, 200)])
        cols = rng.integers(0, 64, 800)
        tiled = TiledMatrix(SparseMatrix(64, 64, rows, cols), 4, 4)
        arch = tiny_arch(n_cold=4)
        coarse = simulate(
            arch,
            tiled,
            np.zeros(tiled.n_tiles, dtype=bool),
            ExecutionMode.PARALLEL,
            untiled_block_rows=4,
        )
        fine = simulate(
            arch,
            tiled,
            np.zeros(tiled.n_tiles, dtype=bool),
            ExecutionMode.PARALLEL,
            untiled_block_rows=1,
        )
        assert fine.time_s <= coarse.time_s * 1.01
        # Traffic is invariant: row blocks partition the rows.
        assert fine.bytes_total == pytest.approx(coarse.bytes_total, rel=1e-9)

    def test_block_granularity_preserves_bytes(self):
        tiled = mixed_tiled()
        arch = tiny_arch(n_cold=3)
        assignment = np.zeros(tiled.n_tiles, dtype=bool)
        results = [
            simulate(arch, tiled, assignment, ExecutionMode.PARALLEL, untiled_block_rows=b)
            for b in (1, 2, 4)
        ]
        for r in results[1:]:
            assert r.bytes_total == pytest.approx(results[0].bytes_total, rel=1e-9)


class TestStats:
    def test_bandwidth_utilization(self):
        tiled = single_tile()
        cold = cold_worker(mem_bytes_per_cycle=10.0, cache_bytes=0)
        result = simulate_homogeneous(arch_with(cold=cold), tiled, WorkerKind.COLD)
        assert result.bandwidth_utilization_bytes_per_sec == pytest.approx(10e9, rel=1e-6)

    def test_cache_lines_per_nnz(self):
        tiled = single_tile()
        result = simulate_homogeneous(arch_with(), tiled, WorkerKind.COLD)
        assert result.cache_lines_per_nnz(4) == pytest.approx(result.bytes_total / 64 / 4)

    def test_busy_gflops(self):
        tiled = single_tile()
        result = simulate_homogeneous(arch_with(), tiled, WorkerKind.COLD)
        assert result.cold.busy_gflops > 0
        assert result.hot.busy_gflops == 0.0

    def test_group_bytes_split(self):
        tiled = mixed_tiled()
        arch = tiny_arch()
        assignment = np.zeros(tiled.n_tiles, dtype=bool)
        assignment[0] = True
        result = simulate(arch, tiled, assignment, ExecutionMode.PARALLEL)
        assert result.hot.bytes > 0
        assert result.cold.bytes > 0
