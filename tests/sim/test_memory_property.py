"""Property-based tests for max-min fair bandwidth allocation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.memory import allocate_rates


@st.composite
def allocation_cases(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    caps = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    bw = draw(st.floats(min_value=1.0, max_value=300.0, allow_nan=False))
    return caps, bw


@settings(max_examples=200, deadline=None)
@given(case=allocation_cases())
def test_feasibility(case):
    """Rates never exceed individual caps or the shared capacity."""
    caps, bw = case
    rates = allocate_rates(caps, bw)
    assert np.all(rates <= caps + 1e-9)
    assert rates.sum() <= bw + 1e-6
    assert np.all(rates >= 0)


@settings(max_examples=200, deadline=None)
@given(case=allocation_cases())
def test_work_conservation(case):
    """Either every demand is satisfied or the pipe is full."""
    caps, bw = case
    rates = allocate_rates(caps, bw)
    fully_satisfied = np.allclose(rates, caps, atol=1e-9)
    pipe_full = rates.sum() >= bw - 1e-6
    assert fully_satisfied or pipe_full


@settings(max_examples=200, deadline=None)
@given(case=allocation_cases())
def test_max_min_fairness(case):
    """No unsatisfied user receives less than any other user's rate
    (the defining property of max-min fairness for a single resource)."""
    caps, bw = case
    rates = allocate_rates(caps, bw)
    unsatisfied = rates < caps - 1e-9
    if not unsatisfied.any():
        return
    floor = rates[unsatisfied].min()
    assert np.all(rates <= floor + 1e-6)


@settings(max_examples=100, deadline=None)
@given(case=allocation_cases(), extra=st.floats(min_value=1.0, max_value=100.0))
def test_monotone_in_capacity(case, extra):
    """More bandwidth never reduces anyone's rate."""
    caps, bw = case
    before = allocate_rates(caps, bw)
    after = allocate_rates(caps, bw + extra)
    assert np.all(after >= before - 1e-6)
