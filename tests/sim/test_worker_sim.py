"""Worker-plan construction tests: scheduling and actual-byte accounting."""

import numpy as np
import pytest

from repro.arch.heterogeneous import Architecture, WorkerGroup
from repro.sim.worker_sim import build_plans
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix
from tests.core.test_model import PROBLEM, cold_worker, hot_worker
from tests.core.test_partition import tiny_arch


@pytest.fixture()
def panel_matrix():
    """Two panels; panel 0 has tiles at cols 0,1 and panel 1 one tile."""
    rows = np.array([0, 1, 0, 5])
    cols = np.array([0, 1, 4, 2])
    m = SparseMatrix(8, 8, rows, cols)
    return TiledMatrix(m, 4, 4)


class TestScheduling:
    def test_hot_panel_affinity(self, panel_matrix):
        """All hot tiles of one panel land on the same hot instance (the
        scratchpad's panel state cannot be split)."""
        arch = tiny_arch(n_hot=2)
        hot_plans, _ = build_plans(
            arch, panel_matrix, np.ones(panel_matrix.n_tiles, dtype=bool)
        )
        seen_panels = {}
        for i, plan in enumerate(hot_plans):
            for chunk in plan.chunks:
                assert seen_panels.setdefault(chunk.panel, i) == i

    def test_cold_instances_never_share_output_rows(self):
        """Untiled workers are scheduled in row blocks: no two cold
        instances may touch the same Dout row (race freedom)."""
        rng = np.random.default_rng(8)
        m = SparseMatrix(64, 64, rng.integers(0, 64, 1500), rng.integers(0, 64, 1500))
        tiled = TiledMatrix(m, 8, 8)
        arch = tiny_arch(n_cold=4)
        _, cold_plans = build_plans(
            arch, tiled, np.zeros(tiled.n_tiles, dtype=bool), untiled_block_rows=2
        )
        # Recover each instance's row set through the block scheduler.
        from repro.sim.worker_sim import _balance, _work_units

        units = _work_units(tiled, np.ones(tiled.n_tiles, dtype=bool),
                            arch.cold.traits, 2)
        schedules = _balance(units, 4)
        row_owner = {}
        for i, sched in enumerate(schedules):
            for unit in sched:
                for row in np.unique(tiled.rows[unit.nnz_idx]).tolist():
                    assert row_owner.setdefault(row, i) == i

    def test_row_blocks_improve_balance_over_panels(self):
        """A single heavy panel no longer serializes on one instance."""
        # All nonzeros in one 8-row panel.
        rng = np.random.default_rng(9)
        m = SparseMatrix(64, 64, rng.integers(0, 8, 800), rng.integers(0, 64, 800))
        tiled = TiledMatrix(m, 8, 8)
        arch = tiny_arch(n_cold=4)
        _, cold_plans = build_plans(
            arch, tiled, np.zeros(tiled.n_tiles, dtype=bool), untiled_block_rows=2
        )
        assert len(cold_plans) >= 2  # the panel's rows spread across instances

    def test_load_balancing_by_nnz(self):
        """Panels spread across instances roughly evenly by nonzeros."""
        rng = np.random.default_rng(3)
        m = SparseMatrix(64, 64, rng.integers(0, 64, 2000), rng.integers(0, 64, 2000))
        tiled = TiledMatrix(m, 4, 4)
        arch = tiny_arch(n_cold=4)
        _, cold_plans = build_plans(arch, tiled, np.zeros(tiled.n_tiles, dtype=bool))
        loads = sorted(p.nnz_total for p in cold_plans)
        assert loads[-1] < 2.5 * max(loads[0], 1)

    def test_nnz_conserved_across_groups(self, panel_matrix):
        arch = tiny_arch(n_cold=2)
        assignment = np.zeros(panel_matrix.n_tiles, dtype=bool)
        assignment[0] = True
        hot_plans, cold_plans = build_plans(arch, panel_matrix, assignment)
        total = sum(p.nnz_total for p in hot_plans) + sum(p.nnz_total for p in cold_plans)
        assert total == panel_matrix.matrix.nnz

    def test_assignment_shape_check(self, panel_matrix):
        with pytest.raises(ValueError, match="assignment"):
            build_plans(tiny_arch(), panel_matrix, np.array([True]))

    def test_hot_tiles_without_hot_workers_rejected(self, panel_matrix):
        arch = tiny_arch(n_hot=0)
        with pytest.raises(ValueError, match="hot"):
            build_plans(arch, panel_matrix, np.ones(panel_matrix.n_tiles, dtype=bool))


class TestActualBytes:
    def test_cold_din_without_cache_charges_per_nnz(self, panel_matrix):
        arch = tiny_arch()
        arch = Architecture(
            name="nc",
            hot=arch.hot,
            cold=WorkerGroup(cold_worker(cache_bytes=0), 1),
            mem_bw_gbs=arch.mem_bw_gbs,
            problem=PROBLEM,
            tile_height=4,
            tile_width=4,
        )
        _, cold_plans = build_plans(
            arch, panel_matrix, np.zeros(panel_matrix.n_tiles, dtype=bool)
        )
        # Din traffic = nnz * 16 B; plus sparse 12 B/nnz; plus Dout demand
        # (unique rids per panel-chunk) * 2 * 16 B.
        plan = cold_plans[0]
        total_nnz = plan.nnz_total
        din = total_nnz * 16
        sparse = total_nnz * 12
        # Panel 0: rows {0, 1} across both tiles -> 2 unique; panel 1: 1.
        dout = (2 + 1) * 2 * 16
        assert plan.bytes_total == pytest.approx(din + sparse + dout)

    def test_cold_din_with_cache_reduces_traffic(self):
        """A repeated column pattern is cached; model-level NONE reuse
        would charge every nonzero."""
        rows = np.arange(16) % 4
        cols = np.zeros(16, dtype=np.int64)  # always column 0
        m = SparseMatrix(4, 4, np.repeat(np.arange(4), 1), cols[:4])
        m = SparseMatrix(4, 4, np.array([0, 1, 2, 3]), np.array([0, 0, 0, 0]))
        tiled = TiledMatrix(m, 4, 4)
        cached = tiny_arch()
        cached = Architecture(
            name="c",
            hot=cached.hot,
            cold=WorkerGroup(cold_worker(cache_bytes=64), 1),  # 4 rows of 16 B
            mem_bw_gbs=100.0,
            problem=PROBLEM,
            tile_height=4,
            tile_width=4,
        )
        _, plans = build_plans(cached, tiled, np.zeros(1, dtype=bool))
        # One miss + three hits -> 16 B of Din instead of 64 B.
        din_bytes = plans[0].bytes_total - 4 * 12 - 2 * 4 * 16
        assert din_bytes == pytest.approx(16.0)

    def test_hot_streams_tile_widths(self, panel_matrix):
        arch = tiny_arch()
        hot_plans, _ = build_plans(
            arch, panel_matrix, np.ones(panel_matrix.n_tiles, dtype=bool)
        )
        plan = hot_plans[0]
        # Din: 3 tiles * 4 rows * 16 B = 192.  Dout: stream-per-panel
        # (height 4 rows * 16 B read+write) per panel chunk = 2 * 128.
        # Sparse: 4 nnz * 12 B = 48.
        assert plan.bytes_total == pytest.approx(192 + 256 + 48)

    def test_phase_structure_follows_overlap_groups(self, panel_matrix):
        from repro.core.traits import OVERLAP_NONE

        arch = Architecture(
            name="p",
            hot=WorkerGroup(hot_worker(), 1),
            cold=WorkerGroup(cold_worker(overlap_groups=OVERLAP_NONE), 1),
            mem_bw_gbs=100.0,
            problem=PROBLEM,
            tile_height=4,
            tile_width=4,
        )
        _, cold_plans = build_plans(
            arch, panel_matrix, np.zeros(panel_matrix.n_tiles, dtype=bool)
        )
        # No overlap: each chunk splits into up to 5 single-task phases
        # (empty ones dropped).
        for chunk in cold_plans[0].chunks:
            assert 1 <= len(chunk.phases) <= 5
            compute_phases = [c for c, b in chunk.phases if c > 0]
            assert len(compute_phases) == 1

    def test_flops_accounting(self, panel_matrix):
        arch = tiny_arch()
        _, cold_plans = build_plans(
            arch, panel_matrix, np.zeros(panel_matrix.n_tiles, dtype=bool)
        )
        plan = cold_plans[0]
        assert plan.flops_total == pytest.approx(plan.nnz_total * PROBLEM.flops_per_nnz)
