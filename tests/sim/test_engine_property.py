"""Property-based invariants of the incremental fluid engine.

Three families, promised by the docstrings in :mod:`repro.sim.memory`
and pinned here with Hypothesis:

- conservation: the integral of the piecewise-constant bandwidth profile
  equals the bytes the plans drain (plus the merge pass at full
  bandwidth, when one runs),
- causality: every instance completes inside ``[0, makespan]``,
- memoization transparency: :class:`~repro.sim.memory.RateAllocator`
  returns bit-identical rates to a fresh
  :func:`~repro.sim.memory.allocate_rates` call for every demand mask,
  with and without a PCIe resource.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.configs import spade_sextans, spade_sextans_pcie
from repro.core.partition import ExecutionMode
from repro.sim.engine import _run_fluid, simulate
from repro.sim.memory import RateAllocator, allocate_rates
from repro.sim.worker_sim import build_plans
from repro.sparse import generators
from repro.sparse.tiling import TiledMatrix

ARCH = spade_sextans(4)
ARCH_PCIE = spade_sextans_pcie(4)


def _profile_integral(profile):
    """Bytes under a piecewise-constant (interval end, bytes/s) series."""
    total, prev = 0.0, 0.0
    for t, bw in profile:
        total += (t - prev) * bw
        prev = t
    return total


@st.composite
def sim_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    kind = draw(st.sampled_from(["rmat", "uniform", "banded"]))
    nnz = draw(st.integers(min_value=50, max_value=3_000))
    if kind == "rmat":
        matrix = generators.rmat(scale=8, nnz=nnz, seed=seed)
    elif kind == "uniform":
        matrix = generators.uniform_random(256, 256, nnz, seed=seed)
    else:
        matrix = generators.banded(256, nnz, bandwidth=16, seed=seed)
    frac = draw(st.floats(min_value=0.0, max_value=1.0))
    mode = draw(st.sampled_from([ExecutionMode.PARALLEL, ExecutionMode.SERIAL]))
    arch = draw(st.sampled_from([ARCH, ARCH_PCIE]))
    return matrix, frac, mode, arch, seed


def _assignment(tiled, frac, seed):
    rng = np.random.default_rng(seed)
    return rng.random(tiled.n_tiles) < frac


@settings(max_examples=25, deadline=None)
@given(case=sim_cases())
def test_bandwidth_profile_integral_equals_bytes_drained(case):
    """Every byte a plan drains shows up under the profile, exactly once."""
    matrix, frac, mode, arch, seed = case
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    assignment = _assignment(tiled, frac, seed)

    result = simulate(arch, tiled, assignment, mode)
    # SimResult.bytes_total excludes the merge pass; the profile includes
    # it as one interval at full memory bandwidth.
    merge_bytes = result.merge_time_s * arch.mem_bw_bytes_per_sec
    assert _profile_integral(result.bandwidth_profile) == pytest.approx(
        result.bytes_total + merge_bytes, rel=1e-9, abs=1e-6
    )


@settings(max_examples=25, deadline=None)
@given(case=sim_cases())
def test_completions_within_makespan(case):
    matrix, frac, mode, arch, seed = case
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    assignment = _assignment(tiled, frac, seed)

    hot_plans, cold_plans = build_plans(arch, tiled, assignment)
    plans = hot_plans + cold_plans
    makespan, completions, profile = _run_fluid(arch, plans)

    assert np.all(completions >= 0.0)
    assert np.all(completions <= makespan + 1e-12)
    # The raw fluid run (no merge) conserves bytes too.
    assert _profile_integral(profile) == pytest.approx(
        sum(p.bytes_total for p in plans), rel=1e-9, abs=1e-6
    )


@st.composite
def allocator_cases(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    max_rates = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    bw = draw(st.floats(min_value=1.0, max_value=300.0, allow_nan=False))
    with_pcie = draw(st.booleans())
    pcie_members = None
    pcie_bw = None
    if with_pcie:
        pcie_members = np.array(
            draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
        )
        pcie_bw = draw(st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
    masks = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n, max_size=n),
            min_size=1,
            max_size=6,
        )
    )
    return max_rates, bw, pcie_members, pcie_bw, masks


@settings(max_examples=150, deadline=None)
@given(case=allocator_cases())
def test_rate_allocator_memoization_is_transparent(case):
    """Memoized rates are bit-identical to a fresh water-filling, on the
    first query and on repeats, with and without the PCIe resource."""
    max_rates, bw, pcie_members, pcie_bw, masks = case
    allocator = RateAllocator(max_rates, bw, pcie_members, pcie_bw)

    for mask_list in masks + masks:  # second pass exercises memo hits
        demand = np.array(mask_list, dtype=bool)
        rates = allocator.rates(demand)
        fresh = allocate_rates(
            np.where(demand, max_rates, 0.0), bw, pcie_members, pcie_bw
        )
        assert np.array_equal(rates, fresh)  # exact, not approx
        total = allocator.rates_for_key(allocator.mask_key(demand))[1]
        assert total == float(fresh.sum())
