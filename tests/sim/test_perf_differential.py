"""Optimized plan builder / engine vs the frozen pre-optimization copy.

The vectorized ``build_plans`` and the incremental fluid engine must be
*bit-identical* to the per-tile-Python-loop / full-recompute originals
frozen in :mod:`repro.sim._reference` -- every plan field, every phase
tuple, every ``SimResult`` field, with tracing enabled and disabled.
Exact ``==`` throughout, no tolerances: the optimizations were chosen so
that every floating-point reduction associates identically.
"""

import numpy as np
import pytest

from repro.arch.configs import spade_sextans_pcie
from repro.core.partition import ExecutionMode
from repro.obs import Tracer, use_tracer
from repro.sim._reference import build_plans_reference, simulate_reference
from repro.sim.engine import simulate
from repro.sim.worker_sim import build_plans
from repro.sparse.tiling import TiledMatrix

MATRIX_FIXTURES = ["tiny_matrix", "small_rmat", "small_uniform", "small_banded"]
ASSIGNMENT_FRACS = [0.0, 0.3, 1.0]


@pytest.fixture(scope="session")
def pcie_arch():
    return spade_sextans_pcie(4)


ARCH_FIXTURES = ["spade_sextans_arch", "piuma_arch", "pcie_arch"]


def _assignment(tiled, frac, seed=5):
    if frac == 0.0:
        return np.zeros(tiled.n_tiles, dtype=bool)
    if frac == 1.0:
        return np.ones(tiled.n_tiles, dtype=bool)
    rng = np.random.default_rng(seed)
    return rng.random(tiled.n_tiles) < frac


def _assert_plans_identical(new_plans, ref_plans):
    assert len(new_plans) == len(ref_plans)
    for new, ref in zip(new_plans, ref_plans):
        assert new.kind == ref.kind
        assert new.traits is ref.traits or new.traits == ref.traits
        assert new.nnz_total == ref.nnz_total
        assert new.flops_total == ref.flops_total
        assert new.bytes_total == ref.bytes_total
        assert len(new.chunks) == len(ref.chunks)
        for nc, rc in zip(new.chunks, ref.chunks):
            assert nc.panel == rc.panel
            assert nc.nnz == rc.nnz
            assert nc.bytes_total == rc.bytes_total
            assert nc.phases == rc.phases  # exact tuple-by-tuple equality


def _assert_results_identical(new, ref):
    assert new.time_s == ref.time_s
    assert new.merge_time_s == ref.merge_time_s
    assert new.mode == ref.mode
    assert new.hot == ref.hot
    assert new.cold == ref.cold
    assert new.bandwidth_profile == ref.bandwidth_profile


@pytest.mark.parametrize("frac", ASSIGNMENT_FRACS)
@pytest.mark.parametrize("arch_fixture", ARCH_FIXTURES)
@pytest.mark.parametrize("fixture", MATRIX_FIXTURES)
def test_build_plans_bit_identical(fixture, arch_fixture, frac, request):
    matrix = request.getfixturevalue(fixture)
    arch = request.getfixturevalue(arch_fixture)
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    assignment = _assignment(tiled, frac)

    new_hot, new_cold = build_plans(arch, tiled, assignment)
    ref_hot, ref_cold = build_plans_reference(arch, tiled, assignment)
    _assert_plans_identical(new_hot, ref_hot)
    _assert_plans_identical(new_cold, ref_cold)


@pytest.mark.parametrize("mode", [ExecutionMode.PARALLEL, ExecutionMode.SERIAL])
@pytest.mark.parametrize("arch_fixture", ARCH_FIXTURES)
@pytest.mark.parametrize("fixture", MATRIX_FIXTURES)
def test_simulate_bit_identical(fixture, arch_fixture, mode, request):
    matrix = request.getfixturevalue(fixture)
    arch = request.getfixturevalue(arch_fixture)
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    assignment = _assignment(tiled, 0.3)

    new = simulate(arch, tiled, assignment, mode)
    ref = simulate_reference(arch, tiled, assignment, mode)
    _assert_results_identical(new, ref)


@pytest.mark.parametrize("fixture", MATRIX_FIXTURES)
def test_simulate_bit_identical_with_tracing(fixture, request, spade_sextans_arch):
    """The reference has no tracing hooks; the live engine with tracing
    enabled must still match it exactly."""
    matrix = request.getfixturevalue(fixture)
    arch = spade_sextans_arch
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    assignment = _assignment(tiled, 0.3)

    ref = simulate_reference(arch, tiled, assignment, ExecutionMode.PARALLEL)
    with use_tracer(Tracer(enabled=True)) as tracer:
        traced = simulate(arch, tiled, assignment, ExecutionMode.PARALLEL)
    assert len(tracer) > 0
    _assert_results_identical(traced, ref)


@pytest.mark.parametrize("block_rows", [16, 64])
def test_untiled_block_override_bit_identical(
    small_rmat, spade_sextans_arch, block_rows
):
    """The untiled-worker row-block override goes through the vectorized
    sort-free path; pin it against the reference too."""
    arch = spade_sextans_arch
    tiled = TiledMatrix(small_rmat, arch.tile_height, arch.tile_width)
    assignment = _assignment(tiled, 0.3)

    new = simulate(
        arch, tiled, assignment, ExecutionMode.PARALLEL, untiled_block_rows=block_rows
    )
    ref = simulate_reference(
        arch, tiled, assignment, ExecutionMode.PARALLEL, untiled_block_rows=block_rows
    )
    _assert_results_identical(new, ref)
