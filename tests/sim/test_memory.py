"""Max-min fair bandwidth allocation tests."""

import numpy as np
import pytest

from repro.sim.memory import allocate_rates


class TestBasicAllocation:
    def test_single_user_gets_min_of_cap_and_bw(self):
        assert allocate_rates(np.array([50.0]), 100.0)[0] == pytest.approx(50.0)
        assert allocate_rates(np.array([150.0]), 100.0)[0] == pytest.approx(100.0)

    def test_idle_users_get_nothing(self):
        rates = allocate_rates(np.array([0.0, 40.0]), 100.0)
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(40.0)

    def test_equal_split_under_contention(self):
        rates = allocate_rates(np.array([100.0, 100.0]), 100.0)
        np.testing.assert_allclose(rates, [50.0, 50.0])

    def test_conservation(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            caps = rng.random(8) * 40
            rates = allocate_rates(caps, 100.0)
            assert rates.sum() <= 100.0 + 1e-6
            assert np.all(rates <= caps + 1e-9)

    def test_no_contention_all_satisfied(self):
        caps = np.array([10.0, 20.0, 30.0])
        np.testing.assert_allclose(allocate_rates(caps, 100.0), caps)

    def test_max_min_fairness_property(self):
        """Small users are fully satisfied; big users split the rest."""
        caps = np.array([10.0, 80.0, 80.0])
        rates = allocate_rates(caps, 100.0)
        np.testing.assert_allclose(rates, [10.0, 45.0, 45.0])

    def test_full_bandwidth_used_when_demanded(self):
        rates = allocate_rates(np.array([70.0, 70.0, 70.0]), 100.0)
        assert rates.sum() == pytest.approx(100.0)


class TestPcie:
    def test_pcie_caps_members_only(self):
        caps = np.array([50.0, 50.0])
        pcie = np.array([True, False])
        rates = allocate_rates(caps, 200.0, pcie, 20.0)
        assert rates[0] == pytest.approx(20.0)
        assert rates[1] == pytest.approx(50.0)

    def test_pcie_shared_among_members(self):
        caps = np.array([50.0, 50.0, 50.0])
        pcie = np.array([True, True, False])
        rates = allocate_rates(caps, 200.0, pcie, 20.0)
        np.testing.assert_allclose(rates[:2], [10.0, 10.0])
        assert rates[2] == pytest.approx(50.0)

    def test_pcie_requires_bandwidth(self):
        with pytest.raises(ValueError, match="pcie"):
            allocate_rates(np.array([1.0]), 10.0, np.array([True]), None)

    def test_main_bw_still_binds_with_pcie(self):
        caps = np.array([100.0, 100.0])
        pcie = np.array([True, False])
        rates = allocate_rates(caps, 60.0, pcie, 50.0)
        assert rates.sum() <= 60.0 + 1e-9


class TestTieDetection:
    """Regression: resource ties must be detected with a *relative*
    tolerance.  Bandwidths are bytes/s of order 1e10-1e11 where float
    rounding noise is ~1e-5 absolute, so the old absolute 1e-18 epsilon
    could never fire and one of two simultaneously-exhausted resources
    went uncounted as limiting."""

    def test_dram_pcie_tie_up_to_float_noise(self):
        # Three equal users; DRAM exhausts at a fair share of exactly
        # s = bw/3, and the PCIe link in front of user 2 exhausts at
        # s * (1 - 1e-13) -- equal to the DRAM headroom up to float
        # noise (1e-3 B/s at this scale), but 9 orders of magnitude
        # above any real configuration difference.
        s = 1e10
        caps = np.array([2 * s, 2 * s, 2 * s])
        pcie = np.array([False, False, True])
        rates = allocate_rates(caps, 3 * s, pcie, s * (1.0 - 1e-13))
        # Max-min fairness demands all three rise and freeze together at
        # the tied fair share.  Without tie detection only the PCIe user
        # froze in round one and the other two scooped up its leftover
        # noise, splitting the allegedly fair rates.
        assert rates[0] == rates[1] == rates[2]
        assert rates[0] == pytest.approx(s, rel=1e-9)
        assert rates.sum() <= 3 * s * (1 + 1e-9)

    def test_exact_tie_still_detected(self):
        # Both resources exhaust at exactly the same fair share.
        caps = np.array([100.0, 100.0])
        pcie = np.array([True, False])
        rates = allocate_rates(caps, 100.0, pcie, 50.0)
        np.testing.assert_allclose(rates, [50.0, 50.0])

    def test_near_cap_freeze_is_relative(self):
        # A user whose cap equals its allocation up to relative noise
        # must freeze rather than spin with absolute-epsilon increments.
        cap = 1e11 * (1.0 + 1e-13)
        rates = allocate_rates(np.array([cap]), 1e11)
        assert rates[0] == pytest.approx(1e11, rel=1e-9)


class TestValidation:
    def test_negative_caps_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            allocate_rates(np.array([-1.0]), 10.0)

    def test_zero_bw_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            allocate_rates(np.array([1.0]), 0.0)

    def test_2d_caps_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            allocate_rates(np.ones((2, 2)), 10.0)

    def test_empty(self):
        assert allocate_rates(np.zeros(0), 10.0).shape == (0,)
