"""Max-min fair bandwidth allocation tests."""

import numpy as np
import pytest

from repro.sim.memory import allocate_rates


class TestBasicAllocation:
    def test_single_user_gets_min_of_cap_and_bw(self):
        assert allocate_rates(np.array([50.0]), 100.0)[0] == pytest.approx(50.0)
        assert allocate_rates(np.array([150.0]), 100.0)[0] == pytest.approx(100.0)

    def test_idle_users_get_nothing(self):
        rates = allocate_rates(np.array([0.0, 40.0]), 100.0)
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(40.0)

    def test_equal_split_under_contention(self):
        rates = allocate_rates(np.array([100.0, 100.0]), 100.0)
        np.testing.assert_allclose(rates, [50.0, 50.0])

    def test_conservation(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            caps = rng.random(8) * 40
            rates = allocate_rates(caps, 100.0)
            assert rates.sum() <= 100.0 + 1e-6
            assert np.all(rates <= caps + 1e-9)

    def test_no_contention_all_satisfied(self):
        caps = np.array([10.0, 20.0, 30.0])
        np.testing.assert_allclose(allocate_rates(caps, 100.0), caps)

    def test_max_min_fairness_property(self):
        """Small users are fully satisfied; big users split the rest."""
        caps = np.array([10.0, 80.0, 80.0])
        rates = allocate_rates(caps, 100.0)
        np.testing.assert_allclose(rates, [10.0, 45.0, 45.0])

    def test_full_bandwidth_used_when_demanded(self):
        rates = allocate_rates(np.array([70.0, 70.0, 70.0]), 100.0)
        assert rates.sum() == pytest.approx(100.0)


class TestPcie:
    def test_pcie_caps_members_only(self):
        caps = np.array([50.0, 50.0])
        pcie = np.array([True, False])
        rates = allocate_rates(caps, 200.0, pcie, 20.0)
        assert rates[0] == pytest.approx(20.0)
        assert rates[1] == pytest.approx(50.0)

    def test_pcie_shared_among_members(self):
        caps = np.array([50.0, 50.0, 50.0])
        pcie = np.array([True, True, False])
        rates = allocate_rates(caps, 200.0, pcie, 20.0)
        np.testing.assert_allclose(rates[:2], [10.0, 10.0])
        assert rates[2] == pytest.approx(50.0)

    def test_pcie_requires_bandwidth(self):
        with pytest.raises(ValueError, match="pcie"):
            allocate_rates(np.array([1.0]), 10.0, np.array([True]), None)

    def test_main_bw_still_binds_with_pcie(self):
        caps = np.array([100.0, 100.0])
        pcie = np.array([True, False])
        rates = allocate_rates(caps, 60.0, pcie, 50.0)
        assert rates.sum() <= 60.0 + 1e-9


class TestValidation:
    def test_negative_caps_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            allocate_rates(np.array([-1.0]), 10.0)

    def test_zero_bw_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            allocate_rates(np.array([1.0]), 0.0)

    def test_2d_caps_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            allocate_rates(np.ones((2, 2)), 10.0)

    def test_empty(self):
        assert allocate_rates(np.zeros(0), 10.0).shape == (0,)
