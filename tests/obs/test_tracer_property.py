"""Property-based tests of the tracer and its Chrome-trace exporter.

Three pinned invariants (ISSUE satellite):

1. spans on one thread nest properly -- a recorded span's interval is
   either disjoint from or fully contained in every ancestor's, and the
   recorded paths are consistent with containment;
2. exporter output survives ``json.dumps``/``json.loads`` and timestamps
   are monotonically nondecreasing within every (pid, tid) track;
3. tracing-enabled and tracing-disabled simulations produce identical
   ``SimResult``s.
"""

import itertools
import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Tracer, chrome_trace, use_tracer
from repro.obs.tracer import SIM


# ----------------------------------------------------------------------
# Random span forests executed through the context-manager API
# ----------------------------------------------------------------------
span_forests = st.recursive(
    st.just([]),
    lambda children: st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "d"]), children), max_size=4
    ),
    max_leaves=20,
)


def _run_forest(tracer, forest):
    for name, children in forest:
        with tracer.span(name):
            _run_forest(tracer, children)


def _count(forest):
    return sum(1 + _count(children) for _, children in forest)


@given(forest=span_forests)
@settings(max_examples=80, deadline=None)
def test_spans_nest_and_never_overlap_on_one_thread(forest):
    counter = itertools.count()
    tracer = Tracer(clock=lambda: float(next(counter)))
    _run_forest(tracer, forest)
    spans = tracer.spans()
    assert len(spans) == _count(forest)
    for i, a in enumerate(spans):
        assert a.dur >= 0
        for b in spans[i + 1 :]:
            # Single-thread stack discipline: any two spans are either
            # disjoint in time or one contains the other -- never a
            # partial overlap.
            disjoint = a.end <= b.ts or b.end <= a.ts
            a_in_b = b.ts <= a.ts and a.end <= b.end
            b_in_a = a.ts <= b.ts and b.end <= a.end
            assert disjoint or a_in_b or b_in_a
    # Every non-root span's parent is the first later-closing span whose
    # path is the child's path minus the leaf (spans close in post-order,
    # so that span is the actual enclosing one) and it must contain the
    # child's interval.
    for i, child in enumerate(spans):
        if len(child.path) == 1:
            continue
        parent = next(
            s for s in spans[i + 1 :] if s.path == child.path[:-1]
        )
        assert parent.ts <= child.ts
        assert child.end <= parent.end


@given(forest=span_forests, data=st.data())
@settings(max_examples=60, deadline=None)
def test_exporter_json_and_monotone_ts_per_track(forest, data):
    counter = itertools.count()
    tracer = Tracer(clock=lambda: float(next(counter)))
    _run_forest(tracer, forest)
    # Sprinkle virtual-time records across a couple of sim tracks.
    n_extra = data.draw(st.integers(min_value=0, max_value=8))
    for i in range(n_extra):
        ts = data.draw(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
        )
        track = data.draw(st.sampled_from(["hot-0", "memory"]))
        if data.draw(st.booleans()):
            tracer.complete(f"chunk{i}", ts=ts, dur=0.5, process=SIM, track=track)
        else:
            tracer.counter("bandwidth", float(i), ts=ts, process=SIM, track=track)

    trace = chrome_trace(tracer)
    decoded = json.loads(json.dumps(trace))
    assert decoded == trace
    assert isinstance(decoded["traceEvents"], list)

    last = {}
    for event in decoded["traceEvents"]:
        if event["ph"] == "M":
            continue
        key = (event["pid"], event["tid"])
        assert event["ts"] >= last.get(key, float("-inf"))
        last[key] = event["ts"]


# ----------------------------------------------------------------------
# Tracing must not perturb the simulation
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    serial=st.booleans(),
)
@settings(max_examples=8, deadline=None)
def test_enabled_vs_disabled_simresults_identical(seed, serial):
    from repro.core.partition import ExecutionMode
    from repro.sim.engine import simulate
    from repro.sparse import generators
    from repro.sparse.tiling import TiledMatrix
    from tests.core.test_partition import tiny_arch

    matrix = generators.uniform_random(32, 32, 120, seed=seed)
    arch = tiny_arch()
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    rng = np.random.default_rng(seed)
    assignment = rng.random(tiled.n_tiles) < 0.5
    mode = ExecutionMode.SERIAL if serial else ExecutionMode.PARALLEL

    plain = simulate(arch, tiled, assignment, mode)
    with use_tracer(Tracer(enabled=True)) as tracer:
        traced = simulate(arch, tiled, assignment, mode)
    assert len(tracer) > 0  # tracing actually happened

    assert traced.time_s == plain.time_s
    assert traced.merge_time_s == plain.merge_time_s
    assert traced.hot == plain.hot
    assert traced.cold == plain.cold
    assert traced.bandwidth_profile == plain.bandwidth_profile
