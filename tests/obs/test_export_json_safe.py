"""Regression tests for ``_json_safe``: multi-element ndarrays used to fall
through ``.item()`` (which raises for size > 1) and export a truncated
``str(...)`` repr instead of their elements.
"""

import json

import numpy as np
import pytest

from repro.obs.export import _MAX_ARRAY_ELEMENTS, _json_safe, chrome_trace
from repro.obs.tracer import Tracer


class TestArrays:
    def test_multi_element_array_exports_elements(self):
        out = _json_safe(np.array([1.5, 2.5, 3.5]))
        assert out == [1.5, 2.5, 3.5]
        assert all(isinstance(v, float) for v in out)

    def test_integer_array(self):
        assert _json_safe(np.arange(4, dtype=np.int64)) == [0, 1, 2, 3]

    def test_2d_array_nested_lists(self):
        assert _json_safe(np.ones((2, 3))) == [[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]]

    def test_size_one_array_and_scalars(self):
        assert _json_safe(np.array([7.0])) == [7.0]
        assert _json_safe(np.float64(2.5)) == 2.5
        assert _json_safe(np.int32(3)) == 3
        assert _json_safe(np.bool_(True)) is True

    def test_oversized_array_summarized(self):
        big = np.zeros(_MAX_ARRAY_ELEMENTS + 1)
        out = _json_safe(big)
        assert isinstance(out, str)
        assert f"shape=({_MAX_ARRAY_ELEMENTS + 1},)" in out
        assert "float64" in out

    def test_boundary_size_still_exports_elements(self):
        exact = np.zeros(_MAX_ARRAY_ELEMENTS)
        assert _json_safe(exact) == [0.0] * _MAX_ARRAY_ELEMENTS


class TestContainers:
    def test_nested_dict_with_arrays(self):
        out = _json_safe({"frac": np.array([0.25, 0.75]), "n": np.int64(2)})
        assert out == {"frac": [0.25, 0.75], "n": 2}
        json.dumps(out)  # round-trippable

    def test_tuple_of_arrays(self):
        out = _json_safe((np.array([1, 2]), "label"))
        assert out == [[1, 2], "label"]

    def test_opaque_object_falls_back_to_str(self):
        class Widget:
            def __repr__(self):
                return "Widget()"

        assert _json_safe(Widget()) == "Widget()"


class TestChromeTraceIntegration:
    def test_span_with_ndarray_arg_serializes(self):
        tracer = Tracer()
        with tracer.span("work", rates=np.array([1.0, 2.0, 4.0])):
            pass
        tracer.event("tick", big=np.zeros(1000), small=np.arange(3))
        payload = chrome_trace(tracer)
        text = json.dumps(payload)  # must not raise
        assert "[1.0, 2.0, 4.0]" in text.replace('"', "")
        assert "ndarray(shape=(1000,)" in text
