"""Unit tests of the span tracer core."""

import itertools
import json
import threading

import pytest

from repro.obs import (
    SIM,
    Tracer,
    chrome_trace,
    flamegraph_summary,
    get_tracer,
    save_chrome_trace,
    set_tracer,
    span_tree,
    use_tracer,
)
from repro.obs.tracer import CounterRecord, EventRecord, SpanRecord


def fake_clock(step=1.0):
    """A deterministic monotonic clock advancing ``step`` per call."""
    counter = itertools.count()
    return lambda: next(counter) * step


class TestSpans:
    def test_nested_spans_record_paths(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        spans = tr.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # exit order
        assert spans[0].path == ("outer", "inner")
        assert spans[1].path == ("outer",)

    def test_span_timestamps_use_injected_clock(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("a"):
            pass
        (span,) = tr.spans()
        # epoch=0, enter=1, exit=2 with the unit-step clock
        assert span.ts == pytest.approx(1.0)
        assert span.dur == pytest.approx(1.0)

    def test_span_args_and_set(self):
        tr = Tracer()
        with tr.span("a", color="red") as sp:
            sp.set(outcome="done", color="blue")
        (span,) = tr.spans()
        assert span.args == {"color": "blue", "outcome": "done"}

    def test_span_recorded_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("broken"):
                raise RuntimeError("boom")
        assert [s.name for s in tr.spans()] == ["broken"]
        # The nesting stack is unwound: a new span is a root again.
        with tr.span("after"):
            pass
        assert tr.spans()[-1].path == ("after",)

    def test_complete_records_virtual_time(self):
        tr = Tracer()
        tr.complete("chunk0", ts=1.5, dur=0.5, process=SIM, track="hot-0", nnz=7)
        (span,) = tr.spans()
        assert (span.ts, span.dur, span.process, span.track) == (1.5, 0.5, SIM, "hot-0")
        assert span.args == {"nnz": 7}
        assert span.end == pytest.approx(2.0)

    def test_events_and_counters(self):
        tr = Tracer(clock=fake_clock())
        tr.event("hit", key="abc")
        tr.counter("bandwidth", 42.0, ts=0.25)
        events, counters = tr.events(), tr.counters()
        assert events[0].name == "hit" and events[0].args == {"key": "abc"}
        assert counters[0].value == 42.0 and counters[0].ts == 0.25

    def test_clear_and_len(self):
        tr = Tracer()
        tr.event("x")
        assert len(tr) == 1
        tr.clear()
        assert len(tr) == 0

    def test_empty_tracer_is_truthy(self):
        # ``__len__`` alone would make an empty tracer falsy, silently
        # breaking ``tracer or fallback`` guards in instrumented code.
        assert bool(Tracer())
        assert bool(Tracer(enabled=False))


class TestDisabled:
    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.span("a", k=1) as sp:
            sp.set(more=2)
            tr.event("e")
            tr.counter("c", 1.0)
            tr.complete("x", ts=0.0, dur=1.0)
        assert len(tr) == 0

    def test_disabled_span_is_shared_singleton(self):
        tr = Tracer(enabled=False)
        assert tr.span("a") is tr.span("b")

    def test_global_tracer_disabled_by_default(self):
        assert get_tracer().enabled is False

    def test_use_tracer_restores_previous(self):
        original = get_tracer()
        scoped = Tracer()
        with use_tracer(scoped) as active:
            assert active is scoped
            assert get_tracer() is scoped
        assert get_tracer() is original

    def test_set_tracer_returns_previous(self):
        original = get_tracer()
        mine = Tracer(enabled=False)
        previous = set_tracer(mine)
        try:
            assert previous is original
            assert get_tracer() is mine
        finally:
            set_tracer(original)


class TestThreading:
    def test_threads_get_independent_stacks_and_tracks(self):
        tr = Tracer()
        barrier = threading.Barrier(2)

        def work(label):
            with tr.span(label):
                barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",), name=f"worker-{i}")
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tr.spans()
        assert {s.track for s in spans} == {"worker-0", "worker-1"}
        # Each span is a root on its own thread: never nested cross-thread.
        assert all(len(s.path) == 1 for s in spans)


class TestExport:
    def build(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("outer", cat="test"):
            with tr.span("inner"):
                pass
        tr.complete("chunk0", ts=0.0, dur=1e-3, process=SIM, track="hot-0")
        tr.event("rebalance", ts=0.5, process=SIM, track="memory", active=2)
        tr.counter("bandwidth", 1e9, ts=0.5, process=SIM, track="memory")
        return tr

    def test_chrome_trace_shape(self):
        trace = chrome_trace(self.build())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases == {"M", "X", "i", "C"}
        # Metadata names every process and track.
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"wall", "sim", "hot-0", "memory"} <= names

    def test_timestamps_exported_in_microseconds(self):
        trace = chrome_trace(self.build())
        chunk = next(
            e for e in trace["traceEvents"] if e.get("name") == "chunk0"
        )
        assert chunk["dur"] == pytest.approx(1e-3 * 1e6)

    def test_json_roundtrip(self):
        trace = chrome_trace(self.build())
        assert json.loads(json.dumps(trace)) == trace

    def test_numpy_args_coerced(self):
        import numpy as np

        tr = Tracer()
        tr.event("e", value=np.float64(1.5), count=np.int64(3), arr=(np.int32(1),))
        trace = chrome_trace(tr)
        event = next(e for e in trace["traceEvents"] if e.get("name") == "e")
        assert event["args"] == {"value": 1.5, "count": 3, "arr": [1]}
        json.dumps(trace)

    def test_save_chrome_trace_atomic(self, tmp_path):
        path = tmp_path / "sub" / "trace.json"
        saved = save_chrome_trace(self.build(), str(path))
        assert saved == str(path)
        data = json.loads(path.read_text())
        assert data["traceEvents"]
        assert not list(path.parent.glob("*.tmp"))

    def test_span_tree_structure(self):
        tree = span_tree(self.build())
        wall_tracks = tree["wall"]
        (roots,) = wall_tracks.values()
        assert roots == [
            {"name": "outer", "children": [{"name": "inner", "children": []}]}
        ]
        assert tree["sim"]["hot-0"] == [{"name": "chunk0", "children": []}]

    def test_span_tree_sibling_order_preserved(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("first"):
                pass
            with tr.span("second"):
                pass
        tree = span_tree(tr)
        (roots,) = tree["wall"].values()
        assert [c["name"] for c in roots[0]["children"]] == ["first", "second"]


class TestSummary:
    def test_summary_mentions_spans_counters_events(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        tr.counter("bandwidth", 2.0, ts=0.0)
        tr.counter("bandwidth", 4.0, ts=1.0)
        tr.event("hit")
        text = flamegraph_summary(tr)
        assert "outer" in text and "inner" in text
        assert "bandwidth" in text and "2 samples" in text
        assert "hit x1" in text

    def test_summary_empty(self):
        assert flamegraph_summary(Tracer()) == "(no records)"

    def test_record_types_are_frozen(self):
        span = SpanRecord("a", "wall", "t", 0.0, 1.0, ("a",))
        with pytest.raises(AttributeError):
            span.name = "b"
        event = EventRecord("e", "wall", "t", 0.0)
        with pytest.raises(AttributeError):
            event.ts = 1.0
        counter = CounterRecord("c", "sim", "m", 0.0, 1.0)
        with pytest.raises(AttributeError):
            counter.value = 2.0
