"""End-to-end cluster tests: real shard subprocesses behind the router.

One module-scoped 2-shard cluster serves most tests (spawning
interpreters is the slow part); the drain test builds its own 1-shard
cluster because draining is terminal for the shard.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster.manager import ClusterManager

RMAT = {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": 0}}
DELTA = {
    "insert_rows": [0, 1],
    "insert_cols": [0, 1],
    "insert_vals": [1.5, 2.5],
    "delete_rows": [],
    "delete_cols": [],
}


def payload_for(seed):
    return {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": seed}}


def http(base, path, payload=None, timeout=60.0):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        base + path,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data else "GET",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, json.loads(body) if body else {}, dict(exc.headers or {})


def http_retrying(base, path, payload=None, deadline_s=30.0):
    """Retry 503 + Retry-After (and transport blips) like loadgen does."""
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            status, body, headers = http(base, path, payload)
        except (urllib.error.URLError, OSError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)
            continue
        if status in (429, 503) and time.monotonic() < deadline:
            time.sleep(min(float(headers.get("Retry-After", 0.2)), 1.0))
            continue
        return status, body, headers


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    store = tmp_path_factory.mktemp("cluster-store")
    with ClusterManager(shards=2, store_dir=str(store)) as manager:
        yield manager


class TestRoutingAndServing:
    def test_healthz_reports_all_shards_up(self, cluster):
        status, body, _ = http(cluster.base_url, "/healthz")
        assert status == 200
        assert body["shards_up"] == 2 and body["shards_total"] == 2

    def test_ephemeral_ports_are_real_and_distinct(self, cluster):
        desc = cluster.describe()
        ports = [row["port"] for row in desc["shards"]]
        assert all(p > 0 for p in ports)
        assert len(set(ports)) == len(ports)
        assert cluster.bound_port > 0

    def test_repeat_digest_routes_to_same_shard(self, cluster):
        _, first, h1 = http(cluster.base_url, "/plan", RMAT)
        _, second, h2 = http(cluster.base_url, "/plan", RMAT)
        assert h1["X-Hottiles-Shard"] == h2["X-Hottiles-Shard"]
        # The repeat is shard-local cache/store traffic, not recomputed.
        assert second["served"] in ("store", "cache", "coalesced")
        assert first["plan"]["digest"] == second["plan"]["digest"]

    def test_distinct_digests_spread_across_shards(self, cluster):
        shards = set()
        for seed in range(8):
            _, _, headers = http(cluster.base_url, "/plan", payload_for(seed))
            shards.add(headers["X-Hottiles-Shard"])
        assert len(shards) == 2

    def test_get_plan_roundtrip(self, cluster):
        _, body, _ = http(cluster.base_url, "/plan", RMAT)
        digest = body["plan"]["digest"]
        status, got, _ = http(cluster.base_url, f"/plan/{digest}")
        assert status == 200
        assert got["plan"]["digest"] == digest

    def test_bad_plan_request_is_400(self, cluster):
        status, body, _ = http(cluster.base_url, "/plan", {"arch": "nope", "matrix": "m"})
        assert status == 400
        assert "unknown arch" in body["error"]

    def test_unknown_endpoint_is_404(self, cluster):
        status, _, _ = http(cluster.base_url, "/no/such/path")
        assert status == 404


class TestLineageAffinity:
    def test_delta_chain_stays_on_one_shard(self, cluster):
        _, body, h0 = http(cluster.base_url, "/plan", payload_for(100))
        digest = body["plan"]["digest"]
        owner = h0["X-Hottiles-Shard"]
        status, first, h1 = http(
            cluster.base_url, f"/matrices/{digest}/delta", DELTA
        )
        assert status == 200
        assert h1["X-Hottiles-Shard"] == owner
        head = first["applied"]["new_digest"]
        # The advanced head hashes anywhere on the ring; affinity must
        # still pin it to the shard holding the lineage.
        status2, second, h2 = http(
            cluster.base_url,
            f"/matrices/{head}/delta",
            {"delete_rows": [0], "delete_cols": [0]},
        )
        assert status2 == 200
        assert h2["X-Hottiles-Shard"] == owner

    def test_stale_head_is_409_with_pointer(self, cluster):
        _, body, _ = http(cluster.base_url, "/plan", payload_for(101))
        digest = body["plan"]["digest"]
        _, first, _ = http(cluster.base_url, f"/matrices/{digest}/delta", DELTA)
        status, resp, _ = http(cluster.base_url, f"/matrices/{digest}/delta", DELTA)
        assert status == 409
        assert resp["head_digest"] == first["applied"]["new_digest"]


class TestStatsAggregation:
    def test_merged_stats_have_single_process_shape(self, cluster):
        for seed in range(4):
            http(cluster.base_url, "/plan", payload_for(seed))
        status, stats, _ = http(cluster.base_url, "/stats")
        assert status == 200
        counters = stats["counters"]
        assert counters["requests_accepted"] >= 4
        # The merged snapshot keeps the single-process keys so existing
        # consumers (loadgen reconciliation) work unchanged.
        for key in ("counters", "gauges", "histograms", "store", "lineages",
                    "uptime_s", "server"):
            assert key in stats
        assert stats["server"]["port"] == cluster.bound_port

    def test_merged_counters_are_sums_of_shard_counters(self, cluster):
        status, stats, _ = http(cluster.base_url, "/stats")
        assert status == 200
        detail = stats["cluster"]["shards"]
        assert [row["shard"] for row in detail] == [0, 1]
        per_shard = sum(
            row["counters"].get("requests_accepted", 0) for row in detail
        )
        assert stats["counters"]["requests_accepted"] == per_shard

    def test_merged_latency_histogram_covers_all_shards(self, cluster):
        status, stats, _ = http(cluster.base_url, "/stats")
        hist = stats["histograms"].get("request_latency_s")
        assert hist is not None and hist["count"] >= 1
        assert hist["p99"] >= hist["p50"] >= 0.0


class TestChaosRestart:
    def test_killed_shard_restarts_and_requests_resolve(self, cluster):
        pid_before = cluster.shard_pid(0)
        cluster.kill_shard(0)
        # Every request during the outage resolves to an HTTP status;
        # 503 + Retry-After invites the retry that eventually succeeds.
        status, body, _ = http_retrying(
            cluster.base_url, "/plan", payload_for(200), deadline_s=30.0
        )
        assert status == 200
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, health, _ = http(cluster.base_url, "/healthz")
            if status == 200 and health["shards_up"] == 2:
                break
            time.sleep(0.2)
        assert health["shards_up"] == 2
        assert cluster.shard_pid(0) != pid_before
        assert cluster.describe()["shards"][0]["restarts"] >= 1

    def test_down_shard_answers_503_with_retry_after_not_a_drop(self, cluster):
        cluster.router.mark_down(0)
        cluster.router.mark_down(1)
        try:
            # Both owners down: the router itself must answer, not hang
            # up -- no shard connection is even attempted.
            status, body, headers = http(cluster.base_url, "/plan", payload_for(201))
            assert status == 503
            assert "Retry-After" in headers
            assert body["retry_after_s"] > 0
        finally:
            cluster.router.mark_up(0)
            cluster.router.mark_up(1)


class TestDrain:
    def test_delta_during_drain_is_503_and_head_is_not_half_advanced(
        self, tmp_path
    ):
        with ClusterManager(shards=1, store_dir=str(tmp_path / "store")) as mgr:
            base = mgr.base_url
            _, body, _ = http(base, "/plan", RMAT)
            digest = body["plan"]["digest"]
            _, first, _ = http(base, f"/matrices/{digest}/delta", DELTA)
            head = first["applied"]["new_digest"]
            assert mgr.drain_shard(0)
            # New deltas during the drain answer 503 + Retry-After...
            status, resp, headers = http(
                base, f"/matrices/{head}/delta", {"delete_rows": [0], "delete_cols": [0]}
            )
            assert status == 503
            assert "Retry-After" in headers
            assert "shutting down" in resp["error"]
            # ...and the lineage head never left half-advanced: the
            # plan under the pre-drain head is still the addressable
            # one, and no successor digest was ever published.
            status2, got, _ = http(base, f"/plan/{head}")
            assert status2 == 200
            assert got["plan"]["digest"] == head
            # /stats reports the drain in progress on the shard detail.
            _, stats, _ = http(base, "/stats")
            assert stats["cluster"]["shards"][0]["draining"] is True
