"""Cluster autoscaling tests: ring membership churn and shard scaling.

Router membership is unit-tested without sockets (add/remove are plain
table mutations); one real-subprocess test drives
:meth:`ClusterManager.scale_shards` through a grow/shrink cycle and
checks the cluster keeps serving across it (docs/autoscaling.md).
"""

import json
import urllib.request

import pytest

from repro.cluster.manager import ClusterManager
from repro.cluster.router import ClusterRouter


def payload_for(seed):
    return {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": seed}}


def http(base, path, payload=None, timeout=60.0):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        base + path,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data else "GET",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


# ----------------------------------------------------------------------
# Router membership (no sockets)
# ----------------------------------------------------------------------
class TestRouterMembership:
    def make(self):
        return ClusterRouter({0: ("127.0.0.1", 9000), 1: ("127.0.0.1", 9001)})

    def test_add_shard_joins_ring(self):
        router = self.make()
        router.add_shard(2, "127.0.0.1", 9002)
        table = {row["shard"] for row in router.shard_table()}
        assert table == {0, 1, 2}
        owners = {router.ring.route(f"digest-{i}") for i in range(64)}
        assert 2 in owners  # the new shard actually takes keys

    def test_add_duplicate_rejected(self):
        router = self.make()
        with pytest.raises(KeyError):
            router.add_shard(0, "127.0.0.1", 9002)

    def test_remove_shard_leaves_ring(self):
        router = self.make()
        router.remove_shard(1)
        assert [row["shard"] for row in router.shard_table()] == [0]
        owners = {router.ring.route(f"digest-{i}") for i in range(64)}
        assert owners == {0}

    def test_remove_unknown_rejected(self):
        router = self.make()
        with pytest.raises(KeyError):
            router.remove_shard(7)

    def test_remove_scrubs_lineage_affinity(self):
        router = self.make()
        router._pin_lineage("deadbeef", 1)
        router._pin_lineage("cafef00d", 0)
        router.remove_shard(1)
        # The retired shard's pins are gone; survivors keep theirs.
        assert router._owner_for_delta("cafef00d") == 0
        assert "deadbeef" not in router._affinity

    def test_remaining_keys_stay_put(self):
        # Consistent hashing: removing one shard must not shuffle keys
        # between the survivors.
        router = self.make()
        router.add_shard(2, "127.0.0.1", 9002)
        before = {
            d: router.ring.route(d)
            for d in (f"digest-{i}" for i in range(128))
        }
        router.remove_shard(2)
        for digest, owner in before.items():
            if owner != 2:
                assert router.ring.route(digest) == owner


# ----------------------------------------------------------------------
# Live grow/shrink cycle (real shard subprocesses)
# ----------------------------------------------------------------------
def test_scale_shards_grow_and_shrink(tmp_path):
    with ClusterManager(
        shards=1, store_dir=str(tmp_path / "plans"), workers=1,
        queue_depth=16, admission=True,
    ) as manager:
        base = manager.base_url
        assert manager.shard_count == 1

        assert manager.scale_shards(3) == 3
        shard_ids = sorted(manager.describe()["shards"],
                           key=lambda row: row["shard"])
        assert [row["shard"] for row in shard_ids] == [0, 1, 2]

        # The grown cluster serves plans routed across the ring.
        for seed in range(4):
            status, body = http(base, "/plan", payload_for(seed))
            assert status == 200 and body["plan"]["digest"]

        # Shrink retires the newest shards; the survivor keeps serving.
        assert manager.scale_shards(1) == 1
        assert [row["shard"] for row in manager.describe()["shards"]] == [0]
        status, body = http(base, "/plan", payload_for(0))
        assert status == 200  # plan survives in the shared store

        # Regrowing hands out fresh ids -- retired ids never come back.
        assert manager.scale_shards(2) == 2
        ids = {row["shard"] for row in manager.describe()["shards"]}
        assert ids == {0, 3}

        snapshot = manager.autoscale_snapshot()
        assert snapshot.workers == 2  # one unit per live shard
        assert snapshot.backlog_s >= 0.0
