"""Consistent-hash ring: determinism, balance, health, resize minimality."""

import hashlib

import pytest

from repro.cluster.ring import HashRing, digest_point


def _digests(n, salt=""):
    return [hashlib.sha256(f"{salt}{i}".encode()).hexdigest() for i in range(n)]


class TestRouting:
    def test_route_is_deterministic(self):
        ring = HashRing([0, 1, 2])
        for digest in _digests(50):
            assert ring.route(digest) == ring.route(digest)

    def test_same_ids_same_mapping_across_instances(self):
        a, b = HashRing([0, 1, 2]), HashRing([0, 1, 2])
        for digest in _digests(100):
            assert a.route(digest) == b.route(digest)

    def test_all_shards_get_traffic(self):
        ring = HashRing([0, 1, 2, 3])
        counts = ring.distribution(_digests(2000))
        assert set(counts) == {0, 1, 2, 3}
        # Virtual nodes keep the split near-uniform: no shard should be
        # starved or own the overwhelming majority.
        assert min(counts.values()) > 2000 * 0.10
        assert max(counts.values()) < 2000 * 0.45

    def test_digest_point_uses_leading_hex(self):
        digest = "ff" * 32
        assert digest_point(digest) == int("f" * 16, 16)
        # Non-hex inputs fall back to hashing rather than crashing.
        assert 0 <= digest_point("not-hex!") < (1 << 64)

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([1, 1])
        with pytest.raises(ValueError):
            HashRing([0], vnodes=0)


class TestHealth:
    def test_down_shard_still_owns_its_digests(self):
        """Affinity beats availability: default routing never fails over."""
        ring = HashRing([0, 1, 2])
        digest = next(d for d in _digests(100) if ring.route(d) == 1)
        ring.mark_down(1)
        assert ring.route(digest) == 1
        assert not ring.is_up(1)
        assert ring.down_shards == [1]

    def test_failover_skips_down_shards(self):
        ring = HashRing([0, 1, 2])
        digest = next(d for d in _digests(100) if ring.route(d) == 1)
        ring.mark_down(1)
        owner = ring.route(digest, failover=True)
        assert owner is not None and owner != 1

    def test_failover_none_when_all_down(self):
        ring = HashRing([0, 1])
        for sid in (0, 1):
            ring.mark_down(sid)
        assert ring.route("ab" * 32, failover=True) is None

    def test_mark_up_restores(self):
        ring = HashRing([0, 1])
        ring.mark_down(0)
        ring.mark_up(0)
        assert ring.is_up(0)


class TestResize:
    def test_add_shard_remaps_minimally(self):
        ring = HashRing([0, 1, 2])
        digests = _digests(1000)
        before = {d: ring.route(d) for d in digests}
        ring.add_shard(3)
        moved = sum(1 for d in digests if ring.route(d) != before[d])
        # Only the keys the new shard takes over move: about 1/4, never
        # the wholesale reshuffle mod-N hashing would cause.
        assert 0 < moved < 1000 * 0.45

    def test_remove_shard_only_remaps_its_keys(self):
        ring = HashRing([0, 1, 2])
        digests = _digests(1000)
        before = {d: ring.route(d) for d in digests}
        ring.remove_shard(2)
        for d in digests:
            if before[d] != 2:
                assert ring.route(d) == before[d]
            else:
                assert ring.route(d) in (0, 1)

    def test_add_duplicate_and_remove_missing_raise(self):
        ring = HashRing([0])
        with pytest.raises(ValueError):
            ring.add_shard(0)
        with pytest.raises(ValueError):
            ring.remove_shard(5)
