"""Length-prefixed JSON framing: roundtrips, EOF semantics, size guards."""

import asyncio
import socket
import struct
import threading

import pytest

from repro.cluster.ipc import (
    MAX_FRAME_BYTES,
    FrameError,
    read_frame_async,
    recv_frame,
    send_frame,
    write_frame_async,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestSyncFraming:
    def test_roundtrip(self, pair):
        a, b = pair
        message = {"op": "plan", "payload": {"n": [1, 2, 3], "s": "x"}}
        send_frame(a, message)
        assert recv_frame(b) == message

    def test_multiple_frames_are_self_delimiting(self, pair):
        a, b = pair
        for i in range(5):
            send_frame(a, {"i": i})
        for i in range(5):
            assert recv_frame(b) == {"i": i}

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert recv_frame(b) is None

    def test_eof_mid_frame_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 100) + b'{"partial"')
        a.close()
        with pytest.raises(FrameError, match="mid-frame"):
            recv_frame(b)

    def test_oversized_incoming_frame_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError, match="too large"):
            recv_frame(b)

    def test_non_json_frame_rejected(self, pair):
        a, b = pair
        payload = b"\xff\xfenot json"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FrameError, match="not valid JSON"):
            recv_frame(b)


class TestAsyncFraming:
    def test_async_roundtrip_with_sync_peer(self, pair):
        """The router (async) and shard (sync) speak the same frames."""
        a, b = pair

        received = {}

        def shard_side():
            message = recv_frame(b)
            send_frame(b, {"status": 200, "echo": message})

        thread = threading.Thread(target=shard_side)
        thread.start()

        async def router_side():
            reader, writer = await asyncio.open_connection(sock=a)
            await write_frame_async(writer, {"op": "stats"})
            received.update(await read_frame_async(reader))
            writer.close()

        asyncio.run(router_side())
        thread.join()
        assert received == {"status": 200, "echo": {"op": "stats"}}

    def test_async_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()

        async def read():
            reader, writer = await asyncio.open_connection(sock=b)
            try:
                return await read_frame_async(reader)
            finally:
                writer.close()

        assert asyncio.run(read()) is None

    def test_async_eof_mid_frame_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 50) + b"abc")
        a.close()

        async def read():
            reader, writer = await asyncio.open_connection(sock=b)
            try:
                return await read_frame_async(reader)
            finally:
                writer.close()

        with pytest.raises(FrameError, match="mid-frame"):
            asyncio.run(read())
