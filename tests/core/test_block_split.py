"""Block-level hot-tile splitting: invariants, wins, and plumbing.

The fifth heuristic (``Heuristic.BLOCK_SPLIT``) refines the best
whole-tile candidate by cutting one dominating tile at a row boundary.
Pinned here: the candidate never loses its comparison (fallback is the
relabeled base), it *wins* on a committed skew-heavy matrix (both in
predicted and simulated time), nonzeros are conserved across the cut,
``repair_plan`` reproduces the split bit for bit, and
``worker_sim._apply_split`` rejects every malformed split.
"""

import numpy as np
import pytest

from repro.arch.configs import piuma, spade_sextans_pcie
from repro.core.partition import (
    Heuristic,
    HotTilesPartitioner,
    TileSplit,
    plan_cache_from,
    repair_plan,
)
from repro.sim.engine import simulate
from repro.sim.worker_sim import _apply_split, build_plans
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix
from repro.sparse import generators


# Canonical recipe lives with the fidelity sweep (same committed case).
from repro.experiments.fidelity import skew_heavy_matrix  # noqa: E402


@pytest.fixture(scope="module")
def skew_matrix():
    return skew_heavy_matrix()


def _others_best(result):
    return min(
        r.predicted_time_s
        for h, r in result.candidates.items()
        if h is not Heuristic.BLOCK_SPLIT
    )


class TestNeverLoses:
    @pytest.mark.parametrize("arch_fn", [piuma, lambda: spade_sextans_pcie(4)])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_candidate_never_above_base(self, arch_fn, seed):
        arch = arch_fn()
        rng = np.random.default_rng(seed)
        m = generators.rmat(scale=10, nnz=6000, seed=int(rng.integers(1 << 30)))
        tiled = TiledMatrix(m, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        bs = result.candidates[Heuristic.BLOCK_SPLIT]
        assert bs.predicted_time_s <= _others_best(result)
        assert result.chosen.predicted_time_s <= bs.predicted_time_s

    def test_fallback_relabels_base_without_split(self):
        # A uniform matrix offers no skew worth splitting: the candidate
        # must degrade to the base assignment with split=None.
        arch = piuma()
        m = generators.uniform_random(512, 512, 4000, seed=11)
        tiled = TiledMatrix(m, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        bs = result.candidates[Heuristic.BLOCK_SPLIT]
        if bs.split is None:
            assert bs.predicted_time_s == _others_best(result)
            assert bs.label == Heuristic.BLOCK_SPLIT.value


class TestSkewHeavyWin:
    @pytest.mark.parametrize("arch_fn", [piuma, lambda: spade_sextans_pcie(4)])
    def test_split_chosen_and_strictly_better(self, skew_matrix, arch_fn):
        arch = arch_fn()
        tiled = TiledMatrix(skew_matrix, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        chosen = result.chosen
        assert chosen.split is not None
        assert chosen.label == Heuristic.BLOCK_SPLIT.value
        assert chosen.predicted_time_s < _others_best(result)

    def test_simulated_time_improves(self, skew_matrix):
        arch = piuma()
        tiled = TiledMatrix(skew_matrix, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        chosen = result.chosen
        assert chosen.split is not None
        with_split = simulate(
            arch, tiled, chosen.assignment, chosen.mode, split=chosen.split
        )
        without = simulate(arch, tiled, chosen.assignment, chosen.mode)
        assert with_split.time_s < without.time_s

    def test_split_conserves_nnz_and_cuts_on_row(self, skew_matrix):
        arch = piuma()
        tiled = TiledMatrix(skew_matrix, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        split = result.chosen.split
        assert split is not None
        lo = int(tiled.tile_offsets[split.tile])
        hi = int(tiled.tile_offsets[split.tile + 1])
        assert split.hot_nnz > 0 and split.cold_nnz > 0
        assert split.hot_nnz + split.cold_nnz == hi - lo
        cut = lo + split.hot_nnz
        # Row-aligned: last hot row strictly below the first cold row.
        assert int(tiled.rows[cut - 1]) < int(tiled.rows[cut]) == split.row_cut
        # Prefix-hot convention.
        assert bool(result.chosen.assignment[split.tile])

    def test_hot_nnz_fraction_subtracts_cold_side(self, skew_matrix):
        arch = piuma()
        tiled = TiledMatrix(skew_matrix, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        chosen = result.chosen
        assert chosen.split is not None
        whole_tile_hot = int(tiled.stats.nnz[chosen.assignment].sum())
        expected = (whole_tile_hot - chosen.split.cold_nnz) / tiled.stats.nnz.sum()
        assert chosen.hot_nnz_fraction(tiled) == pytest.approx(expected)

    def test_repair_reproduces_split_bit_for_bit(self, skew_matrix):
        arch = piuma()
        tiled = TiledMatrix(skew_matrix, arch.tile_height, arch.tile_width)
        partitioner = HotTilesPartitioner(arch)
        fresh = partitioner.partition(tiled)
        cache = plan_cache_from(partitioner, tiled, fresh)
        outcome = repair_plan(
            partitioner, tiled, cache, np.zeros(0, dtype=np.int64)
        )
        assert outcome.stats.tiles_repaired == 0
        repaired = outcome.result.chosen
        assert repaired.predicted_time_s == fresh.chosen.predicted_time_s
        assert repaired.split == fresh.chosen.split
        assert repaired.assignment.tolist() == fresh.chosen.assignment.tolist()


class TestApplySplitValidation:
    """``_apply_split`` on a hand-built one-tile matrix (2 nnz per row)."""

    @pytest.fixture()
    def tiled(self):
        rows = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        cols = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        return TiledMatrix(SparseMatrix(8, 8, rows, cols), 4, 4)

    @pytest.fixture()
    def assignment(self, tiled):
        return np.ones(tiled.n_tiles, dtype=bool)

    def test_valid_split_expands_tiling(self, tiled, assignment):
        split = TileSplit(tile=0, hot_nnz=4, cold_nnz=4, row_cut=2)
        view, expanded = _apply_split(tiled, assignment, split)
        assert view.n_tiles == tiled.n_tiles + 1
        assert expanded.tolist() == [True, False] + [True] * (tiled.n_tiles - 1)
        assert view.tile_offsets.tolist()[:3] == [0, 4, 8]
        # Honest per-part stats: 2 rows / 2 cols each side.
        assert view.stats.nnz[0] == 4 and view.stats.nnz[1] == 4

    def test_build_plans_covers_all_nnz(self, tiled, assignment):
        arch = spade_sextans_pcie(2)
        split = TileSplit(tile=0, hot_nnz=4, cold_nnz=4, row_cut=2)
        hot, cold = build_plans(arch, tiled, assignment, split=split)
        assert sum(p.nnz_total for p in hot) == 4
        assert sum(p.nnz_total for p in hot + cold) == 8

    def test_tile_out_of_range(self, tiled, assignment):
        split = TileSplit(tile=tiled.n_tiles, hot_nnz=4, cold_nnz=4, row_cut=2)
        with pytest.raises(ValueError, match="out of range"):
            _apply_split(tiled, assignment, split)

    def test_sizes_must_sum_to_tile_nnz(self, tiled, assignment):
        split = TileSplit(tile=0, hot_nnz=4, cold_nnz=3, row_cut=2)
        with pytest.raises(ValueError, match="sum to tile nnz"):
            _apply_split(tiled, assignment, split)

    def test_empty_side_rejected(self, tiled, assignment):
        split = TileSplit(tile=0, hot_nnz=0, cold_nnz=8, row_cut=0)
        with pytest.raises(ValueError, match="positive"):
            _apply_split(tiled, assignment, split)

    def test_cut_inside_a_row_rejected(self, tiled, assignment):
        # Offset 3 lands between the two nonzeros of row 1.
        split = TileSplit(tile=0, hot_nnz=3, cold_nnz=5, row_cut=1)
        with pytest.raises(ValueError, match="row boundary"):
            _apply_split(tiled, assignment, split)

    def test_row_cut_must_match_data(self, tiled, assignment):
        split = TileSplit(tile=0, hot_nnz=4, cold_nnz=4, row_cut=3)
        with pytest.raises(ValueError, match="disagrees"):
            _apply_split(tiled, assignment, split)

    def test_split_tile_must_be_hot(self, tiled):
        cold = np.zeros(tiled.n_tiles, dtype=bool)
        split = TileSplit(tile=0, hot_nnz=4, cold_nnz=4, row_cut=2)
        with pytest.raises(ValueError, match="assigned hot"):
            _apply_split(tiled, cold, split)
