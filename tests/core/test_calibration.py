"""vis_lat calibration tests."""

import pytest

from repro.core.calibration import calibrate_architecture, calibrate_vis_lat, calibration_error
from repro.core.partition import HotTilesPartitioner
from repro.core.traits import WorkerKind
from repro.sparse import generators
from repro.sparse.tiling import TiledMatrix
from tests.core.test_partition import tiny_arch


def profiling_set():
    mats = [
        generators.uniform_random(64, 64, 700, seed=1),
        generators.banded(64, 500, bandwidth=6, seed=2),
    ]
    return [TiledMatrix(m, 4, 4) for m in mats]


class TestCalibrationError:
    def test_zero_for_perfect_predictions(self):
        assert calibration_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_symmetric_in_log_space(self):
        assert calibration_error([2.0], [1.0]) == pytest.approx(
            calibration_error([1.0], [2.0])
        )

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equally many"):
            calibration_error([1.0], [1.0, 2.0])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            calibration_error([0.0], [1.0])


class TestCalibrateVisLat:
    def test_recovers_synthetic_ground_truth(self):
        """Generate 'measured' runtimes from the model itself at a known
        vis_lat; calibration must recover it."""
        arch = tiny_arch(n_hot=1, n_cold=2)
        true_vis_lat = 3.7e-10
        truth_arch = arch.with_calibrated(
            arch.hot.traits, arch.cold.traits.with_vis_lat(true_vis_lat)
        )
        partitioner = HotTilesPartitioner(truth_arch)
        runs = [
            (t, partitioner.predict_homogeneous(t, WorkerKind.COLD))
            for t in profiling_set()
        ]
        fitted = calibrate_vis_lat(arch, WorkerKind.COLD, runs)
        assert fitted == pytest.approx(true_vis_lat, rel=0.05)

    def test_requires_runs(self):
        with pytest.raises(ValueError, match="profiling run"):
            calibrate_vis_lat(tiny_arch(), WorkerKind.COLD, [])

    def test_calibrate_architecture_updates_both_types(self):
        arch = tiny_arch()
        seen = []

        def measure(a, tiled, kind):
            seen.append(kind)
            # A fake measurement: scaled model prediction.
            return HotTilesPartitioner(a).predict_homogeneous(tiled, kind) * 1.5

        out = calibrate_architecture(arch, measure, profiling_set())
        assert WorkerKind.HOT in seen and WorkerKind.COLD in seen
        assert out.hot.traits.vis_lat_s_per_byte != arch.hot.traits.vis_lat_s_per_byte

    def test_calibrate_architecture_skips_empty_group(self):
        arch = tiny_arch(n_hot=0)

        def measure(a, tiled, kind):
            assert kind is WorkerKind.COLD  # hot group must never be measured
            return 1e-6

        out = calibrate_architecture(arch, measure, profiling_set())
        assert out.hot.traits == arch.hot.traits

    def test_calibrate_architecture_requires_matrices(self):
        with pytest.raises(ValueError, match="profiling matrix"):
            calibrate_architecture(tiny_arch(), lambda a, t, k: 1.0, [])
