"""Problem spec tests."""

import pytest

from repro.core.problem import Kernel, ProblemSpec


class TestProblemSpec:
    def test_defaults_match_paper(self):
        p = ProblemSpec()
        assert p.k == 32
        assert p.value_bytes == 4
        assert p.kernel is Kernel.SPMM

    def test_dense_row_bytes(self):
        assert ProblemSpec(k=32, value_bytes=4).dense_row_bytes == 128
        assert ProblemSpec(k=32, value_bytes=8).dense_row_bytes == 256

    def test_flops_per_nnz(self):
        assert ProblemSpec(k=32).flops_per_nnz == pytest.approx(64.0)
        assert ProblemSpec(k=32, ops_per_nnz=4).flops_per_nnz == pytest.approx(256.0)

    def test_with_ops_per_nnz_marks_gspmm(self):
        p = ProblemSpec().with_ops_per_nnz(8)
        assert p.ops_per_nnz == 8
        assert p.kernel is Kernel.GSPMM

    def test_with_ops_per_nnz_identity(self):
        assert ProblemSpec().with_ops_per_nnz(1).kernel is Kernel.SPMM

    def test_spmv_constructor(self):
        p = ProblemSpec.spmv()
        assert p.k == 1 and p.kernel is Kernel.SPMV

    def test_spmv_requires_k1(self):
        with pytest.raises(ValueError, match="SpMV"):
            ProblemSpec(k=2, kernel=Kernel.SPMV)

    def test_sddmm_constructor(self):
        p = ProblemSpec.sddmm(k=16)
        assert p.kernel is Kernel.SDDMM and p.k == 16

    @pytest.mark.parametrize("field,value", [("k", 0), ("value_bytes", 0), ("ops_per_nnz", 0)])
    def test_invalid_fields(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ValueError):
            ProblemSpec(**kwargs)
