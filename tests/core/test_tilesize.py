"""Free-dimension tile-size search tests."""

import pytest

from repro.core.tilesize import search_tile_size
from repro.sparse import generators
from tests.core.test_partition import tiny_arch


class TestSearchTileSize:
    def test_defaults_to_architecture_tile(self):
        m = generators.uniform_random(64, 64, 500, seed=0)
        arch = tiny_arch()
        choice, tiled = search_tile_size(m, arch)
        assert (choice.tile_height, choice.tile_width) == (4, 4)
        assert tiled.tile_height == 4

    def test_picks_minimum_predicted_time(self):
        m = generators.banded(64, 800, bandwidth=8, seed=1)
        arch = tiny_arch()
        choice, _ = search_tile_size(m, arch, heights=[2, 4, 8, 16])
        # Re-evaluate each candidate and confirm the winner is minimal.
        times = {
            h: search_tile_size(m, arch, heights=[h])[0].predicted_time_s
            for h in [2, 4, 8, 16]
        }
        assert choice.predicted_time_s == pytest.approx(min(times.values()))
        assert times[choice.tile_height] == pytest.approx(choice.predicted_time_s)

    def test_grid_search_both_dimensions(self):
        m = generators.uniform_random(64, 64, 500, seed=2)
        choice, tiled = search_tile_size(m, tiny_arch(), heights=[4, 8], widths=[4, 8])
        assert choice.tile_height in (4, 8)
        assert choice.tile_width in (4, 8)
        assert (tiled.tile_height, tiled.tile_width) == (
            choice.tile_height,
            choice.tile_width,
        )

    def test_invalid_candidates(self):
        m = generators.uniform_random(16, 16, 20, seed=3)
        with pytest.raises(ValueError, match="positive"):
            search_tile_size(m, tiny_arch(), heights=[0])
