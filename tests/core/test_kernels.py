"""Kernel-variant tests: gSpMM, SpMV and SDDMM through the full stack.

Paper Sec. II-A and Sec. X: gSpMM changes arithmetic intensity but not the
access pattern; SpMV and SDDMM share the SpMM access pattern, so the
modeling and partitioning methodology applies to them directly.
"""

import dataclasses

import numpy as np
import pytest

from repro.arch.heterogeneous import WorkerGroup
from repro.core.model import AnalyticalModel
from repro.core.partition import HotTilesPartitioner
from repro.core.problem import Kernel, ProblemSpec
from repro.core.traits import Task, WorkerKind
from repro.sim.engine import simulate_homogeneous
from repro.sparse import generators
from repro.sparse.tiling import TiledMatrix
from tests.core.test_model import cold_worker, hot_worker
from tests.core.test_partition import tiny_arch


@pytest.fixture(scope="module")
def tiled():
    m = generators.community_blocks(128, 2500, 8, seed=31)
    return TiledMatrix(m, 4, 4)


def arch_for(problem):
    base = tiny_arch()
    return dataclasses.replace(base, problem=problem)


class TestGspmm:
    def test_intensity_shifts_partition_toward_hot(self, tiled):
        """More ops per nonzero -> compute matters more -> more nonzeros
        should land on a compute-rich hot worker (the Fig. 14 migration)."""

        def arch(ops):
            base = tiny_arch()
            rich_hot = WorkerGroup(
                dataclasses.replace(base.hot.traits, macs_per_cycle=16.0), 1
            )
            return dataclasses.replace(
                base, hot=rich_hot, problem=ProblemSpec(k=4).with_ops_per_nnz(ops)
            )

        light = HotTilesPartitioner(arch(1)).partition(tiled)
        heavy = HotTilesPartitioner(arch(32)).partition(tiled)
        assert heavy.chosen.hot_nnz_fraction(tiled) >= light.chosen.hot_nnz_fraction(
            tiled
        )

    def test_intensity_slows_compute_bound_worker(self, tiled):
        slow = cold_worker(macs_per_cycle=0.01)
        light = AnalyticalModel(ProblemSpec(k=4)).tile_costs(tiled, slow)
        heavy = AnalyticalModel(ProblemSpec(k=4, ops_per_nnz=8)).tile_costs(tiled, slow)
        assert heavy.time_s.sum() > light.time_s.sum()


class TestSpmv:
    def test_problem_shape(self):
        p = ProblemSpec.spmv()
        assert p.dense_row_bytes == 4  # one scalar per "row"
        assert p.flops_per_nnz == pytest.approx(2.0)

    def test_model_traffic_smaller_than_spmm(self, tiled):
        w = cold_worker()
        spmm = AnalyticalModel(ProblemSpec(k=4)).tile_costs(tiled, w)
        spmv = AnalyticalModel(ProblemSpec.spmv()).tile_costs(tiled, w)
        assert spmv.bytes.sum() < spmm.bytes.sum()

    def test_partition_and_simulation_run(self, tiled):
        arch = arch_for(ProblemSpec.spmv())
        result = HotTilesPartitioner(arch).partition(tiled)
        assert result.chosen.predicted_time_s > 0
        sim = simulate_homogeneous(arch, tiled, WorkerKind.COLD)
        assert sim.time_s > 0


class TestSddmm:
    def test_write_traffic_is_per_nonzero(self, tiled):
        w = hot_worker()
        spmm = AnalyticalModel(ProblemSpec(k=4)).tile_costs(tiled, w)
        sddmm = AnalyticalModel(ProblemSpec.sddmm(k=4)).tile_costs(tiled, w)
        nnz = tiled.stats.nnz.astype(float)
        np.testing.assert_allclose(
            sddmm.task_bytes[Task.DOUT_WRITE], nnz * 4.0
        )
        # Reads of both dense inputs are unchanged.
        np.testing.assert_allclose(
            sddmm.task_bytes[Task.DIN_READ], spmm.task_bytes[Task.DIN_READ]
        )

    def test_sim_moves_less_output_than_spmm(self, tiled):
        # With wide dense rows (K = 32), writing one scalar per nonzero is
        # cheaper than read-modify-writing whole Dout rows.
        spmm_sim = simulate_homogeneous(
            arch_for(ProblemSpec(k=32)), tiled, WorkerKind.HOT
        )
        sddmm_sim = simulate_homogeneous(
            arch_for(ProblemSpec.sddmm(k=32)), tiled, WorkerKind.HOT
        )
        assert sddmm_sim.bytes_total < spmm_sim.bytes_total

    def test_partition_runs(self, tiled):
        result = HotTilesPartitioner(arch_for(ProblemSpec.sddmm(k=4))).partition(tiled)
        assert result.chosen.predicted_time_s > 0
        assert result.candidates
