"""The contention-aware runtime evaluator: properties, wiring, and guards.

Pinned here:

- ``contended_runtime >= naive_runtime`` on every random instance --
  modeling contention can only slow a prediction down, never speed it up.
- Bit-equality with the naive Fig. 8 closed forms when no PCIe link is
  configured (scalar and batch), and partitioner-level bit-equality of
  ``contention_aware=True`` vs ``False`` on non-PCIe architectures.
- Batch evaluators agree element-wise with their scalar twins.
- The recorded PCIe mispredict stays fixed: on the committed skew-heavy
  matrix the contention-aware scorer's choice simulates at least as fast
  as the naive scorer's, and predicted/simulated split deltas agree in
  sign (the BLOCK_SPLIT never-loses invariant under the new scorer).
- ``_SplitPartsView`` rejects degenerate cuts (``hot_nnz`` of 0 or the
  whole tile) that would read the next tile's first row -- or past the
  array on the last tile.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.arch.configs import piuma, spade_sextans, spade_sextans_pcie
from repro.core import contention
from repro.core.partition import (
    Heuristic,
    HotTilesPartitioner,
    _SplitPartsView,
)
from repro.experiments.fidelity import skew_heavy_matrix
from repro.sim.engine import simulate
from repro.sparse import generators
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix


def _random_totals(rng):
    return SimpleNamespace(
        th_total=float(rng.uniform(0, 1e-3)),
        tc_total=float(rng.uniform(0, 1e-3)),
        bh_total=float(rng.uniform(0, 1e6)),
        bc_total=float(rng.uniform(0, 1e6)),
        t_merge=float(rng.uniform(0, 1e-4)),
    )


class TestEvaluatorProperties:
    @pytest.mark.parametrize("serial", [False, True])
    @pytest.mark.parametrize("seed", range(8))
    def test_contention_never_faster_than_naive(self, serial, seed):
        arch = spade_sextans_pcie(4)
        rng = np.random.default_rng(seed)
        for _ in range(50):
            totals = _random_totals(rng)
            floors = (float(rng.uniform(0, 2e-4)), float(rng.uniform(0, 2e-4)))
            naive = contention.naive_runtime(arch, totals, serial)
            contended = contention.contended_runtime(
                arch, totals, serial, hot_floor=floors[0], cold_floor=floors[1]
            )
            assert contended >= naive

    @pytest.mark.parametrize("serial", [False, True])
    def test_bit_equal_without_pcie(self, serial):
        for arch in (spade_sextans(4), piuma()):
            assert arch.pcie_bw_bytes_per_sec is None
            rng = np.random.default_rng(7)
            for _ in range(50):
                totals = _random_totals(rng)
                naive = contention.naive_runtime(arch, totals, serial)
                contended = contention.contended_runtime(
                    arch, totals, serial, hot_floor=1e-3, cold_floor=1e-3
                )
                assert contended == naive

    @pytest.mark.parametrize("serial", [False, True])
    @pytest.mark.parametrize("arch_fn", [lambda: spade_sextans_pcie(4), piuma])
    def test_batch_matches_scalar(self, serial, arch_fn):
        arch = arch_fn()
        rng = np.random.default_rng(3)
        n = 64
        th = rng.uniform(0, 1e-3, n)
        tc = rng.uniform(0, 1e-3, n)
        bh = rng.uniform(0, 1e6, n)
        bc = rng.uniform(0, 1e6, n)
        t_merge = rng.uniform(0, 1e-4, n)
        hot_floor = rng.uniform(0, 2e-4, n)
        cold_floor = rng.uniform(0, 2e-4, n)
        batch = contention.contended_runtime_batch(
            arch, th, tc, bh, bc, t_merge, serial,
            hot_floor=hot_floor, cold_floor=cold_floor,
        )
        naive_batch = contention.naive_runtime_batch(
            arch, th, tc, bh, bc, t_merge, serial
        )
        for i in range(n):
            totals = SimpleNamespace(
                th_total=th[i], tc_total=tc[i], bh_total=bh[i],
                bc_total=bc[i], t_merge=t_merge[i],
            )
            scalar = contention.contended_runtime(
                arch, totals, serial,
                hot_floor=float(hot_floor[i]), cold_floor=float(cold_floor[i]),
            )
            assert batch[i] == pytest.approx(scalar, rel=1e-12, abs=0.0)
            assert naive_batch[i] == contention.naive_runtime(arch, totals, serial)

    def test_effective_bw_plain_without_pcie(self):
        arch = piuma()
        assert contention.effective_hot_bw(arch) == arch.mem_bw_bytes_per_sec
        assert contention.effective_cold_bw(arch) == arch.mem_bw_bytes_per_sec
        pcie_arch = spade_sextans_pcie(4)
        assert (
            contention.effective_hot_bw(pcie_arch)
            <= pcie_arch.pcie_bw_bytes_per_sec
        )

    def test_floor_zero_for_single_instance(self):
        times = np.array([1e-4, 2e-4])
        uniq = np.array([100.0, 50.0])
        panels = np.array([0, 1])
        selected = np.array([True, True])
        traits = piuma().cold.traits
        floor = contention.granularity_floor(
            times, uniq, panels, selected,
            traits=traits, n_instances=1, tile_height=piuma().tile_height,
        )
        assert floor == 0.0


class TestPartitionerWiring:
    @pytest.mark.parametrize("arch_fn", [lambda: spade_sextans(4), piuma])
    def test_non_pcie_flag_is_inert(self, arch_fn, small_rmat, small_uniform,
                                    small_banded):
        arch = arch_fn()
        for matrix in (small_rmat, small_uniform, small_banded):
            tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
            on = HotTilesPartitioner(arch, contention_aware=True).partition(tiled)
            off = HotTilesPartitioner(arch, contention_aware=False).partition(tiled)
            assert on.chosen.predicted_time_s == off.chosen.predicted_time_s
            assert on.chosen.split == off.chosen.split
            assert on.chosen.assignment.tolist() == off.chosen.assignment.tolist()
            assert on.chosen.scorer == "naive"
            for h in on.candidates:
                assert (
                    on.candidates[h].predicted_time_s
                    == off.candidates[h].predicted_time_s
                )

    def test_scorer_and_naive_time_recorded(self, small_rmat):
        arch = spade_sextans_pcie(4)
        tiled = TiledMatrix(small_rmat, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        assert result.chosen.scorer == "contention"
        assert result.chosen.naive_time_s is not None
        # Contention can only add terms under a max: never below naive.
        assert result.chosen.predicted_time_s >= result.chosen.naive_time_s

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_block_split_never_loses_under_contention(self, seed, small_rmat,
                                                      small_uniform, small_banded):
        arch = spade_sextans_pcie(4)
        matrices = {
            0: small_rmat, 1: small_uniform, 2: small_banded,
        }
        tiled = TiledMatrix(matrices[seed], arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        bs = result.candidates[Heuristic.BLOCK_SPLIT]
        others_best = min(
            r.predicted_time_s
            for h, r in result.candidates.items()
            if h is not Heuristic.BLOCK_SPLIT
        )
        assert bs.predicted_time_s <= others_best
        assert result.chosen.predicted_time_s <= bs.predicted_time_s


class TestPcieFlipCase:
    @pytest.fixture(scope="class")
    def skew(self):
        return skew_heavy_matrix()

    def test_contention_choice_simulates_no_worse(self, skew):
        arch = spade_sextans_pcie(4)
        tiled = TiledMatrix(skew, arch.tile_height, arch.tile_width)
        on = HotTilesPartitioner(arch, contention_aware=True).partition(tiled)
        off = HotTilesPartitioner(arch, contention_aware=False).partition(tiled)
        sim_on = simulate(
            arch, tiled, on.chosen.assignment, on.chosen.mode, split=on.chosen.split
        ).time_s
        sim_off = simulate(
            arch, tiled, off.chosen.assignment, off.chosen.mode,
            split=off.chosen.split,
        ).time_s
        assert sim_on <= sim_off

    def test_predicted_and_simulated_split_deltas_agree(self, skew):
        arch = spade_sextans_pcie(4)
        tiled = TiledMatrix(skew, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        bs = result.candidates[Heuristic.BLOCK_SPLIT]
        assert bs.split is not None
        base = min(
            (r for h, r in result.candidates.items()
             if h is not Heuristic.BLOCK_SPLIT),
            key=lambda r: r.predicted_time_s,
        )
        pred_delta = bs.predicted_time_s - base.predicted_time_s
        sim_bs = simulate(
            arch, tiled, bs.assignment, bs.mode, split=bs.split
        ).time_s
        sim_base = simulate(
            arch, tiled, base.assignment, base.mode, split=base.split
        ).time_s
        assert np.sign(pred_delta) == np.sign(sim_bs - sim_base)


class TestDegenerateCutGuard:
    """A cut of 0 or tile-nnz used to read ``tiled.rows[lo + hot_nnz]`` --
    the next tile's first row, or one past the array on the last tile."""

    @pytest.fixture()
    def tiled(self):
        # Two tiles side by side; tile 1 is the *last* tile, so a
        # whole-tile cut there indexes one past ``tiled.rows``.
        rows = np.array([0, 0, 1, 1, 0, 0, 1, 1])
        cols = np.array([0, 1, 0, 1, 4, 5, 4, 5])
        return TiledMatrix(SparseMatrix(4, 8, rows, cols), 4, 4)

    def test_zero_cut_rejected(self, tiled):
        with pytest.raises(ValueError, match="degenerate split"):
            _SplitPartsView(tiled, 0, 0)

    def test_whole_tile_cut_rejected(self, tiled):
        nnz = int(tiled.tile_offsets[1] - tiled.tile_offsets[0])
        with pytest.raises(ValueError, match="degenerate split"):
            _SplitPartsView(tiled, 0, nnz)

    def test_whole_tile_cut_on_last_tile_rejected(self, tiled):
        last = tiled.n_tiles - 1
        nnz = int(tiled.tile_offsets[last + 1] - tiled.tile_offsets[last])
        with pytest.raises(ValueError, match="degenerate split"):
            _SplitPartsView(tiled, last, nnz)

    def test_interior_cut_accepted(self, tiled):
        view = _SplitPartsView(tiled, tiled.n_tiles - 1, 2)
        assert int(view.stats.nnz.sum()) == 4
