"""Property tests: the partitioner is sound for *arbitrary* worker traits.

The paper evaluates three machines; the framework claims generality over
any (hot, cold) trait pair (Sec. VI-B lists the user-settable traits).
These tests draw random-but-valid worker traits and check the partitioning
invariants hold for all of them -- the guarantee behind
``examples/custom_accelerator.py``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.heterogeneous import Architecture, WorkerGroup
from repro.core.partition import ExecutionMode, HotTilesPartitioner
from repro.core.problem import ProblemSpec
from repro.core.traits import (
    OVERLAP_FULL,
    OVERLAP_NONE,
    ReuseType,
    SparseFormat,
    Traversal,
    WorkerKind,
    WorkerTraits,
)
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix

PROBLEM = ProblemSpec(k=8, value_bytes=4, index_bytes=4)

_DIN_REUSE = [ReuseType.NONE, ReuseType.INTRA_TILE_DEMAND, ReuseType.INTRA_TILE_STREAM]
_DOUT_REUSE = [
    ReuseType.NONE,
    ReuseType.INTRA_TILE_DEMAND,
    ReuseType.INTRA_TILE_STREAM,
    ReuseType.INTER_TILE,
]


@st.composite
def worker_traits(draw, kind):
    dout = draw(st.sampled_from(_DOUT_REUSE))
    return WorkerTraits(
        name=f"rand-{kind.value}",
        kind=kind,
        macs_per_cycle=draw(st.floats(min_value=0.25, max_value=32.0)),
        simd_width=draw(st.sampled_from([4, 8, 16])),
        frequency_ghz=draw(st.floats(min_value=0.5, max_value=3.0)),
        din_reuse=draw(st.sampled_from(_DIN_REUSE)),
        dout_reuse=dout,
        dout_first_tile_reuse=(
            draw(
                st.sampled_from(
                    [ReuseType.INTRA_TILE_DEMAND, ReuseType.INTRA_TILE_STREAM]
                )
            )
            if dout is ReuseType.INTER_TILE
            else None
        ),
        sparse_format=draw(st.sampled_from(list(SparseFormat))),
        traversal=draw(st.sampled_from(list(Traversal))),
        overlap_groups=draw(st.sampled_from([OVERLAP_FULL, OVERLAP_NONE])),
        vis_lat_s_per_byte=draw(st.floats(min_value=1e-12, max_value=1e-9)),
        mem_bytes_per_cycle=draw(st.floats(min_value=1.0, max_value=128.0)),
        cache_bytes=draw(st.sampled_from([0, 256, 4096])),
    )


@st.composite
def random_architectures(draw):
    return Architecture(
        name="random",
        hot=WorkerGroup(draw(worker_traits(WorkerKind.HOT)), draw(st.integers(1, 3))),
        cold=WorkerGroup(draw(worker_traits(WorkerKind.COLD)), draw(st.integers(1, 8))),
        mem_bw_gbs=draw(st.floats(min_value=10.0, max_value=500.0)),
        problem=PROBLEM,
        tile_height=4,
        tile_width=4,
        atomic_updates=draw(st.booleans()),
    )


@st.composite
def small_tiled(draw):
    n = draw(st.integers(min_value=8, max_value=24))
    nnz = draw(st.integers(min_value=1, max_value=80))
    rows = np.array(draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)))
    cols = np.array(draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)))
    return TiledMatrix(SparseMatrix(n, n, rows, cols), 4, 4)


@settings(max_examples=60, deadline=None)
@given(arch=random_architectures(), tiled=small_tiled())
def test_partition_invariants_for_any_traits(arch, tiled):
    result = HotTilesPartitioner(arch).partition(tiled)
    chosen = result.chosen
    assert chosen.assignment.shape == (tiled.n_tiles,)
    assert np.isfinite(chosen.predicted_time_s)
    assert chosen.predicted_time_s > 0
    # Candidate set follows the atomics rule (plus the block-split
    # refinement, which always competes).
    expected = 3 if arch.atomic_updates else 5
    assert len(result.candidates) == expected
    # The chosen result is the arg-min.
    assert chosen.predicted_time_s == min(
        r.predicted_time_s for r in result.candidates.values()
    )
    # Totals are consistent: non-negative, merge only in parallel mode.
    for candidate in result.candidates.values():
        t = candidate.totals
        assert t.th_total >= 0 and t.tc_total >= 0
        assert t.bh_total >= 0 and t.bc_total >= 0
        if candidate.mode is ExecutionMode.SERIAL or arch.atomic_updates:
            assert t.t_merge == 0.0


@settings(max_examples=30, deadline=None)
@given(arch=random_architectures(), tiled=small_tiled())
def test_simulation_runs_for_any_traits(arch, tiled):
    """The simulator accepts whatever the partitioner produces."""
    from repro.sim.engine import simulate

    chosen = HotTilesPartitioner(arch).partition(tiled).chosen
    sim = simulate(arch, tiled, chosen.assignment, chosen.mode)
    assert sim.time_s > 0
    assert sim.hot.nnz + sim.cold.nnz == tiled.matrix.nnz
