"""IUnaware / homogeneous baseline tests."""

import numpy as np
import pytest

from repro.core.baselines import (
    cold_only_assignment,
    hot_only_assignment,
    iunaware_assignment,
)
from repro.sparse import generators
from repro.sparse.tiling import TiledMatrix
from tests.core.test_partition import tiny_arch


@pytest.fixture(scope="module")
def tiled():
    m = generators.uniform_random(64, 64, 800, seed=0)
    return TiledMatrix(m, 4, 4)


class TestHomogeneous:
    def test_hot_only(self):
        assert hot_only_assignment(5).all()

    def test_cold_only(self):
        assert not cold_only_assignment(5).any()


class TestIUnaware:
    def test_fraction_matches_equation_one(self, tiled):
        arch = tiny_arch(n_hot=1, n_cold=2)
        decision = iunaware_assignment(tiled, arch)
        ex_hw = decision.th_single_worker_s / arch.hot.count
        ex_cw = decision.tc_single_worker_s / arch.cold.count
        assert decision.frac_tile_hot == pytest.approx(ex_cw / (ex_cw + ex_hw))

    def test_assigned_count_matches_fraction(self, tiled):
        decision = iunaware_assignment(tiled, tiny_arch())
        expected = round(decision.frac_tile_hot * tiled.n_tiles)
        assert decision.assignment.sum() == expected

    def test_seeded_reproducibility(self, tiled):
        a = iunaware_assignment(tiled, tiny_arch(), seed=7)
        b = iunaware_assignment(tiled, tiny_arch(), seed=7)
        assert np.array_equal(a.assignment, b.assignment)

    def test_different_seeds_shuffle_placement(self, tiled):
        a = iunaware_assignment(tiled, tiny_arch(), seed=1)
        b = iunaware_assignment(tiled, tiny_arch(), seed=2)
        # Same count (Eq. 1), different placement.
        assert a.assignment.sum() == b.assignment.sum()
        if 0 < a.assignment.sum() < tiled.n_tiles:
            assert not np.array_equal(a.assignment, b.assignment)

    def test_no_hot_workers_gives_all_cold(self, tiled):
        decision = iunaware_assignment(tiled, tiny_arch(n_hot=0))
        assert decision.frac_tile_hot == 0.0
        assert not decision.assignment.any()

    def test_no_cold_workers_gives_all_hot(self, tiled):
        decision = iunaware_assignment(tiled, tiny_arch(n_cold=0))
        assert decision.frac_tile_hot == 1.0
        assert decision.assignment.all()

    def test_more_cold_workers_shrink_hot_fraction(self, tiled):
        few = iunaware_assignment(tiled, tiny_arch(n_cold=2))
        many = iunaware_assignment(tiled, tiny_arch(n_cold=16))
        assert many.frac_tile_hot < few.frac_tile_hot
