"""Partitioning heuristic tests: hand cases, invariants, oracle bounds."""

import numpy as np
import pytest

from repro.arch.heterogeneous import Architecture, WorkerGroup
from repro.core.partition import (
    ExecutionMode,
    Heuristic,
    HotTilesPartitioner,
    exhaustive_partition,
    first_of_type_masks,
    _cutoff_sweep,
    _prefix,
    _suffix,
)
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix
from tests.core.test_model import PROBLEM, cold_worker, hot_worker


def tiny_arch(n_hot=1, n_cold=2, atomic=False, bw_gbs=100.0, pcie_gbs=None):
    return Architecture(
        name="tiny",
        hot=WorkerGroup(hot_worker(), n_hot),
        cold=WorkerGroup(cold_worker(), n_cold),
        mem_bw_gbs=bw_gbs,
        problem=PROBLEM,
        tile_height=4,
        tile_width=4,
        atomic_updates=atomic,
        pcie_bw_gbs=pcie_gbs,
    )


def mixed_tiled(seed=0, n=64, nnz=600):
    rng = np.random.default_rng(seed)
    # A dense block plus scattered background: guarantees both tile kinds.
    r_dense = rng.integers(0, 8, nnz // 2)
    c_dense = rng.integers(0, 8, nnz // 2)
    r_bg = rng.integers(0, n, nnz // 2)
    c_bg = rng.integers(0, n, nnz // 2)
    m = SparseMatrix(n, n, np.concatenate([r_dense, r_bg]), np.concatenate([c_dense, c_bg]))
    return TiledMatrix(m, 4, 4)


class TestHelpers:
    def test_prefix_suffix(self):
        v = np.array([1.0, 2.0, 3.0])
        assert _prefix(v).tolist() == [0.0, 1.0, 3.0, 6.0]
        assert _suffix(v).tolist() == [6.0, 5.0, 3.0, 0.0]

    def test_cutoff_sweep_finds_minimum(self):
        assert _cutoff_sweep(np.array([5.0, 3.0, 2.0, 4.0, 1.0])) == 2

    def test_cutoff_sweep_all_increasing(self):
        assert _cutoff_sweep(np.array([1.0, 2.0, 3.0])) == 0

    def test_cutoff_sweep_all_decreasing(self):
        assert _cutoff_sweep(np.array([3.0, 2.0, 1.0])) == 2

    def test_cutoff_sweep_stops_at_plateau(self):
        assert _cutoff_sweep(np.array([2.0, 2.0, 0.0])) == 0


class TestFirstOfTypeMasks:
    def test_hand_case(self):
        # 2 panels; panel 0 holds tiles 0,1,2 and panel 1 holds tiles 3,4.
        m = SparseMatrix(
            8, 12, [0, 0, 0, 4, 4], [0, 4, 8, 0, 4]
        )
        tiled = TiledMatrix(m, 4, 4)
        assignment = np.array([False, True, True, True, False])
        hot_first, cold_first = first_of_type_masks(tiled, assignment)
        assert hot_first.tolist() == [False, True, False, True, False]
        assert cold_first.tolist() == [True, False, False, False, True]

    def test_all_one_type(self):
        tiled = mixed_tiled()
        hot_first, cold_first = first_of_type_masks(
            tiled, np.zeros(tiled.n_tiles, dtype=bool)
        )
        assert not hot_first.any()
        # One cold-first per non-empty panel.
        assert cold_first.sum() == len(list(tiled.iter_panels()))

    def test_shape_check(self):
        tiled = mixed_tiled()
        with pytest.raises(ValueError, match="assignment"):
            first_of_type_masks(tiled, np.array([True]))


class TestPartitioning:
    def test_dense_tiles_go_hot(self):
        tiled = mixed_tiled()
        result = HotTilesPartitioner(tiny_arch()).partition(tiled)
        nnz = tiled.stats.nnz
        assignment = result.chosen.assignment
        if assignment.any() and (~assignment).any():
            assert nnz[assignment].mean() > nnz[~assignment].mean()

    def test_four_candidates_by_default(self):
        result = HotTilesPartitioner(tiny_arch()).partition(mixed_tiled())
        assert set(result.candidates) == set(Heuristic)

    def test_atomic_arch_parallel_only(self):
        result = HotTilesPartitioner(tiny_arch(atomic=True)).partition(mixed_tiled())
        assert set(result.candidates) == {
            Heuristic.MIN_TIME_PARALLEL,
            Heuristic.MIN_BYTE_PARALLEL,
            Heuristic.BLOCK_SPLIT,
        }
        assert all(
            r.mode is ExecutionMode.PARALLEL for r in result.candidates.values()
        )

    def test_chosen_is_minimum_candidate(self):
        result = HotTilesPartitioner(tiny_arch()).partition(mixed_tiled())
        best = min(r.predicted_time_s for r in result.candidates.values())
        assert result.chosen.predicted_time_s == pytest.approx(best)

    def test_minbyte_variants_share_assignment(self):
        result = HotTilesPartitioner(tiny_arch()).partition(mixed_tiled())
        a = result.candidates[Heuristic.MIN_BYTE_PARALLEL].assignment
        b = result.candidates[Heuristic.MIN_BYTE_SERIAL].assignment
        assert np.array_equal(a, b)

    def test_no_hot_workers_all_cold(self):
        arch = tiny_arch(n_hot=0, n_cold=2)
        tiled = mixed_tiled()
        result = HotTilesPartitioner(arch).partition(tiled)
        assert not result.chosen.assignment.any()
        assert result.candidates == {}

    def test_no_cold_workers_all_hot(self):
        arch = tiny_arch(n_hot=1, n_cold=0)
        result = HotTilesPartitioner(arch).partition(mixed_tiled())
        assert result.chosen.assignment.all()

    def test_hot_nnz_fraction_bounds(self):
        tiled = mixed_tiled()
        result = HotTilesPartitioner(tiny_arch()).partition(tiled)
        frac = result.chosen.hot_nnz_fraction(tiled)
        assert 0.0 <= frac <= 1.0

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_heuristics_near_exhaustive_oracle(self, seed):
        """On tiny instances the chosen heuristic should be close to the
        model-optimal partitioning (and never better, by optimality)."""
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 12, 30)
        cols = rng.integers(0, 12, 30)
        tiled = TiledMatrix(SparseMatrix(12, 12, rows, cols), 4, 4)
        assert tiled.n_tiles <= 9
        partitioner = HotTilesPartitioner(tiny_arch())
        oracle = exhaustive_partition(partitioner, tiled)
        result = partitioner.partition(tiled)
        # The oracle enumerates whole-tile assignments only, so compare it
        # against the best whole-tile candidate; a block split may beat it.
        whole = min(
            r.predicted_time_s
            for h, r in result.candidates.items()
            if h is not Heuristic.BLOCK_SPLIT
        )
        assert whole >= oracle.predicted_time_s - 1e-15
        assert whole <= 1.6 * oracle.predicted_time_s
        assert result.chosen.predicted_time_s <= whole

    def test_exhaustive_rejects_large_instances(self):
        partitioner = HotTilesPartitioner(tiny_arch())
        tiled = mixed_tiled()
        with pytest.raises(ValueError, match="exhaustive"):
            exhaustive_partition(partitioner, tiled, max_tiles=4)


class TestPredictedRuntime:
    def test_serial_formula_hand_case(self):
        """Single-tile matrix: serial runtime = hot side + cold side where
        the empty cold side contributes zero."""
        m = SparseMatrix(4, 4, [0, 1], [0, 1])
        tiled = TiledMatrix(m, 4, 4)
        arch = tiny_arch()
        partitioner = HotTilesPartitioner(arch)
        assignment = np.array([True])
        t_serial, totals = partitioner.predicted_runtime(
            tiled, assignment, ExecutionMode.SERIAL
        )
        assert totals.tc_total == 0.0
        bw = arch.mem_bw_bytes_per_sec
        assert t_serial == pytest.approx(max(totals.th_total, totals.bh_total / bw))

    def test_parallel_adds_merge_when_both_sides_active(self):
        tiled = mixed_tiled()
        arch = tiny_arch()
        partitioner = HotTilesPartitioner(arch)
        assignment = np.zeros(tiled.n_tiles, dtype=bool)
        assignment[0] = True
        _, totals = partitioner.predicted_runtime(tiled, assignment, ExecutionMode.PARALLEL)
        assert totals.t_merge == pytest.approx(arch.merge_time_s(tiled.matrix.n_rows))

    def test_no_merge_for_homogeneous_assignment(self):
        tiled = mixed_tiled()
        partitioner = HotTilesPartitioner(tiny_arch())
        _, totals = partitioner.predicted_runtime(
            tiled, np.zeros(tiled.n_tiles, dtype=bool), ExecutionMode.PARALLEL
        )
        assert totals.t_merge == 0.0

    def test_no_merge_on_atomic_arch(self):
        tiled = mixed_tiled()
        partitioner = HotTilesPartitioner(tiny_arch(atomic=True))
        assignment = np.zeros(tiled.n_tiles, dtype=bool)
        assignment[0] = True
        _, totals = partitioner.predicted_runtime(tiled, assignment, ExecutionMode.PARALLEL)
        assert totals.t_merge == 0.0

    def test_pcie_limits_hot_side(self):
        tiled = mixed_tiled()
        fast = HotTilesPartitioner(tiny_arch())
        slow = HotTilesPartitioner(tiny_arch(pcie_gbs=0.001))
        assignment = np.ones(tiled.n_tiles, dtype=bool)
        t_fast, _ = fast.predicted_runtime(tiled, assignment, ExecutionMode.PARALLEL)
        t_slow, totals = slow.predicted_runtime(tiled, assignment, ExecutionMode.PARALLEL)
        assert t_slow > t_fast
        assert t_slow == pytest.approx(totals.bh_total / (0.001 * 1e9))

    def test_predict_homogeneous_matches_assignment_paths(self, tiled_rmat):
        from repro.core.traits import WorkerKind
        from repro.arch.configs import spade_sextans

        partitioner = HotTilesPartitioner(spade_sextans(4))
        t_hot = partitioner.predict_homogeneous(tiled_rmat, WorkerKind.HOT)
        t_direct, _ = partitioner.predicted_runtime(
            tiled_rmat, np.ones(tiled_rmat.n_tiles, dtype=bool), ExecutionMode.PARALLEL
        )
        assert t_hot == pytest.approx(t_direct)

    def test_more_cold_workers_reduce_cold_time(self):
        tiled = mixed_tiled()
        t2, _ = HotTilesPartitioner(tiny_arch(n_cold=2)).predicted_runtime(
            tiled, np.zeros(tiled.n_tiles, dtype=bool), ExecutionMode.PARALLEL
        )
        t4, _ = HotTilesPartitioner(tiny_arch(n_cold=4)).predicted_runtime(
            tiled, np.zeros(tiled.n_tiles, dtype=bool), ExecutionMode.PARALLEL
        )
        assert t4 <= t2
