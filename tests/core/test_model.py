"""Analytical model tests with hand-computed per-tile costs."""

import numpy as np
import pytest

from repro.core.model import AnalyticalModel
from repro.core.problem import ProblemSpec
from repro.core.traits import (
    OVERLAP_FULL,
    OVERLAP_NONE,
    ReuseType,
    SparseFormat,
    Task,
    Traversal,
    WorkerKind,
    WorkerTraits,
)
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix

#: K=4, 4-byte values/indices -> dense rows are 16 bytes.
PROBLEM = ProblemSpec(k=4, value_bytes=4, index_bytes=4)
VIS_LAT = 1e-9  # exaggerated so memory dominates hand calculations


def cold_worker(**overrides):
    defaults = dict(
        name="cold",
        kind=WorkerKind.COLD,
        macs_per_cycle=1.0,
        simd_width=4,  # 1 cycle per nonzero at K=4
        frequency_ghz=1.0,
        din_reuse=ReuseType.NONE,
        dout_reuse=ReuseType.INTER_TILE,
        dout_first_tile_reuse=ReuseType.INTRA_TILE_DEMAND,
        sparse_format=SparseFormat.COO_LIKE,
        traversal=Traversal.UNTILED_ROW_ORDERED,
        overlap_groups=OVERLAP_FULL,
        vis_lat_s_per_byte=VIS_LAT,
    )
    defaults.update(overrides)
    return WorkerTraits(**defaults)


def hot_worker(**overrides):
    return cold_worker(
        name="hot",
        kind=WorkerKind.HOT,
        din_reuse=ReuseType.INTRA_TILE_STREAM,
        dout_first_tile_reuse=ReuseType.INTRA_TILE_STREAM,
        traversal=Traversal.TILED_ROW_ORDERED,
        **overrides,
    )


@pytest.fixture(scope="module")
def two_tile_matrix():
    """One 4x4 row panel, two tiles: T0 has 3 nnz (2 rows, 2 cols), T1 has
    1 nnz."""
    rows = np.array([0, 0, 1, 2])
    cols = np.array([0, 1, 0, 5])
    m = SparseMatrix(4, 8, rows, cols)
    return TiledMatrix(m, 4, 4)


class TestTileCosts:
    def test_cold_bytes_hand_computed(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        costs = model.tile_costs(two_tile_matrix, cold_worker())
        # T0: sparse 3 nnz * 12 B = 36; Din none-reuse 3 rows * 16 B = 48;
        # Dout inter-tile = 0 under max reuse.
        assert costs.bytes[0] == pytest.approx(36 + 48)
        # T1: sparse 12, Din 16.
        assert costs.bytes[1] == pytest.approx(12 + 16)

    def test_cold_time_is_max_of_tasks(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        costs = model.tile_costs(two_tile_matrix, cold_worker())
        # Full overlap: max(sparse 36ns, din 48ns, compute 3ns) = 48ns.
        assert costs.time_s[0] == pytest.approx(48e-9)
        assert costs.time_s[1] == pytest.approx(16e-9)

    def test_no_overlap_sums_tasks(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        costs = model.tile_costs(two_tile_matrix, cold_worker(overlap_groups=OVERLAP_NONE))
        # Sum: sparse 36 + din 48 + compute 3 = 87 ns for T0.
        assert costs.time_s[0] == pytest.approx(87e-9)

    def test_hot_streams_full_tile_width(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        costs = model.tile_costs(two_tile_matrix, hot_worker())
        # Both tiles stream 4 Din rows = 64 B regardless of nnz.
        assert costs.task_bytes[Task.DIN_READ].tolist() == [64.0, 64.0]

    def test_first_mask_charges_dout(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        first = np.array([True, False])
        costs = model.tile_costs(two_tile_matrix, cold_worker(), first_mask=first)
        # T0 is first of its type in the panel: demand reuse charges its 2
        # unique r_ids for read and write (2 * 16 B each way).
        assert costs.task_bytes[Task.DOUT_READ].tolist() == [32.0, 0.0]
        assert costs.task_bytes[Task.DOUT_WRITE].tolist() == [32.0, 0.0]

    def test_first_mask_stream_variant(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        first = np.array([False, True])
        costs = model.tile_costs(two_tile_matrix, hot_worker(), first_mask=first)
        # Streamed Dout tile: 4 rows * 16 B.
        assert costs.task_bytes[Task.DOUT_READ].tolist() == [0.0, 64.0]

    def test_first_mask_shape_check(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        with pytest.raises(ValueError, match="first_mask"):
            model.tile_costs(two_tile_matrix, cold_worker(), first_mask=np.array([True]))

    def test_compute_time_scales_with_ops(self, two_tile_matrix):
        heavy = AnalyticalModel(PROBLEM.with_ops_per_nnz(8))
        light = AnalyticalModel(PROBLEM)
        w = cold_worker()
        t_heavy = heavy.tile_costs(two_tile_matrix, w).task_times[Task.COMPUTE]
        t_light = light.tile_costs(two_tile_matrix, w).task_times[Task.COMPUTE]
        np.testing.assert_allclose(t_heavy, 8 * t_light)

    def test_csr_sparse_bytes(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        w = cold_worker(sparse_format=SparseFormat.CSR_LIKE)
        costs = model.tile_costs(two_tile_matrix, w)
        # T0: height 4 * 4 B + 3 nnz * 8 B = 40.
        assert costs.task_bytes[Task.SPARSE_READ][0] == pytest.approx(40.0)

    def test_sddmm_writes_scalars(self, two_tile_matrix):
        model = AnalyticalModel(ProblemSpec.sddmm(k=4))
        costs = model.tile_costs(two_tile_matrix, cold_worker())
        assert costs.task_bytes[Task.DOUT_WRITE].tolist() == [3 * 4.0, 1 * 4.0]

    def test_totals_with_mask(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        costs = model.tile_costs(two_tile_matrix, cold_worker())
        mask = np.array([True, False])
        assert costs.total_time(mask) == pytest.approx(costs.time_s[0])
        assert costs.total_bytes() == pytest.approx(costs.bytes.sum())

    def test_matrix_flops(self, two_tile_matrix):
        model = AnalyticalModel(PROBLEM)
        assert model.matrix_flops(two_tile_matrix) == pytest.approx(4 * 2 * 4)


class TestCacheAwareModel:
    """The Sec. X extension: threshold-modeled demand caches."""

    def test_small_working_set_charged_unique_ids(self, two_tile_matrix):
        worker = cold_worker(cache_bytes=1024)  # plenty of 16 B rows
        aware = AnalyticalModel(PROBLEM, cache_aware=True)
        costs = aware.tile_costs(two_tile_matrix, worker)
        # T0 has 3 nnz over 2 distinct columns: 2 rows instead of 3.
        assert costs.task_bytes[Task.DIN_READ].tolist() == [32.0, 16.0]

    def test_thrashing_tile_falls_back_to_per_nonzero(self, two_tile_matrix):
        worker = cold_worker(cache_bytes=16)  # one 16 B row: T0 thrashes
        aware = AnalyticalModel(PROBLEM, cache_aware=True)
        costs = aware.tile_costs(two_tile_matrix, worker)
        assert costs.task_bytes[Task.DIN_READ].tolist() == [48.0, 16.0]

    def test_disabled_without_cache(self, two_tile_matrix):
        aware = AnalyticalModel(PROBLEM, cache_aware=True)
        base = AnalyticalModel(PROBLEM)
        worker = cold_worker(cache_bytes=0)
        np.testing.assert_allclose(
            aware.tile_costs(two_tile_matrix, worker).bytes,
            base.tile_costs(two_tile_matrix, worker).bytes,
        )

    def test_never_increases_traffic(self, two_tile_matrix):
        worker = cold_worker(cache_bytes=256)
        aware = AnalyticalModel(PROBLEM, cache_aware=True)
        base = AnalyticalModel(PROBLEM)
        assert np.all(
            aware.tile_costs(two_tile_matrix, worker).bytes
            <= base.tile_costs(two_tile_matrix, worker).bytes + 1e-12
        )

    def test_stream_workers_unaffected(self, two_tile_matrix):
        worker = hot_worker(cache_bytes=1024)
        aware = AnalyticalModel(PROBLEM, cache_aware=True)
        base = AnalyticalModel(PROBLEM)
        np.testing.assert_allclose(
            aware.tile_costs(two_tile_matrix, worker).bytes,
            base.tile_costs(two_tile_matrix, worker).bytes,
        )


class TestEdgeTiles:
    def test_stream_charge_clipped_at_matrix_edge(self):
        # 4x6 matrix with 4-wide tiles: the second tile is only 2 wide.
        m = SparseMatrix(4, 6, [0, 0], [0, 5])
        tiled = TiledMatrix(m, 4, 4)
        costs = AnalyticalModel(PROBLEM).tile_costs(tiled, hot_worker())
        assert costs.task_bytes[Task.DIN_READ].tolist() == [64.0, 32.0]
