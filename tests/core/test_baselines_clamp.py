"""Property tests for ``clamp_hot_tile_count``: the IUnaware baseline must
never collapse to an empty hot or cold set for an interior fraction.

Regression: ``round(0.5 * n)`` uses banker's rounding, so e.g. frac=0.5 with
n=1 rounded to 0 hot tiles and the "heterogeneity-unaware" baseline silently
became cold-only.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.baselines import clamp_hot_tile_count, iunaware_assignment


class TestEdges:
    def test_zero_or_negative_fraction_gives_zero(self):
        assert clamp_hot_tile_count(0.0, 100) == 0
        assert clamp_hot_tile_count(-0.5, 100) == 0

    def test_full_fraction_gives_all(self):
        assert clamp_hot_tile_count(1.0, 100) == 100
        assert clamp_hot_tile_count(1.5, 100) == 100

    def test_empty_tiling(self):
        assert clamp_hot_tile_count(0.5, 0) == 0

    def test_single_tile_rounds_half_up(self):
        assert clamp_hot_tile_count(0.5, 1) == 1
        assert clamp_hot_tile_count(0.49, 1) == 0

    def test_bankers_rounding_regression(self):
        # round(0.5 * 1) == 0 under banker's rounding; the clamp keeps one.
        assert clamp_hot_tile_count(0.5, 1) == 1
        # Tiny interior fractions keep at least one hot tile...
        assert clamp_hot_tile_count(1e-6, 8) == 1
        # ...and near-one interior fractions keep at least one cold tile.
        assert clamp_hot_tile_count(1.0 - 1e-6, 8) == 7


@given(
    frac=st.floats(min_value=1e-9, max_value=1.0, exclude_max=True),
    n=st.integers(min_value=2, max_value=10_000),
)
def test_interior_fraction_keeps_both_sets_nonempty(frac, n):
    count = clamp_hot_tile_count(frac, n)
    assert 1 <= count <= n - 1


@given(
    frac=st.floats(min_value=0.0, max_value=1.0),
    n=st.integers(min_value=0, max_value=1_000),
)
def test_count_in_range_and_monotone_in_fraction(frac, n):
    count = clamp_hot_tile_count(frac, n)
    assert 0 <= count <= n
    assert clamp_hot_tile_count(min(frac + 0.1, 1.0), n) >= count


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_iunaware_assignment_matches_clamp(seed):
    from repro.arch.configs import spade_sextans
    from repro.sparse import generators
    from repro.sparse.tiling import TiledMatrix

    arch = spade_sextans(4)
    matrix = generators.rmat(scale=9, nnz=3_000, seed=seed)
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    decision = iunaware_assignment(tiled, arch, seed=seed)
    n = tiled.n_tiles
    n_hot = int(decision.assignment.sum())
    assert n_hot == clamp_hot_tile_count(decision.frac_tile_hot, n)
    # Eq. 1 gives a strictly interior fraction here, so neither side is empty.
    assert 0.0 < decision.frac_tile_hot < 1.0
    assert 1 <= n_hot <= n - 1
