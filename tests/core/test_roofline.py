"""Roofline (IUnaware holistic model) tests."""

import pytest

from repro.core.problem import ProblemSpec
from repro.core.roofline import expected_unique, roofline_estimate
from repro.core.traits import ReuseType
from repro.sparse import generators
from repro.sparse.matrix import SparseMatrix
from tests.core.test_model import cold_worker, hot_worker

PROBLEM = ProblemSpec(k=4, value_bytes=4, index_bytes=4)
BW = 100e9


class TestExpectedUnique:
    def test_zero_balls(self):
        assert expected_unique(100, 0) == 0.0

    def test_zero_bins(self):
        assert expected_unique(0, 10) == 0.0

    def test_one_ball(self):
        assert expected_unique(100, 1) == pytest.approx(1.0)

    def test_saturates_at_bins(self):
        assert expected_unique(10, 10_000) == pytest.approx(10.0, rel=1e-6)

    def test_monotone_in_balls(self):
        values = [expected_unique(64, b) for b in range(0, 200, 10)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_never_exceeds_either_bound(self):
        for balls in (1, 5, 50, 500):
            e = expected_unique(64, balls)
            assert e <= 64 + 1e-9
            assert e <= balls + 1e-9


class TestRooflineEstimate:
    def test_cold_bytes_matrix_level(self):
        m = SparseMatrix(8, 8, [0, 1, 2], [0, 1, 2])
        est = roofline_estimate(m, cold_worker(), PROBLEM, BW)
        # Din none: 3 rows * 16 B; Dout inter->demand over whole matrix:
        # E[unique of 3 balls in 8 bins] read+write; sparse 3 * 12 B.
        dout_rows = expected_unique(8, 3)
        assert est.bytes_total == pytest.approx(3 * 16 + 2 * dout_rows * 16 + 36)

    def test_hot_streams_whole_matrix_once(self):
        m = SparseMatrix(8, 8, [0], [0])
        est = roofline_estimate(m, hot_worker(), PROBLEM, BW)
        # Din stream: 8 rows; Dout inter->stream: 8 rows read+write.
        assert est.bytes_total == pytest.approx(8 * 16 + 2 * 8 * 16 + 12)

    def test_time_is_roofline_max(self):
        m = generators.uniform_random(256, 256, 5000, seed=0)
        est = roofline_estimate(m, cold_worker(), PROBLEM, BW)
        assert est.time_s == pytest.approx(max(est.compute_time_s, est.memory_time_s))

    def test_memory_time_scales_inversely_with_bw(self):
        m = generators.uniform_random(256, 256, 5000, seed=0)
        a = roofline_estimate(m, cold_worker(), PROBLEM, BW)
        b = roofline_estimate(m, cold_worker(), PROBLEM, BW / 2)
        assert b.memory_time_s == pytest.approx(2 * a.memory_time_s)

    def test_underestimates_hot_traffic_on_power_law(self, small_rmat):
        """The paper's IUnaware pitfall: at matrix granularity the
        streaming worker's estimated traffic is far below the true tiled
        streaming traffic for a power-law matrix."""
        from repro.core.model import AnalyticalModel
        from repro.sparse.tiling import TiledMatrix

        worker = hot_worker()
        est = roofline_estimate(small_rmat, worker, PROBLEM, BW)
        tiled = TiledMatrix(small_rmat, 64, 64)
        true_costs = AnalyticalModel(PROBLEM).tile_costs(tiled, worker)
        assert est.bytes_total < 0.5 * true_costs.bytes.sum()

    def test_demand_reuse_uses_expected_unique(self):
        m = generators.uniform_random(64, 64, 500, seed=1)
        worker = cold_worker(din_reuse=ReuseType.INTRA_TILE_DEMAND)
        est_demand = roofline_estimate(m, worker, PROBLEM, BW)
        est_none = roofline_estimate(m, cold_worker(), PROBLEM, BW)
        assert est_demand.bytes_total < est_none.bytes_total
