"""Table I formula tests."""

import numpy as np
import pytest

from repro.core.reuse import (
    dense_rows_accessed,
    effective_tile_heights,
    effective_tile_widths,
    sparse_bytes_accessed,
    sparse_items_accessed,
)
from repro.core.traits import ReuseType, SparseFormat
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix

NNZ = np.array([5.0, 1.0, 12.0])
UNIQ = np.array([3.0, 1.0, 4.0])
EXT = np.array([8.0, 8.0, 8.0])


class TestDenseRows:
    def test_none_reuse_charges_per_nonzero(self):
        assert dense_rows_accessed(ReuseType.NONE, NNZ, UNIQ, EXT).tolist() == NNZ.tolist()

    def test_demand_reuse_charges_unique_ids(self):
        out = dense_rows_accessed(ReuseType.INTRA_TILE_DEMAND, NNZ, UNIQ, EXT)
        assert out.tolist() == UNIQ.tolist()

    def test_stream_reuse_charges_tile_extent(self):
        out = dense_rows_accessed(ReuseType.INTRA_TILE_STREAM, NNZ, UNIQ, EXT)
        assert out.tolist() == EXT.tolist()

    def test_inter_tile_charges_nothing(self):
        out = dense_rows_accessed(ReuseType.INTER_TILE, NNZ, UNIQ, EXT)
        assert out.tolist() == [0.0, 0.0, 0.0]

    def test_figure3_example(self):
        """Fig. 3: T1 (1 nnz) and T2 (5 nnz, 3 unique cols) on 3-wide tiles."""
        nnz = np.array([1.0, 5.0])
        uniq_cids = np.array([1.0, 3.0])
        width = np.array([3.0, 3.0])
        cold = dense_rows_accessed(ReuseType.NONE, nnz, uniq_cids, width)
        hot = dense_rows_accessed(ReuseType.INTRA_TILE_STREAM, nnz, uniq_cids, width)
        # Cold: 1 row for T1, 5 rows for T2.  Hot: 3 rows for both.
        assert cold.tolist() == [1.0, 5.0]
        assert hot.tolist() == [3.0, 3.0]
        assert cold[0] < hot[0]  # T1 is a cold tile
        assert hot[1] < cold[1]  # T2 is a hot tile


class TestSparseItems:
    def test_coo_three_items_per_nonzero(self):
        heights = np.array([64.0, 64.0, 64.0])
        out = sparse_items_accessed(SparseFormat.COO_LIKE, NNZ, heights)
        assert out.tolist() == (3 * NNZ).tolist()

    def test_csr_height_plus_two_per_nonzero(self):
        heights = np.array([64.0, 32.0, 64.0])
        out = sparse_items_accessed(SparseFormat.CSR_LIKE, NNZ, heights)
        assert out.tolist() == (heights + 2 * NNZ).tolist()

    def test_coo_bytes_split(self):
        heights = np.array([64.0])
        out = sparse_bytes_accessed(SparseFormat.COO_LIKE, np.array([10.0]), heights, 4, 4)
        assert out[0] == pytest.approx(10 * 12)

    def test_csr_bytes_split(self):
        out = sparse_bytes_accessed(
            SparseFormat.CSR_LIKE, np.array([10.0]), np.array([64.0]), 8, 8
        )
        assert out[0] == pytest.approx(64 * 8 + 10 * 16)


class TestEffectiveExtents:
    def test_interior_and_edge_tiles(self):
        # 100x90 matrix, 64x64 tiles: edge tiles are clipped.
        m = SparseMatrix(100, 90, [0, 70, 99], [0, 70, 89])
        tiled = TiledMatrix(m, 64, 64)
        widths = effective_tile_widths(tiled)
        heights = effective_tile_heights(tiled)
        by_pos = {
            (int(r), int(c)): (heights[i], widths[i])
            for i, (r, c) in enumerate(zip(tiled.stats.tile_row, tiled.stats.tile_col))
        }
        assert by_pos[(0, 0)] == (64.0, 64.0)
        assert by_pos[(1, 1)] == (36.0, 26.0)  # 100-64, 90-64
