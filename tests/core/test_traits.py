"""Worker trait tests."""

import dataclasses

import pytest

from repro.core.traits import (
    OVERLAP_FULL,
    OVERLAP_NONE,
    ReuseType,
    SparseFormat,
    Task,
    Traversal,
    WorkerKind,
    WorkerTraits,
)


def make_traits(**overrides):
    defaults = dict(
        name="test",
        kind=WorkerKind.COLD,
        macs_per_cycle=1.0,
        simd_width=16,
        frequency_ghz=1.0,
        din_reuse=ReuseType.NONE,
        dout_reuse=ReuseType.INTRA_TILE_DEMAND,
        sparse_format=SparseFormat.COO_LIKE,
        traversal=Traversal.UNTILED_ROW_ORDERED,
    )
    defaults.update(overrides)
    return WorkerTraits(**defaults)


class TestValidation:
    def test_valid_traits(self):
        assert make_traits().name == "test"

    @pytest.mark.parametrize("field", ["macs_per_cycle", "simd_width", "frequency_ghz"])
    def test_non_positive_compute_rejected(self, field):
        with pytest.raises(ValueError, match="positive"):
            make_traits(**{field: 0})

    def test_negative_vis_lat_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            make_traits(vis_lat_s_per_byte=-1.0)

    def test_overlap_groups_must_cover_all_tasks(self):
        with pytest.raises(ValueError, match="cover"):
            make_traits(overlap_groups=(frozenset({Task.COMPUTE}),))

    def test_overlap_groups_must_be_disjoint(self):
        groups = (
            frozenset({Task.COMPUTE, Task.DIN_READ}),
            frozenset({Task.DIN_READ, Task.DOUT_READ, Task.DOUT_WRITE, Task.SPARSE_READ}),
        )
        with pytest.raises(ValueError, match="overlap"):
            make_traits(overlap_groups=groups)

    def test_first_tile_reuse_cannot_be_inter(self):
        with pytest.raises(ValueError, match="INTER_TILE"):
            make_traits(
                dout_reuse=ReuseType.INTER_TILE,
                dout_first_tile_reuse=ReuseType.INTER_TILE,
            )


class TestComputeModel:
    def test_cycles_per_nonzero_simd_split(self):
        t = make_traits(macs_per_cycle=1.0, simd_width=16)
        assert t.cycles_per_nonzero(32) == pytest.approx(2.0)
        assert t.cycles_per_nonzero(16) == pytest.approx(1.0)
        assert t.cycles_per_nonzero(17) == pytest.approx(2.0)  # ceil

    def test_cycles_scale_with_ops_per_nnz(self):
        t = make_traits()
        assert t.cycles_per_nonzero(32, ops_per_nnz=4) == pytest.approx(
            4 * t.cycles_per_nonzero(32)
        )

    def test_fixed_nnz_per_cycle_ignores_intensity(self):
        t = make_traits(fixed_nnz_per_cycle=20.0)
        assert t.cycles_per_nonzero(32, 1) == pytest.approx(0.05)
        assert t.cycles_per_nonzero(32, 16) == pytest.approx(0.05)

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="positive"):
            make_traits().cycles_per_nonzero(0)

    def test_throughput_and_gflops(self):
        t = make_traits(macs_per_cycle=2.0, simd_width=32, frequency_ghz=1.0)
        assert t.nnz_throughput_per_sec(32) == pytest.approx(2e9)
        # 2 Gnnz/s * 64 flops = 128 GFLOP/s.
        assert t.peak_gflops(32) == pytest.approx(128.0)

    def test_mem_rate(self):
        t = make_traits(mem_bytes_per_cycle=8.0, frequency_ghz=2.0)
        assert t.mem_rate_bytes_per_sec() == pytest.approx(16e9)


class TestReuseHelpers:
    def test_effective_first_reuse_passthrough(self):
        t = make_traits(din_reuse=ReuseType.INTRA_TILE_STREAM)
        assert t.effective_first_reuse("din") is ReuseType.INTRA_TILE_STREAM

    def test_effective_first_reuse_inter(self):
        t = make_traits(
            dout_reuse=ReuseType.INTER_TILE,
            dout_first_tile_reuse=ReuseType.INTRA_TILE_STREAM,
        )
        assert t.effective_first_reuse("dout") is ReuseType.INTRA_TILE_STREAM

    def test_effective_first_reuse_missing(self):
        t = make_traits(dout_reuse=ReuseType.INTER_TILE, dout_first_tile_reuse=None)
        with pytest.raises(ValueError, match="first_tile_reuse required"):
            t.effective_first_reuse("dout")

    def test_effective_first_reuse_bad_operand(self):
        with pytest.raises(ValueError, match="operand"):
            make_traits().effective_first_reuse("dense")


class TestCopies:
    def test_with_vis_lat(self):
        t = make_traits(vis_lat_s_per_byte=1e-10)
        t2 = t.with_vis_lat(5e-11)
        assert t2.vis_lat_s_per_byte == 5e-11
        assert t.vis_lat_s_per_byte == 1e-10  # original untouched

    def test_scaled_compute(self):
        t = make_traits(macs_per_cycle=2.0)
        assert t.scaled_compute(3.0).macs_per_cycle == pytest.approx(6.0)

    def test_scaled_compute_fixed_rate(self):
        t = make_traits(fixed_nnz_per_cycle=10.0)
        assert t.scaled_compute(2.0).fixed_nnz_per_cycle == pytest.approx(20.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            make_traits().name = "other"

    def test_overlap_constants(self):
        assert len(OVERLAP_FULL) == 1 and len(OVERLAP_FULL[0]) == 5
        assert len(OVERLAP_NONE) == 5
