"""Worker registry tests."""

import pytest

from repro.core.traits import WorkerKind, WorkerTraits
from repro.workers.registry import WORKER_FACTORIES, make_worker


class TestRegistry:
    def test_all_paper_workers_registered(self):
        assert {"spade-pe", "sextans", "sextans-enhanced", "piuma-mtp", "piuma-stp"} <= set(
            WORKER_FACTORIES
        )

    @pytest.mark.parametrize("name", sorted(WORKER_FACTORIES))
    def test_factories_build_valid_traits(self, name):
        worker = make_worker(name)
        assert isinstance(worker, WorkerTraits)
        assert worker.kind in (WorkerKind.HOT, WorkerKind.COLD)
        assert worker.cycles_per_nonzero(32) > 0

    def test_kwargs_forwarded(self):
        worker = make_worker("sextans", system_scale=8)
        assert worker.macs_per_cycle == pytest.approx(40.0)

    def test_unknown_worker(self):
        with pytest.raises(ValueError, match="unknown worker"):
            make_worker("gpu")
