"""Architecture abstraction tests."""

import pytest

from repro.arch.heterogeneous import Architecture, WorkerGroup
from repro.core.problem import ProblemSpec
from repro.core.traits import WorkerKind
from tests.core.test_model import PROBLEM, cold_worker, hot_worker


def make_arch(**overrides):
    defaults = dict(
        name="t",
        hot=WorkerGroup(hot_worker(), 1),
        cold=WorkerGroup(cold_worker(), 4),
        mem_bw_gbs=100.0,
        problem=PROBLEM,
        tile_height=4,
        tile_width=4,
    )
    defaults.update(overrides)
    return Architecture(**defaults)


class TestValidation:
    def test_valid(self):
        assert make_arch().tile_shape() == (4, 4)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            WorkerGroup(cold_worker(), -1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            make_arch(mem_bw_gbs=0)

    def test_bad_pcie_rejected(self):
        with pytest.raises(ValueError, match="PCIe"):
            make_arch(pcie_bw_gbs=0)

    def test_bad_tile_rejected(self):
        with pytest.raises(ValueError, match="tile"):
            make_arch(tile_height=0)

    def test_no_workers_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            make_arch(
                hot=WorkerGroup(hot_worker(), 0), cold=WorkerGroup(cold_worker(), 0)
            )

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="hot group"):
            make_arch(hot=WorkerGroup(cold_worker(), 1))
        with pytest.raises(ValueError, match="cold group"):
            make_arch(cold=WorkerGroup(hot_worker(), 1))


class TestBehaviour:
    def test_unit_conversions(self):
        arch = make_arch(mem_bw_gbs=205.0, pcie_bw_gbs=32.0)
        assert arch.mem_bw_bytes_per_sec == pytest.approx(205e9)
        assert arch.pcie_bw_bytes_per_sec == pytest.approx(32e9)
        assert make_arch().pcie_bw_bytes_per_sec is None

    def test_group_lookup(self):
        arch = make_arch()
        assert arch.group(WorkerKind.HOT) is arch.hot
        assert arch.group(WorkerKind.COLD) is arch.cold

    def test_merge_time_three_passes(self):
        arch = make_arch(mem_bw_gbs=100.0)
        n_rows = 1000
        expected = 3.0 * n_rows * PROBLEM.dense_row_bytes / 100e9
        assert arch.merge_time_s(n_rows) == pytest.approx(expected)

    def test_merge_time_zero_with_atomics(self):
        assert make_arch(atomic_updates=True).merge_time_s(1000) == 0.0

    def test_with_calibrated_keeps_counts(self):
        arch = make_arch()
        out = arch.with_calibrated(
            arch.hot.traits.with_vis_lat(1e-12), arch.cold.traits.with_vis_lat(1e-12)
        )
        assert out.hot.count == arch.hot.count
        assert out.cold.traits.vis_lat_s_per_byte == 1e-12

    def test_with_problem(self):
        arch = make_arch()
        new = arch.with_problem(ProblemSpec(k=8, value_bytes=8, index_bytes=8))
        assert new.problem.k == 8
        assert new.tile_shape() == arch.tile_shape()

    def test_group_peak_mem_rate(self):
        group = WorkerGroup(cold_worker(mem_bytes_per_cycle=10.0, frequency_ghz=1.0), 4)
        assert group.peak_mem_rate_bytes_per_sec == pytest.approx(4 * 10e9)

    def test_str_mentions_counts(self):
        text = str(make_arch())
        assert "4xcold" in text and "1xhot" in text
