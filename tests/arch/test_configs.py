"""Concrete architecture configuration tests (Table IV encodings)."""

import pytest

from repro.arch.configs import (
    MATRIX_SCALE_DIVISOR,
    piuma,
    spade_sextans,
    spade_sextans_iso_scale,
    spade_sextans_pcie,
)
from repro.core.traits import ReuseType, SparseFormat, Traversal, WorkerKind


class TestSpadeSextans:
    @pytest.mark.parametrize(
        "scale,n_pes,macs,tile_w",
        [(1, 4, 5, 32), (2, 8, 10, 64), (4, 16, 20, 128), (8, 32, 40, 256)],
    )
    def test_table_iv_scales(self, scale, n_pes, macs, tile_w):
        arch = spade_sextans(scale)
        assert arch.cold.count == n_pes
        assert arch.hot.count == 1
        assert arch.hot.traits.macs_per_cycle == pytest.approx(macs)
        assert arch.tile_width == tile_w

    def test_common_parameters(self):
        arch = spade_sextans(4)
        assert arch.mem_bw_gbs == pytest.approx(205.0)
        assert arch.cold.traits.frequency_ghz == pytest.approx(0.8)
        assert arch.tile_height == 8192 // MATRIX_SCALE_DIVISOR
        assert not arch.atomic_updates
        assert arch.pcie_bw_gbs is None
        assert arch.problem.value_bytes == 4  # fp32 (Sec. VII-A)

    def test_table_iii_reuse_types(self):
        arch = spade_sextans(4)
        spade, sextans = arch.cold.traits, arch.hot.traits
        assert spade.din_reuse is ReuseType.NONE
        assert spade.dout_reuse is ReuseType.INTER_TILE
        assert spade.sparse_format is SparseFormat.COO_LIKE
        assert spade.traversal is Traversal.UNTILED_ROW_ORDERED
        assert sextans.din_reuse is ReuseType.INTRA_TILE_STREAM
        assert sextans.dout_reuse is ReuseType.INTER_TILE
        assert sextans.sparse_format is SparseFormat.COO_LIKE
        assert sextans.traversal is Traversal.TILED_ROW_ORDERED

    def test_kinds(self):
        arch = spade_sextans(4)
        assert arch.cold.traits.kind is WorkerKind.COLD
        assert arch.hot.traits.kind is WorkerKind.HOT


class TestIsoScale:
    def test_symmetric_matches_plain(self):
        assert spade_sextans_iso_scale(4, 4).name == spade_sextans(4).name

    def test_skewed_counts(self):
        arch = spade_sextans_iso_scale(3, 5)
        assert arch.cold.count == 12
        assert arch.hot.traits.macs_per_cycle == pytest.approx(25)

    def test_no_hot_workers(self):
        arch = spade_sextans_iso_scale(8, 0)
        assert arch.hot.count == 0
        assert arch.cold.count == 32
        assert arch.tile_width == arch.tile_height  # free dimension

    def test_no_cold_workers(self):
        arch = spade_sextans_iso_scale(0, 8)
        assert arch.cold.count == 0
        assert arch.hot.traits.macs_per_cycle == pytest.approx(40)

    def test_both_zero_rejected(self):
        with pytest.raises(ValueError, match="not both zero"):
            spade_sextans_iso_scale(0, 0)


class TestPcie:
    def test_pcie_link_present(self):
        arch = spade_sextans_pcie(4)
        assert arch.pcie_bw_gbs == pytest.approx(32.0)

    def test_enhanced_sextans_fixed_rate(self):
        arch = spade_sextans_pcie(4)
        assert arch.hot.traits.fixed_nnz_per_cycle == pytest.approx(20.0)
        # Intensity-independent compute (Sec. VII-A).
        assert arch.hot.traits.cycles_per_nonzero(32, 16) == pytest.approx(
            arch.hot.traits.cycles_per_nonzero(32, 1)
        )

    def test_ops_per_nnz_propagates(self):
        arch = spade_sextans_pcie(4, ops_per_nnz=8)
        assert arch.problem.ops_per_nnz == 8


class TestPiuma:
    def test_worker_mix(self):
        arch = piuma()
        assert arch.cold.count == 4  # MTPs
        assert arch.hot.count == 2  # STPs

    def test_atomic_updates(self):
        assert piuma().atomic_updates

    def test_double_precision(self):
        arch = piuma()
        assert arch.problem.value_bytes == 8
        assert arch.problem.dense_row_bytes == 256

    def test_table_iii_reuse_types(self):
        arch = piuma()
        mtp, stp = arch.cold.traits, arch.hot.traits
        assert mtp.sparse_format is SparseFormat.CSR_LIKE
        assert mtp.din_reuse is ReuseType.NONE
        assert mtp.dout_reuse is ReuseType.INTER_TILE
        assert stp.sparse_format is SparseFormat.CSR_LIKE
        assert stp.din_reuse is ReuseType.INTRA_TILE_STREAM
        assert stp.dout_reuse is ReuseType.INTRA_TILE_DEMAND

    def test_hot_cold_throughput_ratio_below_spade_sextans(self):
        """Paper Sec. VIII-A: the hot/cold compute ratio in PIUMA is
        smaller than in SPADE-Sextans."""
        pi = piuma()
        ss = spade_sextans(4)

        def ratio(arch):
            k = arch.problem.k
            hot = arch.hot.count * arch.hot.traits.nnz_throughput_per_sec(k)
            cold = arch.cold.count * arch.cold.traits.nnz_throughput_per_sec(k)
            return hot / cold

        assert ratio(pi) < ratio(ss)

    def test_stp_scratchpad_fits_tile(self):
        arch = piuma()
        stp = arch.hot.traits
        assert stp.scratchpad_bytes >= arch.tile_width * arch.problem.dense_row_bytes
