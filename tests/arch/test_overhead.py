"""Merger-module overhead estimate tests (paper Sec. VII-C)."""

import pytest

from repro.arch.overhead import merger_overhead_estimate


class TestMergerOverhead:
    def test_default_below_twenty_percent_of_spade_pe(self):
        """The paper's claim: the Merger costs less than 20% of one SPADE
        PE in both area and power."""
        est = merger_overhead_estimate()
        assert 0 < est.area_ratio_vs_spade_pe < 0.20
        assert 0 < est.power_ratio_vs_spade_pe < 0.20

    def test_scales_with_lanes(self):
        small = merger_overhead_estimate(simd_lanes=8)
        big = merger_overhead_estimate(simd_lanes=32)
        assert big.area_mm2 > small.area_mm2
        assert big.power_mw > small.power_mw

    def test_scales_with_registers(self):
        small = merger_overhead_estimate(register_kb=1.0)
        big = merger_overhead_estimate(register_kb=8.0)
        assert big.area_mm2 > small.area_mm2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="positive"):
            merger_overhead_estimate(simd_lanes=0)
        with pytest.raises(ValueError, match="positive"):
            merger_overhead_estimate(register_kb=-1.0)
