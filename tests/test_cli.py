"""CLI tests."""

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fig18_subset(self, capsys):
        assert main(["fig18", "--subset", "ski"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 18" in out
        assert "completed in" in out

    def test_run_fig04_subset_with_seed(self, capsys):
        assert main(["fig04", "--subset", "pap", "--seed", "3"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_fig05_single_matrix(self, capsys):
        assert main(["fig05", "--subset", "pap"]) == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_all_experiments_registered(self):
        assert {"fig04", "fig10", "fig16", "table09", "fig17", "fig18"} <= set(EXPERIMENTS)

    def test_csv_export(self, capsys, tmp_path):
        out = tmp_path / "rows.csv"
        assert main(["fig18", "--subset", "ski", "--csv", str(out)]) == 0
        assert out.exists()
        assert len(out.read_text().splitlines()) == 2


class TestExecutorFlags:
    def test_jobs_must_be_positive(self):
        import pytest

        with pytest.raises(SystemExit, match="--jobs"):
            main(["fig18", "--subset", "ski", "--jobs", "0"])

    def test_cache_dir_reused_across_runs(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = ["fig04", "--subset", "pap", "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "executor:" in cold
        assert "0 hit" in cold
        # Second invocation serves every cell from the on-disk cache.
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "100% hit rate" in warm
        assert "0 miss" in warm

    def test_no_cache_disables_reuse(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = [
            "fig04", "--subset", "pap", "--cache-dir", cache_dir, "--no-cache"
        ]
        assert main(args) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 hit" in out
        assert not (tmp_path / "cache").exists()

    def test_sweep_accepts_executor_flags(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = [
            "sweep", "gea", "--kind", "k", "--points", "8",
            "--cache-dir", cache_dir,
        ]
        assert main(args) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "100% hit rate" in out


class TestPartitionCommand:
    @staticmethod
    def _write_matrix(tmp_path):
        from repro.sparse import generators
        from repro.sparse.mmio import write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(
            generators.community_blocks(512, 8_000, 8, seed=2), path
        )
        return str(path)

    def test_partition_basic(self, capsys, tmp_path):
        path = self._write_matrix(tmp_path)
        assert main(["partition", path]) == 0
        out = capsys.readouterr().out
        assert "partitioned" in out
        assert "heuristic" in out

    def test_partition_verify(self, capsys, tmp_path):
        path = self._write_matrix(tmp_path)
        assert main(["partition", path, "--verify"]) == 0
        assert "verification" in capsys.readouterr().out

    def test_partition_save_formats(self, capsys, tmp_path):
        import numpy as np

        path = self._write_matrix(tmp_path)
        out_dir = tmp_path / "formats"
        assert main(["partition", path, "--save-dir", str(out_dir)]) == 0
        files = list(out_dir.glob("*.npz"))
        assert files
        loaded = np.load(files[0])
        assert len(loaded.files) > 0

    def test_partition_piuma(self, capsys, tmp_path):
        path = self._write_matrix(tmp_path)
        assert main(["partition", path, "--arch", "piuma"]) == 0
        assert "piuma" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_benchmark_matrix(self, capsys):
        assert main(["sweep", "gea", "--kind", "k", "--points", "8", "16"]) == 0
        out = capsys.readouterr().out
        assert "Sweep over K" in out
        assert "best strategy per point" in out

    def test_sweep_mtx_file(self, capsys, tmp_path):
        path = TestPartitionCommand._write_matrix(tmp_path)
        assert main(["sweep", path, "--kind", "bandwidth", "--points", "1", "2"]) == 0
        assert "bandwidth factor" in capsys.readouterr().out

    def test_sweep_cold_count(self, capsys):
        assert main(["sweep", "gea", "--kind", "cold-count", "--points", "4", "8"]) == 0
        assert "cold workers" in capsys.readouterr().out

    def test_sweep_listed(self, capsys):
        assert main(["list"]) == 0
        assert "sweep" in capsys.readouterr().out


class TestVersionAndUnknown:
    def test_version_flag(self, capsys):
        import repro

        assert main(["--version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_short_flag(self, capsys):
        assert main(["-V"]) == 0
        assert "hottiles" in capsys.readouterr().out

    def test_unknown_subcommand_one_line_hint(self, capsys):
        assert main(["deploy"]) == 2
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1
        assert "serve" in err and "cache" in err

    def test_new_subcommands_listed(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("serve", "loadgen", "cache"):
            assert name in out


class TestCacheCommand:
    def test_stats_empty(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries:     0" in out
        assert "unbounded" in out

    def test_stats_after_experiment_run(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "c")
        assert main(["fig04", "--subset", "pap", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:     0" not in out  # at least one cached cell
        assert "misses" in out

    def test_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "c")
        assert main(["fig04", "--subset", "pap", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:     0" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_starts_serves_and_drains_on_sigint(self, tmp_path):
        import json
        import os
        import re
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--workers", "1",
                "--store-dir", str(tmp_path / "plans"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
            assert match, f"no server address in startup line: {line!r}"
            base = f"http://127.0.0.1:{match.group(1)}"
            with urllib.request.urlopen(base + "/healthz", timeout=10) as resp:
                assert resp.status == 200
            payload = json.dumps(
                {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": 0}}
            ).encode()
            req = urllib.request.Request(
                base + "/plan", data=payload,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(req, timeout=60) as resp:
                assert json.loads(resp.read())["served"] == "computed"
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
            assert "draining" in out
            assert "completed=1" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


class TestLoadgenCommand:
    def test_loadgen_against_in_process_server(self, capsys, tmp_path):
        import threading

        from repro.service.httpd import make_server
        from repro.service.planner import PlanService
        from repro.service.store import PlanStore

        service = PlanService(store=PlanStore(tmp_path / "plans"), workers=2)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            code = main(
                [
                    "loadgen", "--url", url, "--requests", "20",
                    "--concurrency", "4", "--plans", "2",
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "cold:" in out and "warm:" in out
            assert "reconcile" in out
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestTraceCommand:
    def test_trace_writes_chrome_json_and_summary(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "pap", "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "bandwidth |" in out
        assert "sim.simulate" in out  # flamegraph summary mentions the root span
        trace = json.loads(out_path.read_text())
        events = trace["traceEvents"]
        assert {"M", "X", "i", "C"} <= {e["ph"] for e in events}
        names = {e.get("name") for e in events}
        assert {"sim.simulate", "pipeline.preprocess", "rebalance"} <= names

    def test_trace_no_summary(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "pap", "--no-summary", "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "[sim] spans" not in out
        assert out_path.exists()

    def test_trace_listed_as_subcommand(self, capsys):
        assert main(["list"]) == 0
        assert "trace" in capsys.readouterr().out

    def test_experiment_trace_flag_writes_file(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "fig.json"
        assert main(["fig04", "--subset", "pap", "--trace", str(out_path)]) == 0
        assert "trace written to" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "executor.run_cells" in names
