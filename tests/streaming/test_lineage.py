"""Lineage heads, digest chains, registry resolution, and the delta API."""

import json
import threading

import numpy as np
import pytest

from repro.core.partition import HotTilesPartitioner
from repro.experiments.cache import stable_digest
from repro.service.httpd import make_server
from repro.service.planner import PlanService, ServiceClosed
from repro.service.protocol import PlanRequest
from repro.service.store import PlanStore
from repro.sparse.tiling import TiledMatrix
from repro.streaming.delta import DeltaBatch
from repro.streaming.lineage import (
    LineageRegistry,
    MatrixLineage,
    StaleDigestError,
    UnknownLineageError,
)

RMAT = {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": 0}}
DELTA = {
    "insert_rows": [0, 1],
    "insert_cols": [0, 1],
    "insert_vals": [1.5, 2.5],
    "delete_rows": [],
    "delete_cols": [],
}


def make_lineage(matrix, arch, digest="a" * 64):
    partitioner = HotTilesPartitioner(arch)
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    return MatrixLineage(digest, tiled, partitioner)


class TestMatrixLineage:
    def test_digest_chain_is_verifiable(self, small_rmat, spade_sextans_arch):
        lineage = make_lineage(small_rmat, spade_sextans_arch)
        head = lineage.head_digest
        for seed in (0, 1):
            delta = DeltaBatch.random(
                lineage.tiled.matrix, inserts=30, deletes=20, seed=seed
            )
            update = lineage.apply(delta)
            expected = stable_digest(("delta-plan", head, delta.content_digest()))
            assert update.prev_digest == head
            assert update.new_digest == expected
            head = update.new_digest
        assert lineage.head_digest == head
        assert lineage.root_digest == "a" * 64
        assert lineage.deltas_applied == 2

    def test_empty_batch_is_noop(self, small_rmat, spade_sextans_arch):
        lineage = make_lineage(small_rmat, spade_sextans_arch)
        before = lineage.head_digest
        update = lineage.apply(DeltaBatch())
        assert update.new_digest == update.prev_digest == before
        assert update.repair.tiles_repaired == 0
        assert lineage.deltas_applied == 0
        assert lineage.head_digest == before

    def test_stale_expect_head_rejected(self, small_rmat, spade_sextans_arch):
        lineage = make_lineage(small_rmat, spade_sextans_arch)
        old_head = lineage.head_digest
        delta = DeltaBatch.random(lineage.tiled.matrix, inserts=20, deletes=0, seed=0)
        lineage.apply(delta, expect_head=old_head)
        with pytest.raises(StaleDigestError) as excinfo:
            lineage.apply(delta, expect_head=old_head)
        assert excinfo.value.digest == old_head
        assert excinfo.value.head_digest == lineage.head_digest

    def test_apply_keeps_tiling_consistent(self, small_rmat, spade_sextans_arch):
        lineage = make_lineage(small_rmat, spade_sextans_arch)
        delta = DeltaBatch.random(lineage.tiled.matrix, inserts=40, deletes=25, seed=3)
        update = lineage.apply(delta)
        assert update.nnz == lineage.tiled.matrix.nnz
        assert update.n_tiles == lineage.tiled.n_tiles
        assert 0.0 <= update.hot_nnz_fraction <= 1.0
        np.testing.assert_array_equal(
            lineage.cache.assignment, update.partition.chosen.assignment
        )


class TestLineageRegistry:
    def test_resolves_any_carried_digest(self, small_rmat, spade_sextans_arch):
        registry = LineageRegistry()
        lineage = make_lineage(small_rmat, spade_sextans_arch)
        registry.register(lineage)
        root = lineage.root_digest
        delta = DeltaBatch.random(lineage.tiled.matrix, inserts=20, deletes=10, seed=0)
        update = registry.apply(root, delta)
        # Both the root and the advanced head resolve to the same lineage.
        assert registry.resolve(root) is lineage
        assert registry.resolve(update.new_digest) is lineage
        assert root in registry and update.new_digest in registry

    def test_apply_at_superseded_head_is_stale(self, small_rmat, spade_sextans_arch):
        registry = LineageRegistry()
        lineage = make_lineage(small_rmat, spade_sextans_arch)
        registry.register(lineage)
        root = lineage.root_digest
        delta = DeltaBatch.random(lineage.tiled.matrix, inserts=20, deletes=10, seed=1)
        registry.apply(root, delta)
        with pytest.raises(StaleDigestError) as excinfo:
            registry.apply(root, delta)
        assert excinfo.value.head_digest == lineage.head_digest

    def test_unknown_digest_raises(self):
        registry = LineageRegistry()
        with pytest.raises(UnknownLineageError):
            registry.resolve("f" * 64)
        with pytest.raises(UnknownLineageError):
            registry.apply("f" * 64, DeltaBatch())

    def test_lru_eviction_drops_aliases(self, small_rmat, spade_sextans_arch):
        registry = LineageRegistry(max_lineages=2)
        lineages = [
            make_lineage(small_rmat, spade_sextans_arch, digest=ch * 64)
            for ch in "abc"
        ]
        for lineage in lineages:
            registry.register(lineage)
        assert len(registry) == 2
        assert "a" * 64 not in registry
        with pytest.raises(UnknownLineageError):
            registry.resolve("a" * 64)
        assert registry.resolve("b" * 64) is lineages[1]

    def test_register_is_idempotent(self, small_rmat, spade_sextans_arch):
        registry = LineageRegistry()
        lineage = make_lineage(small_rmat, spade_sextans_arch)
        registry.register(lineage)
        registry.register(lineage)
        assert len(registry) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LineageRegistry(max_lineages=0)


class TestServiceApplyDelta:
    @pytest.fixture
    def service(self, tmp_path):
        svc = PlanService(
            store=PlanStore(tmp_path / "plans"), workers=2, queue_depth=8
        )
        yield svc
        svc.close()

    def test_delta_publishes_new_plan(self, service):
        base, _ = service.plan(PlanRequest.from_dict(RMAT))
        result, update = service.apply_delta(base.digest, DELTA)
        assert result.digest == update.new_digest != base.digest
        assert result.nnz == update.nnz
        # The repaired plan is durable and content-addressed.
        assert service.store.get(result.digest) == result
        stats = service.stats()
        assert stats["counters"]["deltas_applied"] == 1
        assert stats["counters"]["tiles_repaired"] == update.repair.tiles_repaired
        assert stats["lineages"] == 1
        assert "delta_apply_s" in stats["histograms"]

    def test_chained_deltas_chain_digests(self, service):
        base, _ = service.plan(PlanRequest.from_dict(RMAT))
        first, update1 = service.apply_delta(base.digest, DELTA)
        second_delta = {"delete_rows": [0], "delete_cols": [0]}
        second, update2 = service.apply_delta(first.digest, second_delta)
        assert update2.prev_digest == first.digest
        assert second.digest == update2.new_digest
        assert service.store.get(second.digest) == second

    def test_empty_delta_is_noop(self, service):
        base, _ = service.plan(PlanRequest.from_dict(RMAT))
        result, update = service.apply_delta(base.digest, {})
        assert result.digest == base.digest
        assert update.new_digest == update.prev_digest
        assert service.stats()["counters"].get("deltas_applied", 0) == 0

    def test_stale_digest_maps_through(self, service):
        base, _ = service.plan(PlanRequest.from_dict(RMAT))
        service.apply_delta(base.digest, DELTA)
        with pytest.raises(StaleDigestError):
            service.apply_delta(base.digest, DELTA)

    def test_unknown_digest_maps_through(self, service):
        with pytest.raises(UnknownLineageError):
            service.apply_delta("0" * 64, DELTA)

    def test_closed_service_rejects(self, tmp_path):
        svc = PlanService(store=PlanStore(tmp_path / "plans"))
        base, _ = svc.plan(PlanRequest.from_dict(RMAT))
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.apply_delta(base.digest, DELTA)


class TestHttpDeltaEndpoint:
    @pytest.fixture
    def live_server(self, tmp_path):
        service = PlanService(
            store=PlanStore(tmp_path / "plans"), workers=2, queue_depth=8
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        yield base, service
        server.shutdown()
        server.server_close()
        service.close()

    @staticmethod
    def http(base, path, payload=None, timeout=30.0):
        import urllib.error
        import urllib.request

        data = None if payload is None else json.dumps(payload).encode()
        req = urllib.request.Request(
            base + path,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_post_delta_then_fetch_repaired_plan(self, live_server):
        base, _ = live_server
        _, body = self.http(base, "/plan", RMAT)
        digest = body["plan"]["digest"]
        status, resp = self.http(base, f"/matrices/{digest}/delta", DELTA)
        assert status == 200
        applied = resp["applied"]
        assert applied["prev_digest"] == digest
        assert applied["new_digest"] == resp["plan"]["digest"]
        assert applied["nnz"] == resp["plan"]["nnz"]
        # The repaired plan is now addressable like any other.
        status2, got = self.http(base, "/plan/" + resp["plan"]["digest"])
        assert status2 == 200
        assert got["plan"]["digest"] == resp["plan"]["digest"]

    def test_superseded_head_is_409_with_pointer(self, live_server):
        base, _ = live_server
        _, body = self.http(base, "/plan", RMAT)
        digest = body["plan"]["digest"]
        _, first = self.http(base, f"/matrices/{digest}/delta", DELTA)
        status, resp = self.http(base, f"/matrices/{digest}/delta", DELTA)
        assert status == 409
        assert resp["head_digest"] == first["applied"]["new_digest"]

    def test_unknown_matrix_is_404(self, live_server):
        base, _ = live_server
        status, resp = self.http(base, "/matrices/" + "0" * 64 + "/delta", DELTA)
        assert status == 404
        assert "no registered matrix lineage" in resp["error"]

    def test_malformed_delta_is_400(self, live_server):
        base, _ = live_server
        _, body = self.http(base, "/plan", RMAT)
        digest = body["plan"]["digest"]
        status, _ = self.http(
            base, f"/matrices/{digest}/delta", {"insert_rows": "nope"}
        )
        assert status == 400

    def test_non_hex_digest_is_400(self, live_server):
        base, _ = live_server
        status, _ = self.http(base, "/matrices/not-a-digest/delta", DELTA)
        assert status == 400

    def test_stats_track_delta_counters(self, live_server):
        base, _ = live_server
        _, body = self.http(base, "/plan", RMAT)
        digest = body["plan"]["digest"]
        self.http(base, f"/matrices/{digest}/delta", DELTA)
        status, stats = self.http(base, "/stats")
        assert status == 200
        assert stats["counters"]["deltas_applied"] == 1
        assert stats["counters"]["tiles_repaired"] >= 0
        assert stats["lineages"] == 1
