"""DeltaBatch canonicalization, wire form, and seeded generators."""

import numpy as np
import pytest

from repro.streaming.delta import DeltaBatch, delta_stream


class TestCanonicalization:
    def test_inserts_sorted_row_major(self):
        batch = DeltaBatch(
            insert_rows=[2, 0, 1], insert_cols=[0, 5, 3], insert_vals=[1.0, 2.0, 3.0]
        )
        assert batch.insert_rows.tolist() == [0, 1, 2]
        assert batch.insert_cols.tolist() == [5, 3, 0]
        assert batch.insert_vals.tolist() == [2.0, 3.0, 1.0]

    def test_duplicate_insert_cells_last_wins(self):
        batch = DeltaBatch(
            insert_rows=[1, 0, 1], insert_cols=[2, 0, 2], insert_vals=[5.0, 1.0, 9.0]
        )
        assert batch.n_inserts == 2
        idx = batch.insert_rows.tolist().index(1)
        assert batch.insert_vals[idx] == 9.0

    def test_duplicate_delete_cells_collapse(self):
        batch = DeltaBatch(delete_rows=[3, 3, 1], delete_cols=[4, 4, 1])
        assert batch.n_deletes == 2
        assert batch.delete_rows.tolist() == [1, 3]

    def test_arrays_frozen(self):
        batch = DeltaBatch(insert_rows=[0], insert_cols=[0], insert_vals=[1.0])
        with pytest.raises(ValueError):
            batch.insert_vals[0] = 2.0

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            DeltaBatch(delete_rows=[-1], delete_cols=[0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DeltaBatch(insert_rows=[0, 1], insert_cols=[0], insert_vals=[1.0, 2.0])

    def test_empty_batch(self):
        batch = DeltaBatch()
        assert batch.is_empty
        assert len(batch) == 0

    def test_validate_against_range(self):
        batch = DeltaBatch(insert_rows=[10], insert_cols=[0], insert_vals=[1.0])
        batch.validate_against(11, 1)
        with pytest.raises(ValueError):
            batch.validate_against(10, 1)


class TestWireForm:
    def test_round_trip_preserves_digest(self):
        batch = DeltaBatch(
            insert_rows=[0, 2], insert_cols=[1, 3], insert_vals=[1.5, -2.0],
            delete_rows=[4], delete_cols=[4],
        )
        again = DeltaBatch.from_dict(batch.to_dict())
        assert again.content_digest() == batch.content_digest()

    def test_digest_reflects_content(self):
        a = DeltaBatch(insert_rows=[0], insert_cols=[0], insert_vals=[1.0])
        b = DeltaBatch(insert_rows=[0], insert_cols=[0], insert_vals=[2.0])
        assert a.content_digest() != b.content_digest()
        # Canonicalization makes permuted input digest-identical.
        c = DeltaBatch(
            insert_rows=[1, 0], insert_cols=[1, 0], insert_vals=[2.0, 1.0]
        )
        d = DeltaBatch(
            insert_rows=[0, 1], insert_cols=[0, 1], insert_vals=[1.0, 2.0]
        )
        assert c.content_digest() == d.content_digest()

    @pytest.mark.parametrize(
        "payload",
        [
            {"bogus": []},
            {"insert_rows": "nope"},
            {"insert_rows": [0], "insert_cols": [0], "insert_vals": ["x"]},
            {"insert_rows": [True], "insert_cols": [0], "insert_vals": [1.0]},
            {"insert_rows": [0.5], "insert_cols": [0], "insert_vals": [1.0]},
        ],
    )
    def test_malformed_payload_rejected(self, payload):
        with pytest.raises(ValueError):
            DeltaBatch.from_dict(payload)

    def test_missing_fields_default_empty(self):
        assert DeltaBatch.from_dict({}).is_empty


class TestGenerators:
    def test_random_is_seed_deterministic(self, small_rmat):
        a = DeltaBatch.random(small_rmat, inserts=50, deletes=30, seed=7)
        b = DeltaBatch.random(small_rmat, inserts=50, deletes=30, seed=7)
        assert a.content_digest() == b.content_digest()
        c = DeltaBatch.random(small_rmat, inserts=50, deletes=30, seed=8)
        assert c.content_digest() != a.content_digest()

    def test_random_deletes_hit_existing_nonzeros(self, small_rmat):
        batch = DeltaBatch.random(small_rmat, inserts=0, deletes=25, seed=1)
        existing = set(
            zip(small_rmat.rows.tolist(), small_rmat.cols.tolist())
        )
        for r, c in zip(batch.delete_rows.tolist(), batch.delete_cols.tolist()):
            assert (r, c) in existing

    def test_insert_region_respected(self, small_rmat):
        region = (100, 200, 300, 400)
        batch = DeltaBatch.random(
            small_rmat, inserts=40, deletes=0, seed=2, insert_region=region
        )
        assert batch.insert_rows.min() >= 100 and batch.insert_rows.max() < 200
        assert batch.insert_cols.min() >= 300 and batch.insert_cols.max() < 400

    def test_delta_stream_chains_matrices(self, small_rmat):
        states = list(delta_stream(small_rmat, steps=3, inserts=20, deletes=10, seed=0))
        assert len(states) == 3
        current = small_rmat
        for batch, after in states:
            assert after.content_digest() == current.apply_delta(batch).content_digest()
            current = after
        # nnz moved by the net structural change each step
        assert current.nnz != small_rmat.nnz or True

    def test_delta_stream_is_reproducible(self, small_rmat):
        a = [m.content_digest() for _, m in delta_stream(small_rmat, 3, 20, 10, seed=5)]
        b = [m.content_digest() for _, m in delta_stream(small_rmat, 3, 20, 10, seed=5)]
        assert a == b
