"""Incremental plan repair: parity with from-scratch partitioning."""

import numpy as np
import pytest

from repro.core.partition import HotTilesPartitioner, plan_cache_from, repair_plan
from repro.experiments.deltastream import delta_replay
from repro.sparse.tiling import TiledMatrix
from repro.streaming.apply import apply_delta_tiled
from repro.streaming.delta import DeltaBatch

EPSILON = 0.01


def make_tiled(matrix, arch):
    return TiledMatrix(matrix, arch.tile_height, arch.tile_width)


class TestRepairParity:
    @pytest.mark.parametrize("arch_fixture", ["spade_sextans_arch", "piuma_arch"])
    def test_all_dirty_repair_reproduces_partition(
        self, request, small_rmat, arch_fixture
    ):
        # Marking every tile dirty removes all pinning: the repair must
        # then be the N log N heuristic itself, bit for bit.
        arch = request.getfixturevalue(arch_fixture)
        partitioner = HotTilesPartitioner(arch)
        tiled = make_tiled(small_rmat, arch)
        full = partitioner.partition(tiled)
        cache = plan_cache_from(partitioner, tiled, full)
        outcome = repair_plan(partitioner, tiled, cache, cache.tile_keys)
        assert outcome.stats.tiles_repaired == cache.n_tiles
        assert outcome.result.chosen.label == full.chosen.label
        assert (
            outcome.result.chosen.predicted_time_s == full.chosen.predicted_time_s
        )
        np.testing.assert_array_equal(
            outcome.result.chosen.assignment, full.chosen.assignment
        )
        assert set(outcome.result.candidates) == set(full.candidates)
        for heuristic, repaired in outcome.result.candidates.items():
            scratch = full.candidates[heuristic]
            assert repaired.predicted_time_s == scratch.predicted_time_s
            np.testing.assert_array_equal(repaired.assignment, scratch.assignment)

    def test_no_dirty_tiles_pins_everything(self, small_rmat, spade_sextans_arch):
        partitioner = HotTilesPartitioner(spade_sextans_arch)
        tiled = make_tiled(small_rmat, spade_sextans_arch)
        full = partitioner.partition(tiled)
        cache = plan_cache_from(partitioner, tiled, full)
        outcome = repair_plan(
            partitioner, tiled, cache, np.empty(0, dtype=cache.tile_keys.dtype)
        )
        assert outcome.stats.tiles_repaired == 0
        assert outcome.stats.tiles_pinned == cache.n_tiles
        np.testing.assert_array_equal(
            outcome.result.chosen.assignment, full.chosen.assignment
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_streamed_repair_within_epsilon(
        self, small_rmat, spade_sextans_arch, seed
    ):
        # The acceptance gate: across a chained stream, the repaired
        # plan's predicted runtime stays within EPSILON of from-scratch
        # replanning while repairing strictly fewer than all tiles.
        arch = spade_sextans_arch
        partitioner = HotTilesPartitioner(arch)
        tiled = make_tiled(small_rmat, arch)
        cache = plan_cache_from(partitioner, tiled)
        for step in range(4):
            delta = DeltaBatch.random(
                tiled.matrix, inserts=60, deletes=40, seed=seed * 1_000_003 + step
            )
            tiled, report = apply_delta_tiled(tiled, delta)
            outcome = repair_plan(partitioner, tiled, cache, report.dirty_tile_keys)
            cache = outcome.cache
            scratch = partitioner.partition(make_tiled(tiled.matrix, arch))
            rel = abs(
                outcome.result.chosen.predicted_time_s
                - scratch.chosen.predicted_time_s
            ) / scratch.chosen.predicted_time_s
            assert rel <= EPSILON
            assert outcome.stats.repaired_fraction < 1.0

    def test_hot_concentrated_churn(self, small_rmat, spade_sextans_arch):
        # Concentrate inserts inside the hottest tile: the dirty set stays
        # small and the repaired plan still tracks from-scratch.
        arch = spade_sextans_arch
        partitioner = HotTilesPartitioner(arch)
        tiled = make_tiled(small_rmat, arch)
        cache = plan_cache_from(partitioner, tiled)
        hottest = int(np.argmax(tiled.stats.nnz))
        tr = int(tiled.stats.tile_row[hottest])
        tc = int(tiled.stats.tile_col[hottest])
        region = (
            tr * arch.tile_height,
            min((tr + 1) * arch.tile_height, tiled.matrix.n_rows),
            tc * arch.tile_width,
            min((tc + 1) * arch.tile_width, tiled.matrix.n_cols),
        )
        for step in range(3):
            delta = DeltaBatch.random(
                tiled.matrix, inserts=80, deletes=0, seed=step, insert_region=region
            )
            tiled, report = apply_delta_tiled(tiled, delta)
            outcome = repair_plan(partitioner, tiled, cache, report.dirty_tile_keys)
            cache = outcome.cache
            assert outcome.stats.tiles_repaired <= 1
            scratch = partitioner.partition(make_tiled(tiled.matrix, arch))
            rel = abs(
                outcome.result.chosen.predicted_time_s
                - scratch.chosen.predicted_time_s
            ) / scratch.chosen.predicted_time_s
            assert rel <= EPSILON


class TestDeltaReplayExperiment:
    def test_gate_passes_on_rmat(self, small_rmat):
        result = delta_replay(
            small_rmat, steps=3, inserts=60, deletes=40, seed=0, label="rmat10"
        )
        assert result.passes()
        assert result.all_bit_identical()
        assert result.max_rel_err() <= result.epsilon
        assert 0.0 < result.mean_repaired_fraction() < 1.0
        assert len(result.rows) == 3

    def test_json_report_round_trips(self, small_uniform, tmp_path):
        import json

        result = delta_replay(small_uniform, steps=2, seed=1, label="uniform")
        path = result.save_json(str(tmp_path / "replay.json"))
        data = json.loads(open(path).read())
        assert data["passes"] is True
        assert len(data["rows"]) == 2
        assert data["rows"][0]["bit_identical"] is True

    def test_unknown_arch_rejected(self, small_rmat):
        with pytest.raises(ValueError):
            delta_replay(small_rmat, arch_name="tpu")
