"""Incremental delta application: edge cases and bit-identity differentials."""

import numpy as np
import pytest

from repro.experiments.deltastream import tiled_bit_identical
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix
from repro.streaming.apply import apply_delta_matrix, apply_delta_tiled
from repro.streaming.delta import DeltaBatch


def expected_dense(matrix, delta):
    """Reference semantics: deletes first, then upsert-style inserts."""
    dense = matrix.to_dense().copy()
    for r, c in zip(delta.delete_rows.tolist(), delta.delete_cols.tolist()):
        dense[r, c] = 0.0
    for r, c, v in zip(
        delta.insert_rows.tolist(),
        delta.insert_cols.tolist(),
        delta.insert_vals.tolist(),
    ):
        dense[r, c] = v
    return dense


def rebuild_from_coords(matrix, delta):
    """From-scratch ground truth: rebuild the COO via a coordinate map."""
    cells = {
        (r, c): v
        for r, c, v in zip(
            matrix.rows.tolist(), matrix.cols.tolist(), matrix.vals.tolist()
        )
    }
    for r, c in zip(delta.delete_rows.tolist(), delta.delete_cols.tolist()):
        cells.pop((r, c), None)
    for r, c, v in zip(
        delta.insert_rows.tolist(),
        delta.insert_cols.tolist(),
        delta.insert_vals.tolist(),
    ):
        cells[(r, c)] = v
    rows = np.array([r for r, _ in cells], dtype=np.int64)
    cols = np.array([c for _, c in cells], dtype=np.int64)
    vals = np.array(list(cells.values()), dtype=matrix.vals.dtype)
    return SparseMatrix(matrix.n_rows, matrix.n_cols, rows, cols, vals)


class TestMatrixApply:
    def test_empty_batch_returns_same_object(self, small_rmat):
        assert small_rmat.apply_delta(DeltaBatch()) is small_rmat

    def test_dense_semantics(self, small_rmat):
        delta = DeltaBatch.random(small_rmat, inserts=50, deletes=30, seed=3)
        new = small_rmat.apply_delta(delta)
        np.testing.assert_array_equal(new.to_dense(), expected_dense(small_rmat, delta))

    def test_delete_absent_cell_is_silent_noop(self, tiny_matrix):
        # (3, 3) holds no nonzero; deleting it must change nothing.
        delta = DeltaBatch(delete_rows=[3], delete_cols=[3])
        new = tiny_matrix.apply_delta(delta)
        assert new.content_digest() == tiny_matrix.content_digest()

    def test_overwrite_keeps_structure(self, tiny_matrix):
        # (0, 0) already holds a nonzero: the insert is a value overwrite.
        delta = DeltaBatch(insert_rows=[0], insert_cols=[0], insert_vals=[42.0])
        new, info = apply_delta_matrix(tiny_matrix, delta)
        assert info.n_overwrites == 1
        assert new.nnz == tiny_matrix.nnz
        assert new.to_dense()[0, 0] == 42.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_rebuild(self, small_rmat, seed):
        delta = DeltaBatch.random(small_rmat, inserts=120, deletes=80, seed=seed)
        new = small_rmat.apply_delta(delta)
        scratch = rebuild_from_coords(small_rmat, delta)
        assert new.content_digest() == scratch.content_digest()
        np.testing.assert_array_equal(new.indptr(), scratch.indptr())

    def test_out_of_range_delta_rejected(self, tiny_matrix):
        delta = DeltaBatch(insert_rows=[99], insert_cols=[0], insert_vals=[1.0])
        with pytest.raises(ValueError):
            tiny_matrix.apply_delta(delta)


class TestTiledApply:
    def test_empty_batch_returns_same_object(self, tiled_rmat):
        new, report = apply_delta_tiled(tiled_rmat, DeltaBatch())
        assert new is tiled_rmat
        assert report.n_dirty_tiles == 0
        assert not report.rebuilt

    def test_delta_empties_a_tile(self, tiny_matrix):
        tiled = TiledMatrix(tiny_matrix, 4, 4)
        # Tile (1, 0) holds exactly the nonzeros (3,0),(7,0): delete both.
        delta = DeltaBatch(delete_rows=[3, 7], delete_cols=[0, 0])
        new, report = apply_delta_tiled(tiled, delta)
        assert new.n_tiles == tiled.n_tiles - 1
        keys = set(
            (new.stats.tile_row * new.n_panel_cols + new.stats.tile_col).tolist()
        )
        assert 1 * new.n_panel_cols + 0 not in keys
        scratch = TiledMatrix(new.matrix, 4, 4)
        assert tiled_bit_identical(new, scratch)

    def test_delta_creates_new_row_and_column_tile(self):
        # Rows 8..15 and cols 8..15 start completely empty.
        rows = np.array([0, 1, 2])
        cols = np.array([0, 1, 2])
        vals = np.ones(3, dtype=np.float32)
        matrix = SparseMatrix(16, 16, rows, cols, vals)
        tiled = TiledMatrix(matrix, 8, 8)
        assert tiled.n_tiles == 1
        delta = DeltaBatch(
            insert_rows=[12, 3], insert_cols=[12, 12], insert_vals=[2.0, 3.0]
        )
        new, report = apply_delta_tiled(tiled, delta)
        assert new.n_tiles == 3  # (0,0), (0,1), (1,1)
        assert report.n_dirty_tiles == 2  # both brand-new tiles
        scratch = TiledMatrix(new.matrix, 8, 8)
        assert tiled_bit_identical(new, scratch)
        # Panel bookkeeping saw the brand-new nonzero row.
        assert new.panel_nnz.sum() == new.matrix.nnz

    def test_value_overwrite_is_structurally_clean(self, tiled_rmat):
        r = int(tiled_rmat.matrix.rows[0])
        c = int(tiled_rmat.matrix.cols[0])
        delta = DeltaBatch(insert_rows=[r], insert_cols=[c], insert_vals=[123.0])
        new, report = apply_delta_tiled(tiled_rmat, delta)
        assert report.n_overwritten == 1
        assert report.n_dirty_tiles == 0  # stats unchanged: no repair needed
        np.testing.assert_array_equal(new.stats.nnz, tiled_rmat.stats.nnz)
        scratch = TiledMatrix(new.matrix, new.tile_height, new.tile_width)
        assert tiled_bit_identical(new, scratch)

    @pytest.mark.parametrize(
        "fixture", ["small_rmat", "small_uniform", "small_banded"]
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chained_stream_stays_bit_identical(
        self, request, spade_sextans_arch, fixture, seed
    ):
        # The tentpole differential gate: after every step of a seeded
        # stream, the incrementally maintained tiling must match a
        # from-scratch retiling array for array, dtype for dtype.
        matrix = request.getfixturevalue(fixture)
        arch = spade_sextans_arch
        tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
        for step in range(3):
            delta = DeltaBatch.random(
                tiled.matrix, inserts=100, deletes=60, seed=seed * 1_000_003 + step
            )
            tiled, _ = apply_delta_tiled(tiled, delta)
            scratch = TiledMatrix(tiled.matrix, arch.tile_height, arch.tile_width)
            assert tiled_bit_identical(tiled, scratch)

    def test_report_counts_reconcile(self, tiled_rmat):
        delta = DeltaBatch.random(tiled_rmat.matrix, inserts=70, deletes=50, seed=4)
        new, report = apply_delta_tiled(tiled_rmat, delta)
        assert (
            new.matrix.nnz
            == tiled_rmat.matrix.nnz + report.n_inserted - report.n_deleted
        )
        assert report.n_inserted + report.n_overwritten == delta.n_inserts
        assert report.tiles_after == new.n_tiles
        assert report.tiles_before == tiled_rmat.n_tiles
