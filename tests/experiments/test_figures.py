"""Figure/table reproduction functions on small benchmark subsets.

These are integration tests: they run the full calibrate + partition +
simulate pipeline and assert the *shape* of each experiment's outcome
(who wins, proper bounds), not absolute numbers.
"""

import pytest

from repro.experiments import figures

SUBSET = ("ski", "pap")


class TestFigure04:
    def test_rows_and_normalization(self):
        result = figures.figure04(subset=SUBSET)
        assert len(result.rows) == 2 * len(SUBSET)  # two architectures
        for _arch, _m, hot, cold, iun in result.rows:
            # Speedup over the worst homogeneous: the best homogeneous is
            # >= 1 and the worst is exactly 1 by construction.
            assert max(hot, cold) >= 1.0
            assert min(hot, cold) == pytest.approx(1.0)
            assert iun > 0
        assert "Fig. 4" in result.render()

    def test_unknown_subset_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            figures.figure04(subset=("nope",))


class TestFigure05:
    def test_assignment_maps(self):
        result = figures.figure05()
        assert result.density_grid.sum() > 0
        assert result.hottiles_hot_grid.shape == result.density_grid.shape
        # HotTiles assigns hot tiles on populated cells only.
        assert not result.hottiles_hot_grid[result.density_grid == 0].any()
        assert 0 <= result.hottiles_hot_nnz_pct <= 100
        assert "#" in result.render()

    def test_hottiles_targets_denser_tiles_than_iunaware(self):
        result = figures.figure05()
        density = result.density_grid
        ht = density[result.hottiles_hot_grid]
        iu = density[result.iunaware_hot_grid & (density > 0)]
        if ht.size and iu.size:
            assert ht.mean() >= iu.mean()


class TestFigure10:
    def test_table_shape_and_hottiles_wins(self):
        result = figures.figure10_table06(subset=SUBSET)
        assert len(result.runtimes_ms) == len(SUBSET)
        for row in result.runtimes_ms:
            assert all(v > 0 for v in row[1:])
        # The headline claim: HotTiles beats IUnaware and both homogeneous
        # executions on average.
        assert result.avg_speedup_vs["iunaware"] > 1.0
        assert result.avg_speedup_vs["hot-only"] > 1.0
        assert "Runtime in ms" in result.render()


class TestFigure11:
    def test_piuma_comparison(self):
        result = figures.figure11(subset=SUBSET)
        assert result.arch_name == "piuma"
        assert result.avg_speedup_vs["hot-only"] > 1.0


class TestFigure12:
    def test_scales_and_strategies(self):
        result = figures.figure12(scales=(1, 4), subset=SUBSET)
        scales = {r[0] for r in result.rows}
        assert scales == {1, 4}
        strategies = {r[1] for r in result.rows if r[0] == 4}
        assert "hottiles" in strategies
        # Four whole-tile heuristics + block-split + the hottiles pick.
        assert len(strategies) == 6
        assert "block-split" in strategies
        assert set(result.bandwidth_gbs) == {1, 4}
        assert all(v > 0 for v in result.bandwidth_gbs.values())

    def test_hottiles_at_least_matches_best_heuristic(self):
        result = figures.figure12(scales=(4,), subset=SUBSET)
        by_strategy = {r[1]: r[2] for r in result.rows}
        best_heuristic = max(v for k, v in by_strategy.items() if k != "hottiles")
        assert by_strategy["hottiles"] >= 0.9 * best_heuristic


class TestTable07:
    def test_rows(self):
        result = figures.table07(scales=(4,), subset=SUBSET)
        rows = result.rows[4]
        strategies = [r.strategy for r in rows]
        assert strategies == ["hot-only", "cold-only", "iunaware", "hottiles"]
        hot_only = rows[0]
        assert hot_only.cold_gflops == 0.0  # cold workers idle in HotOnly
        cold_only = rows[1]
        assert cold_only.hot_gflops == 0.0
        assert "Table VII" in result.render()

    def test_hottiles_reduces_lines_per_nnz_vs_hotonly(self):
        result = figures.table07(scales=(4,), subset=SUBSET)
        rows = {r.strategy: r for r in result.rows[4]}
        assert rows["hottiles"].cache_lines_per_nnz < rows["hot-only"].cache_lines_per_nnz


class TestFigure13:
    def test_heterogeneous_beats_doubled_hot(self):
        result = figures.figure13(subset=SUBSET)
        assert len(result.rows) == len(SUBSET)
        assert result.avg_vs_hot8 > 1.0
        assert "Fig. 13" in result.render()


class TestFigure14:
    def test_intensity_sweep_trends(self):
        result = figures.figure14(ops_sweep=(1, 16), subset=SUBSET)
        assert len(result.rows) == 2
        low, high = result.rows
        # More arithmetic intensity -> more nonzeros on the hot worker and
        # a better ratio vs ColdOnly (the paper's crossover trend).
        assert high[3] >= low[3]
        assert high[2] >= low[2]
        # At low AI the PCIe-hobbled HotOnly loses badly.
        assert low[1] > 1.0


class TestFigure15:
    def test_dense_set(self):
        result = figures.figure15(scales=(4,), subset=("mou", "gea"))
        comp = result.per_scale[4]
        assert len(comp.runtimes_ms) == 2
        assert comp.avg_speedup_vs["cold-only"] > 1.0


class TestFigure16AndTable09:
    def test_isoscale_sweep(self):
        result = figures.figure16(subset=("pap",))
        names = [r[0] for r in result.rows]
        assert names == [f"{c}-{8-c}" for c in range(9)]
        base = dict((r[0], r) for r in result.rows)["4-4"]
        assert base[1] == pytest.approx(1.0)
        assert base[2] == pytest.approx(1.0)
        assert result.predicted_best in names
        assert "Fig. 16" in result.render()

    def test_table09_oracle_dominates(self):
        result = figures.table09(subset=("pap",))
        for _m, _p, pred_speedup, _a, oracle_speedup, correct in result.rows:
            assert oracle_speedup >= pred_speedup - 1e-9
            if correct:
                assert pred_speedup == pytest.approx(oracle_speedup)
        assert "Table IX" in result.render()


class TestFigure17:
    def test_errors_bounded(self):
        result = figures.figure17(subset=SUBSET)
        assert len(result.rows) == 2 * len(SUBSET)
        for _arch, _m, e_hot, e_cold, e_ht in result.rows:
            assert 0 <= e_hot < 100
            assert 0 <= e_cold < 100
            assert 0 <= e_ht < 100
        assert "average error" in result.render()


class TestFigure18:
    def test_cost_breakdown(self):
        result = figures.figure18(subset=SUBSET)
        assert len(result.rows) == len(SUBSET)
        for _m, fmt_share, overhead_share, slowdown in result.rows:
            assert fmt_share + overhead_share == pytest.approx(1.0)
            assert slowdown >= 1.0
        assert 0 < result.avg_overhead_fraction < 1
