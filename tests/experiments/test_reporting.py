"""Text reporting helpers."""

import numpy as np
import pytest

from repro.experiments.reporting import format_assignment_map, format_table, geomean


class TestGeomean:
    def test_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            geomean([1.0, 0.0])


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bee"], [(1, 2.5), ("xx", 0.001)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["v"], [(1234.5,), (0.001234,), (0.5,)])
        assert "1.23e+03" in text
        assert "0.00123" in text
        assert "0.50" in text

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestAssignmentMap:
    def test_symbols(self):
        density = np.array([[0, 5], [3, 0]])
        hot = np.array([[False, True], [False, False]])
        text = format_assignment_map(density, hot)
        assert text.splitlines() == [" #", ". "]

    def test_downsampling(self):
        density = np.ones((100, 100), dtype=np.int64)
        hot = np.zeros((100, 100), dtype=bool)
        text = format_assignment_map(density, hot, max_dim=10)
        assert len(text.splitlines()) <= 34

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            format_assignment_map(np.ones((2, 2)), np.ones((3, 3), dtype=bool))
