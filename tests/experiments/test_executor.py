"""Executor tests: determinism, caching, parallel fan-out, wiring."""

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.executor import (
    Cell,
    ExperimentExecutor,
    configure_executor,
    get_executor,
    use_executor,
)
from repro.experiments.runner import (
    COLD_ONLY,
    HOT_ONLY,
    HOTTILES,
    evaluate_matrix,
)
from repro.sparse import generators
from tests.core.test_partition import tiny_arch


@pytest.fixture(scope="module")
def matrix():
    return generators.community_blocks(256, 6000, 8, seed=20)


@pytest.fixture(scope="module")
def cells(matrix):
    arch = tiny_arch()
    return [Cell(arch=arch, matrix=matrix, seed=s, calibrate=False) for s in range(4)]


@pytest.fixture(scope="module")
def serial_runs(matrix):
    return [
        evaluate_matrix(tiny_arch(), matrix, seed=s, calibrate=False) for s in range(4)
    ]


def _assert_identical(a, b):
    assert set(a.outcomes) == set(b.outcomes)
    for strategy in a.outcomes:
        # Bit-identical, not approximately equal: parallelism and caching
        # change scheduling/serialization only, never the numerics.
        assert a.outcomes[strategy].time_s == b.outcomes[strategy].time_s
        assert a.outcomes[strategy].predicted_s == b.outcomes[strategy].predicted_s


class TestDeterminism:
    def test_parallel_cached_matches_serial_bitwise(self, cells, serial_runs, tmp_path):
        """The ISSUE acceptance check: a cached ``--jobs 4`` run produces
        bit-identical ``SimResult.time_s`` to the serial seed path."""
        executor = ExperimentExecutor(jobs=4, cache=ResultCache(tmp_path / "cache"))
        parallel_runs = executor.run_cells(cells)
        for serial, parallel in zip(serial_runs, parallel_runs):
            _assert_identical(serial, parallel)
        assert executor.stats.cache_misses == len(cells)

        warm = ExperimentExecutor(jobs=4, cache=ResultCache(tmp_path / "cache"))
        for serial, cached in zip(serial_runs, warm.run_cells(cells)):
            _assert_identical(serial, cached)
        assert warm.stats.hit_rate == 1.0

    def test_serial_uncached_matches_direct_call(self, cells, serial_runs):
        executor = ExperimentExecutor()
        for serial, run in zip(serial_runs, executor.run_cells(cells)):
            _assert_identical(serial, run)


class TestCaching:
    def test_cold_then_warm_counters(self, cells, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ExperimentExecutor(cache=cache)
        executor.run_cells(cells)
        executor.run_cells(cells)
        assert executor.stats.cells == 8
        assert executor.stats.cache_hits == 4
        assert executor.stats.cache_misses == 4
        assert executor.stats.hit_rate == 0.5
        # Only the four misses were actually simulated.
        assert len(executor.stats.cell_wall_s) == 4
        assert executor.stats.simulated_wall_s > 0
        assert executor.stats.elapsed_s > 0

    def test_cache_persists_across_executors(self, cells, tmp_path):
        ExperimentExecutor(cache=ResultCache(tmp_path)).run_cells(cells)
        warm = ExperimentExecutor(cache=ResultCache(tmp_path))
        warm.run_cells(cells)
        assert warm.stats.hit_rate == 1.0

    def test_key_distinguishes_cell_parameters(self, matrix):
        arch = tiny_arch()
        base = Cell(arch=arch, matrix=matrix)
        assert base.key() == Cell(arch=arch, matrix=matrix).key()
        assert base.key() != Cell(arch=arch, matrix=matrix, seed=1).key()
        assert base.key() != Cell(arch=arch, matrix=matrix, calibrate=False).key()
        assert (
            base.key()
            != Cell(arch=arch, matrix=matrix, strategies=(HOT_ONLY, COLD_ONLY)).key()
        )
        assert base.key() != Cell(arch=tiny_arch(n_cold=3), matrix=matrix).key()

    def test_short_name_and_matrix_object_share_key(self):
        from repro.experiments.matrices import load_matrix

        arch = tiny_arch()
        assert (
            Cell(arch=arch, matrix="ski").key()
            == Cell(arch=arch, matrix=load_matrix("ski")).key()
        )

    def test_strategy_subset_respected(self, matrix, tmp_path):
        executor = ExperimentExecutor(cache=ResultCache(tmp_path))
        run = executor.evaluate(
            tiny_arch(), matrix, calibrate=False, strategies=(HOT_ONLY, HOTTILES)
        )
        assert set(run.outcomes) == {HOT_ONLY, HOTTILES}

    def test_render_mentions_hit_rate(self, cells, tmp_path):
        executor = ExperimentExecutor(cache=ResultCache(tmp_path))
        executor.run_cells(cells)
        text = executor.stats.render()
        assert "hit rate" in text
        assert "4 miss" in text


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            ExperimentExecutor(jobs=0)

    def test_empty_cells(self):
        assert ExperimentExecutor().run_cells([]) == []


class TestActiveExecutor:
    def test_default_is_serial_uncached(self):
        executor = get_executor()
        assert executor.jobs == 1
        assert executor.cache is None

    def test_use_executor_restores(self):
        before = get_executor()
        replacement = ExperimentExecutor()
        with use_executor(replacement) as active:
            assert active is replacement
            assert get_executor() is replacement
        assert get_executor() is before

    def test_configure_executor(self, tmp_path):
        executor = configure_executor(jobs=3, cache_dir=str(tmp_path))
        assert executor.jobs == 3
        assert executor.cache is not None
        assert executor.cache.cache_dir == tmp_path
        assert configure_executor(no_cache=True).cache is None

    def test_figures_route_through_active_executor(self, tmp_path):
        """``_runs`` in the figure drivers must use the installed executor."""
        from repro.experiments.figures import figure04

        executor = ExperimentExecutor(cache=ResultCache(tmp_path))
        with use_executor(executor):
            figure04(subset=["ski"])
        assert executor.stats.cells == 2  # two architectures x one matrix
        with use_executor(ExperimentExecutor(cache=ResultCache(tmp_path))) as warm:
            figure04(subset=["ski"])
        assert warm.stats.hit_rate == 1.0

    def test_sweeps_route_through_active_executor(self, matrix, tmp_path):
        from repro.experiments.sweeps import cold_count_sweep

        executor = ExperimentExecutor(cache=ResultCache(tmp_path))
        with use_executor(executor):
            first = cold_count_sweep(tiny_arch(), matrix, [2, 4])
        assert executor.stats.cells == 2
        with use_executor(ExperimentExecutor(cache=ResultCache(tmp_path))) as warm:
            second = cold_count_sweep(tiny_arch(), matrix, [2, 4])
        assert warm.stats.hit_rate == 1.0
        assert first.rows == second.rows
