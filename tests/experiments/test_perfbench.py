"""Report schema and regression-gate logic of the perf bench harness.

No timing assertions here (CI machines are shared); the absolute speedup
floors live in ``benchmarks/bench_perf_core.py`` and the tracked gate in
the CI perf-smoke job.
"""

import copy
import json

from repro.cli import main
from repro.experiments import perfbench
from repro.sim import backend as sim_backend


def _quick_report():
    return perfbench.run_bench(quick=True, repeat=1)


def test_report_schema_and_case_selection():
    report = _quick_report()
    assert report["schema"] == perfbench.SCHEMA == "hottiles-bench-perf/2"
    assert report["mode"] == "quick"
    quick_names = [c.name for c in perfbench.CASES if c.quick]
    assert [c["name"] for c in report["cases"]] == quick_names

    # Schema /2: the backend snapshot and the native/floors targets.
    backend = report["backend"]
    assert set(backend) >= {"requested", "native_available", "numba_version", "active"}
    assert backend["active"] in ("python", "native")
    targets = report["targets"]
    assert targets["floors_case"] == perfbench.FLOORS_CASE
    assert targets["native_simulate_min_vs_python"] >= 2.0

    expected_stages = {"preprocess", "build_plans", "simulate"}
    if sim_backend.native_available():
        expected_stages.add("simulate_native")
    for case in report["cases"]:
        assert case["nnz"] > 0 and case["n_tiles"] > 0
        stages = case["stages"]
        assert set(stages) == expected_stages
        for name in ("build_plans", "simulate"):
            stage = stages[name]
            assert stage["wall_s"] > 0 and stage["reference_wall_s"] > 0
            # Speedup is derived from the two walls, not measured separately.
            assert stage["speedup"] == stage["reference_wall_s"] / stage["wall_s"]
        pre = stages["preprocess"]
        assert pre["normalized"] == (
            pre["wall_s"] / stages["simulate"]["reference_wall_s"]
        )
        if "simulate_native" in stages:
            native = stages["simulate_native"]
            assert native["vs_python"] == (
                stages["simulate"]["wall_s"] / native["wall_s"]
            )


def test_cli_bench_backend_flag_fails_fast_without_numba(tmp_path, capsys):
    """``--backend native`` must not silently report a python-only run."""
    out = tmp_path / "BENCH_PERF.json"
    rc = main(["bench", "--quick", "--repeat", "1", "--backend", "native", "-o", str(out)])
    captured = capsys.readouterr()
    if sim_backend.native_available():  # pragma: no cover - numba CI job only
        assert rc == 0
        assert perfbench.load_report(out)["backend"]["active"] == "native"
    else:
        assert rc == 1
        assert not out.exists()
        assert "numba is not installed" in captured.err
    # The override must not leak into later tests.
    assert sim_backend.requested_backend() == "auto"


def test_cli_bench_backend_python_records_backend(tmp_path):
    out = tmp_path / "BENCH_PERF.json"
    assert main(
        ["bench", "--quick", "--repeat", "1", "--backend", "python", "-o", str(out)]
    ) == 0
    report = perfbench.load_report(out)
    assert report["backend"]["requested"] == "python"
    assert report["backend"]["active"] == "python"


def test_report_round_trips_through_json(tmp_path):
    report = _quick_report()
    path = tmp_path / "BENCH_PERF.json"
    perfbench.write_report(report, path)
    assert perfbench.load_report(path) == json.loads(path.read_text())


def test_compare_passes_against_itself():
    report = _quick_report()
    assert perfbench.compare(report, report) == []


def test_compare_flags_speedup_regression():
    baseline = _quick_report()
    current = copy.deepcopy(baseline)
    stage = current["cases"][0]["stages"]["build_plans"]
    stage["speedup"] = baseline["cases"][0]["stages"]["build_plans"]["speedup"] * 0.5
    failures = perfbench.compare(current, baseline, tolerance=0.25)
    assert len(failures) == 1
    assert "build_plans" in failures[0] and "below floor" in failures[0]
    # Within tolerance: no failure.
    stage["speedup"] = baseline["cases"][0]["stages"]["build_plans"]["speedup"] * 0.8
    assert perfbench.compare(current, baseline, tolerance=0.25) == []


def test_compare_flags_preprocess_regression():
    baseline = _quick_report()
    current = copy.deepcopy(baseline)
    pre = current["cases"][0]["stages"]["preprocess"]
    pre["normalized"] = baseline["cases"][0]["stages"]["preprocess"]["normalized"] * 2
    failures = perfbench.compare(current, baseline, tolerance=0.25)
    assert len(failures) == 1
    assert "preprocess" in failures[0] and "above ceiling" in failures[0]


def test_compare_flags_missing_case_and_schema_mismatch():
    baseline = _quick_report()
    current = copy.deepcopy(baseline)
    current["cases"] = current["cases"][1:]
    failures = perfbench.compare(current, baseline)
    assert any("missing" in f for f in failures)

    mismatched = copy.deepcopy(baseline)
    mismatched["schema"] = "hottiles-bench-perf/999"
    failures = perfbench.compare(mismatched, baseline)
    assert failures and "schema mismatch" in failures[0]


def test_cli_bench_writes_report_and_gates(tmp_path, capsys):
    out = tmp_path / "BENCH_PERF.json"
    base = tmp_path / "baseline.json"
    assert main(["bench", "--quick", "--repeat", "1", "-o", str(base)]) == 0
    assert main(
        ["bench", "--quick", "--repeat", "1", "-o", str(out), "--baseline", str(base)]
        # 10x slack: this test exercises plumbing, not machine performance.
        + ["--tolerance", "10.0"]
    ) == 0
    report = perfbench.load_report(out)
    assert report["schema"] == perfbench.SCHEMA
    assert "no regression" in capsys.readouterr().out

    # An impossible baseline must trip the gate and exit nonzero.
    doctored = perfbench.load_report(base)
    for case in doctored["cases"]:
        case["stages"]["build_plans"]["speedup"] = 1e9
    doctored_path = tmp_path / "doctored.json"
    perfbench.write_report(doctored, doctored_path)
    assert (
        main(
            [
                "bench",
                "--quick",
                "--repeat",
                "1",
                "-o",
                str(out),
                "--baseline",
                str(doctored_path),
            ]
        )
        == 1
    )
    assert "PERF REGRESSION" in capsys.readouterr().out
