"""Strategy runner tests (uses small matrices; calibration is cached)."""

import pytest

from repro.experiments.runner import (
    COLD_ONLY,
    HOT_ONLY,
    HOTTILES,
    IUNAWARE,
    calibrated,
    evaluate_heuristics,
    evaluate_matrix,
)
from repro.sparse import generators
from tests.core.test_partition import tiny_arch


@pytest.fixture(scope="module")
def matrix():
    return generators.community_blocks(256, 6000, 8, seed=20)


@pytest.fixture(scope="module")
def run(matrix):
    return evaluate_matrix(tiny_arch(), matrix, calibrate=False)


class TestEvaluateMatrix:
    def test_all_strategies_present(self, run):
        assert set(run.outcomes) == {HOT_ONLY, COLD_ONLY, IUNAWARE, HOTTILES}

    def test_times_positive(self, run):
        assert all(o.time_s > 0 for o in run.outcomes.values())

    def test_best_and_worst_homogeneous(self, run):
        assert run.best_homogeneous_s == min(run.time(HOT_ONLY), run.time(COLD_ONLY))
        assert run.worst_homogeneous_s == max(run.time(HOT_ONLY), run.time(COLD_ONLY))

    def test_speedup_math(self, run):
        s = run.speedup_over(HOTTILES, run.worst_homogeneous_s)
        assert s == pytest.approx(run.worst_homogeneous_s / run.time(HOTTILES))

    def test_predictions_recorded_for_modeled_strategies(self, run):
        assert run.outcomes[HOT_ONLY].predicted_s is not None
        assert run.outcomes[COLD_ONLY].predicted_s is not None
        assert run.outcomes[HOTTILES].predicted_s is not None
        assert run.outcomes[IUNAWARE].predicted_s is None
        assert run.outcomes[IUNAWARE].prediction_error is None

    def test_prediction_error_definition(self, run):
        o = run.outcomes[HOTTILES]
        assert o.prediction_error == pytest.approx(
            abs(o.predicted_s - o.time_s) / o.time_s
        )

    def test_prediction_error_zero_time_is_none(self, run):
        # A degenerate empty/all-zero matrix simulates in exactly 0s;
        # relative error is undefined there, not a ZeroDivisionError.
        from dataclasses import replace

        degenerate = replace(run.outcomes[HOTTILES], time_s=0.0, predicted_s=1.0)
        assert degenerate.prediction_error is None

    def test_empty_matrix_evaluates_without_error(self):
        from repro.sparse.matrix import SparseMatrix

        run = evaluate_matrix(
            tiny_arch(), SparseMatrix.empty(16, 16), calibrate=False
        )
        for outcome in run.outcomes.values():
            assert outcome.prediction_error is None or outcome.prediction_error >= 0

    def test_hot_nnz_fraction_extremes(self, run):
        assert run.outcomes[HOT_ONLY].hot_nnz_fraction == 1.0
        assert run.outcomes[COLD_ONLY].hot_nnz_fraction == 0.0
        assert 0.0 <= run.outcomes[HOTTILES].hot_nnz_fraction <= 1.0

    def test_partition_attached(self, run):
        assert run.partition is not None

    def test_homogeneous_only_arch(self, matrix):
        run = evaluate_matrix(tiny_arch(n_hot=0), matrix, calibrate=False)
        assert set(run.outcomes) == {COLD_ONLY, HOTTILES}

    def test_unknown_strategy_rejected(self, matrix):
        with pytest.raises(ValueError, match="unknown strategy"):
            evaluate_matrix(
                tiny_arch(), matrix, calibrate=False, strategies=("bogus",)
            )


class TestCalibration:
    def test_calibrated_is_cached(self):
        arch = tiny_arch()
        assert calibrated(arch) is calibrated(arch)

    def test_calibration_changes_vis_lat(self):
        arch = tiny_arch()
        out = calibrated(arch)
        assert (
            out.cold.traits.vis_lat_s_per_byte != arch.cold.traits.vis_lat_s_per_byte
            or out.hot.traits.vis_lat_s_per_byte != arch.hot.traits.vis_lat_s_per_byte
        )

    def test_calibrated_shared_across_equal_configs(self):
        # Digest keying: two structurally equal architectures share one
        # cache entry even though they are distinct objects.
        assert calibrated(tiny_arch()) is calibrated(tiny_arch())

    def test_calibration_cache_is_bounded(self, monkeypatch):
        # Sweeps construct a fresh Architecture per point; the cache must
        # not grow without limit across them (the old unbounded lru_cache
        # leaked one calibration per bandwidth/scale sweep point).  Real
        # calibration is seconds-scale, so stub it out: the LRU mechanics
        # are what is under test.
        import dataclasses

        from repro.experiments import runner

        monkeypatch.setattr(
            runner, "calibrate_architecture", lambda arch, measure, tiles: arch
        )
        base = tiny_arch()
        before = dict(runner._CALIBRATION_CACHE)
        try:
            runner.clear_calibration_cache()
            for i in range(runner._CALIBRATION_CACHE_MAX + 8):
                point = dataclasses.replace(
                    base, mem_bw_gbs=base.mem_bw_gbs * (1.0 + 1e-6 * (i + 1))
                )
                calibrated(point)
                assert len(runner._CALIBRATION_CACHE) <= runner._CALIBRATION_CACHE_MAX
            # Oldest entries were evicted, newest survive.
            assert len(runner._CALIBRATION_CACHE) == runner._CALIBRATION_CACHE_MAX
        finally:
            runner.clear_calibration_cache()
            runner._CALIBRATION_CACHE.update(before)

    def test_calibration_reduces_homogeneous_error(self, matrix):
        raw = evaluate_matrix(tiny_arch(), matrix, calibrate=False)
        cal = evaluate_matrix(tiny_arch(), matrix, calibrate=True)
        raw_err = raw.outcomes[COLD_ONLY].prediction_error
        cal_err = cal.outcomes[COLD_ONLY].prediction_error
        assert cal_err <= raw_err * 1.5 + 0.05  # calibration should not blow up


class TestEvaluateHeuristics:
    def test_all_heuristics_timed(self, matrix):
        times = evaluate_heuristics(tiny_arch(), matrix, calibrate=False)
        assert HOTTILES in times
        assert len(times) == 6  # four heuristics + block-split + the selection
        assert all(t > 0 for t in times.values())

    def test_parallel_only_on_atomic_arch(self, matrix):
        times = evaluate_heuristics(tiny_arch(atomic=True), matrix, calibrate=False)
        assert len(times) == 4  # two parallel heuristics + block-split + selection
