"""Benchmark matrix registry tests."""

import pytest

from repro.experiments.matrices import (
    ALL_MATRICES,
    TABLE_V,
    TABLE_VIII,
    load_matrix,
    profiling_matrices,
)
from repro.sparse.stats import nnz_share_of_top_tiles
from repro.sparse.tiling import TiledMatrix


class TestRegistry:
    def test_table_v_has_ten_entries(self):
        assert len(TABLE_V) == 10
        assert list(TABLE_V) == [
            "ski", "pap", "del", "dgr", "kro", "myc", "pac", "ser", "pok", "wik",
        ]

    def test_table_viii_has_five_entries(self):
        assert list(TABLE_VIII) == ["gea", "mou", "nd2", "rm0", "si4"]

    def test_no_short_name_collisions(self):
        assert len(ALL_MATRICES) == len(TABLE_V) + len(TABLE_VIII)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            load_matrix("nope")

    def test_loading_is_cached(self):
        assert load_matrix("pap") is load_matrix("pap")

    def test_paper_metadata_recorded(self):
        ski = TABLE_V["ski"]
        assert ski.full_name == "as-Skitter"
        assert ski.paper_nnz_millions == 22


@pytest.mark.parametrize("short", list(TABLE_V))
class TestTableVMatrices:
    def test_square_and_nonzero(self, short):
        m = load_matrix(short)
        assert m.n_rows == m.n_cols
        assert m.nnz > 100_000

    def test_scaled_nnz_near_target(self, short):
        """nnz lands within 3x of paper_nnz / 64 (myc uses the nearest
        exact Mycielskian order, so the band is loose)."""
        entry = TABLE_V[short]
        target = entry.paper_nnz_millions * 1e6 / 64
        assert target / 3 <= entry.load().nnz <= target * 3


class TestStructure:
    def test_myc_is_densest_of_table_v(self):
        densities = {s: load_matrix(s).density for s in TABLE_V}
        assert max(densities, key=densities.get) == "myc"

    def test_power_law_matrices_have_imh(self):
        for short in ("ski", "pok", "wik", "kro"):
            tiled = TiledMatrix(load_matrix(short), 128, 128)
            assert nnz_share_of_top_tiles(tiled, 0.1) > 0.2

    def test_table_viii_denser_than_table_v_median(self):
        dense_med = sorted(load_matrix(s).density for s in TABLE_VIII)[2]
        sparse_med = sorted(load_matrix(s).density for s in TABLE_V)[5]
        assert dense_med > sparse_med

    def test_profiling_matrices_are_small(self):
        mats = profiling_matrices()
        assert len(mats) >= 2
        assert all(m.nnz < 100_000 for m in mats)
