"""Resilience sweep: every conftest matrix x architecture completes with a
finite makespan inflation at every fault rate (ISSUE acceptance criterion).
"""

import json

import pytest

from repro.experiments.resilience import (
    DEFAULT_ARCHES,
    ResilienceResult,
    resilience_sweep,
)

MATRIX_FIXTURES = ["tiny_matrix", "small_rmat", "small_uniform", "small_banded"]
RATES = (0.0, 1.0)


@pytest.mark.parametrize("fixture", MATRIX_FIXTURES)
def test_sweep_finite_across_matrix_corpus(fixture, request):
    matrix = request.getfixturevalue(fixture)
    result = resilience_sweep(matrix, rates=RATES, seed=0, label=fixture)
    assert isinstance(result, ResilienceResult)
    assert result.all_finite()
    assert len(result.rows) == len(DEFAULT_ARCHES) * len(RATES)
    for row in result.rows:
        assert row.base_ms > 0
        assert row.faulted_ms > 0
        if row.rate == 0.0:
            # Empty schedule -> the clean, bit-identical path.
            assert row.events == 0
            assert row.inflation == 1.0
        else:
            assert row.inflation >= 1.0


def test_rate_zero_rows_are_exactly_clean(small_rmat):
    result = resilience_sweep(small_rmat, rates=(0.0,), seed=3)
    assert result.max_inflation() == 1.0
    assert all(row.failures == 0 for row in result.rows)


def test_render_and_json_roundtrip(small_rmat, tmp_path):
    result = resilience_sweep(
        small_rmat, arches=("spade-sextans",), rates=RATES, seed=1, label="rmat"
    )
    rendered = result.render()
    assert "spade-sextans" in rendered
    assert "inflation" in rendered

    path = str(tmp_path / "resilience.json")
    result.save_json(path)
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["matrix"] == "rmat"
    assert len(payload["rows"]) == len(RATES)
    assert payload == result.to_dict()


def test_seeded_sweep_is_deterministic(small_uniform):
    a = resilience_sweep(small_uniform, arches=("piuma",), rates=(2.0,), seed=5)
    b = resilience_sweep(small_uniform, arches=("piuma",), rates=(2.0,), seed=5)
    assert a.to_dict() == b.to_dict()
