"""Content-addressed cache tests: digests, the on-disk store, pickling."""

import dataclasses
import enum
import pickle

import numpy as np
import pytest

from repro.arch.configs import piuma, spade_sextans
from repro.core.traits import WorkerKind
from repro.experiments.cache import ResultCache, code_version, stable_digest
from repro.sim.engine import simulate_homogeneous
from repro.sparse import generators
from repro.sparse.tiling import TiledMatrix
from tests.core.test_partition import mixed_tiled, tiny_arch


class Color(enum.Enum):
    RED = 1
    BLUE = 2


class TestStableDigest:
    def test_primitives_distinct(self):
        values = [None, True, False, 0, 1, 0.0, 1.5, "a", b"a", "1"]
        digests = [stable_digest(v) for v in values]
        assert len(set(digests)) == len(values)

    def test_int_float_distinct(self):
        assert stable_digest(1) != stable_digest(1.0)

    def test_repeatable(self):
        arch = spade_sextans(4)
        assert stable_digest(arch) == stable_digest(arch)

    def test_equal_configs_share_digest(self):
        assert stable_digest(spade_sextans(4)) == stable_digest(spade_sextans(4))

    def test_different_configs_differ(self):
        assert stable_digest(spade_sextans(4)) != stable_digest(spade_sextans(2))
        assert stable_digest(spade_sextans(4)) != stable_digest(piuma())

    def test_bandwidth_tweak_changes_digest(self):
        arch = spade_sextans(4)
        tweaked = dataclasses.replace(arch, mem_bw_gbs=arch.mem_bw_gbs * 1.0000001)
        assert stable_digest(arch) != stable_digest(tweaked)

    def test_cross_process_stability(self):
        """The digest must not depend on the per-process hash seed."""
        import os
        import subprocess
        import sys

        code = (
            "from repro.experiments.cache import stable_digest;"
            "from repro.arch.configs import spade_sextans;"
            "print(stable_digest(spade_sextans(4)))"
        )
        outs = set()
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            outs.add(proc.stdout.strip())
        assert outs == {stable_digest(spade_sextans(4))}

    def test_enum_by_name(self):
        assert stable_digest(Color.RED) != stable_digest(Color.BLUE)

    def test_set_order_independent(self):
        assert stable_digest(frozenset({Color.RED, Color.BLUE})) == stable_digest(
            frozenset({Color.BLUE, Color.RED})
        )

    def test_numpy_arrays(self):
        a = np.arange(6, dtype=np.int64)
        assert stable_digest(a) == stable_digest(a.copy())
        assert stable_digest(a) != stable_digest(a.astype(np.int32))
        assert stable_digest(a) != stable_digest(a.reshape(2, 3))

    def test_dict_sorted_by_key(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            stable_digest({1: "a"})

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError, match="cannot canonically encode"):
            stable_digest(object())

    def test_matrix_via_content_digest(self):
        m1 = generators.rmat(scale=8, nnz=500, seed=7)
        m2 = generators.rmat(scale=8, nnz=500, seed=7)
        m3 = generators.rmat(scale=8, nnz=500, seed=8)
        assert stable_digest(m1) == stable_digest(m2)
        assert stable_digest(m1) != stable_digest(m3)


class TestContentDigests:
    def test_sparse_matrix_digest_memoized(self):
        m = generators.rmat(scale=8, nnz=500, seed=7)
        assert m.content_digest() is m.content_digest()

    def test_tiled_matrix_digest_covers_geometry(self):
        m = generators.rmat(scale=8, nnz=500, seed=7)
        assert (
            TiledMatrix(m, 4, 4).content_digest()
            != TiledMatrix(m, 8, 8).content_digest()
        )
        assert (
            TiledMatrix(m, 4, 4).content_digest()
            == TiledMatrix(m, 4, 4).content_digest()
        )

    def test_pickle_round_trips(self):
        """Architecture / TiledMatrix / SimResult survive the pool boundary."""
        arch = tiny_arch()
        tiled = mixed_tiled()
        sim = simulate_homogeneous(arch, tiled, WorkerKind.COLD)
        arch2 = pickle.loads(pickle.dumps(arch))
        assert arch2 == arch
        assert stable_digest(arch2) == stable_digest(arch)
        tiled2 = pickle.loads(pickle.dumps(tiled))
        assert tiled2.content_digest() == tiled.content_digest()
        sim2 = pickle.loads(pickle.dumps(sim))
        assert sim2.time_s == sim.time_s
        assert stable_digest(sim2) == stable_digest(sim)

    def test_unpickled_matrix_stays_immutable(self):
        m = pickle.loads(pickle.dumps(generators.rmat(scale=8, nnz=500, seed=7)))
        with pytest.raises(ValueError):
            m.rows[0] = 3


class TestCodeVersion:
    def test_stable_within_process(self):
        assert code_version() == code_version()

    def test_short_hex(self):
        v = code_version()
        assert len(v) == 16
        int(v, 16)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_digest("entry")
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(stable_digest("k"), [1, 2, 3])
        assert ResultCache(tmp_path).get(stable_digest("k")) == [1, 2, 3]

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(stable_digest(i), i)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_digest("corrupt")
        cache.put(key, "value")
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()

    def test_cache_dir_must_be_a_directory(self, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("")
        with pytest.raises(NotADirectoryError, match="not a directory"):
            ResultCache(not_a_dir)

    def test_bad_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="hex"):
            cache.get("../escape")
        with pytest.raises(ValueError, match="hex"):
            cache.put("", 1)

    def test_contains(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_digest("present")
        assert key not in cache
        cache.put(key, 1)
        assert key in cache

    def test_reset_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get(stable_digest("missing"))
        cache.reset_counters()
        assert cache.hits == 0 and cache.misses == 0


class TestCacheMaintenance:
    """Byte-size cap, oldest-first eviction, and lifetime counters."""

    @staticmethod
    def _fill(cache, n, payload_bytes=1000, start=0):
        import os as _os
        keys = []
        for i in range(start, start + n):
            key = stable_digest(("evict", i))
            cache.put(key, b"x" * payload_bytes)
            # Make write order unambiguous for mtime-based eviction.
            path = cache._path(key)
            _os.utime(path, (i, i))
            keys.append(key)
        return keys

    def test_total_bytes_and_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 3)
        listing = cache.entries()
        assert len(listing) == 3
        assert cache.total_bytes() == sum(size for _, size, _ in listing)
        assert cache.total_bytes() > 3000

    def test_evict_to_removes_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = self._fill(cache, 4)
        per_entry = cache.total_bytes() // 4
        evicted = cache.evict_to(2 * per_entry)
        assert evicted == 2
        assert keys[0] not in cache and keys[1] not in cache
        assert keys[2] in cache and keys[3] in cache

    def test_put_enforces_cap(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=0)
        key = stable_digest("capped")
        cache.put(key, "value")
        # A zero-byte cap evicts immediately: the store never grows.
        assert len(cache) == 0

    def test_cap_keeps_newest(self, tmp_path):
        probe = ResultCache(tmp_path / "probe")
        self._fill(probe, 1)
        per_entry = probe.total_bytes()
        cache = ResultCache(tmp_path / "real", max_bytes=2 * per_entry)
        keys = self._fill(cache, 5)
        assert len(cache) <= 2
        assert keys[-1] in cache

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=-1)

    def test_flush_and_persisted_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_digest("counted")
        cache.get(key)  # miss
        cache.put(key, 1)
        cache.get(key)  # hit
        cache.flush_counters()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.persisted_counters() == {"hits": 1, "misses": 1}
        # A second process's flush merge-adds.
        other = ResultCache(tmp_path)
        other.get(key)
        other.flush_counters()
        assert cache.persisted_counters() == {"hits": 2, "misses": 1}

    def test_flush_without_activity_writes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.flush_counters()
        assert not (tmp_path / ResultCache.COUNTERS_FILE).exists()

    def test_stats_shape(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10_000)
        key = stable_digest("statted")
        cache.get(key)
        cache.put(key, "v")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["max_bytes"] == 10_000
        assert stats["session_misses"] == 1
        assert stats["lifetime_misses"] == 1

    def test_corrupt_counters_file_is_zero(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / ResultCache.COUNTERS_FILE).write_text("{broken")
        assert cache.persisted_counters() == {"hits": 0, "misses": 0}
