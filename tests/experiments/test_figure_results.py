"""Unit tests for figure result objects (no simulation: synthetic rows).

The integration tests in test_figures.py exercise the full pipelines;
these pin down the result dataclasses' derived values and renderings in
isolation so regressions in formatting or aggregation are caught cheaply.
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    ComparisonResult,
    Figure04Result,
    Figure05Result,
    Figure12Result,
    Figure13Result,
    Figure14Result,
    Figure16Result,
    Figure17Result,
    Figure18Result,
    Table09Result,
)


class TestComparisonResult:
    def test_render_includes_rows_and_averages(self):
        result = ComparisonResult(
            arch_name="test-arch",
            runtimes_ms=[("ski", 10.0, 2.0, 2.0, 5.0, 1.0)],
            avg_speedup_vs={"hot-only": 10.0, "cold-only": 2.0},
        )
        text = result.render()
        assert "test-arch" in text
        assert "ski" in text
        assert "hot-only: 10.00x" in text


class TestFigure04Result:
    def test_render(self):
        result = Figure04Result(rows=[("a", "m", 1.0, 2.0, 1.5)])
        assert "Fig. 4" in result.render()
        assert "m" in result.render()


class TestFigure05Result:
    def test_render_symbols(self):
        density = np.array([[3, 0], [1, 2]])
        result = Figure05Result(
            density_grid=density,
            iunaware_hot_grid=np.array([[True, False], [False, False]]),
            hottiles_hot_grid=np.array([[True, False], [False, True]]),
            iunaware_hot_nnz_pct=50.0,
            hottiles_hot_nnz_pct=83.0,
        )
        text = result.render()
        assert "50%" in text and "83%" in text
        assert "#" in text and "." in text


class TestFigure12Result:
    def test_render_mentions_bandwidth(self):
        result = Figure12Result(
            rows=[(1, "hottiles", 2.0)], bandwidth_gbs={1: 45.2}
        )
        text = result.render()
        assert "scale 1: 45 GB/s" in text


class TestFigure13Result:
    def test_render_averages(self):
        result = Figure13Result(
            rows=[("m", 2.0, 1.5)], avg_vs_hot8=2.0, avg_vs_cold8=1.5
        )
        assert "2.00x vs HotOnly8" in result.render()


class TestFigure14Result:
    def test_render(self):
        result = Figure14Result(rows=[(1, 10.0, 1.2, 50.0)])
        assert "ops/nnz" in result.render()


class TestFigure16Result:
    def test_best_helpers(self):
        result = Figure16Result(
            rows=[("0-8", 0.5, 0.4), ("4-4", 1.0, 1.0), ("8-0", 0.8, 1.2)]
        )
        assert result.predicted_best == "4-4"
        assert result.actual_best == "8-0"


class TestTable09Result:
    def test_render_summary_line(self):
        result = Table09Result(
            rows=[
                ("a", "4-4", 1.0, "4-4", 1.0, True),
                ("b", "5-3", 0.8, "8-0", 1.2, False),
            ]
        )
        text = result.render()
        assert "correct predictions 50%" in text
        assert "oracle" in text


class TestFigure17Result:
    def test_render_averages(self):
        result = Figure17Result(
            rows=[("a", "m", 10.0, 20.0, 5.0), ("a", "n", 30.0, 40.0, 15.0)]
        )
        text = result.render()
        assert "HotOnly 20.0%" in text
        assert "ColdOnly 30.0%" in text
        assert "HotTiles 10.0%" in text


class TestFigure18Result:
    def test_render_share(self):
        result = Figure18Result(
            rows=[("m", 0.4, 0.6, 2.5)], avg_overhead_fraction=0.6
        )
        assert "60%" in result.render()
