"""CSV export tests."""

import io
from dataclasses import dataclass

import pytest

from repro.experiments.export import result_to_csv, rows_to_csv


@dataclass(frozen=True)
class FakeTupleResult:
    rows: list


@dataclass(frozen=True)
class Item:
    name: str
    value: float


@dataclass(frozen=True)
class FakeDictResult:
    rows: dict


class TestRowsToCsv:
    def test_string_output(self):
        text = rows_to_csv(["a", "b"], [(1, 2), (3, 4)])
        assert text.splitlines() == ["a,b", "1,2", "3,4"]

    def test_file_target(self, tmp_path):
        path = tmp_path / "out.csv"
        rows_to_csv(["x"], [(1,)], path)
        assert path.read_text().splitlines() == ["x", "1"]

    def test_stream_target(self):
        buf = io.StringIO()
        rows_to_csv(["x"], [("hello, world",)], buf)
        assert '"hello, world"' in buf.getvalue()


class TestResultToCsv:
    def test_tuple_rows(self):
        text = result_to_csv(FakeTupleResult(rows=[("m", 1.5), ("n", 2.5)]))
        lines = text.splitlines()
        assert lines[0] == "col0,col1"
        assert lines[1] == "m,1.5"

    def test_dataclass_rows(self):
        text = result_to_csv(FakeTupleResult(rows=[Item("a", 1.0)]))
        assert text.splitlines()[0] == "name,value"

    def test_dict_rows(self):
        text = result_to_csv(FakeDictResult(rows={1: [Item("a", 1.0)], 4: [Item("b", 2.0)]}))
        lines = text.splitlines()
        assert lines[0] == "group,name,value"
        assert "1,a,1.0" in lines
        assert "4,b,2.0" in lines

    def test_missing_rows(self):
        with pytest.raises(ValueError, match="rows"):
            result_to_csv(object())

    def test_empty_rows(self):
        with pytest.raises(ValueError, match="nothing"):
            result_to_csv(FakeTupleResult(rows=[]))

    def test_real_figure_result(self):
        """Integration: a real experiment result exports cleanly."""
        from repro.experiments.figures import figure18

        result = figure18(subset=("pap",))
        text = result_to_csv(result)
        assert len(text.splitlines()) == 2
