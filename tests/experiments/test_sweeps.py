"""Parameter sweep tests."""

import pytest

from repro.arch.configs import spade_sextans
from repro.experiments.sweeps import bandwidth_sweep, cold_count_sweep, k_sweep
from repro.sparse import generators


@pytest.fixture(scope="module")
def matrix():
    return generators.rmat(scale=11, nnz=25_000, seed=51)


@pytest.fixture(scope="module")
def arch():
    return spade_sextans(4)


class TestBandwidthSweep:
    def test_more_bandwidth_never_hurts_hottiles(self, arch, matrix):
        result = bandwidth_sweep(arch, matrix, [0.25, 1.0, 4.0])
        ht = result.hottiles_ms()
        assert ht[0] >= ht[1] >= ht[2] * 0.99

    def test_rows_and_render(self, arch, matrix):
        result = bandwidth_sweep(arch, matrix, [1.0])
        assert len(result.rows) == 1
        assert "bandwidth factor" in result.render()

    def test_invalid_factors(self, arch, matrix):
        with pytest.raises(ValueError, match="positive"):
            bandwidth_sweep(arch, matrix, [])
        with pytest.raises(ValueError, match="positive"):
            bandwidth_sweep(arch, matrix, [0.0])


class TestKSweep:
    def test_larger_k_costs_more(self, arch, matrix):
        result = k_sweep(arch, matrix, [8, 64])
        assert result.hottiles_ms()[1] > result.hottiles_ms()[0]

    def test_hottiles_wins_at_every_k(self, arch, matrix):
        result = k_sweep(arch, matrix, [8, 32])
        for _k, hot, cold, ht in result.rows:
            assert ht <= min(hot, cold) * 1.4

    def test_invalid_ks(self, arch, matrix):
        with pytest.raises(ValueError, match="positive"):
            k_sweep(arch, matrix, [0])


class TestColdCountSweep:
    def test_strategy_times_recorded(self, arch, matrix):
        result = cold_count_sweep(arch, matrix, [4, 16])
        assert len(result.rows) == 2
        assert all(v > 0 for row in result.rows for v in row[1:])

    def test_cold_only_improves_with_more_workers(self, arch, matrix):
        result = cold_count_sweep(arch, matrix, [2, 8])
        cold_times = [row[2] for row in result.rows]
        assert cold_times[1] < cold_times[0]

    def test_best_strategy_helper(self, arch, matrix):
        result = cold_count_sweep(arch, matrix, [8])
        assert result.best_strategy_per_point()[0] in {"hot-only", "cold-only", "hottiles"}

    def test_invalid_counts(self, arch, matrix):
        with pytest.raises(ValueError, match="positive"):
            cold_count_sweep(arch, matrix, [0])
