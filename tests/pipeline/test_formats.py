"""Accelerator sparse-format tests: every format computes the same SpMM."""

import numpy as np
import pytest

from repro.pipeline.formats import TiledCoo, TiledCsr, UntiledCoo, UntiledCsr, build_format
from repro.sparse import generators
from repro.sparse.tiling import TiledMatrix
from repro.workers import piuma_mtp, piuma_stp, sextans, spade_pe


@pytest.fixture(scope="module")
def tiled():
    m = generators.rmat(scale=8, nnz=1500, seed=3)
    return TiledMatrix(m, 32, 32)


@pytest.fixture(scope="module")
def din(tiled):
    rng = np.random.default_rng(4)
    return rng.standard_normal((tiled.matrix.n_cols, 8)).astype(np.float32)


WORKERS = {
    "spade": (spade_pe(), UntiledCoo),
    "sextans": (sextans(4), TiledCoo),
    "mtp": (piuma_mtp(), UntiledCsr),
    "stp": (piuma_stp(), TiledCsr),
}


class TestFormatTypes:
    @pytest.mark.parametrize("name", WORKERS)
    def test_worker_maps_to_expected_format(self, tiled, name):
        worker, expected_type = WORKERS[name]
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), worker)
        assert isinstance(fmt, expected_type)
        assert fmt.nnz == tiled.matrix.nnz


class TestSpmmEquivalence:
    @pytest.mark.parametrize("name", WORKERS)
    def test_full_matrix_spmm(self, tiled, din, name):
        worker, _ = WORKERS[name]
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), worker)
        expected = tiled.matrix.spmm(din)
        np.testing.assert_allclose(fmt.spmm(din), expected, rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("hot_name,cold_name", [("sextans", "spade"), ("stp", "mtp")])
    def test_partitioned_formats_merge_to_reference(self, tiled, din, hot_name, cold_name):
        """The Merger's contract: hot partial + cold partial == full SpMM."""
        rng = np.random.default_rng(9)
        assignment = rng.random(tiled.n_tiles) < 0.4
        hot_fmt = build_format(tiled, assignment, WORKERS[hot_name][0])
        cold_fmt = build_format(tiled, ~assignment, WORKERS[cold_name][0])
        merged = hot_fmt.spmm(din) + cold_fmt.spmm(din)
        np.testing.assert_allclose(
            merged, tiled.matrix.spmm(din), rtol=1e-4, atol=1e-4
        )

    def test_empty_subset(self, tiled, din):
        fmt = build_format(tiled, np.zeros(tiled.n_tiles, dtype=bool), spade_pe())
        assert fmt.nnz == 0
        assert np.array_equal(fmt.spmm(din), np.zeros((tiled.matrix.n_rows, 8)))


class TestDataItems:
    def test_coo_items(self, tiled):
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), spade_pe())
        assert fmt.data_items == 3 * tiled.matrix.nnz

    def test_untiled_csr_items(self, tiled):
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), piuma_mtp())
        assert fmt.data_items == tiled.matrix.n_rows + 2 * tiled.matrix.nnz

    def test_tiled_csr_items(self, tiled):
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), piuma_stp())
        # Sum over tiles of (clipped tile height + 2 * tile nnz).
        heights = np.minimum(
            tiled.tile_height,
            tiled.matrix.n_rows - tiled.stats.tile_row * tiled.tile_height,
        )
        expected = int(heights.sum()) + 2 * tiled.matrix.nnz
        assert fmt.data_items == expected


class TestStructure:
    def test_untiled_coo_row_major(self, tiled):
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), spade_pe())
        key = fmt.rows * tiled.matrix.n_cols + fmt.cols
        assert np.all(np.diff(key) > 0)

    def test_tiled_coo_offsets_consistent(self, tiled):
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), sextans(4))
        assert fmt.tile_offsets[0] == 0
        assert fmt.tile_offsets[-1] == fmt.nnz
        assert np.all(np.diff(fmt.tile_offsets) > 0)  # empty tiles eliminated

    def test_untiled_csr_indptr(self, tiled):
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), piuma_mtp())
        assert fmt.indptr.shape == (tiled.matrix.n_rows + 1,)
        assert fmt.indptr[-1] == fmt.nnz

    def test_subset_shape_check(self, tiled):
        with pytest.raises(ValueError, match="tile_subset"):
            build_format(tiled, np.ones(3, dtype=bool), spade_pe())
