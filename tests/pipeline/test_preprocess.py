"""End-to-end preprocessing pipeline tests."""

import numpy as np
import pytest

from repro.pipeline.cost import PreprocessCost
from repro.pipeline.preprocess import HotTilesPreprocessor
from repro.sparse import generators
from tests.core.test_partition import tiny_arch


@pytest.fixture(scope="module")
def matrix():
    return generators.community_blocks(128, 3000, 8, seed=6)


class TestPipeline:
    def test_run_produces_formats_and_partition(self, matrix):
        result = HotTilesPreprocessor(tiny_arch()).run(matrix)
        assert result.partition.chosen is not None
        assignment = result.partition.chosen.assignment
        if assignment.any():
            assert result.hot_format is not None
        if (~assignment).any():
            assert result.cold_format is not None

    def test_verify_spmm_matches_reference(self, matrix):
        result = HotTilesPreprocessor(tiny_arch()).run(matrix)
        rng = np.random.default_rng(7)
        din = rng.standard_normal((matrix.n_cols, 4)).astype(np.float32)
        np.testing.assert_allclose(
            result.verify_spmm(din), matrix.spmm(din), rtol=1e-4, atol=1e-4
        )

    def test_nnz_split_is_exact(self, matrix):
        result = HotTilesPreprocessor(tiny_arch()).run(matrix)
        hot_nnz = result.hot_format.nnz if result.hot_format else 0
        cold_nnz = result.cold_format.nnz if result.cold_format else 0
        assert hot_nnz + cold_nnz == matrix.nnz

    def test_cost_fields_populated(self, matrix):
        cost = HotTilesPreprocessor(tiny_arch()).run(matrix).cost
        assert cost.scan_s > 0
        assert cost.partition_s > 0
        assert cost.format_generation_s > 0
        assert cost.total_s == pytest.approx(
            cost.scan_s + cost.partition_s + cost.format_generation_s
        )

    def test_homogeneous_architecture(self, matrix):
        result = HotTilesPreprocessor(tiny_arch(n_hot=0)).run(matrix)
        assert result.hot_format is None
        assert result.cold_format.nnz == matrix.nnz


class TestCostModel:
    def test_overhead_fraction_bounds(self):
        cost = PreprocessCost(1.0, 2.0, 3.0, 2.0)
        assert cost.total_s == pytest.approx(6.0)
        assert cost.hottiles_overhead_s == pytest.approx(4.0)
        assert 0 <= cost.overhead_fraction <= 1

    def test_slowdown(self):
        cost = PreprocessCost(1.0, 1.0, 2.0, 1.0)
        assert cost.slowdown_vs_homogeneous == pytest.approx(4.0)

    def test_zero_baseline(self):
        cost = PreprocessCost(1.0, 0.0, 0.0, 0.0)
        assert cost.slowdown_vs_homogeneous == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PreprocessCost(-1.0, 0.0, 0.0, 0.0)
