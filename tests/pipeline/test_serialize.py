"""Format/assignment serialization round-trip tests."""

import numpy as np
import pytest

from repro.pipeline.formats import build_format
from repro.pipeline.serialize import (
    load_assignment,
    load_format,
    save_assignment,
    save_format,
)
from repro.sparse import generators
from repro.sparse.tiling import TiledMatrix
from repro.workers import piuma_mtp, piuma_stp, sextans, spade_pe


@pytest.fixture(scope="module")
def tiled():
    return TiledMatrix(generators.rmat(scale=8, nnz=1200, seed=41), 32, 32)


@pytest.mark.parametrize(
    "worker_factory", [spade_pe, lambda: sextans(4), piuma_mtp, piuma_stp]
)
def test_format_roundtrip(tmp_path, tiled, worker_factory):
    worker = worker_factory()
    fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), worker)
    path = tmp_path / "fmt.npz"
    save_format(fmt, path)
    loaded = load_format(path)
    assert type(loaded) is type(fmt)
    din = np.random.default_rng(1).standard_normal((tiled.matrix.n_cols, 4)).astype(
        np.float32
    )
    np.testing.assert_allclose(loaded.spmm(din), fmt.spmm(din), rtol=1e-5, atol=1e-5)


def test_format_roundtrip_preserves_every_field(tmp_path, tiled):
    fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), piuma_stp())
    path = tmp_path / "stp.npz"
    save_format(fmt, path)
    loaded = load_format(path)
    for name in fmt.__dataclass_fields__:
        a, b = getattr(fmt, name), getattr(loaded, name)
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b), name
        else:
            assert a == b, name


def test_load_rejects_foreign_npz(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, stuff=np.arange(3))
    with pytest.raises(ValueError, match="not a saved HotTiles format"):
        load_format(path)


def test_assignment_roundtrip(tmp_path):
    assignment = np.array([True, False, True])
    path = tmp_path / "assign.npz"
    save_assignment(assignment, path, label="min-byte-parallel", mode="parallel")
    loaded, label, mode = load_assignment(path)
    assert np.array_equal(loaded, assignment)
    assert label == "min-byte-parallel"
    assert mode == "parallel"


def test_assignment_rejects_foreign(tmp_path):
    path = tmp_path / "x.npz"
    np.savez(path, other=np.arange(2))
    with pytest.raises(ValueError, match="not a saved assignment"):
        load_assignment(path)


class TestAtomicWrites:
    """A crash mid-write must never publish a torn artifact."""

    @staticmethod
    def _crashing_savez(monkeypatch):
        def crash(file, **payload):
            # Simulate dying partway through serialization: some bytes
            # land in the (temp) file, then the process "crashes".
            file.write(b"PK\x03\x04 half an archive")
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(np, "savez", crash)

    def test_crash_leaves_no_partial_format(self, tmp_path, tiled, monkeypatch):
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), spade_pe())
        self._crashing_savez(monkeypatch)
        with pytest.raises(RuntimeError, match="simulated crash"):
            save_format(fmt, tmp_path / "fmt.npz")
        # No final artifact, and the staging temp file was cleaned up.
        assert list(tmp_path.iterdir()) == []

    def test_crash_leaves_previous_artifact_intact(self, tmp_path, tiled, monkeypatch):
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), spade_pe())
        path = tmp_path / "fmt.npz"
        save_format(fmt, path)
        good = path.read_bytes()
        self._crashing_savez(monkeypatch)
        with pytest.raises(RuntimeError):
            save_format(fmt, path)
        # The previously published artifact is untouched and loadable.
        assert path.read_bytes() == good
        load_format(path)

    def test_crash_leaves_no_partial_assignment(self, tmp_path, monkeypatch):
        self._crashing_savez(monkeypatch)
        with pytest.raises(RuntimeError):
            save_assignment(np.array([True, False]), tmp_path / "a.npz")
        assert list(tmp_path.iterdir()) == []

    def test_save_appends_npz_suffix(self, tmp_path, tiled):
        fmt = build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), spade_pe())
        returned = save_format(fmt, tmp_path / "bare")
        assert returned == tmp_path / "bare.npz"
        assert returned.exists()
        load_format(returned)
