"""Property-based tests: format generation preserves SpMM for any matrix
and any partition, for every worker-format combination."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.formats import build_format
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix
from repro.workers import piuma_mtp, piuma_stp, sextans, spade_pe


@st.composite
def tiled_matrices(draw):
    n = draw(st.integers(min_value=5, max_value=40))
    nnz = draw(st.integers(min_value=1, max_value=80))
    rows = np.array(draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)))
    cols = np.array(draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)))
    vals = np.array(
        draw(
            st.lists(
                st.floats(min_value=-4, max_value=4, allow_nan=False),
                min_size=nnz,
                max_size=nnz,
            )
        ),
        dtype=np.float32,
    )
    matrix = SparseMatrix(n, n, rows, cols, vals)
    th = draw(st.sampled_from([3, 4, 8]))
    tw = draw(st.sampled_from([3, 4, 8]))
    return TiledMatrix(matrix, th, tw)


@settings(max_examples=40, deadline=None)
@given(tiled=tiled_matrices(), seed=st.integers(0, 2**16))
def test_partitioned_coo_formats_preserve_spmm(tiled, seed):
    rng = np.random.default_rng(seed)
    assignment = rng.random(tiled.n_tiles) < 0.5
    hot_fmt = build_format(tiled, assignment, sextans(4))
    cold_fmt = build_format(tiled, ~assignment, spade_pe())
    din = rng.standard_normal((tiled.matrix.n_cols, 3)).astype(np.float32)
    merged = hot_fmt.spmm(din) + cold_fmt.spmm(din)
    np.testing.assert_allclose(merged, tiled.matrix.spmm(din), rtol=1e-3, atol=1e-3)
    assert hot_fmt.nnz + cold_fmt.nnz == tiled.matrix.nnz


@settings(max_examples=40, deadline=None)
@given(tiled=tiled_matrices(), seed=st.integers(0, 2**16))
def test_partitioned_csr_formats_preserve_spmm(tiled, seed):
    rng = np.random.default_rng(seed)
    assignment = rng.random(tiled.n_tiles) < 0.5
    hot_fmt = build_format(tiled, assignment, piuma_stp())
    cold_fmt = build_format(tiled, ~assignment, piuma_mtp())
    din = rng.standard_normal((tiled.matrix.n_cols, 3)).astype(np.float32)
    merged = hot_fmt.spmm(din) + cold_fmt.spmm(din)
    np.testing.assert_allclose(merged, tiled.matrix.spmm(din), rtol=1e-3, atol=1e-3)


@settings(max_examples=40, deadline=None)
@given(tiled=tiled_matrices())
def test_data_items_match_table_i(tiled):
    """Table I item counts hold exactly for the generated formats."""
    full = np.ones(tiled.n_tiles, dtype=bool)
    coo = build_format(tiled, full, spade_pe())
    assert coo.data_items == 3 * tiled.matrix.nnz
    csr = build_format(tiled, full, piuma_mtp())
    assert csr.data_items == tiled.matrix.n_rows + 2 * tiled.matrix.nnz
