"""PlanService tests: coalescing, backpressure, timeout, drain."""

import threading
import time

import pytest

from repro.service.planner import (
    AdmissionRejected,
    PlanFailed,
    PlanService,
    PlanTimeout,
    ServiceClosed,
)
from repro.service.protocol import PlanRequest
from repro.service.store import PlanStore


def rmat_request(seed=0, **overrides):
    payload = {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": seed}}
    payload.update(overrides)
    return PlanRequest.from_dict(payload)


@pytest.fixture
def service(tmp_path):
    svc = PlanService(store=PlanStore(tmp_path / "plans"), workers=2, queue_depth=8)
    yield svc
    svc.close()


class TestHappyPath:
    def test_computed_then_store(self, service):
        result, served = service.plan(rmat_request())
        assert served == "computed"
        again, served2 = service.plan(rmat_request())
        assert served2 == "store"
        assert again == result
        counters = service.metrics.snapshot()["counters"]
        assert counters["requests_accepted"] == 2
        assert counters["requests_completed"] == 2
        assert counters["plans_computed"] == 1

    def test_store_survives_restart(self, tmp_path):
        with PlanService(store=PlanStore(tmp_path / "p")) as svc:
            first, _ = svc.plan(rmat_request())
        with PlanService(store=PlanStore(tmp_path / "p")) as svc:
            again, served = svc.plan(rmat_request())
        assert served == "store"
        assert again == first

    def test_distinct_requests_distinct_plans(self, service):
        a, _ = service.plan(rmat_request(seed=1))
        b, _ = service.plan(rmat_request(seed=2))
        assert a.digest != b.digest


class TestCoalescing:
    def test_concurrent_same_digest_computes_once(self, tmp_path):
        svc = PlanService(store=PlanStore(tmp_path / "p"), workers=2, queue_depth=8)
        gate = threading.Event()
        real_compute = svc._compute

        def slow_compute(request, digest):
            gate.wait(5.0)
            return real_compute(request, digest)

        svc._compute = slow_compute
        outcomes = []

        def call():
            outcomes.append(svc.plan(rmat_request(), timeout_s=10.0))

        threads = [threading.Thread(target=call) for _ in range(4)]
        for t in threads:
            t.start()
        # Let every request register against the in-flight entry.
        deadline = time.monotonic() + 5.0
        while svc.metrics.counter("requests_coalesced").value < 3:
            if time.monotonic() > deadline:
                break
            time.sleep(0.01)
        gate.set()
        for t in threads:
            t.join()
        svc.close()
        assert len(outcomes) == 4
        assert len({r.digest for r, _ in outcomes}) == 1
        counters = svc.metrics.snapshot()["counters"]
        assert counters["plans_computed"] == 1
        assert counters["requests_coalesced"] == 3
        served = sorted(s for _, s in outcomes)
        assert served == ["coalesced", "coalesced", "coalesced", "computed"]


class TestBackpressure:
    def test_queue_full_rejects_with_retry_after(self, tmp_path):
        svc = PlanService(store=PlanStore(tmp_path / "p"), workers=1, queue_depth=1)
        gate = threading.Event()
        real = svc._compute
        svc._compute = lambda request, digest: (gate.wait(10.0), real(request, digest))[1]

        def call(seed):
            svc.plan(rmat_request(seed=seed), timeout_s=30.0)

        # Occupy the worker, then fill the single queue slot.
        t1 = threading.Thread(target=call, args=(1,))
        t1.start()
        deadline = time.monotonic() + 5.0
        while svc.metrics.gauge("plans_in_flight").value < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        t2 = threading.Thread(target=call, args=(2,))
        t2.start()
        deadline = time.monotonic() + 5.0
        while svc._queue.qsize() < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        with pytest.raises(AdmissionRejected) as excinfo:
            svc.plan(rmat_request(seed=3))
        assert excinfo.value.retry_after_s > 0
        assert svc.metrics.counter("requests_rejected").value == 1
        gate.set()
        t1.join()
        t2.join()
        svc.close()


class TestTimeoutAndCancellation:
    def test_timeout_raises_and_counts(self, tmp_path):
        svc = PlanService(store=PlanStore(tmp_path / "p"), workers=1, queue_depth=4)
        gate = threading.Event()
        real = svc._compute
        svc._compute = lambda request, digest: (gate.wait(10.0), real(request, digest))[1]
        blocker = threading.Thread(
            target=lambda: svc.plan(rmat_request(seed=1), timeout_s=10.0)
        )
        blocker.start()
        deadline = time.monotonic() + 5.0
        while svc.metrics.gauge("plans_in_flight").value < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        # A second, queued plan abandoned by its only waiter is cancelled.
        with pytest.raises(PlanTimeout):
            svc.plan(rmat_request(seed=2), timeout_s=0.05)
        gate.set()
        blocker.join()
        svc.close()
        counters = svc.metrics.snapshot()["counters"]
        assert counters["requests_timeout"] == 1
        assert counters["plans_cancelled"] == 1
        # The cancelled plan never executed.
        assert counters["plans_computed"] == 1

    def test_failure_surfaces_error_text(self, service):
        # Digests fine, but the generator rejects it at compute time:
        # 2000 nonzeros cannot fit a 16x16 matrix.
        bad = PlanRequest.from_dict(
            {"generator": {"kind": "rmat", "scale": 4, "nnz": 2000, "seed": 0}}
        )
        with pytest.raises(PlanFailed):
            service.plan(bad)
        assert service.metrics.counter("requests_failed").value == 1


class TestShutdown:
    def test_close_rejects_new_requests(self, tmp_path):
        svc = PlanService(store=PlanStore(tmp_path / "p"))
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.plan(rmat_request())

    def test_close_is_idempotent(self, tmp_path):
        svc = PlanService(store=PlanStore(tmp_path / "p"))
        svc.close()
        svc.close()

    def test_drain_completes_inflight_plans(self, tmp_path):
        svc = PlanService(store=PlanStore(tmp_path / "p"), workers=1, queue_depth=8)
        results = []

        def call(seed):
            results.append(svc.plan(rmat_request(seed=seed), timeout_s=30.0))

        threads = [threading.Thread(target=call, args=(s,)) for s in range(3)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10.0
        while svc.metrics.counter("requests_accepted").value < 3:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        svc.close(drain=True)
        for t in threads:
            t.join()
        # Every admitted request completed; none were abandoned.
        assert len(results) == 3
        counters = svc.metrics.snapshot()["counters"]
        assert counters["requests_completed"] == counters["requests_accepted"]

    def test_stats_snapshot_shape(self, service):
        service.plan(rmat_request())
        stats = service.stats()
        assert stats["uptime_s"] >= 0
        assert stats["config"]["workers"] == 2
        assert "store" in stats
        assert stats["counters"]["requests_completed"] == 1
        assert stats["histograms"]["request_latency_s"]["count"] == 1
