"""Chaos-mode load generator: injected faults are absorbed, not failures."""

import threading

import pytest

from repro.faults.chaos import ChaosConfig
from repro.service.httpd import make_server
from repro.service.loadgen import default_request_payloads, run_loadgen, run_pass
from repro.service.planner import PlanService
from repro.service.store import PlanStore


@pytest.fixture
def live_server(tmp_path):
    service = PlanService(
        store=PlanStore(tmp_path / "plans"),
        workers=2,
        queue_depth=8,
        degraded_fallback=True,
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}", service
    server.shutdown()
    server.server_close()
    service.close()


class TestChaosPass:
    def test_timeout_chaos_absorbed_not_failed(self, live_server):
        base, _service = live_server
        chaos = ChaosConfig(rate=0.5, seed=3, kinds=("timeout",))
        result = run_pass(
            base,
            default_request_payloads(3),
            requests=24,
            concurrency=4,
            chaos=chaos,
        )
        injected = sum(result.chaos_injected.values())
        assert injected > 0
        assert result.failed == 0
        # Every injected request settled in a status the injection expects
        # (timeout -> 200/429/504); absorbed overlaps completed when the
        # server still answered 200 despite the tiny client timeout.
        assert result.chaos_absorbed == injected
        assert result.completed + result.chaos_absorbed >= 24
        assert result.completed <= 24

    def test_malformed_chaos_all_rejected_cleanly(self, live_server):
        base, _service = live_server
        chaos = ChaosConfig(rate=1.0, seed=0, kinds=("malformed",))
        result = run_pass(
            base,
            default_request_payloads(2),
            requests=8,
            concurrency=2,
            chaos=chaos,
        )
        assert result.chaos_injected.get("malformed", 0) == 8
        assert result.chaos_absorbed == 8
        assert result.failed == 0
        assert result.completed == 0

    def test_chaos_rate_zero_is_clean_run(self, live_server):
        base, _service = live_server
        chaos = ChaosConfig(rate=0.0, seed=0, kinds=("timeout",))
        result = run_pass(
            base,
            default_request_payloads(2),
            requests=10,
            concurrency=2,
            chaos=chaos,
        )
        assert sum(result.chaos_injected.values()) == 0
        assert result.chaos_absorbed == 0
        assert result.completed == 10
        assert result.failed == 0


class TestChaosReport:
    def test_report_renders_and_reconciles(self, live_server):
        base, service = live_server
        chaos = ChaosConfig(rate=0.4, seed=7, kinds=("timeout", "malformed"))
        report = run_loadgen(
            base, requests=20, concurrency=4, plans=3, passes=2, chaos=chaos
        )
        assert report.reconciles()
        rendered = report.render()
        assert "chaos" in rendered
        for result in report.passes:
            assert result.failed == 0
        # Server-side accounting still balances under chaos.
        c = service.stats()["counters"]
        accounted = (
            c["requests_completed"]
            + c["requests_failed"]
            + c["requests_timeout"]
            + c["requests_degraded"]
        )
        assert c["requests_accepted"] == accounted
