"""Closed-loop load generator tests (the acceptance-criteria workload)."""

import threading

import pytest

from repro.service.httpd import make_server
from repro.service.loadgen import (
    default_request_payloads,
    run_loadgen,
    run_pass,
)
from repro.service.planner import PlanService
from repro.service.store import PlanStore


@pytest.fixture
def live_server(tmp_path):
    service = PlanService(store=PlanStore(tmp_path / "plans"), workers=2, queue_depth=8)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}", service
    server.shutdown()
    server.server_close()
    service.close()


class TestPayloads:
    def test_distinct_by_seed(self):
        payloads = default_request_payloads(4)
        assert len(payloads) == 4
        assert len({p["generator"]["seed"] for p in payloads}) == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_request_payloads(0)


class TestLoadgen:
    def test_cold_then_warm(self, live_server):
        base, _service = live_server
        report = run_loadgen(base, requests=40, concurrency=4, plans=3, passes=2)
        cold, warm = report.passes
        assert cold.completed == 40 and cold.failed == 0
        assert warm.completed == 40 and warm.failed == 0
        # Warm pass must be served (almost) entirely from the plan store.
        assert warm.store_hit_rate > 0.9
        assert warm.served.get("store", 0) == 40
        assert warm.latency.percentile(50) <= cold.latency.percentile(99)
        assert report.reconciles()
        rendered = report.render()
        assert "p95" in rendered and "reconcile" in rendered

    def test_pass_counts_served_breakdown(self, live_server):
        base, _service = live_server
        result = run_pass(
            base, default_request_payloads(2), requests=10, concurrency=2
        )
        assert result.completed == 10
        assert sum(result.served.values()) == 10
        assert result.throughput_rps > 0

    def test_backpressure_retries_are_not_failures(self, tmp_path):
        service = PlanService(
            store=PlanStore(tmp_path / "plans"), workers=1, queue_depth=1
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            report = run_loadgen(base, requests=30, concurrency=8, plans=3, passes=1)
            (cold,) = report.passes
            # Under a depth-1 queue the server sheds load; the client
            # retries and still finishes every request without failure.
            assert cold.completed == 30
            assert cold.failed == 0
            assert report.reconciles()
        finally:
            server.shutdown()
            server.server_close()
            service.close()
