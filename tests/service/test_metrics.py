"""Metrics registry unit tests."""

import threading

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2.0


class TestHistogram:
    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_count_sum_mean_max(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.mean == 2.0
        assert h.max == 3.0

    def test_percentiles_on_uniform_samples(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(95) > h.percentile(50)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_window_is_bounded_but_count_exact(self):
        h = Histogram(max_samples=10)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        # Window holds only the newest 10 samples (90..99).
        assert h.percentile(0) == 90.0

    def test_snapshot_keys(self):
        h = Histogram()
        h.observe(1.0)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "max", "p50", "p95", "p99"}


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("reqs").inc(2)
        reg.gauge("depth").set(1)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"reqs": 2}
        assert snap["gauges"] == {"depth": 1.0}
        assert snap["histograms"]["lat"]["count"] == 1
