"""Metrics registry unit tests."""

import threading

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2.0


class TestHistogram:
    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_count_sum_mean_max(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.mean == 2.0
        assert h.max == 3.0

    def test_percentiles_on_uniform_samples(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(95) > h.percentile(50)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_window_is_bounded_but_count_exact(self):
        h = Histogram(max_samples=10)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        # Window holds only the newest 10 samples (90..99).
        assert h.percentile(0) == 90.0

    def test_snapshot_keys(self):
        h = Histogram()
        h.observe(1.0)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "max", "p50", "p95", "p99"}

    def test_percentile_is_linear_interpolation_not_nearest_rank(self):
        # The median of two samples is their midpoint; nearest-rank would
        # answer one of the samples themselves.
        h = Histogram()
        h.observe(1.0)
        h.observe(2.0)
        assert h.percentile(50) == pytest.approx(1.5)
        assert h.percentile(25) == pytest.approx(1.25)

    def test_percentile_edges_single_sample(self):
        h = Histogram()
        h.observe(7.0)
        for q in (0, 50, 100):
            assert h.percentile(q) == 7.0
        snap = h.snapshot()
        assert snap["p50"] == snap["p99"] == 7.0

    def test_percentile_q0_q100_are_window_extremes(self):
        h = Histogram()
        for v in (5.0, -1.0, 3.0):
            h.observe(v)
        assert h.percentile(0) == -1.0
        assert h.percentile(100) == 5.0

    def test_snapshot_is_torn_read_free_under_writers(self):
        # Regression: snapshot() used to read count/sum/max field by field
        # without taking the lock once, so fields sampled at different
        # moments could disagree.  One writer observes 1, 2, 3, ...; any
        # internally consistent snapshot then satisfies max == count and
        # sum == count * (count + 1) / 2 exactly -- identities a snapshot
        # torn across concurrent observes breaks.
        import sys
        import time

        h = Histogram(max_samples=64)
        stop = threading.Event()
        failures = []

        def writer():
            i = 0
            while not stop.is_set():
                i += 1
                h.observe(float(i))

        def reader():
            while not stop.is_set() and not failures:
                snap = h.snapshot()
                n = snap["count"]
                if snap["max"] != n or snap["sum"] != n * (n + 1) / 2:
                    failures.append(snap)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            threads = [threading.Thread(target=writer)]
            threads += [threading.Thread(target=reader) for _ in range(2)]
            for t in threads:
                t.start()
            time.sleep(0.5)
            stop.set()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert not failures, f"torn snapshot observed: {failures[0]}"


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("reqs").inc(2)
        reg.gauge("depth").set(1)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"reqs": 2}
        assert snap["gauges"] == {"depth": 1.0}
        assert snap["histograms"]["lat"]["count"] == 1


class TestMerge:
    """Cross-shard aggregation helpers (docs/cluster.md)."""

    def test_counter_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge(b)
        a.merge(5)
        assert a.value == 12

    def test_histogram_merge_percentiles_equal_single_registry(self):
        """The satellite contract: merging N sample windows answers
        exactly the percentiles one histogram would over the
        concatenation."""
        import random

        rng = random.Random(42)
        shards = [[rng.expovariate(10.0) for _ in range(rng.randint(5, 400))]
                  for _ in range(4)]
        combined = Histogram()
        for window in shards:
            for v in window:
                combined.observe(v)
        merged = Histogram()
        for window in shards:
            h = Histogram()
            for v in window:
                h.observe(v)
            merged.merge(h.dump())
        assert merged.count == combined.count
        assert merged.sum == pytest.approx(combined.sum)
        assert merged.max == combined.max
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert merged.percentile(q) == pytest.approx(combined.percentile(q))

    def test_merge_grows_window_so_no_sample_drops(self):
        small = Histogram(max_samples=4)
        for v in (1.0, 2.0, 3.0, 4.0):
            small.observe(v)
        other = Histogram(max_samples=4)
        for v in (5.0, 6.0, 7.0, 8.0):
            other.observe(v)
        small.merge(other)
        assert sorted(small.window) == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        assert small.count == 8

    def test_merge_accepts_wire_dump(self):
        h = Histogram()
        h.merge({"count": 2, "sum": 3.0, "max": 2.0, "samples": [1.0, 2.0]})
        assert h.count == 2
        assert h.percentile(100) == 2.0

    def test_malformed_dump_rejected(self):
        with pytest.raises(ValueError):
            Histogram().merge({"count": 1, "samples": [1.0, 2.0]})
        with pytest.raises(ValueError):
            Histogram().merge({"count": -1, "samples": []})

    def test_registry_merge_matches_one_shared_registry(self):
        import random

        rng = random.Random(7)
        shared = MetricsRegistry()
        dumps = []
        for _ in range(3):
            shard = MetricsRegistry()
            n = rng.randint(1, 50)
            shard.counter("requests").inc(n)
            shared.counter("requests").inc(n)
            depth = rng.randint(0, 5)
            shard.gauge("queue_depth").set(depth)
            shared.gauge("queue_depth").inc(depth)
            for _ in range(rng.randint(10, 200)):
                v = rng.random()
                shard.histogram("latency_s").observe(v)
                shared.histogram("latency_s").observe(v)
            dumps.append(shard.dump())
        merged = MetricsRegistry()
        for dump in dumps:
            merged.merge(dump)
        got, want = merged.snapshot(), shared.snapshot()
        assert got["counters"] == want["counters"]
        assert got["gauges"] == want["gauges"]
        for key in ("count", "p50", "p95", "p99", "max"):
            assert got["histograms"]["latency_s"][key] == pytest.approx(
                want["histograms"]["latency_s"][key]
            )

    def test_dump_is_json_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h").observe(0.25)
        assert json.loads(json.dumps(reg.dump())) == reg.dump()
