"""Tracing under service concurrency.

Drives the live HTTP service with the closed-loop load generator while a
global tracer is installed, then reconciles the recorded spans against
the server's own counters: every accepted request produced exactly one
complete ``service.request`` span, and every plan computation produced
exactly one ``service.queue_wait`` span (the time the job sat in the
queue before a worker picked it up).
"""

import threading
from collections import Counter

import pytest

from repro.obs import Tracer, use_tracer
from repro.service.httpd import make_server
from repro.service.loadgen import default_request_payloads, fetch_stats, run_pass
from repro.service.planner import PlanService
from repro.service.store import PlanStore

SERVED_OUTCOMES = {"store", "computed", "coalesced"}
SETTLED_OUTCOMES = SERVED_OUTCOMES | {"failed", "timeout"}


@pytest.fixture
def live_server(tmp_path):
    service = PlanService(store=PlanStore(tmp_path / "plans"), workers=2, queue_depth=8)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}", service
    server.shutdown()
    server.server_close()
    service.close()


def test_request_spans_reconcile_with_counters(live_server):
    base, _service = live_server
    with use_tracer(Tracer(enabled=True)) as tracer:
        result = run_pass(
            base, default_request_payloads(3), requests=20, concurrency=4
        )
        stats = fetch_stats(base)
    assert result.completed == 20 and result.failed == 0

    counters = stats["counters"]
    spans = tracer.spans()
    request_spans = [s for s in spans if s.name == "service.request"]
    outcomes = Counter(s.args.get("outcome") for s in request_spans)

    # Exactly one complete request span per accepted request...
    settled = sum(n for o, n in outcomes.items() if o in SETTLED_OUTCOMES)
    assert settled == counters["requests_accepted"]
    # ...and the outcome split matches the counter split.
    served = sum(n for o, n in outcomes.items() if o in SERVED_OUTCOMES)
    assert served == counters["requests_completed"] == 20
    assert outcomes.get("failed", 0) == counters["requests_failed"] == 0
    assert outcomes.get("timeout", 0) == counters["requests_timeout"] == 0
    assert outcomes.get("rejected", 0) == counters["requests_rejected"]
    # Every span closed with an outcome: nothing leaked half-open.
    assert None not in outcomes

    # Served spans carry the plan digest annotation.
    for span in request_spans:
        if span.args.get("outcome") in SERVED_OUTCOMES:
            assert len(span.args.get("digest", "")) == 12


def test_queue_wait_spans_match_plans_computed(live_server):
    base, _service = live_server
    with use_tracer(Tracer(enabled=True)) as tracer:
        run_pass(base, default_request_payloads(3), requests=12, concurrency=3)
        stats = fetch_stats(base)

    counters = stats["counters"]
    waits = [s for s in tracer.spans() if s.name == "service.queue_wait"]
    computes = [s for s in tracer.spans() if s.name == "service.compute"]
    assert len(waits) == counters["plans_computed"]
    assert len(computes) == counters["plans_computed"]
    # A wait span ends where the worker picked the job up, so it must not
    # extend past its compute span's start on the same worker thread.
    compute_start = {}
    for span in computes:
        compute_start.setdefault((span.track, span.args.get("digest")), span.ts)
    for span in waits:
        key = (span.track, span.args.get("digest"))
        if key in compute_start:
            assert span.end <= compute_start[key] + 1e-6
    # Wait durations reconcile with the queue_wait_s histogram count.
    assert stats["histograms"]["queue_wait_s"]["count"] == len(waits)


def test_http_spans_cover_all_requests(live_server):
    base, _service = live_server
    with use_tracer(Tracer(enabled=True)) as tracer:
        result = run_pass(
            base, default_request_payloads(2), requests=8, concurrency=2
        )
        fetch_stats(base)

    http_spans = [s for s in tracer.spans() if s.name == "http.request"]
    posts = [s for s in http_spans if s.args.get("method") == "POST"]
    gets = [s for s in http_spans if s.args.get("method") == "GET"]
    # One POST span per completed request plus one per backpressure retry.
    assert len(posts) == result.completed + result.retries_429
    assert gets  # the /stats read
    assert all(s.args.get("status", 0) in (200, 429) for s in posts)


def test_disabled_tracer_records_nothing_under_load(live_server):
    base, _service = live_server
    with use_tracer(Tracer(enabled=False)) as tracer:
        result = run_pass(
            base, default_request_payloads(2), requests=6, concurrency=2
        )
    assert result.completed == 6
    assert len(tracer) == 0
