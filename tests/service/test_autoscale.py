"""Autoscaler tests: pure policy, live driver, and planner integration.

The policy is a pure function of the snapshot stream (plus one idle-tick
counter), so its behavior is pinned as plain sequence tests; the
Autoscaler driver is exercised with fake snapshot/apply callbacks and a
virtual clock -- no sleeps.  Planner integration covers set_workers
grow/shrink and the ``admission_uncalibrated`` counter's fallback path
(docs/autoscaling.md).
"""

import pytest

from repro.service.admission import AdmissionController, DecisionLog
from repro.service.autoscale import (
    AutoscaleConfig,
    AutoscalePolicy,
    Autoscaler,
    ScaleSnapshot,
)
from repro.service.planner import PlanService
from repro.service.protocol import PlanRequest
from repro.service.store import PlanStore


def snap(workers, depth=0, backlog=0.0, p99=0.0):
    return ScaleSnapshot(
        workers=workers, queue_depth=depth, backlog_s=backlog,
        queue_wait_p99_s=p99,
    )


class TestAutoscaleConfig:
    def test_defaults_valid(self):
        cfg = AutoscaleConfig()
        assert cfg.min_workers == 1 and cfg.max_workers == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_workers": 0},
            {"min_workers": 4, "max_workers": 2},
            {"tick_s": 0.0},
            {"queue_wait_slo_s": -1.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AutoscaleConfig(**kwargs)


class TestAutoscalePolicy:
    def test_sizes_backlog_against_slo(self):
        policy = AutoscalePolicy(AutoscaleConfig(queue_wait_slo_s=0.5))
        # 2.1s of predicted work / 0.5s SLO -> ceil = 5 workers.
        assert policy.target(snap(1, depth=4, backlog=2.1)) == 5

    def test_blown_p99_escalates_multiplicatively(self):
        policy = AutoscalePolicy(AutoscaleConfig(queue_wait_slo_s=0.5))
        # Tiny backlog but measured waits already over the SLO: the
        # reactive estimate is not to be trusted, double the pool.
        assert policy.target(snap(3, depth=1, backlog=0.1, p99=1.0)) == 6

    def test_empty_queue_never_escalates(self):
        policy = AutoscalePolicy(AutoscaleConfig(queue_wait_slo_s=0.5))
        # Stale p99 with nothing queued must not trigger the doubling.
        assert policy.target(snap(3, depth=0, backlog=0.0, p99=9.0)) == 3

    def test_scale_down_needs_consecutive_idle_ticks(self):
        policy = AutoscalePolicy(AutoscaleConfig(scale_down_idle_ticks=3))
        assert policy.target(snap(4)) == 4
        assert policy.target(snap(4)) == 4
        assert policy.target(snap(4)) == 3  # third idle tick retires one
        assert policy.target(snap(3)) == 3  # counter reset after acting

    def test_busy_tick_resets_hysteresis(self):
        policy = AutoscalePolicy(AutoscaleConfig(scale_down_idle_ticks=2))
        assert policy.target(snap(4)) == 4
        assert policy.target(snap(4, depth=1, backlog=0.1)) == 4  # reset
        assert policy.target(snap(4)) == 4
        assert policy.target(snap(4)) == 3

    def test_clamped_to_bounds(self):
        policy = AutoscalePolicy(AutoscaleConfig(min_workers=2, max_workers=4))
        assert policy.target(snap(2, depth=99, backlog=100.0)) == 4
        for _ in range(99):
            assert policy.target(snap(2)) >= 2

    def test_same_snapshots_same_targets(self):
        stream = [
            snap(1, depth=3, backlog=1.5),
            snap(3, depth=8, backlog=4.0, p99=0.9),
            snap(8, depth=0, backlog=0.0),
            snap(8),
            snap(8),
            snap(8),
            snap(8),
        ]
        runs = [
            [AutoscalePolicy(AutoscaleConfig()).target(s) for s in stream]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestAutoscalerDriver:
    def make(self, snapshots, config=None):
        """An Autoscaler over a scripted snapshot stream and a fake pool."""
        state = {"workers": snapshots[0].workers, "i": 0, "applied": []}

        def snapshot():
            s = snapshots[min(state["i"], len(snapshots) - 1)]
            state["i"] += 1
            return ScaleSnapshot(
                workers=state["workers"], queue_depth=s.queue_depth,
                backlog_s=s.backlog_s, queue_wait_p99_s=s.queue_wait_p99_s,
            )

        def apply(n):
            state["workers"] = n
            state["applied"].append(n)
            return n

        scaler = Autoscaler(
            snapshot, apply, config=config or AutoscaleConfig(),
            decision_log=DecisionLog(maxlen=None),
        )
        return scaler, state

    def test_tick_applies_and_logs_scale_up(self):
        scaler, state = self.make([snap(1, depth=4, backlog=2.0)])
        assert scaler.tick(now=0.0) == 4
        assert state["applied"] == [4]
        (entry,) = scaler.decisions.entries()
        assert entry["kind"] == "scale_up"
        assert entry["workers_from"] == 1 and entry["workers_to"] == 4
        assert entry["unit"] == "workers"

    def test_steady_state_applies_nothing(self):
        scaler, state = self.make([snap(2, depth=1, backlog=0.9)])
        assert scaler.tick(now=0.0) == 2
        assert state["applied"] == []
        assert len(scaler.decisions) == 0

    def test_scale_down_after_idle_ticks(self):
        cfg = AutoscaleConfig(scale_down_idle_ticks=2)
        scaler, state = self.make([snap(3)] * 4, config=cfg)
        targets = [scaler.tick(now=float(i)) for i in range(4)]
        assert targets == [3, 2, 2, 1]
        kinds = [e["kind"] for e in scaler.decisions.entries()]
        assert kinds == ["scale_down", "scale_down"]

    def test_stats_counts_ticks(self):
        scaler, _ = self.make([snap(1, backlog=1.0, depth=2)])
        scaler.tick(now=0.0)
        stats = scaler.stats()
        assert stats["ticks"] == 1
        assert stats["unit"] == "workers"
        assert stats["decision_counts"] == {"scale_up": 1}

    def test_context_manager_starts_and_stops_thread(self):
        scaler, _ = self.make([snap(1)], config=AutoscaleConfig(tick_s=0.01))
        with scaler as live:
            assert live._thread is not None and live._thread.is_alive()
        assert scaler._thread is None


# ----------------------------------------------------------------------
# Planner integration
# ----------------------------------------------------------------------
def rmat_request(seed=0, **overrides):
    payload = {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": seed}}
    payload.update(overrides)
    return PlanRequest.from_dict(payload)


class TestSetWorkers:
    def test_grow_and_shrink(self, tmp_path):
        with PlanService(store=PlanStore(tmp_path / "p"), workers=1,
                         queue_depth=8) as svc:
            assert svc.set_workers(3) == 3
            assert svc.workers == 3
            svc.plan(rmat_request())  # still serves after growing
            assert svc.set_workers(1) == 1
            svc.plan(rmat_request(seed=1))  # and after retiring two
            gauges = svc.metrics.snapshot()["gauges"]
            assert gauges["workers"] == 1

    def test_rejects_zero(self, tmp_path):
        with PlanService(store=PlanStore(tmp_path / "p")) as svc:
            with pytest.raises(ValueError):
                svc.set_workers(0)

    def test_noop_after_close(self, tmp_path):
        svc = PlanService(store=PlanStore(tmp_path / "p"), workers=2)
        svc.close()
        assert svc.set_workers(5) == 2

    def test_snapshot_reflects_pool(self, tmp_path):
        with PlanService(store=PlanStore(tmp_path / "p"), workers=2,
                         queue_depth=8) as svc:
            s = svc.autoscale_snapshot()
            assert s.workers == 2
            assert s.queue_depth == 0
            assert s.backlog_s == 0.0


class TestPredictiveAdmissionFallback:
    def test_uncalibrated_digest_uses_prior_not_crash(self, tmp_path):
        """Satellite: a never-seen digest predicts the prior and is counted."""
        with PlanService(
            store=PlanStore(tmp_path / "p"), workers=2, queue_depth=8,
            admission=AdmissionController(),
        ) as svc:
            result, served = svc.plan(rmat_request())
            assert served == "computed"
            counters = svc.stats()["counters"]
            assert counters["admission_uncalibrated"] == 1
            # The worker reported the actual wall back: the same digest
            # now predicts from the memo, not the prior.
            estimate = svc.admission.cost_model.predict(
                "spade-sextans", digest=result.digest
            )
            assert estimate.calibrated

    def test_stats_exposes_admission_and_autoscaler(self, tmp_path):
        with PlanService(
            store=PlanStore(tmp_path / "p"), workers=1, queue_depth=8,
            admission=AdmissionController(),
        ) as svc:
            svc.attach_autoscaler(
                Autoscaler(svc.autoscale_snapshot, svc.set_workers)
            )
            stats = svc.stats()
            assert "admission" in stats and "autoscale" in stats
            assert "admission_uncalibrated" in stats["counters"]
