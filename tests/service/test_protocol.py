"""PlanRequest / PlanResult protocol tests."""

import pytest

from repro.service.protocol import PlanRequest, PlanResult, ProtocolError


def rmat_request(seed=0, **overrides):
    payload = {
        "generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": seed},
    }
    payload.update(overrides)
    return PlanRequest.from_dict(payload)


class TestRequestValidation:
    def test_defaults(self):
        req = rmat_request()
        assert req.arch == "spade-sextans"
        assert req.scale == 4
        assert req.cache_aware is False

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            PlanRequest.from_dict([1, 2])

    def test_rejects_unknown_field(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            PlanRequest.from_dict({"matrix": "pap", "bogus": 1})

    def test_rejects_unknown_arch(self):
        with pytest.raises(ProtocolError, match="unknown arch"):
            PlanRequest.from_dict({"matrix": "pap", "arch": "tpu"})

    def test_rejects_bad_scale(self):
        with pytest.raises(ProtocolError, match="scale"):
            PlanRequest.from_dict({"matrix": "pap", "scale": 0})
        with pytest.raises(ProtocolError, match="scale"):
            PlanRequest.from_dict({"matrix": "pap", "scale": "big"})

    def test_requires_exactly_one_matrix_source(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            PlanRequest.from_dict({})
        with pytest.raises(ProtocolError, match="exactly one"):
            PlanRequest.from_dict(
                {"matrix": "pap", "generator": {"kind": "rmat", "scale": 8, "nnz": 10}}
            )

    def test_rejects_unknown_generator_kind(self):
        with pytest.raises(ProtocolError, match="generator kind"):
            PlanRequest.from_dict({"generator": {"kind": "dense"}})

    def test_rejects_foreign_generator_param(self):
        with pytest.raises(ProtocolError, match="does not take"):
            PlanRequest.from_dict(
                {"generator": {"kind": "rmat", "scale": 8, "nnz": 10, "rows": 5}}
            )

    def test_rejects_non_numeric_generator_param(self):
        with pytest.raises(ProtocolError, match="must be a number"):
            PlanRequest.from_dict(
                {"generator": {"kind": "rmat", "scale": 8, "nnz": "lots"}}
            )

    def test_rejects_bad_timeout(self):
        with pytest.raises(ProtocolError, match="timeout_s"):
            PlanRequest.from_dict({"matrix": "pap", "timeout_s": -1})


class TestDigest:
    def test_digest_stable_and_distinct(self):
        a1, a2, b = rmat_request(0), rmat_request(0), rmat_request(1)
        assert a1.digest() == a2.digest()
        assert a1.digest() != b.digest()

    def test_digest_covers_strategy_options(self):
        base = rmat_request()
        aware = rmat_request(cache_aware=True)
        scaled = rmat_request(scale=8)
        assert len({base.digest(), aware.digest(), scaled.digest()}) == 3

    def test_digest_excludes_timeout(self):
        assert rmat_request().digest() == rmat_request(timeout_s=5).digest()

    def test_matrix_path_digest_tracks_content(self, tmp_path):
        from repro.sparse import generators
        from repro.sparse.mmio import write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(generators.uniform_random(32, 32, 100, seed=1), path)
        req = PlanRequest.from_dict({"matrix_path": str(path)})
        d1 = req.digest()
        write_matrix_market(generators.uniform_random(32, 32, 100, seed=2), path)
        assert req.digest() != d1

    def test_missing_matrix_path(self, tmp_path):
        req = PlanRequest.from_dict({"matrix_path": str(tmp_path / "nope.mtx")})
        with pytest.raises(ProtocolError, match="matrix_path"):
            req.digest()


class TestResolution:
    def test_generator_resolves(self):
        matrix = rmat_request().resolve_matrix()
        assert matrix.nnz > 0

    def test_benchmark_short_resolves(self):
        matrix = PlanRequest.from_dict({"matrix": "pap"}).resolve_matrix()
        assert matrix.nnz > 0

    def test_unknown_benchmark_short(self):
        with pytest.raises(ProtocolError, match="unknown benchmark"):
            PlanRequest.from_dict({"matrix": "nope"}).resolve_matrix()

    def test_build_architecture(self):
        arch = rmat_request().build_architecture()
        assert arch.hot.count > 0


class TestPlanResult:
    def test_roundtrip(self):
        from repro.pipeline.preprocess import HotTilesPreprocessor

        req = rmat_request()
        matrix = req.resolve_matrix()
        pre = HotTilesPreprocessor(req.build_architecture()).run(matrix)
        result = PlanResult.from_preprocess(req, "ab12", matrix, pre, plan_wall_s=0.1)
        again = PlanResult.from_dict(result.to_dict())
        assert again == result
        assert again.nnz == matrix.nnz
        assert again.mode in ("parallel", "serial")

    def test_from_dict_missing_field(self):
        with pytest.raises(ProtocolError, match="missing field"):
            PlanResult.from_dict({"digest": "ab"})
