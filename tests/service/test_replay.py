"""Trace record/replay tests, including the golden decision-sequence pin.

Three layers:

- the trace wire form (canonical JSON: two saves byte-identical, sort on
  load, version/tier validation, recorder epoch semantics);
- replay determinism -- the acceptance regression: replaying the
  committed ``tests/golden/replay_burst.json`` twice produces
  bit-identical decision logs and queue-wait histograms;
- the golden pin -- the autoscaler's decision sequence on the committed
  trace, compared *exactly*.  If policy behavior changes on purpose,
  regenerate the expectations below (they are printed by
  ``python -m repro.experiments.sloreplay`` style runs) and say why in
  the commit.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.sloreplay import DEFAULT_SLO_S, slo_replay_gate
from repro.service.replay import (
    TRACE_VERSION,
    RequestTrace,
    TraceRecorder,
    TraceRequest,
    burst_trace,
    replay_trace,
)

GOLDEN = Path(__file__).resolve().parent.parent / "golden" / "replay_burst.json"

#: The exact decision summary of replaying the committed golden trace --
#: both arms.  These are *pins*, not tolerances.
GOLDEN_ON = {
    "offered": 434,
    "completed": 433,
    "degraded": 0,
    "shed": 1,
    "shed_by_tier": {"bronze": 1},
    "scale_ups": 3,
    "scale_downs": 0,
    "peak_workers": 8,
    "uncalibrated": 4,
}
GOLDEN_OFF = {
    "offered": 434,
    "completed": 234,
    "degraded": 102,
    "shed": 98,
    "shed_by_tier": {"bronze": 98},
    "scale_ups": 0,
    "scale_downs": 0,
    "peak_workers": 1,
    "uncalibrated": 4,
}


# ----------------------------------------------------------------------
# Wire form
# ----------------------------------------------------------------------
class TestTraceWireForm:
    def test_round_trip_is_byte_identical(self, tmp_path):
        trace = burst_trace(seed=3, duration_s=2.0)
        path = trace.save(tmp_path / "t.json")
        loaded = RequestTrace.load(path)
        assert loaded.to_json() == trace.to_json()
        assert loaded.save(tmp_path / "t2.json").read_bytes() == path.read_bytes()

    def test_burst_trace_deterministic_per_seed(self):
        assert burst_trace(seed=7).to_json() == burst_trace(seed=7).to_json()
        assert burst_trace(seed=7).to_json() != burst_trace(seed=8).to_json()

    def test_committed_golden_regenerates_exactly(self):
        # `hottiles loadgen --synth-burst FILE --seed 0` wrote the golden;
        # the generator must keep reproducing it byte for byte.
        assert burst_trace(seed=0).to_json() == GOLDEN.read_text()

    def test_load_sorts_by_arrival(self):
        trace = RequestTrace.from_dict({
            "version": TRACE_VERSION,
            "requests": [
                {"arrival_s": 2.0, "digest": "b"},
                {"arrival_s": 1.0, "digest": "a"},
            ],
        })
        assert [r.digest for r in trace.requests] == ["a", "b"]
        assert trace.duration_s == 2.0

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            RequestTrace.from_dict({"version": 99, "requests": []})

    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="tier"):
            TraceRequest.from_dict({"arrival_s": 0.0, "tier": "platinum"})

    def test_recorder_epoch_and_ordering(self):
        rec = TraceRecorder(meta={"source": "test"})
        rec.note({"tenant": "t1", "tier": "gold"}, digest="d1",
                 cost_s=0.02, sent_at=100.0)
        rec.note({"tenant": "t0", "tier": "bronze",
                  "generator": {"nnz": 500}},
                 digest="d0", cost_s=0.01, sent_at=100.5)
        # A completion stamped before the epoch clamps to offset 0.
        rec.note({"tenant": "t2"}, digest="early", sent_at=99.5)
        trace = rec.trace()
        # Epoch is the first note; offsets are measured from it, and the
        # clamped straggler FIFO-ties with the epoch note.
        assert [r.digest for r in trace.requests] == ["d1", "early", "d0"]
        assert trace.requests[0].arrival_s == 0.0
        assert trace.requests[1].arrival_s == 0.0
        assert trace.requests[2].arrival_s == 0.5
        assert trace.requests[2].nnz == 500
        assert trace.meta["source"] == "test"
        assert trace.meta["n_requests"] == 3


# ----------------------------------------------------------------------
# Replay determinism (the acceptance regression test)
# ----------------------------------------------------------------------
def test_replaying_golden_twice_is_bit_identical():
    trace = RequestTrace.load(GOLDEN)
    first = replay_trace(trace).to_dict()
    second = replay_trace(trace).to_dict()
    assert first == second
    # Spelled out for the two artifacts the issue names: the interleaved
    # decision log and the queue-wait histogram samples.
    assert first["decisions"] == second["decisions"]
    assert first["queue_wait_samples"] == second["queue_wait_samples"]
    # And the no-autoscale arm is just as reproducible.
    assert (
        replay_trace(trace, autoscale=False).to_dict()
        == replay_trace(trace, autoscale=False).to_dict()
    )


def test_replay_result_is_json_serializable():
    result = replay_trace(burst_trace(seed=1, duration_s=2.0))
    json.dumps(result.to_dict())  # must not raise


# ----------------------------------------------------------------------
# The golden pin
# ----------------------------------------------------------------------
def test_golden_decision_sequence_pinned_exactly():
    trace = RequestTrace.load(GOLDEN)
    on = replay_trace(trace, autoscale=True)
    off = replay_trace(trace, autoscale=False)
    assert on.decision_summary() == GOLDEN_ON
    assert off.decision_summary() == GOLDEN_OFF
    # The scale-up ladder itself: 1 -> 2 -> 4 -> 8 (multiplicative
    # escalation while the burst blows the measured p99).
    ladder = [
        (d["workers_from"], d["workers_to"])
        for d in on.decisions
        if d["kind"] == "scale_up"
    ]
    assert ladder == [(1, 2), (2, 4), (4, 8)]


def test_golden_conservation_per_tenant():
    result = replay_trace(RequestTrace.load(GOLDEN))
    assert sum(row["offered"] for row in result.tenants.values()) == 434
    for tenant, row in result.tenants.items():
        assert row["offered"] == row["admitted"] + row["shed"] + row["degraded"]


def test_slo_gate_on_golden():
    gate = slo_replay_gate(GOLDEN)
    assert gate.slo_s == 2.0  # from the trace meta, not DEFAULT_SLO_S
    assert gate.on_meets
    assert gate.off_violates
    assert gate.passes()
    payload = gate.to_dict()
    assert payload["passes"] is True
    assert payload["with_autoscale"]["summary"] == GOLDEN_ON
    assert payload["without_autoscale"]["summary"] == GOLDEN_OFF


def test_slo_gate_defaults_without_meta():
    trace = burst_trace(seed=2, duration_s=2.0)
    trace.meta.pop("queue_wait_slo_p99_s")
    assert slo_replay_gate(trace).slo_s == DEFAULT_SLO_S


# ----------------------------------------------------------------------
# Replay semantics
# ----------------------------------------------------------------------
def test_uncalibrated_counted_once_per_cold_digest():
    # Four plan digests in the burst -> exactly four prior-fallback
    # predictions, however many requests repeat them.
    result = replay_trace(RequestTrace.load(GOLDEN))
    assert result.uncalibrated == RequestTrace.load(GOLDEN).meta["plans"]


def test_frozen_pool_never_scales():
    result = replay_trace(RequestTrace.load(GOLDEN), autoscale=False)
    assert result.scale_ups == 0 and result.scale_downs == 0
    assert result.peak_workers == result.final_workers == 1
    assert all(not d["kind"].startswith("scale") for d in result.decisions)


def test_offered_splits_into_outcomes():
    result = replay_trace(RequestTrace.load(GOLDEN))
    assert result.offered == (
        result.completed + result.degraded + result.shed
    )
    assert sum(result.shed_by_tier.values()) == result.shed
