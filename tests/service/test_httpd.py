"""HTTP front-end tests against a live ephemeral-port server."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.httpd import make_server
from repro.service.planner import PlanService
from repro.service.store import PlanStore

RMAT = {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": 0}}


@pytest.fixture
def live_server(tmp_path):
    service = PlanService(store=PlanStore(tmp_path / "plans"), workers=2, queue_depth=8)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, service
    server.shutdown()
    server.server_close()
    service.close()


def http(base, path, payload=None, timeout=30.0):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        base + path,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data else "GET",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers or {})


class TestEndpoints:
    def test_healthz(self, live_server):
        base, _ = live_server
        status, body, _ = http(base, "/healthz")
        assert status == 200
        assert body == {"status": "ok"}

    def test_post_plan_then_warm_hit(self, live_server):
        base, _ = live_server
        status, body, _ = http(base, "/plan", RMAT)
        assert status == 200
        assert body["served"] == "computed"
        plan = body["plan"]
        assert plan["label"]
        assert plan["mode"] in ("parallel", "serial")
        assert plan["nnz"] == 2000
        status2, body2, _ = http(base, "/plan", RMAT)
        assert status2 == 200
        assert body2["served"] == "store"
        assert body2["plan"]["digest"] == plan["digest"]

    def test_get_plan_by_digest(self, live_server):
        base, _ = live_server
        _, body, _ = http(base, "/plan", RMAT)
        digest = body["plan"]["digest"]
        status, got, _ = http(base, f"/plan/{digest}")
        assert status == 200
        assert got["plan"]["digest"] == digest

    def test_get_unknown_digest_404(self, live_server):
        base, _ = live_server
        status, body, _ = http(base, "/plan/" + "0" * 64)
        assert status == 404
        assert "no stored plan" in body["error"]

    def test_get_non_hex_digest_400(self, live_server):
        base, _ = live_server
        status, _, _ = http(base, "/plan/not-a-digest")
        assert status == 400

    def test_stats_endpoint(self, live_server):
        base, _ = live_server
        http(base, "/plan", RMAT)
        status, stats, _ = http(base, "/stats")
        assert status == 200
        assert stats["counters"]["requests_completed"] == 1
        assert stats["store"]["entries"] == 1
        assert "request_latency_s" in stats["histograms"]

    def test_unknown_endpoint_404(self, live_server):
        base, _ = live_server
        assert http(base, "/nope")[0] == 404
        assert http(base, "/nope", {"x": 1})[0] == 404


class TestErrorMapping:
    def test_malformed_json_400(self, live_server):
        base, _ = live_server
        req = urllib.request.Request(
            base + "/plan",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_protocol_error_400(self, live_server):
        base, _ = live_server
        status, body, _ = http(base, "/plan", {"matrix": "pap", "arch": "tpu"})
        assert status == 400
        assert "unknown arch" in body["error"]

    def test_empty_body_400(self, live_server):
        base, _ = live_server
        req = urllib.request.Request(base + "/plan", data=b"", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_plan_failure_500(self, live_server):
        base, _ = live_server
        status, body, _ = http(
            base, "/plan",
            {"generator": {"kind": "rmat", "scale": 4, "nnz": 2000, "seed": 0}},
        )
        assert status == 500
        assert "error" in body


class TestBackpressureOverHTTP:
    def test_queue_depth_one_sheds_with_429(self, tmp_path):
        service = PlanService(
            store=PlanStore(tmp_path / "plans"), workers=1, queue_depth=1
        )
        gate = threading.Event()
        real = service._compute
        service._compute = (
            lambda request, digest: (gate.wait(15.0), real(request, digest))[1]
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            payloads = [
                {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": s}}
                for s in range(3)
            ]
            replies = []
            clients = [
                threading.Thread(
                    target=lambda p=p: replies.append(http(base, "/plan", p, timeout=30))
                )
                for p in payloads[:2]
            ]
            clients[0].start()
            # Wait until the worker is busy before sending the queue filler.
            deadline = 5.0
            import time as _time
            end = _time.monotonic() + deadline
            while service.metrics.gauge("plans_in_flight").value < 1:
                assert _time.monotonic() < end
                _time.sleep(0.01)
            clients[1].start()
            end = _time.monotonic() + deadline
            while service._queue.qsize() < 1:
                assert _time.monotonic() < end
                _time.sleep(0.01)
            # Worker busy + queue full: the third request must be shed, not stall.
            status, body, headers = http(base, "/plan", payloads[2], timeout=10)
            assert status == 429
            assert float(headers["Retry-After"]) > 0
            assert body["retry_after_s"] > 0
            gate.set()
            for c in clients:
                c.join()
            assert all(status == 200 for status, _, _ in replies)
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            service.close()


class TestEphemeralPortReporting:
    """``--port 0`` satellite: the bound port is discoverable (docs/cluster.md)."""

    def test_bound_port_property_resolves_port_zero(self, tmp_path):
        service = PlanService(store=PlanStore(tmp_path / "plans"), workers=1)
        server = make_server(service, port=0)
        try:
            assert server.bound_port > 0
            assert server.describe() == {
                "host": server.server_address[0], "port": server.bound_port
            }
        finally:
            server.server_close()
            service.close()

    def test_stats_reports_kernel_chosen_port(self, live_server):
        base, _ = live_server
        status, stats, _ = http(base, "/stats")
        assert status == 200
        # The server record carries the *bound* ephemeral port -- the
        # one in the URL we are talking to, never the requested 0.
        assert stats["server"]["port"] == int(base.rsplit(":", 1)[1])
        assert stats["server"]["port"] != 0

    def test_serve_startup_line_has_parseable_port_token(self, tmp_path):
        """``hottiles serve --port 0`` announces ``port=<bound>`` on stdout."""
        import re
        import subprocess
        import sys

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--workers", "1", "--store-dir", str(tmp_path / "plans")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"\bport=(\d+)\b", line)
            assert match, f"no port= token in startup line: {line!r}"
            port = int(match.group(1))
            assert port > 0
            status, body, _ = http(f"http://127.0.0.1:{port}", "/healthz")
            assert status == 200 and body["status"] == "ok"
        finally:
            proc.terminate()
            proc.wait(timeout=10)
