"""The ``loadgen --json`` stdout contract, end to end through the CLI.

Regression for the interleaving bug: progress lines used to share
stdout with the JSON report, so ``hottiles loadgen --json - | jq``
choked mid-document.  With JSON on stdout every human-readable line now
goes to stderr, and the whole captured stdout must parse with a single
``json.loads``.  Exercised through real subprocesses (the virtual-replay
path, so no server and no timing) to cover the actual fd plumbing.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
GOLDEN = ROOT / "tests" / "golden" / "replay_burst.json"


def run_cli(*argv, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, cwd=str(ROOT), timeout=300,
    )
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


def test_json_stdout_parses_whole():
    proc = run_cli(
        "loadgen", "--replay", str(GOLDEN), "--virtual", "--json", "-"
    )
    payload = json.loads(proc.stdout)  # the whole stream, not a prefix
    assert payload["summary"]["offered"] == 434
    assert payload["autoscale"] is True
    # Every progress line went to stderr, none leaked into the document.
    assert proc.stdout.lstrip().startswith("{")
    assert "virtual replay" in proc.stderr
    assert "SLO" in proc.stderr


def test_json_stdout_stays_whole_when_gate_fails():
    proc = run_cli(
        "loadgen", "--replay", str(GOLDEN), "--virtual", "--json", "-",
        "--no-autoscale", check=False,
    )
    assert proc.returncode == 1  # the frozen pool violates the trace SLO
    payload = json.loads(proc.stdout)
    assert payload["autoscale"] is False
    assert "VIOLATED" in proc.stderr


def test_json_to_file_keeps_progress_on_stdout(tmp_path):
    out = tmp_path / "report.json"
    proc = run_cli(
        "loadgen", "--replay", str(GOLDEN), "--virtual", "--json", str(out)
    )
    payload = json.loads(out.read_text())
    assert payload["summary"]["completed"] == 433
    # File mode: stdout is the human channel again.
    assert "virtual replay" in proc.stdout


def test_synth_burst_regenerates_golden(tmp_path):
    out = tmp_path / "burst.json"
    run_cli("loadgen", "--synth-burst", str(out), "--seed", "0")
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_explicit_slo_overrides_meta():
    # A 10s SLO even the frozen pool meets: exit 0 despite --no-autoscale.
    proc = run_cli(
        "loadgen", "--replay", str(GOLDEN), "--virtual",
        "--no-autoscale", "--slo", "10",
    )
    assert "met" in proc.stdout
