"""Drain-safety regression: deltas vs ``close(drain=True)``.

The contract (docs/cluster.md): a draining service answers every new
delta ``503`` + ``Retry-After``, and a delta admitted *before* the drain
began completes fully -- the lineage head is never left half-advanced
(head moved but repaired plan unpublished, or vice versa).
"""

import threading
import time

import pytest

from repro.service import api
from repro.service.planner import PlanService, ServiceClosed
from repro.service.protocol import PlanRequest
from repro.service.store import PlanStore

RMAT = {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": 0}}
DELTA = {
    "insert_rows": [0, 1],
    "insert_cols": [0, 1],
    "insert_vals": [1.5, 2.5],
    "delete_rows": [],
    "delete_cols": [],
}


@pytest.fixture
def service(tmp_path):
    svc = PlanService(store=PlanStore(tmp_path / "plans"), workers=2, queue_depth=8)
    yield svc
    svc.close()


class TestDeltaDuringDrain:
    def test_begin_close_opens_the_503_window_synchronously(self, service):
        base, _ = service.plan(PlanRequest.from_dict(RMAT))
        assert service.begin_close(drain=True)
        # From this instant -- before close() has joined anything -- a
        # delta must answer 503 + Retry-After through the endpoint layer.
        status, body, headers = api.delta_endpoint(service, base.digest, DELTA)
        assert status == 503
        assert "Retry-After" in headers
        assert body["retry_after_s"] > 0
        # And the head never moved.
        assert service.lineages.resolve(base.digest).head_digest == base.digest

    def test_begin_close_is_first_caller_wins(self, service):
        assert service.begin_close() is True
        assert service.begin_close() is False

    def test_raw_apply_delta_raises_service_closed(self, service):
        base, _ = service.plan(PlanRequest.from_dict(RMAT))
        service.begin_close(drain=True)
        with pytest.raises(ServiceClosed):
            service.apply_delta(base.digest, DELTA)

    def test_inflight_delta_completes_before_close_returns(
        self, service, monkeypatch
    ):
        """No half-advanced heads: close() waits for admitted deltas."""
        base, _ = service.plan(PlanRequest.from_dict(RMAT))
        started = threading.Event()
        release = threading.Event()
        original_apply = service.lineages.apply

        def held_apply(digest, delta, **kwargs):
            started.set()
            assert release.wait(10.0), "test deadlock: release never set"
            return original_apply(digest, delta, **kwargs)

        monkeypatch.setattr(service.lineages, "apply", held_apply)

        outcome = {}

        def do_delta():
            try:
                result, update = service.apply_delta(base.digest, DELTA)
                outcome["result"] = result
                outcome["update"] = update
            except Exception as exc:  # pragma: no cover - fails the test
                outcome["error"] = exc

        delta_thread = threading.Thread(target=do_delta)
        delta_thread.start()
        assert started.wait(10.0)

        closer = threading.Thread(target=lambda: service.close(drain=True))
        closer.start()
        time.sleep(0.2)
        # close() must be parked on the in-flight delta, not returned.
        assert closer.is_alive()

        release.set()
        delta_thread.join(10.0)
        closer.join(10.0)
        assert not closer.is_alive()

        assert "error" not in outcome, outcome.get("error")
        update = outcome["update"]
        # Fully advanced: the head is the new digest AND the repaired
        # plan is addressable under it -- nothing half-done.
        assert service.lineages.resolve(base.digest).head_digest == update.new_digest
        assert service.store.get(update.new_digest) == outcome["result"]

    def test_delta_after_full_close_is_503_with_retry_after(self, service):
        base, _ = service.plan(PlanRequest.from_dict(RMAT))
        result, update = service.apply_delta(base.digest, DELTA)
        service.close(drain=True)
        status, _, headers = api.delta_endpoint(
            service, update.new_digest, {"delete_rows": [0], "delete_cols": [0]}
        )
        assert status == 503
        assert "Retry-After" in headers
        assert service.lineages.resolve(base.digest).head_digest == update.new_digest
