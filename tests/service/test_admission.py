"""Admission-control tests: cost model, EDF queue, tiered policy.

The hypothesis properties pin the three invariants docs/autoscaling.md
promises: deadline ordering (FIFO among equal deadlines), no tenant
starvation under quota pressure, and per-tenant conservation
``offered == admitted + shed + degraded``.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.service.admission import (
    TIERS,
    AdmissionConfig,
    AdmissionController,
    CostModel,
    DecisionLog,
    EDFQueue,
    Empty,
    QueueFull,
    TenantQuotaExceeded,
    tenant_quota_slots,
)
from repro.service.protocol import _TIERS


def test_protocol_tiers_stay_in_sync():
    # protocol.py keeps its own `_TIERS` copy to avoid importing the
    # admission module on the wire path; this is the promised sync check.
    assert _TIERS == TIERS == ("gold", "silver", "bronze")


# ----------------------------------------------------------------------
# CostModel
# ----------------------------------------------------------------------
class TestCostModel:
    def test_uncalibrated_digest_falls_back_to_prior(self):
        model = CostModel(prior_s=0.07)
        estimate = model.predict("spade", nnz=5000, digest="never-seen")
        assert estimate.source == "prior"
        assert not estimate.calibrated
        assert estimate.cost_s == 0.07

    def test_digest_memo_answers_exactly(self):
        model = CostModel()
        model.observe("spade", 0.123, nnz=100, digest="d1")
        estimate = model.predict("spade", digest="d1")
        assert estimate.source == "digest"
        assert estimate.calibrated
        assert estimate.cost_s == pytest.approx(0.123)

    def test_fit_needs_min_samples(self):
        model = CostModel(min_samples=3)
        model.observe("spade", 0.1, nnz=1000)
        model.observe("spade", 0.2, nnz=2000)
        assert model.predict("spade", nnz=1500).source == "prior"
        model.observe("spade", 0.3, nnz=3000)
        estimate = model.predict("spade", nnz=1500)
        assert estimate.source == "fit"
        # A perfectly linear calibration interpolates exactly.
        assert estimate.cost_s == pytest.approx(0.15)

    def test_fit_is_per_arch(self):
        model = CostModel(min_samples=1)
        model.observe("fast-arch", 0.01, nnz=1000)
        assert model.predict("other-arch", nnz=1000).source == "prior"

    def test_predictions_clamped(self):
        model = CostModel(min_samples=1)
        # A steep negative slope extrapolates below zero without the clamp.
        model.observe("spade", 1.0, nnz=100)
        model.observe("spade", 0.1, nnz=200)
        estimate = model.predict("spade", nnz=10_000)
        assert estimate.cost_s >= CostModel.MIN_PREDICT_S

    def test_negative_wall_ignored(self):
        model = CostModel()
        model.observe("spade", -1.0, nnz=100, digest="d")
        assert model.predict("spade", digest="d").source == "prior"

    def test_digest_memo_is_bounded(self):
        model = CostModel(max_digests=4)
        for i in range(10):
            model.observe("spade", 0.01, digest=f"d{i}")
        assert model.snapshot()["digests"] == 4
        assert model.predict("spade", digest="d0").source == "prior"
        assert model.predict("spade", digest="d9").source == "digest"

    def test_prior_must_be_positive(self):
        with pytest.raises(ValueError):
            CostModel(prior_s=0.0)


def test_tenant_quota_slots_floor():
    assert tenant_quota_slots(8, 0.5) == 4
    assert tenant_quota_slots(3, 0.5) == 2  # ceil
    assert tenant_quota_slots(1, 0.01) == 1  # never zero


# ----------------------------------------------------------------------
# EDFQueue
# ----------------------------------------------------------------------
class TestEDFQueue:
    def test_earliest_deadline_first(self):
        q = EDFQueue(8)
        q.put_nowait("late", deadline=9.0)
        q.put_nowait("soon", deadline=1.0)
        q.put_nowait("mid", deadline=5.0)
        assert [q.get_nowait() for _ in range(3)] == ["soon", "mid", "late"]

    def test_equal_deadlines_are_fifo(self):
        q = EDFQueue(8)
        for item in "abcd":
            q.put_nowait(item, deadline=1.0)
        assert [q.get_nowait() for _ in range(4)] == list("abcd")

    def test_queue_full(self):
        q = EDFQueue(2)
        q.put_nowait("a")
        q.put_nowait("b")
        with pytest.raises(QueueFull):
            q.put_nowait("c")

    def test_tenant_quota(self):
        q = EDFQueue(4, tenant_quota_fraction=0.5)
        q.put_nowait("a", tenant="flood")
        q.put_nowait("b", tenant="flood")
        with pytest.raises(TenantQuotaExceeded) as exc:
            q.put_nowait("c", tenant="flood")
        assert exc.value.tenant == "flood"
        q.put_nowait("c", tenant="other")  # other tenants still fit

    def test_none_tenant_bypasses_quota(self):
        q = EDFQueue(4, tenant_quota_fraction=0.25)
        for item in range(4):
            q.put_nowait(item)  # the single-tenant path fills the queue

    def test_quota_slot_freed_on_get(self):
        q = EDFQueue(4, tenant_quota_fraction=0.25)
        q.put_nowait("a", tenant="t")
        with pytest.raises(TenantQuotaExceeded):
            q.put_nowait("b", tenant="t")
        q.get_nowait()
        q.put_nowait("b", tenant="t")
        assert q.tenant_counts() == {"t": 1}

    def test_controls_wait_for_items(self):
        q = EDFQueue(8)
        sentinel = object()
        q.put_control(sentinel)
        q.put_nowait("work", deadline=99.0)
        assert q.get_nowait() == "work"  # items first, whatever the deadline
        assert q.get_nowait() is sentinel
        with pytest.raises(Empty):
            q.get_nowait()

    def test_qsize_excludes_controls(self):
        q = EDFQueue(8)
        q.put_control(object())
        assert q.qsize() == 0

    def test_blocking_get_times_out(self):
        q = EDFQueue(2)
        with pytest.raises(Empty):
            q.get(timeout=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            EDFQueue(0)
        with pytest.raises(ValueError):
            EDFQueue(4, tenant_quota_fraction=0.0)


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------
puts = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["t0", "t1", "t2", None]),
    ),
    max_size=40,
)


@settings(max_examples=100, deadline=None)
@given(entries=puts)
def test_edf_pop_order_is_deadline_then_fifo(entries):
    q = EDFQueue(64)
    accepted = []
    for idx, (deadline, tenant) in enumerate(entries):
        q.put_nowait(idx, deadline=deadline, tenant=tenant)
        accepted.append((deadline, idx))
    popped = []
    while True:
        try:
            popped.append(q.get_nowait())
        except Empty:
            break
    assert len(popped) == len(accepted)
    keys = [(entries[i][0], i) for i in popped]
    assert keys == sorted(accepted)


@settings(max_examples=100, deadline=None)
@given(
    flood=st.integers(min_value=0, max_value=32),
    maxsize=st.integers(min_value=2, max_value=16),
    fraction=st.floats(min_value=0.1, max_value=0.9),
)
def test_no_starvation_under_quota_pressure(flood, maxsize, fraction):
    """However hard one tenant floods, another tenant still gets a slot."""
    q = EDFQueue(maxsize, tenant_quota_fraction=fraction)
    # A tiny queue with a generous fraction rounds the quota up to the
    # whole queue; starvation-freedom is only promised below that.
    assume(q.quota < maxsize)
    for i in range(flood):
        try:
            q.put_nowait(("flood", i), deadline=0.0, tenant="flood")
        except (QueueFull, TenantQuotaExceeded):
            pass
    # The quota keeps at least one slot out of the flooder's hands.
    assert q.tenant_counts().get("flood", 0) <= q.quota < maxsize
    q.put_nowait(("victim", 0), deadline=50.0, tenant="victim")


offered_requests = st.lists(
    st.tuples(
        st.sampled_from(["t0", "t1", "t2"]),
        st.sampled_from(list(TIERS)),
        st.sampled_from(["enqueue", "bounce"]),
        st.floats(min_value=0.0, max_value=20.0,
                  allow_nan=False, allow_infinity=False),
    ),
    max_size=60,
)


@settings(max_examples=100, deadline=None)
@given(requests=offered_requests)
def test_tenant_accounting_conserves(requests):
    """offered == admitted + shed + degraded for every tenant, always."""
    controller = AdmissionController(
        AdmissionConfig(), decision_log=DecisionLog(maxlen=None)
    )
    for tenant, tier, outcome, backlog in requests:
        controller._backlog_s = backlog  # steer the predicted wait
        estimate = controller.cost_model.predict("spade")
        decision = controller.decide(
            tenant, tier, estimate, workers=1, queue_depth=0, now=0.0
        )
        if decision.action == "admit":
            if outcome == "enqueue":
                controller.enqueued(decision)
            else:  # the queue bounced it (full / tenant quota)
                controller.shed(decision, "queue_full", now=0.0)
    for tenant, row in controller.tenant_accounting().items():
        assert row["offered"] == (
            row["admitted"] + row["shed"] + row["degraded"]
        ), f"tenant {tenant} books don't balance: {row}"


# ----------------------------------------------------------------------
# AdmissionController policy
# ----------------------------------------------------------------------
class TestAdmissionController:
    def make(self, backlog_s=0.0):
        controller = AdmissionController(
            AdmissionConfig(), decision_log=DecisionLog(maxlen=None)
        )
        controller._backlog_s = backlog_s
        return controller

    def decide(self, controller, tier, workers=1):
        estimate = controller.cost_model.predict("spade")
        return controller.decide(
            "t0", tier, estimate, workers=workers, queue_depth=0, now=0.0
        )

    def test_within_slo_admits_all_tiers(self):
        controller = self.make(backlog_s=0.0)
        for tier in TIERS:
            assert self.decide(controller, tier).action == "admit"

    def test_pressure_actions_by_tier(self):
        # 10s predicted wait blows every tier SLO (gold's is 8s).
        controller = self.make(backlog_s=10.0)
        assert self.decide(controller, "gold").action == "admit"
        assert self.decide(controller, "silver").action == "degrade"
        assert self.decide(controller, "bronze").action == "shed"

    def test_predicted_wait_divides_by_workers(self):
        # 4 workers turn a 4s backlog into a 1s wait: silver (2s SLO)
        # admits, bronze (0.5s) sheds.
        controller = self.make(backlog_s=4.0)
        assert self.decide(controller, "silver", workers=4).action == "admit"
        assert self.decide(controller, "bronze", workers=4).action == "shed"

    def test_unknown_tier_maps_to_default(self):
        controller = self.make()
        decision = self.decide(controller, "platinum")
        assert decision.tier == "silver"

    def test_backlog_grows_and_shrinks(self):
        controller = self.make()
        decision = self.decide(controller, "gold")
        controller.enqueued(decision)
        assert controller.backlog_s == pytest.approx(decision.predicted_cost_s)
        controller.started(decision.predicted_cost_s)
        assert controller.backlog_s == 0.0
        controller.started(1.0)  # never goes negative
        assert controller.backlog_s == 0.0

    def test_shed_by_tier_from_log(self):
        controller = self.make(backlog_s=10.0)
        self.decide(controller, "bronze")
        self.decide(controller, "bronze")
        assert controller.shed_by_tier() == {"bronze": 2}

    def test_stats_shape(self):
        controller = self.make()
        self.decide(controller, "gold")
        stats = controller.stats()
        assert stats["decision_counts"] == {"admit": 1}
        assert "cost_model" in stats and "config" in stats
        assert stats["tenants"]["t0"]["offered"] == 1


class TestDecisionLog:
    def test_ring_bound_and_counts(self):
        log = DecisionLog(maxlen=2)
        for i in range(5):
            log.append("admit", float(i), tenant="t")
        assert len(log) == 2
        assert log.count("admit") == 5  # counts survive the ring
        assert [e["t"] for e in log.entries()] == [3.0, 4.0]

    def test_floats_canonicalized(self):
        log = DecisionLog(maxlen=None)
        entry = log.append("admit", 0.123456789123, wait=1 / 3)
        assert entry["t"] == round(0.123456789123, 9)
        assert entry["wait"] == round(1 / 3, 9)
