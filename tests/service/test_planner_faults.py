"""Fault-path tests for the plan service: structured errors, retry,
degraded fallback, and the HTTP mapping for retryable vs terminal failures.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.faults.retry import RetryPolicy
from repro.service.httpd import make_server
from repro.service.planner import PlanFailed, PlanService, PlanTimeout
from repro.service.protocol import PlanRequest
from repro.service.store import PlanStore


def rmat_request(seed=0, **overrides):
    payload = {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": seed}}
    payload.update(overrides)
    return PlanRequest.from_dict(payload)


class TestStructuredErrors:
    def test_terminal_failure_carries_structured_error(self, tmp_path):
        with PlanService(store=PlanStore(tmp_path / "p"), workers=1) as svc:
            def boom(request, digest):
                raise ValueError("synthetic terminal failure")

            svc._compute = boom
            with pytest.raises(PlanFailed) as info:
                svc.plan(rmat_request())
            error = info.value.error
            assert error.type == "ValueError"
            assert error.message == "synthetic terminal failure"
            assert error.retryable is False
            assert info.value.retryable is False
            assert "ValueError: synthetic terminal failure" in error.traceback_tail

            stats = svc.stats()
            assert stats["counters"]["requests_failed"] == 1
            last = stats["last_errors"]
            assert len(last) == 1
            assert last[0]["type"] == "ValueError"
            assert last[0]["retryable"] is False
            assert "digest" in last[0]

    def test_error_ring_is_bounded(self, tmp_path):
        with PlanService(
            store=PlanStore(tmp_path / "p"), workers=1, error_ring=4
        ) as svc:
            def boom(request, digest):
                raise ValueError("always")

            svc._compute = boom
            for seed in range(6):
                with pytest.raises(PlanFailed):
                    svc.plan(rmat_request(seed=seed))
            assert len(svc.stats()["last_errors"]) == 4


class TestRetry:
    def test_retryable_failure_retried_until_success(self, tmp_path):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.001, jitter=0.0)
        with PlanService(
            store=PlanStore(tmp_path / "p"), workers=1, retry=policy
        ) as svc:
            real_compute = svc._compute
            calls = []

            def flaky(request, digest):
                calls.append(1)
                if len(calls) < 3:
                    raise TimeoutError("transient backend stall")
                return real_compute(request, digest)

            svc._compute = flaky
            result, served = svc.plan(rmat_request())
            assert served == "computed"
            assert len(calls) == 3
            counters = svc.stats()["counters"]
            assert counters["plans_retried"] == 2
            assert counters["requests_completed"] == 1
            assert counters["requests_failed"] == 0

    def test_retryable_exhaustion_surfaces_original_error(self, tmp_path):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.001, jitter=0.0)
        with PlanService(
            store=PlanStore(tmp_path / "p"), workers=1, retry=policy
        ) as svc:
            calls = []

            def always(request, digest):
                calls.append(1)
                raise TimeoutError("never recovers")

            svc._compute = always
            with pytest.raises(PlanFailed) as info:
                svc.plan(rmat_request())
            assert len(calls) == 2
            assert info.value.error.type == "TimeoutError"
            assert info.value.retryable is True
            # One retry was scheduled (attempt 1 -> 2); the final attempt
            # surfaces the error instead of scheduling another.
            assert svc.stats()["counters"]["plans_retried"] == 1

    def test_terminal_failure_never_retried(self, tmp_path):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.001, jitter=0.0)
        with PlanService(
            store=PlanStore(tmp_path / "p"), workers=1, retry=policy
        ) as svc:
            calls = []

            def boom(request, digest):
                calls.append(1)
                raise ValueError("deterministic")

            svc._compute = boom
            with pytest.raises(PlanFailed):
                svc.plan(rmat_request())
            assert len(calls) == 1
            assert svc.stats()["counters"]["plans_retried"] == 0


class TestDegradedFallback:
    def test_timeout_serves_roofline_plan(self, tmp_path):
        with PlanService(
            store=PlanStore(tmp_path / "p"), workers=1, degraded_fallback=True
        ) as svc:
            real_compute = svc._compute
            release = threading.Event()

            def slow(request, digest):
                release.wait(5.0)
                return real_compute(request, digest)

            svc._compute = slow
            try:
                result, served = svc.plan(rmat_request(), timeout_s=0.05)
            finally:
                release.set()
            assert served == "degraded"
            assert result.label.startswith("roofline")
            assert result.n_tiles == 0
            assert result.predicted_time_s > 0

            stats = svc.stats()
            counters = stats["counters"]
            assert counters["requests_degraded"] == 1
            assert stats["config"]["degraded_fallback"] is True
            # The degraded plan is served, never stored.
            assert svc.store.get(result.digest) is None

    def test_fallback_off_still_raises_plantimeout(self, tmp_path):
        with PlanService(store=PlanStore(tmp_path / "p"), workers=1) as svc:
            release = threading.Event()
            svc._compute = lambda request, digest: release.wait(5.0)
            try:
                with pytest.raises(PlanTimeout):
                    svc.plan(rmat_request(), timeout_s=0.05)
            finally:
                release.set()

    def test_counters_reconcile_with_degraded(self, tmp_path):
        with PlanService(
            store=PlanStore(tmp_path / "p"), workers=1, degraded_fallback=True
        ) as svc:
            release = threading.Event()
            real_compute = svc._compute
            svc._compute = lambda request, digest: (
                release.wait(5.0),
                real_compute(request, digest),
            )[1]
            try:
                svc.plan(rmat_request(), timeout_s=0.05)
            finally:
                release.set()
            svc.close()
            c = svc.stats()["counters"]
            accounted = (
                c["requests_completed"]
                + c["requests_failed"]
                + c["requests_timeout"]
                + c["requests_degraded"]
            )
            assert c["requests_accepted"] <= accounted + c.get("requests_cancelled", 0)
            assert c["requests_degraded"] == 1


class _LiveServer:
    def __init__(self, service):
        self.httpd = make_server(service, host="127.0.0.1", port=0)
        self.port = self.httpd.server_address[1]
        self.thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self.thread.start()

    def post(self, path, payload):
        body = json.dumps(payload).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                return resp.status, dict(resp.headers), json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.loads(exc.read())

    def shutdown(self):
        self.httpd.shutdown()
        self.httpd.server_close()


class TestHttpErrorMapping:
    def test_retryable_maps_to_503_with_retry_after(self, tmp_path):
        with PlanService(store=PlanStore(tmp_path / "p"), workers=1) as svc:
            def stall(request, digest):
                raise TimeoutError("backend stall")

            svc._compute = stall
            server = _LiveServer(svc)
            try:
                status, headers, body = server.post(
                    "/plan", {"generator": {"kind": "rmat", "scale": 8, "nnz": 500}}
                )
            finally:
                server.shutdown()
            assert status == 503
            assert "Retry-After" in headers
            assert body["retry_after_s"] > 0
            assert body["error_detail"]["type"] == "TimeoutError"
            assert body["error_detail"]["retryable"] is True

    def test_terminal_maps_to_500_with_detail(self, tmp_path):
        with PlanService(store=PlanStore(tmp_path / "p"), workers=1) as svc:
            def boom(request, digest):
                raise ValueError("bad plan input")

            svc._compute = boom
            server = _LiveServer(svc)
            try:
                status, headers, body = server.post(
                    "/plan", {"generator": {"kind": "rmat", "scale": 8, "nnz": 500}}
                )
            finally:
                server.shutdown()
            assert status == 500
            assert "Retry-After" not in headers
            assert body["error_detail"]["type"] == "ValueError"
            assert body["error_detail"]["retryable"] is False

    def test_stats_exposes_last_errors(self, tmp_path):
        with PlanService(store=PlanStore(tmp_path / "p"), workers=1) as svc:
            svc._compute = lambda request, digest: (_ for _ in ()).throw(
                ValueError("ring me")
            )
            server = _LiveServer(svc)
            try:
                server.post(
                    "/plan", {"generator": {"kind": "rmat", "scale": 8, "nnz": 500}}
                )
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/stats", timeout=10
                ) as resp:
                    stats = json.loads(resp.read())
            finally:
                server.shutdown()
            assert stats["last_errors"]
            assert stats["last_errors"][-1]["type"] == "ValueError"
