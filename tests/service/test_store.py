"""Plan store tests."""

from repro.pipeline.preprocess import HotTilesPreprocessor
from repro.pipeline.serialize import load_assignment, load_format
from repro.service.protocol import PlanRequest, PlanResult
from repro.service.store import PlanStore


def make_plan(tmp_path, seed=0):
    req = PlanRequest.from_dict(
        {"generator": {"kind": "rmat", "scale": 8, "nnz": 2000, "seed": seed}}
    )
    digest = req.digest()
    matrix = req.resolve_matrix()
    pre = HotTilesPreprocessor(req.build_architecture()).run(matrix)
    store = PlanStore(tmp_path / "plans")
    artifacts = tuple(store.save_artifacts(digest, pre))
    result = PlanResult.from_preprocess(
        req, digest, matrix, pre, plan_wall_s=0.01, artifacts=artifacts
    )
    return store, result, pre


class TestPlanStore:
    def test_miss_then_hit(self, tmp_path):
        store, result, _ = make_plan(tmp_path)
        assert store.get(result.digest) is None
        store.put(result)
        assert store.get(result.digest) == result
        assert result.digest in store
        assert store.hits == 1 and store.misses == 1

    def test_artifacts_loadable(self, tmp_path):
        store, result, pre = make_plan(tmp_path)
        assert result.artifacts  # at least the assignment
        assignment_paths = [p for p in result.artifacts if "assignment" in p]
        assert len(assignment_paths) == 1
        loaded, label, mode = load_assignment(assignment_paths[0])
        assert label == result.label
        assert mode == result.mode
        for path in result.artifacts:
            if "assignment" not in path:
                load_format(path)  # raises if torn/foreign

    def test_foreign_entry_treated_as_miss(self, tmp_path):
        store, result, _ = make_plan(tmp_path)
        store.results.put(result.digest, {"not": "a plan"})
        assert store.get(result.digest) is None

    def test_contains_agrees_with_get_on_poisoned_entry(self, tmp_path):
        # Regression: __contains__ used to probe the raw cache path, so a
        # foreign pickle under our key answered True while get() answered
        # None -- callers branching on `in` then dereferencing get() broke.
        store, result, _ = make_plan(tmp_path)
        store.results.put(result.digest, "not-a-plan-result")
        assert result.digest not in store
        assert store.get(result.digest) is None
        store.put(result)
        assert result.digest in store

    def test_contains_does_not_skew_hit_rate(self, tmp_path):
        store, result, _ = make_plan(tmp_path)
        store.put(result)
        assert result.digest in store
        assert "deadbeef" not in store
        assert store.hits == 0 and store.misses == 0

    def test_stats_and_flush(self, tmp_path):
        store, result, _ = make_plan(tmp_path)
        store.put(result)
        store.get(result.digest)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["hit_rate"] == 1.0
        store.flush_counters()
        # Flushed counts survive into a fresh store over the same dir.
        again = PlanStore(store.store_dir)
        assert again.stats()["lifetime_hits"] == 1

    def test_clear_removes_plans_and_artifacts(self, tmp_path):
        store, result, _ = make_plan(tmp_path)
        store.put(result)
        removed = store.clear()
        assert removed == 1
        assert store.get(result.digest) is None
        assert not any(store.artifacts_dir.iterdir())
