"""Public API surface tests: the names README documents must exist."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_names_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_quickstart_flow(self):
        """The README quickstart runs verbatim against the public API."""
        from repro import HotTilesPartitioner, TiledMatrix, spade_sextans
        from repro.sparse import generators

        matrix = generators.rmat(scale=10, nnz=5_000, seed=7)
        arch = spade_sextans(system_scale=4)
        tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        assert 0.0 <= result.chosen.hot_nnz_fraction(tiled) <= 1.0


class TestSubpackages:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.sparse",
            "repro.core",
            "repro.workers",
            "repro.arch",
            "repro.sim",
            "repro.pipeline",
            "repro.experiments",
            "repro.service",
            "repro.cli",
        ],
    )
    def test_imports(self, module):
        assert importlib.import_module(module) is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sparse",
            "repro.core",
            "repro.workers",
            "repro.arch",
            "repro.sim",
            "repro.pipeline",
            "repro.experiments",
            "repro.service",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None, f"{module}.{name}"

    def test_every_public_function_documented(self):
        """Public callables across the library carry docstrings."""
        import inspect

        missing = []
        for module_name in (
            "repro.sparse.matrix",
            "repro.sparse.tiling",
            "repro.sparse.generators",
            "repro.core.model",
            "repro.core.partition",
            "repro.core.traits",
            "repro.sim.engine",
            "repro.sim.memory",
            "repro.pipeline.formats",
            "repro.experiments.figures",
        ):
            mod = importlib.import_module(module_name)
            for name, obj in vars(mod).items():
                if name.startswith("_") or not callable(obj):
                    continue
                if getattr(obj, "__module__", None) != module_name:
                    continue
                if not inspect.getdoc(obj):
                    missing.append(f"{module_name}.{name}")
        assert not missing, f"undocumented public callables: {missing}"
