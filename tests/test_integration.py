"""Cross-cutting integration tests over the whole stack.

These encode the paper's *mechanisms*, not just its numbers: IMH is the
thing HotTiles exploits, so removing IMH must remove the advantage;
adding compute-heavy regions must move work to hot workers; and the whole
preprocess -> partition -> simulate -> verify chain must hold for every
architecture.
"""

import numpy as np
import pytest

from repro.arch.configs import piuma, spade_sextans, spade_sextans_pcie
from repro.core.partition import ExecutionMode, HotTilesPartitioner
from repro.core.traits import WorkerKind
from repro.experiments.runner import calibrated
from repro.pipeline.preprocess import HotTilesPreprocessor
from repro.sim.engine import simulate, simulate_homogeneous
from repro.sparse import generators
from repro.sparse.tiling import TiledMatrix


class TestImhIsTheMechanism:
    """HotTiles' win must come from intra-matrix heterogeneity."""

    def test_no_imh_hottiles_collapses_to_homogeneous(self):
        """On a uniform matrix every tile looks alike, so there is nothing
        to exploit: HotTiles converges to an (almost) homogeneous decision
        and matches the best homogeneous runtime."""
        arch = calibrated(spade_sextans(4))
        matrix = generators.uniform_random(16384, 16384, 250_000, seed=61)
        tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
        ht = HotTilesPartitioner(arch).partition(tiled).chosen
        frac = ht.hot_nnz_fraction(tiled)
        assert frac < 0.1 or frac > 0.9  # near-homogeneous assignment
        ht_time = simulate(arch, tiled, ht.assignment, ht.mode).time_s
        best = min(
            simulate_homogeneous(arch, tiled, WorkerKind.HOT).time_s,
            simulate_homogeneous(arch, tiled, WorkerKind.COLD).time_s,
        )
        assert ht_time <= best * 1.1

    def test_imh_creates_the_advantage(self):
        """The same nonzero budget with strong IMH yields a real gap over
        the best homogeneous execution; the uniform control yields none."""
        arch = calibrated(spade_sextans(4))

        def gap(matrix):
            tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
            ht = HotTilesPartitioner(arch).partition(tiled).chosen
            ht_time = simulate(arch, tiled, ht.assignment, ht.mode).time_s
            best = min(
                simulate_homogeneous(arch, tiled, WorkerKind.HOT).time_s,
                simulate_homogeneous(arch, tiled, WorkerKind.COLD).time_s,
            )
            return best / ht_time

        uniform_gap = gap(generators.uniform_random(16384, 16384, 250_000, seed=61))
        imh_gap = gap(generators.community_blocks(6656, 500_000, 48, seed=61))
        assert imh_gap > max(uniform_gap, 1.0) * 1.3


class TestEndToEndPerArchitecture:
    @pytest.mark.parametrize(
        "arch_factory", [lambda: spade_sextans(4), spade_sextans_pcie, piuma]
    )
    def test_preprocess_partition_simulate_verify(self, arch_factory):
        arch = arch_factory()
        matrix = generators.community_blocks(4096, 120_000, 24, seed=62)
        result = HotTilesPreprocessor(arch).run(matrix)
        chosen = result.partition.chosen
        # PIUMA's atomics restrict the heuristic set to the Parallel pair.
        if arch.atomic_updates:
            assert chosen.mode is ExecutionMode.PARALLEL
        sim = simulate(arch, result.tiled, chosen.assignment, chosen.mode)
        assert sim.time_s > 0
        rng = np.random.default_rng(0)
        din = rng.standard_normal((matrix.n_cols, arch.problem.k)).astype(np.float32)
        np.testing.assert_allclose(
            result.verify_spmm(din), matrix.spmm(din), rtol=1e-3, atol=1e-3
        )

    @pytest.mark.parametrize(
        "arch_factory", [lambda: spade_sextans(4), piuma]
    )
    def test_hottiles_never_loses_badly_to_best_homogeneous(self, arch_factory):
        arch = calibrated(arch_factory())
        matrix = generators.rmat(scale=13, nnz=150_000, seed=63)
        tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
        chosen = HotTilesPartitioner(arch).partition(tiled).chosen
        ht = simulate(arch, tiled, chosen.assignment, chosen.mode).time_s
        best = min(
            simulate_homogeneous(arch, tiled, WorkerKind.HOT).time_s,
            simulate_homogeneous(arch, tiled, WorkerKind.COLD).time_s,
        )
        assert ht <= best * 1.3


class TestDensityCrossover:
    def test_strategy_flips_with_density(self):
        """Sparse matrices favor cold, dense favor hot (Fig. 10 vs 15);
        HotTiles follows both ends."""
        arch = calibrated(spade_sextans(4))
        sparse = generators.rmat(scale=14, nnz=150_000, seed=64)
        dense = generators.dense_blocks(1536, 400_000, 8, 256, seed=64)

        def times(matrix):
            tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
            return (
                simulate_homogeneous(arch, tiled, WorkerKind.HOT).time_s,
                simulate_homogeneous(arch, tiled, WorkerKind.COLD).time_s,
            )

        hot_s, cold_s = times(sparse)
        assert cold_s < hot_s  # sparse: cold wins
        hot_d, cold_d = times(dense)
        assert hot_d < cold_d  # dense: hot wins

    def test_hot_fraction_tracks_density(self):
        arch = calibrated(spade_sextans(4))
        partitioner = HotTilesPartitioner(arch)

        def hot_frac(matrix):
            tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
            chosen = partitioner.partition(tiled).chosen
            return chosen.hot_nnz_fraction(tiled)

        sparse_frac = hot_frac(generators.rmat(scale=14, nnz=150_000, seed=65))
        dense_frac = hot_frac(generators.dense_blocks(1536, 400_000, 8, 256, seed=65))
        assert dense_frac > sparse_frac
