"""Shared fixtures: small matrices and architectures for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.configs import piuma, spade_sextans
from repro.sparse import generators
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix


@pytest.fixture(scope="session")
def small_rmat() -> SparseMatrix:
    """A small power-law matrix (strong IMH)."""
    return generators.rmat(scale=10, nnz=8_000, seed=42)


@pytest.fixture(scope="session")
def small_uniform() -> SparseMatrix:
    """A small uniform matrix (no IMH)."""
    return generators.uniform_random(1024, 1024, 8_000, seed=42)


@pytest.fixture(scope="session")
def small_banded() -> SparseMatrix:
    """A small banded mesh-like matrix."""
    return generators.banded(1024, 10_000, bandwidth=24, seed=42)


@pytest.fixture(scope="session")
def tiny_matrix() -> SparseMatrix:
    """An 8x8 hand-checkable matrix."""
    rows = np.array([0, 0, 1, 2, 3, 4, 5, 6, 7, 7])
    cols = np.array([0, 7, 1, 2, 0, 4, 5, 6, 0, 7])
    vals = np.arange(1.0, 11.0, dtype=np.float32)
    return SparseMatrix(8, 8, rows, cols, vals)


@pytest.fixture(scope="session")
def spade_sextans_arch():
    """Scale-4 SPADE-Sextans (the paper's base system)."""
    return spade_sextans(4)


@pytest.fixture(scope="session")
def piuma_arch():
    return piuma()


@pytest.fixture()
def tiled_rmat(small_rmat, spade_sextans_arch) -> TiledMatrix:
    return TiledMatrix(small_rmat, spade_sextans_arch.tile_height, spade_sextans_arch.tile_width)
