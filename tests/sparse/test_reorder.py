"""Reordering tests: permutation validity and structural effect."""

import numpy as np
import pytest

from repro.sparse import generators
from repro.sparse.matrix import SparseMatrix
from repro.sparse.reorder import (
    bfs_permutation,
    degree_sort_permutation,
    reorder_symmetric,
)


def bandwidth(matrix):
    return int(np.abs(matrix.rows - matrix.cols).max()) if matrix.nnz else 0


class TestDegreeSort:
    def test_is_permutation(self, small_rmat):
        perm = degree_sort_permutation(small_rmat)
        assert np.array_equal(np.sort(perm), np.arange(small_rmat.n_rows))

    def test_densest_row_moves_first(self, small_rmat):
        perm = degree_sort_permutation(small_rmat)
        degrees = small_rmat.row_degrees() + small_rmat.col_degrees()
        heaviest = int(np.argmax(degrees))
        assert perm[heaviest] == 0

    def test_ascending_order(self, small_rmat):
        perm = degree_sort_permutation(small_rmat, descending=False)
        degrees = small_rmat.row_degrees() + small_rmat.col_degrees()
        lightest = int(np.argmin(degrees))
        assert perm[lightest] == 0

    def test_reorder_preserves_spmm_modulo_permutation(self, small_rmat):
        perm = degree_sort_permutation(small_rmat)
        reordered = reorder_symmetric(small_rmat, perm)
        rng = np.random.default_rng(3)
        din = rng.standard_normal((small_rmat.n_cols, 4)).astype(np.float32)
        din_perm = np.empty_like(din)
        din_perm[perm] = din
        out = small_rmat.spmm(din)
        out_perm = reordered.spmm(din_perm)
        np.testing.assert_allclose(out_perm[perm], out, rtol=1e-4, atol=1e-4)

    def test_concentrates_power_law_corner(self):
        m = generators.rmat(scale=11, nnz=20_000, seed=1)
        perm = degree_sort_permutation(m)
        reordered = reorder_symmetric(m, perm)
        corner = int(
            np.count_nonzero((reordered.rows < 256) & (reordered.cols < 256))
        )
        original_corner = int(np.count_nonzero((m.rows < 256) & (m.cols < 256)))
        assert corner > original_corner


class TestBfs:
    def test_is_permutation(self, small_banded):
        perm = bfs_permutation(small_banded)
        assert np.array_equal(np.sort(perm), np.arange(small_banded.n_rows))

    def test_requires_square(self):
        m = SparseMatrix(2, 3, [0], [2])
        with pytest.raises(ValueError, match="square"):
            bfs_permutation(m)

    def test_reduces_bandwidth_of_shuffled_band(self):
        base = generators.stencil(600, [-2, -1, 0, 1, 2])
        rng = np.random.default_rng(7)
        shuffle = rng.permutation(600)
        shuffled = reorder_symmetric(base, shuffle)
        perm = bfs_permutation(shuffled)
        recovered = reorder_symmetric(shuffled, perm)
        assert bandwidth(recovered) < bandwidth(shuffled) / 4

    def test_handles_disconnected_components(self):
        # Two disjoint edges plus an isolated vertex.
        m = SparseMatrix(5, 5, [0, 1, 2, 3], [1, 0, 3, 2])
        perm = bfs_permutation(m)
        assert np.array_equal(np.sort(perm), np.arange(5))


class TestReorderSymmetric:
    def test_requires_square(self):
        m = SparseMatrix(2, 3, [0], [1])
        with pytest.raises(ValueError, match="square"):
            reorder_symmetric(m, np.arange(2))

    def test_identity_permutation(self, small_banded):
        n = small_banded.n_rows
        assert reorder_symmetric(small_banded, np.arange(n)) == small_banded
