"""Unit tests for the SparseMatrix container."""

import numpy as np
import pytest

from repro.sparse.matrix import SparseMatrix


class TestConstruction:
    def test_basic_coo(self):
        m = SparseMatrix(3, 4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        assert m.shape == (3, 4)
        assert m.nnz == 3
        assert m.density == pytest.approx(3 / 12)

    def test_pattern_defaults_to_unit_values(self):
        m = SparseMatrix(2, 2, [0, 1], [1, 0])
        assert np.array_equal(m.vals, np.ones(2, dtype=np.float32))

    def test_canonical_row_major_order(self):
        m = SparseMatrix(3, 3, [2, 0, 1, 0], [0, 2, 1, 0], [1, 2, 3, 4])
        assert m.rows.tolist() == [0, 0, 1, 2]
        assert m.cols.tolist() == [0, 2, 1, 0]
        assert m.vals.tolist() == [4, 2, 3, 1]

    def test_duplicates_are_summed(self):
        m = SparseMatrix(2, 2, [0, 0, 1], [1, 1, 0], [1.0, 2.5, 4.0])
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == pytest.approx(3.5)

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            SparseMatrix(2, 2, [2], [0])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SparseMatrix(2, 2, [-1], [0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            SparseMatrix(2, 2, [0, 1], [0])
        with pytest.raises(ValueError, match="same length"):
            SparseMatrix(2, 2, [0, 1], [0, 1], [1.0])

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SparseMatrix(-1, 2, [], [])

    def test_arrays_are_immutable(self):
        m = SparseMatrix(2, 2, [0], [0])
        with pytest.raises(ValueError):
            m.rows[0] = 1

    def test_empty_matrix(self):
        m = SparseMatrix.empty(5, 7)
        assert m.nnz == 0
        assert m.density == 0.0
        assert m.to_dense().shape == (5, 7)

    def test_identity(self):
        m = SparseMatrix.identity(4)
        assert np.array_equal(m.to_dense(), np.eye(4, dtype=np.float32))

    def test_from_dense_roundtrip(self):
        dense = np.array([[0, 1.5, 0], [2.0, 0, 0], [0, 0, 3.0]])
        m = SparseMatrix.from_dense(dense, dtype=np.float64)
        assert np.array_equal(m.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            SparseMatrix.from_dense(np.ones(3))

    def test_from_csr_roundtrip(self):
        m = SparseMatrix(3, 3, [0, 0, 2], [0, 2, 1], [1.0, 2.0, 3.0])
        back = SparseMatrix.from_csr(3, 3, *m.to_csr())
        assert back == m

    def test_from_csr_bad_indptr_length(self):
        with pytest.raises(ValueError, match="length"):
            SparseMatrix.from_csr(3, 3, np.array([0, 1]), np.array([0]))

    def test_from_csr_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            SparseMatrix.from_csr(2, 2, np.array([0, 2, 1]), np.array([0, 1]))

    def test_from_csr_indptr_tail_mismatch(self):
        with pytest.raises(ValueError, match="indptr"):
            SparseMatrix.from_csr(2, 2, np.array([0, 1, 2]), np.array([0]))


class TestQueries:
    def test_degrees(self, tiny_matrix):
        assert tiny_matrix.row_degrees().tolist() == [2, 1, 1, 1, 1, 1, 1, 2]
        assert tiny_matrix.row_degrees().sum() == tiny_matrix.nnz
        assert tiny_matrix.col_degrees().sum() == tiny_matrix.nnz

    def test_indptr_matches_bincount(self, small_rmat):
        indptr = small_rmat.indptr()
        assert indptr[0] == 0
        assert indptr[-1] == small_rmat.nnz
        assert np.array_equal(np.diff(indptr), small_rmat.row_degrees())

    def test_indptr_cached(self, tiny_matrix):
        assert tiny_matrix.indptr() is tiny_matrix.indptr()

    def test_repr_mentions_shape_and_nnz(self, tiny_matrix):
        text = repr(tiny_matrix)
        assert "8x8" in text and "nnz=10" in text


class TestTransforms:
    def test_transpose_involution(self, small_rmat):
        assert small_rmat.transpose().transpose() == small_rmat

    def test_transpose_dense_agreement(self, tiny_matrix):
        assert np.array_equal(tiny_matrix.transpose().to_dense(), tiny_matrix.to_dense().T)

    def test_astype(self, tiny_matrix):
        m64 = tiny_matrix.astype(np.float64)
        assert m64.dtype == np.float64
        assert np.array_equal(m64.vals, tiny_matrix.vals.astype(np.float64))

    def test_permute_identity_is_noop(self, tiny_matrix):
        n = tiny_matrix.n_rows
        assert tiny_matrix.permute(np.arange(n), np.arange(n)) == tiny_matrix

    def test_permute_matches_dense(self, tiny_matrix):
        rng = np.random.default_rng(0)
        perm = rng.permutation(8)
        permuted = tiny_matrix.permute(row_perm=perm, col_perm=perm)
        dense = np.zeros((8, 8), dtype=np.float32)
        src = tiny_matrix.to_dense()
        for i in range(8):
            for j in range(8):
                dense[perm[i], perm[j]] = src[i, j]
        assert np.array_equal(permuted.to_dense(), dense)

    def test_permute_rejects_non_permutation(self, tiny_matrix):
        with pytest.raises(ValueError, match="not a permutation"):
            tiny_matrix.permute(row_perm=np.zeros(8, dtype=np.int64))

    def test_select_nonzeros(self, tiny_matrix):
        mask = tiny_matrix.vals > 5
        sub = tiny_matrix.select_nonzeros(mask)
        assert sub.nnz == int(mask.sum())
        assert sub.shape == tiny_matrix.shape

    def test_select_nonzeros_bad_mask(self, tiny_matrix):
        with pytest.raises(ValueError, match="one entry per nonzero"):
            tiny_matrix.select_nonzeros(np.ones(3, dtype=bool))

    def test_symmetrized_is_symmetric(self, small_rmat):
        sym = small_rmat.symmetrized()
        assert sym == sym.transpose()

    def test_without_diagonal(self):
        m = SparseMatrix(3, 3, [0, 1, 1], [0, 1, 2], [1.0, 2.0, 3.0])
        off = m.without_diagonal()
        assert off.nnz == 1
        assert off.to_dense()[1, 2] == pytest.approx(3.0)


class TestKernels:
    def test_spmm_matches_dense(self, small_rmat):
        rng = np.random.default_rng(1)
        din = rng.standard_normal((small_rmat.n_cols, 8)).astype(np.float32)
        expected = small_rmat.to_dense() @ din
        np.testing.assert_allclose(small_rmat.spmm(din), expected, rtol=1e-4, atol=1e-4)

    def test_spmm_shape_check(self, tiny_matrix):
        with pytest.raises(ValueError, match="shape"):
            tiny_matrix.spmm(np.ones((3, 2)))

    def test_spmv_matches_spmm(self, tiny_matrix):
        x = np.arange(8, dtype=np.float32)
        np.testing.assert_allclose(tiny_matrix.spmv(x), tiny_matrix.spmm(x[:, None])[:, 0])

    def test_spmv_shape_check(self, tiny_matrix):
        with pytest.raises(ValueError, match="shape"):
            tiny_matrix.spmv(np.ones(3))

    def test_spmm_empty_matrix(self):
        m = SparseMatrix.empty(4, 4)
        out = m.spmm(np.ones((4, 2)))
        assert np.array_equal(out, np.zeros((4, 2)))

    def test_identity_spmm_is_identity_map(self):
        m = SparseMatrix.identity(6)
        din = np.random.default_rng(2).standard_normal((6, 3)).astype(np.float32)
        np.testing.assert_allclose(m.spmm(din), din, rtol=1e-6)


class TestEquality:
    def test_equal_matrices(self, tiny_matrix):
        clone = SparseMatrix(
            8, 8, tiny_matrix.rows, tiny_matrix.cols, tiny_matrix.vals
        )
        assert clone == tiny_matrix

    def test_different_values_not_equal(self, tiny_matrix):
        other = SparseMatrix(8, 8, tiny_matrix.rows, tiny_matrix.cols, tiny_matrix.vals * 2)
        assert other != tiny_matrix

    def test_non_matrix_comparison(self, tiny_matrix):
        assert tiny_matrix != "not a matrix"
