"""Synthetic matrix generator tests: exact sizes, determinism, structure."""

import numpy as np
import pytest

from repro.sparse import generators
from repro.sparse.stats import gini
from repro.sparse.tiling import TiledMatrix


class TestUniform:
    def test_exact_nnz_and_shape(self):
        m = generators.uniform_random(200, 300, 5000, seed=1)
        assert m.shape == (200, 300)
        assert m.nnz == 5000

    def test_deterministic(self):
        a = generators.uniform_random(100, 100, 1000, seed=9)
        b = generators.uniform_random(100, 100, 1000, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = generators.uniform_random(100, 100, 1000, seed=1)
        b = generators.uniform_random(100, 100, 1000, seed=2)
        assert a != b

    def test_full_density(self):
        m = generators.uniform_random(10, 10, 100, seed=0)
        assert m.nnz == 100

    def test_zero_nnz(self):
        assert generators.uniform_random(10, 10, 0, seed=0).nnz == 0

    def test_overfull_rejected(self):
        with pytest.raises(ValueError, match="cannot place"):
            generators.uniform_random(4, 4, 17)

    def test_low_imh(self):
        m = generators.uniform_random(1024, 1024, 50_000, seed=3)
        tiled = TiledMatrix(m, 128, 128)
        assert gini(tiled.stats.nnz) < 0.15


class TestRmat:
    def test_shape_is_power_of_two(self):
        m = generators.rmat(scale=9, nnz=4000, seed=4)
        assert m.shape == (512, 512)
        assert m.nnz == 4000

    def test_deterministic(self):
        assert generators.rmat(8, 1000, seed=5) == generators.rmat(8, 1000, seed=5)

    def test_power_law_concentration(self):
        m = generators.rmat(scale=12, nnz=40_000, seed=6)
        degrees = np.sort(m.row_degrees())[::-1]
        top1pct = degrees[: max(1, m.n_rows // 100)].sum()
        assert top1pct > 0.1 * m.nnz  # heavy head

    def test_high_imh_vs_uniform(self):
        r = generators.rmat(scale=12, nnz=40_000, seed=6)
        u = generators.uniform_random(4096, 4096, 40_000, seed=6)
        gr = gini(TiledMatrix(r, 128, 128).stats.nnz)
        gu = gini(TiledMatrix(u, 128, 128).stats.nnz)
        assert gr > gu + 0.2

    def test_symmetrize(self):
        m = generators.rmat(scale=8, nnz=800, seed=7, symmetrize=True)
        assert m == m.transpose()

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            generators.rmat(scale=8, nnz=10, a=0.9, b=0.2, c=0.2)

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            generators.rmat(scale=0, nnz=1)


class TestBanded:
    def test_band_containment(self):
        m = generators.banded(1000, 8000, bandwidth=16, seed=8)
        assert m.nnz == 8000
        offsets = np.abs(m.rows - m.cols)
        # Laplace tail: the vast majority of offsets within a few bandwidths.
        assert np.quantile(offsets, 0.95) <= 16 * 4

    def test_diagonal_tiles_dominate(self):
        m = generators.banded(2048, 20_000, bandwidth=32, seed=9)
        tiled = TiledMatrix(m, 128, 128)
        on_diag = tiled.stats.tile_row == tiled.stats.tile_col
        assert tiled.stats.nnz[on_diag].sum() > 0.5 * m.nnz

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            generators.banded(10, 5, bandwidth=0)


class TestStencil:
    def test_interior_rows_have_full_pattern(self):
        m = generators.stencil(100, [-10, -1, 0, 1, 10])
        degrees = m.row_degrees()
        assert np.all(degrees[10:90] == 5)

    def test_boundary_clipping(self):
        m = generators.stencil(10, [-1, 0, 1])
        assert m.row_degrees()[0] == 2
        assert m.row_degrees()[9] == 2

    def test_duplicate_offsets_collapse(self):
        a = generators.stencil(10, [0, 1, 1])
        b = generators.stencil(10, [0, 1])
        assert a == b

    def test_invalid_n(self):
        with pytest.raises(ValueError, match="positive"):
            generators.stencil(0, [0])


class TestCommunity:
    def test_exact_nnz(self):
        m = generators.community_blocks(1024, 20_000, 16, seed=10)
        assert m.nnz == 20_000

    def test_diagonal_concentration(self):
        m = generators.community_blocks(1024, 30_000, 16, intra_fraction=0.9, seed=11)
        tiled = TiledMatrix(m, 128, 128)
        near_diag = np.abs(tiled.stats.tile_row - tiled.stats.tile_col) <= 1
        assert tiled.stats.nnz[near_diag].sum() > 0.5 * m.nnz

    def test_invalid_fraction(self):
        with pytest.raises(ValueError, match="intra_fraction"):
            generators.community_blocks(64, 10, 4, intra_fraction=1.5)

    def test_invalid_community_count(self):
        with pytest.raises(ValueError, match="n_communities"):
            generators.community_blocks(64, 10, 0)


class TestDenseBlocks:
    def test_exact_nnz(self):
        m = generators.dense_blocks(512, 30_000, 6, 96, seed=12)
        assert m.nnz == 30_000

    def test_blocks_create_hot_tiles(self):
        m = generators.dense_blocks(2048, 60_000, 4, 256, background_fraction=0.05, seed=13)
        tiled = TiledMatrix(m, 128, 128)
        assert gini(tiled.stats.nnz) > 0.35

    def test_invalid_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            generators.dense_blocks(64, 10, 2, 128)


class TestMycielskian:
    @pytest.mark.parametrize("order,n", [(2, 2), (3, 5), (4, 11), (5, 23), (12, 3071)])
    def test_vertex_count(self, order, n):
        assert generators.mycielskian(order).n_rows == n

    @pytest.mark.parametrize("order", [2, 3, 4, 5, 8])
    def test_nnz_closed_form(self, order):
        m = generators.mycielskian(order)
        assert m.nnz == generators.mycielskian_nnz(order)

    def test_symmetric_no_diagonal(self):
        m = generators.mycielskian(6)
        assert m == m.transpose()
        assert np.all(m.rows != m.cols)

    def test_m3_is_c5(self):
        # The Mycielskian of K2 is the 5-cycle.
        m = generators.mycielskian(3)
        assert m.n_rows == 5
        assert np.all(m.row_degrees() == 2)

    def test_triangle_free_small(self):
        # Mycielskians are triangle-free: A^3 diagonal is zero.
        m = generators.mycielskian(5)
        a = m.to_dense()
        assert np.trace(a @ a @ a) == 0

    def test_order_helper(self):
        assert generators.mycielskian_order(3071) == 12
        assert generators.mycielskian_order(3072) == 13

    def test_invalid_order(self):
        with pytest.raises(ValueError, match="order"):
            generators.mycielskian(1)
