"""gSpMM semiring executor tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import generators
from repro.sparse.matrix import SparseMatrix
from repro.sparse.semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    gspmm,
)


@pytest.fixture(scope="module")
def graph():
    m = generators.rmat(scale=7, nnz=600, seed=71)
    rng = np.random.default_rng(72)
    return SparseMatrix(m.n_rows, m.n_cols, m.rows, m.cols, rng.random(m.nnz) + 0.1)


class TestPlusTimes:
    def test_matches_reference_spmm(self, graph):
        din = np.random.default_rng(0).standard_normal((graph.n_cols, 4)).astype(np.float32)
        np.testing.assert_allclose(
            gspmm(graph, din, PLUS_TIMES), graph.spmm(din), rtol=1e-5, atol=1e-5
        )

    def test_shape_check(self, graph):
        with pytest.raises(ValueError, match="shape"):
            gspmm(graph, np.ones((3, 2)))


class TestMinPlus:
    def test_single_relaxation_step(self):
        """min-plus gSpMM over an adjacency matrix performs one Bellman-Ford
        relaxation: dist'[v] = min over edges (u,v)... here rows relax from
        column distances."""
        # Path graph 0 -> 1 -> 2 with weights 1.0, 2.0 (row = dst, col = src).
        m = SparseMatrix(3, 3, [1, 2], [0, 1], np.array([1.0, 2.0], dtype=np.float32))
        dist = np.array([[0.0], [np.inf], [np.inf]])
        step1 = gspmm(m, dist, MIN_PLUS)
        assert step1[1, 0] == pytest.approx(1.0)
        assert np.isinf(step1[2, 0])
        step2 = gspmm(m, np.minimum(step1, dist), MIN_PLUS)
        assert step2[2, 0] == pytest.approx(3.0)

    def test_empty_rows_hold_identity(self):
        m = SparseMatrix(3, 3, [0], [0], np.array([5.0], dtype=np.float32))
        out = gspmm(m, np.zeros((3, 2)), MIN_PLUS)
        assert np.isinf(out[1]).all() and np.isinf(out[2]).all()
        assert out[0, 0] == pytest.approx(5.0)

    def test_brute_force_small(self):
        m = generators.uniform_random(16, 16, 40, seed=3)
        m = SparseMatrix(16, 16, m.rows, m.cols, np.arange(1.0, 41.0, dtype=np.float64))
        din = np.random.default_rng(4).random((16, 3))
        out = gspmm(m, din, MIN_PLUS)
        expected = np.full((16, 3), np.inf)
        for r, c, v in zip(m.rows, m.cols, m.vals):
            expected[r] = np.minimum(expected[r], v + din[c])
        np.testing.assert_allclose(out, expected)


class TestOrAnd:
    def test_bfs_frontier_expansion(self):
        """or-and gSpMM over a boolean adjacency advances a BFS frontier."""
        # Edges (dst, src): 1<-0, 2<-1.
        m = SparseMatrix(3, 3, [1, 2], [0, 1])
        frontier = np.array([[True], [False], [False]])
        nxt = gspmm(m, frontier, OR_AND)
        assert nxt[:, 0].tolist() == [False, True, False]

    def test_output_is_boolean(self):
        m = SparseMatrix(2, 2, [0], [1])
        out = gspmm(m, np.array([[True], [True]]), OR_AND)
        assert out.dtype == bool


class TestMaxTimes:
    def test_brute_force_small(self):
        m = generators.uniform_random(12, 12, 30, seed=5)
        rng = np.random.default_rng(6)
        m = SparseMatrix(12, 12, m.rows, m.cols, rng.random(30))
        din = rng.random((12, 2))
        out = gspmm(m, din, MAX_TIMES)
        expected = np.zeros((12, 2))
        for r, c, v in zip(m.rows, m.cols, m.vals):
            expected[r] = np.maximum(expected[r], v * din[c])
        np.testing.assert_allclose(out, expected)


class TestSemiringType:
    def test_invalid_hint(self):
        with pytest.raises(ValueError, match="ops_per_nnz_hint"):
            Semiring("bad", np.add, np.multiply, 0.0, ops_per_nnz_hint=0)

    def test_non_ufunc_add_rejected_at_use(self):
        s = Semiring("lambda", lambda a, b: a + b, np.multiply, 0.0)
        m = SparseMatrix(2, 2, [0], [0], np.array([1.0], dtype=np.float32))
        with pytest.raises(TypeError, match="ufunc"):
            gspmm(m, np.ones((2, 1)), s)

    def test_repr(self):
        assert "min-plus" in repr(MIN_PLUS)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16), k=st.integers(1, 4))
def test_plus_times_agrees_with_dense(seed, k):
    rng = np.random.default_rng(seed)
    m = generators.uniform_random(20, 20, 50, seed=seed)
    m = SparseMatrix(20, 20, m.rows, m.cols, rng.random(50))
    din = rng.random((20, k))
    np.testing.assert_allclose(
        gspmm(m, din, PLUS_TIMES), m.to_dense() @ din, rtol=1e-6, atol=1e-6
    )
