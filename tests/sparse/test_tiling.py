"""Unit tests for the tile decomposition against brute-force references."""

import numpy as np
import pytest

from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix


def brute_force_stats(matrix, th, tw):
    """Reference per-tile stats computed with Python dicts."""
    tiles = {}
    for r, c in zip(matrix.rows.tolist(), matrix.cols.tolist()):
        key = (r // th, c // tw)
        entry = tiles.setdefault(key, {"nnz": 0, "rids": set(), "cids": set()})
        entry["nnz"] += 1
        entry["rids"].add(r)
        entry["cids"].add(c)
    return tiles


@pytest.fixture(scope="module")
def mixed_matrix():
    rng = np.random.default_rng(5)
    rows = rng.integers(0, 500, 3000)
    cols = rng.integers(0, 300, 3000)
    return SparseMatrix(500, 300, rows, cols)


class TestTileStats:
    @pytest.mark.parametrize("th,tw", [(64, 64), (128, 32), (100, 77), (500, 300), (1, 1)])
    def test_stats_match_brute_force(self, mixed_matrix, th, tw):
        tiled = TiledMatrix(mixed_matrix, th, tw)
        ref = brute_force_stats(mixed_matrix, th, tw)
        assert tiled.n_tiles == len(ref)
        for i in range(tiled.n_tiles):
            key = (int(tiled.stats.tile_row[i]), int(tiled.stats.tile_col[i]))
            assert key in ref
            assert tiled.stats.nnz[i] == ref[key]["nnz"]
            assert tiled.stats.uniq_rids[i] == len(ref[key]["rids"])
            assert tiled.stats.uniq_cids[i] == len(ref[key]["cids"])

    def test_nnz_conserved(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        assert tiled.stats.nnz.sum() == mixed_matrix.nnz

    def test_tiles_sorted_panel_major(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        keys = tiled.stats.tile_row * tiled.n_panel_cols + tiled.stats.tile_col
        assert np.all(np.diff(keys) > 0)  # unique and ascending

    def test_empty_tiles_eliminated(self):
        # Only the two corner tiles are populated.
        m = SparseMatrix(256, 256, [0, 255], [0, 255])
        tiled = TiledMatrix(m, 64, 64)
        assert tiled.n_tiles == 2
        assert tiled.n_panel_rows == tiled.n_panel_cols == 4

    def test_grid_dimensions_round_up(self):
        m = SparseMatrix(100, 130, [99], [129])
        tiled = TiledMatrix(m, 64, 64)
        assert tiled.n_panel_rows == 2
        assert tiled.n_panel_cols == 3

    def test_invalid_tile_size(self, mixed_matrix):
        with pytest.raises(ValueError, match="positive"):
            TiledMatrix(mixed_matrix, 0, 64)

    def test_empty_matrix(self):
        tiled = TiledMatrix(SparseMatrix.empty(64, 64), 32, 32)
        assert tiled.n_tiles == 0
        assert list(tiled.iter_panels()) == []


class TestTileAccess:
    def test_tile_nonzeros_cover_matrix(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        seen = []
        for i in range(tiled.n_tiles):
            r, c, v = tiled.tile_nonzeros(i)
            assert r.shape == c.shape == v.shape
            tr, tc = tiled.stats.tile_row[i], tiled.stats.tile_col[i]
            assert np.all(r // 64 == tr)
            assert np.all(c // 64 == tc)
            seen.append(r.shape[0])
        assert sum(seen) == mixed_matrix.nnz

    def test_permutation_is_bijective(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        assert np.array_equal(np.sort(tiled.perm), np.arange(mixed_matrix.nnz))

    def test_row_major_within_tile(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        for i in range(tiled.n_tiles):
            r, c, _ = tiled.tile_nonzeros(i)
            key = r * 300 + c
            assert np.all(np.diff(key) > 0)


class TestPanels:
    def test_iter_panels_partition_tiles(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        collected = np.concatenate([idx for _, idx in tiled.iter_panels()])
        assert np.array_equal(collected, np.arange(tiled.n_tiles))

    def test_tiles_in_panel_consistent(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        for panel, idx in tiled.iter_panels():
            assert np.array_equal(tiled.tiles_in_panel(panel), idx)
            assert np.all(tiled.stats.tile_row[idx] == panel)

    def test_panel_uniq_rids(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        for panel in range(tiled.n_panel_rows):
            rows_in_panel = mixed_matrix.rows[
                (mixed_matrix.rows // 64) == panel
            ]
            assert tiled.panel_uniq_rids[panel] == np.unique(rows_in_panel).size

    def test_panel_nnz(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        assert tiled.panel_nnz.sum() == mixed_matrix.nnz


class TestDensityMap:
    def test_density_map_totals(self, mixed_matrix):
        tiled = TiledMatrix(mixed_matrix, 64, 64)
        grid = tiled.density_map()
        assert grid.shape == (tiled.n_panel_rows, tiled.n_panel_cols)
        assert grid.sum() == mixed_matrix.nnz

    def test_density_map_single_tile(self):
        m = SparseMatrix(10, 10, [1, 2], [1, 2])
        grid = TiledMatrix(m, 16, 16).density_map()
        assert grid.shape == (1, 1)
        assert grid[0, 0] == 2
