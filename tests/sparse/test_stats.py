"""IMH statistics tests."""

import numpy as np
import pytest

from repro.sparse import generators
from repro.sparse.stats import gini, imh_summary, nnz_share_of_top_tiles, tile_nnz_cv
from repro.sparse.tiling import TiledMatrix


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-9)

    def test_single_owner_approaches_one(self):
        values = np.zeros(1000)
        values[0] = 100.0
        assert gini(values) > 0.99

    def test_empty_is_zero(self):
        assert gini(np.array([])) == 0.0

    def test_all_zero_is_zero(self):
        assert gini(np.zeros(10)) == 0.0

    def test_scale_invariant(self):
        rng = np.random.default_rng(0)
        v = rng.random(500)
        assert gini(v) == pytest.approx(gini(v * 1000), rel=1e-9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            gini(np.array([1.0, -1.0]))

    def test_known_value(self):
        # Two values {0, x}: Gini = 1/2 for the discrete formulation.
        assert gini(np.array([0.0, 10.0])) == pytest.approx(0.5)


class TestTileMetrics:
    def test_cv_zero_for_identical_tiles(self):
        m = generators.stencil(512, [0])  # one nonzero per row
        tiled = TiledMatrix(m, 64, 64)
        assert tile_nnz_cv(tiled) == pytest.approx(0.0)

    def test_cv_empty_matrix(self):
        from repro.sparse.matrix import SparseMatrix

        assert tile_nnz_cv(TiledMatrix(SparseMatrix.empty(64, 64), 32, 32)) == 0.0

    def test_top_share_bounds(self, small_rmat):
        tiled = TiledMatrix(small_rmat, 128, 128)
        share = nnz_share_of_top_tiles(tiled, 0.1)
        assert 0.0 < share <= 1.0
        assert nnz_share_of_top_tiles(tiled, 1.0) == pytest.approx(1.0)

    def test_top_share_invalid_fraction(self, tiled_rmat):
        with pytest.raises(ValueError, match="fraction"):
            nnz_share_of_top_tiles(tiled_rmat, 0.0)

    def test_rmat_more_concentrated_than_uniform(self, small_rmat, small_uniform):
        tr = TiledMatrix(small_rmat, 128, 128)
        tu = TiledMatrix(small_uniform, 128, 128)
        assert nnz_share_of_top_tiles(tr) > nnz_share_of_top_tiles(tu)


class TestSummary:
    def test_summary_fields(self, small_rmat):
        tiled = TiledMatrix(small_rmat, 128, 128)
        s = imh_summary(tiled)
        assert s.n_tiles == tiled.n_tiles
        assert 0 < s.occupancy <= 1
        assert 0 <= s.gini < 1
        assert s.mean_tile_density > 0

    def test_empty_summary(self):
        from repro.sparse.matrix import SparseMatrix

        s = imh_summary(TiledMatrix(SparseMatrix.empty(64, 64), 32, 32))
        assert s.n_tiles == 0
        assert s.gini == 0.0
        assert s.mean_tile_density == 0.0
