"""Golden-trace regression test.

A fixed matrix and architecture produce a deterministic span forest --
same names, same nesting, same per-track ordering on every run and every
platform (the fluid engine and the schedulers are deterministic; only
timestamps vary, and the structural snapshot strips them).  Any change to
the instrumentation's shape shows up as a diff against
``tests/golden/trace_tiny.json``; regenerate it with::

    PYTHONPATH=src python tests/test_golden_trace.py
"""

import json
from pathlib import Path

import numpy as np

from repro.core.partition import ExecutionMode
from repro.obs import Tracer, span_tree, use_tracer
from repro.sim.engine import simulate

GOLDEN = Path(__file__).parent / "golden" / "trace_tiny.json"


def _traced_forest():
    """The canonical tiny traced run, structurally normalized."""
    from tests.core.test_partition import mixed_tiled, tiny_arch

    arch = tiny_arch()
    tiled = mixed_tiled()
    assignment = tiled.stats.nnz > np.median(tiled.stats.nnz)
    with use_tracer(Tracer(enabled=True)) as tracer:
        simulate(arch, tiled, assignment, ExecutionMode.PARALLEL)
    return _normalize(span_tree(tracer))


def _normalize(forest):
    """Wall tracks are thread names (runner-dependent): rename them
    positionally; sim tracks are already stable (hot-0, cold-1, ...)."""
    out = {}
    for process, tracks in sorted(forest.items()):
        if process == "wall":
            out[process] = {
                f"wall-{i}": tree
                for i, (_, tree) in enumerate(sorted(tracks.items()))
            }
        else:
            out[process] = {track: tree for track, tree in sorted(tracks.items())}
    return out


def test_golden_trace_structure_matches():
    assert GOLDEN.exists(), f"golden snapshot missing: {GOLDEN}"
    expected = json.loads(GOLDEN.read_text())
    actual = _traced_forest()
    assert actual == expected, (
        "traced span structure diverged from tests/golden/trace_tiny.json; "
        "if the instrumentation change is intentional, regenerate with "
        "'PYTHONPATH=src python tests/test_golden_trace.py'"
    )


def test_golden_trace_has_expected_shape():
    """Sanity on the snapshot itself, independent of a live run."""
    expected = json.loads(GOLDEN.read_text())
    assert "sim" in expected and "wall" in expected
    sim_tracks = expected["sim"]
    assert any(t.startswith("hot-") for t in sim_tracks)
    assert any(t.startswith("cold-") for t in sim_tracks)
    (wall_roots,) = expected["wall"].values()
    assert [r["name"] for r in wall_roots] == ["sim.simulate"]


if __name__ == "__main__":  # regeneration entry point
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(json.dumps(_traced_forest(), indent=1, sort_keys=True) + "\n")
    print(f"regenerated {GOLDEN}")
