"""Property-based tests over the whole modeling/partitioning/sim stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import AnalyticalModel
from repro.core.partition import ExecutionMode, HotTilesPartitioner, first_of_type_masks
from repro.sim.engine import simulate
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix
from tests.core.test_model import PROBLEM, cold_worker
from tests.core.test_partition import tiny_arch


@st.composite
def small_matrices(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    nnz = draw(st.integers(min_value=1, max_value=60))
    rows = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    return SparseMatrix(n, n, np.array(rows), np.array(cols))


@settings(max_examples=60, deadline=None)
@given(matrix=small_matrices())
def test_tiling_conserves_nonzeros(matrix):
    tiled = TiledMatrix(matrix, 4, 4)
    assert tiled.stats.nnz.sum() == matrix.nnz
    assert np.all(tiled.stats.uniq_rids <= tiled.stats.nnz)
    assert np.all(tiled.stats.uniq_cids <= tiled.stats.nnz)
    assert np.all(tiled.stats.uniq_rids >= 1)


@settings(max_examples=60, deadline=None)
@given(matrix=small_matrices())
def test_model_costs_positive_and_monotone_in_vis_lat(matrix):
    tiled = TiledMatrix(matrix, 4, 4)
    model = AnalyticalModel(PROBLEM)
    slow = cold_worker(vis_lat_s_per_byte=1e-8)
    fast = cold_worker(vis_lat_s_per_byte=1e-12)
    c_slow = model.tile_costs(tiled, slow)
    c_fast = model.tile_costs(tiled, fast)
    assert np.all(c_slow.time_s > 0)
    assert np.all(c_slow.bytes > 0)
    assert np.all(c_slow.time_s >= c_fast.time_s - 1e-18)
    # Bytes do not depend on vis_lat.
    np.testing.assert_allclose(c_slow.bytes, c_fast.bytes)


@settings(max_examples=60, deadline=None)
@given(matrix=small_matrices())
def test_first_mask_never_reduces_cost(matrix):
    """Charging first-tile reuse can only add traffic/time."""
    tiled = TiledMatrix(matrix, 4, 4)
    model = AnalyticalModel(PROBLEM)
    worker = cold_worker()
    base = model.tile_costs(tiled, worker)
    first = np.ones(tiled.n_tiles, dtype=bool)
    charged = model.tile_costs(tiled, worker, first_mask=first)
    assert np.all(charged.bytes >= base.bytes - 1e-12)
    assert np.all(charged.time_s >= base.time_s - 1e-18)


@settings(max_examples=40, deadline=None)
@given(matrix=small_matrices(), data=st.data())
def test_first_of_type_masks_invariants(matrix, data):
    tiled = TiledMatrix(matrix, 4, 4)
    bits = data.draw(
        st.lists(st.booleans(), min_size=tiled.n_tiles, max_size=tiled.n_tiles)
    )
    assignment = np.array(bits, dtype=bool)
    hot_first, cold_first = first_of_type_masks(tiled, assignment)
    # First-tiles are subsets of their own side.
    assert not np.any(hot_first & ~assignment)
    assert not np.any(cold_first & assignment)
    # Exactly one first per (panel, type) that has tiles there.
    panels = tiled.stats.tile_row
    for panel in np.unique(panels):
        in_panel = panels == panel
        if (assignment & in_panel).any():
            assert (hot_first & in_panel).sum() == 1
        if ((~assignment) & in_panel).any():
            assert (cold_first & in_panel).sum() == 1


@settings(max_examples=25, deadline=None)
@given(matrix=small_matrices())
def test_partition_assignment_well_formed(matrix):
    tiled = TiledMatrix(matrix, 4, 4)
    result = HotTilesPartitioner(tiny_arch()).partition(tiled)
    assert result.chosen.assignment.shape == (tiled.n_tiles,)
    assert result.chosen.assignment.dtype == bool
    assert result.chosen.predicted_time_s > 0
    # The chosen candidate is the arg-min over candidates.
    assert result.chosen.predicted_time_s == min(
        r.predicted_time_s for r in result.candidates.values()
    )


@settings(max_examples=20, deadline=None)
@given(matrix=small_matrices(), seed=st.integers(0, 2**16))
def test_simulated_time_positive_and_bytes_conserved(matrix, seed):
    tiled = TiledMatrix(matrix, 4, 4)
    rng = np.random.default_rng(seed)
    assignment = rng.random(tiled.n_tiles) < 0.5
    arch = tiny_arch()
    result = simulate(arch, tiled, assignment, ExecutionMode.PARALLEL)
    assert result.time_s > 0
    assert result.hot.nnz + result.cold.nnz == matrix.nnz
    # The run can never beat the pure-bandwidth lower bound.
    assert result.time_s >= result.bytes_total / arch.mem_bw_bytes_per_sec - 1e-15


@settings(max_examples=15, deadline=None)
@given(matrix=small_matrices(), seed=st.integers(0, 2**16))
def test_parallel_at_least_as_fast_as_serial_minus_merge(matrix, seed):
    """Fluid dynamics sanity: running groups concurrently (ignoring the
    merge cost) cannot be slower than running them back to back."""
    tiled = TiledMatrix(matrix, 4, 4)
    rng = np.random.default_rng(seed)
    assignment = rng.random(tiled.n_tiles) < 0.5
    arch = tiny_arch()
    par = simulate(arch, tiled, assignment, ExecutionMode.PARALLEL)
    ser = simulate(arch, tiled, assignment, ExecutionMode.SERIAL)
    assert par.time_s - par.merge_time_s <= ser.time_s + 1e-12
