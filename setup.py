"""Shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for a
PEP-660 editable install; this offline environment lacks ``wheel``, so the
legacy ``setup.py develop`` path (``--no-use-pep517``) is kept working.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
