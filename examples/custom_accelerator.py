"""Bring your own accelerator: define worker traits and partition for them.

HotTiles is parameterized purely by worker *traits* (paper Sec. VI-B):
compute throughput, scratchpad sizes, Din/Dout reuse types, sparse format,
task overlap, and the calibrated visible latency per byte.  This example
models a hypothetical CPU + on-chip streaming DSA system (the paper's
Sec. X names CPU+DSA as a future target), calibrates it against the
simulator, and partitions a mixed workload.

Run:  python examples/custom_accelerator.py
"""

from repro import (
    Architecture,
    HotTilesPartitioner,
    ProblemSpec,
    TiledMatrix,
    WorkerGroup,
    WorkerTraits,
)
from repro.core.traits import (
    OVERLAP_FULL,
    ReuseType,
    SparseFormat,
    Task,
    Traversal,
    WorkerKind,
)
from repro.experiments.runner import calibrated
from repro.sim import simulate, simulate_homogeneous
from repro.sparse import generators

# A general-purpose core: out-of-order, caches, demand access -> cold.
cpu_core = WorkerTraits(
    name="cpu-core",
    kind=WorkerKind.COLD,
    macs_per_cycle=2.0,
    simd_width=16,
    frequency_ghz=2.4,
    din_reuse=ReuseType.NONE,  # modeled pessimistically; the cache helps in sim
    dout_reuse=ReuseType.INTER_TILE,
    dout_first_tile_reuse=ReuseType.INTRA_TILE_DEMAND,
    sparse_format=SparseFormat.CSR_LIKE,
    traversal=Traversal.UNTILED_ROW_ORDERED,
    overlap_groups=OVERLAP_FULL,
    mem_bytes_per_cycle=8.0,
    cache_bytes=32 * 1024,
)

# A streaming accelerator: big scratchpad, high SIMD throughput -> hot.
# Its descriptor fetches (sparse input) do not overlap the streaming DMA.
dsa = WorkerTraits(
    name="streaming-dsa",
    kind=WorkerKind.HOT,
    macs_per_cycle=16.0,
    simd_width=32,
    frequency_ghz=1.2,
    din_reuse=ReuseType.INTRA_TILE_STREAM,
    dout_reuse=ReuseType.INTER_TILE,
    dout_first_tile_reuse=ReuseType.INTRA_TILE_STREAM,
    sparse_format=SparseFormat.CSR_LIKE,
    traversal=Traversal.TILED_ROW_ORDERED,
    overlap_groups=(
        frozenset({Task.DIN_READ, Task.DOUT_READ, Task.DOUT_WRITE, Task.COMPUTE}),
        frozenset({Task.SPARSE_READ}),
    ),
    mem_bytes_per_cycle=96.0,
    scratchpad_bytes=64 * 1024,
)

problem = ProblemSpec(k=32, value_bytes=4, index_bytes=4)
cpu_dsa = Architecture(
    name="cpu-dsa",
    hot=WorkerGroup(dsa, 1),
    cold=WorkerGroup(cpu_core, 8),
    mem_bw_gbs=80.0,
    problem=problem,
    tile_height=128,
    # Tile width from the scratchpad: 64 kB / (2 buffers * 128 B rows).
    tile_width=64 * 1024 // (2 * problem.dense_row_bytes),
    atomic_updates=True,  # CPUs and DSA share coherent memory
)


def main() -> None:
    print(f"architecture: {cpu_dsa}")

    # Calibrate vis_lat once against simulated profiling runs, exactly as
    # the paper calibrates against its testbed (Sec. VI-B).
    arch = calibrated(cpu_dsa)
    print(
        "calibrated vis_lat: "
        f"cpu {arch.cold.traits.vis_lat_s_per_byte:.2e} s/B, "
        f"dsa {arch.hot.traits.vis_lat_s_per_byte:.2e} s/B"
    )

    matrix = generators.community_blocks(8192, 600_000, 32, seed=17)
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    result = HotTilesPartitioner(arch).partition(tiled)
    chosen = result.chosen
    print(
        f"\n{matrix}\nchosen heuristic: {chosen.label} "
        f"({chosen.hot_nnz_fraction(tiled):.0%} of nonzeros on the DSA)"
    )

    hottiles = simulate(arch, tiled, chosen.assignment, chosen.mode)
    cpu_only = simulate_homogeneous(arch, tiled, WorkerKind.COLD)
    dsa_only = simulate_homogeneous(arch, tiled, WorkerKind.HOT)
    print(
        f"\nsimulated: cpu-only {cpu_only.time_s * 1e3:.3f} ms, "
        f"dsa-only {dsa_only.time_s * 1e3:.3f} ms, "
        f"hottiles {hottiles.time_s * 1e3:.3f} ms "
        f"({min(cpu_only.time_s, dsa_only.time_s) / hottiles.time_s:.2f}x over best)"
    )


if __name__ == "__main__":
    main()
