"""GNN workload: amortizing HotTiles preprocessing over training epochs.

The paper's headline application is Graph Neural Networks: SpMM with the
graph adjacency matrix is the backbone of GCN aggregation, executed once
per layer per epoch with K = 32 feature columns.  HotTiles' preprocessing
"can be incurred once during GNN training and not affect GNN inference
later on" (Sec. VI-B).

This example builds a social-network-like adjacency matrix, runs the full
preprocessing pipeline (scan -> model -> partition -> format generation),
verifies the generated accelerator formats compute the exact SpMM, and
shows after how many epochs the preprocessing pays for itself.

Run:  python examples/gnn_adjacency.py
"""

import numpy as np

from repro import spade_sextans
from repro.core.traits import WorkerKind
from repro.pipeline.preprocess import HotTilesPreprocessor
from repro.sim import simulate, simulate_homogeneous
from repro.sparse import generators

EPOCHS = 200
LAYERS = 2


def main() -> None:
    # A power-law graph: 16k nodes, ~12 edges per node, symmetrized so
    # message passing runs in both directions.
    graph = generators.rmat(scale=14, nnz=190_000, seed=21, symmetrize=True)
    print(f"GNN adjacency: {graph}")

    arch = spade_sextans(system_scale=4)
    pre = HotTilesPreprocessor(arch)
    result = pre.run(graph)
    chosen = result.partition.chosen

    print(
        f"partitioned into {result.hot_format.nnz if result.hot_format else 0} hot + "
        f"{result.cold_format.nnz if result.cold_format else 0} cold nonzeros "
        f"({chosen.label}, {chosen.mode.value})"
    )

    # Functional check: the two accelerator formats together compute the
    # exact aggregation (this is what the Merger module guarantees).
    features = np.random.default_rng(0).standard_normal(
        (graph.n_cols, arch.problem.k)
    ).astype(np.float32)
    merged = result.verify_spmm(features)
    reference = graph.spmm(features)
    max_err = float(np.max(np.abs(merged - reference)))
    print(f"aggregation check: max |merged - reference| = {max_err:.2e}")

    # Runtime: HotTiles vs the best homogeneous execution, per aggregation.
    tiled = result.tiled
    hottiles = simulate(arch, tiled, chosen.assignment, chosen.mode).time_s
    best_hom = min(
        simulate_homogeneous(arch, tiled, WorkerKind.HOT).time_s,
        simulate_homogeneous(arch, tiled, WorkerKind.COLD).time_s,
    )
    saved_per_spmm = best_hom - hottiles
    print(
        f"per-aggregation: HotTiles {hottiles * 1e3:.3f} ms vs best homogeneous "
        f"{best_hom * 1e3:.3f} ms (saves {saved_per_spmm * 1e3:.3f} ms)"
    )

    # Amortization: preprocessing is a one-time host cost.
    overhead = result.cost.hottiles_overhead_s
    total_spmms = EPOCHS * LAYERS
    print(
        f"\npreprocessing: total {result.cost.total_s * 1e3:.1f} ms on the host, "
        f"of which HotTiles-specific overhead {overhead * 1e3:.1f} ms "
        f"({result.cost.overhead_fraction:.0%})"
    )
    if saved_per_spmm > 0:
        breakeven = int(np.ceil(overhead / saved_per_spmm))
        print(
            f"breakeven after {breakeven} aggregations; a {EPOCHS}-epoch, "
            f"{LAYERS}-layer training runs {total_spmms} aggregations and saves "
            f"{(total_spmms * saved_per_spmm - overhead) * 1e3:.1f} ms net"
        )
    else:
        print("HotTiles does not beat the best homogeneous run on this graph")


if __name__ == "__main__":
    main()
