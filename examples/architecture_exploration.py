"""Architecture exploration with HotTiles predictions (paper Sec. VIII-B).

Uses the analytical model -- no simulation -- to rank skewed "iso-scale"
SPADE-Sextans machines (more workers of one type at the expense of the
other) for a given workload, the way an FPGA user would pick a per-matrix
configuration or an ASIC architect a fixed one.

Run:  python examples/architecture_exploration.py
"""

from repro import HotTilesPartitioner, TiledMatrix, spade_sextans_iso_scale
from repro.sparse import generators

WORKLOADS = {
    "power-law graph": generators.rmat(scale=14, nnz=250_000, seed=5),
    "FEM mesh": generators.banded(16384, 300_000, bandwidth=96, scatter_fraction=0.05, seed=6),
    "dense blocks": generators.dense_blocks(2048, 350_000, 16, 160, seed=8),
}


def main() -> None:
    iso_scales = [(c, 8 - c) for c in range(9)]
    print("predicted runtime (ms) per iso-scale architecture "
          "(cold scale - hot scale; lower is better)\n")
    header = "workload".ljust(18) + "".join(f"{c}-{h}".rjust(9) for c, h in iso_scales)
    print(header)
    print("-" * len(header))

    for name, matrix in WORKLOADS.items():
        times = []
        for cold_scale, hot_scale in iso_scales:
            arch = spade_sextans_iso_scale(cold_scale, hot_scale)
            tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
            result = HotTilesPartitioner(arch).partition(tiled)
            times.append(result.chosen.predicted_time_s * 1e3)
        best = min(range(len(times)), key=times.__getitem__)
        row = name.ljust(18)
        for i, t in enumerate(times):
            mark = "*" if i == best else " "
            row += f"{t:8.3f}{mark}"
        print(row)
        c, h = iso_scales[best]
        print(f"{'':18s}-> predicted best: {c}-{h}\n")

    print(
        "Reading the table: sparse power-law graphs favor cold-heavy\n"
        "machines (latency-tolerant demand access), dense-block workloads\n"
        "favor hot-heavy ones (scratchpad streaming + compute), and the\n"
        "model makes that call without running a single simulation."
    )


if __name__ == "__main__":
    main()
