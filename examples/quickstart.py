"""Quickstart: partition one sparse matrix for a heterogeneous accelerator.

Builds a power-law sparse matrix, runs the HotTiles modeling +
partitioning pipeline for the SPADE-Sextans architecture, and compares
the simulated runtime of HotTiles against the homogeneous and
IMH-unaware baselines.

Run:  python examples/quickstart.py
"""

from repro import HotTilesPartitioner, TiledMatrix, spade_sextans
from repro.core.baselines import iunaware_assignment
from repro.core.partition import ExecutionMode
from repro.core.traits import WorkerKind
from repro.sim import simulate, simulate_homogeneous
from repro.sparse import generators
from repro.sparse.stats import imh_summary


def main() -> None:
    # 1. A sparse matrix with strong intra-matrix heterogeneity (IMH):
    #    an R-MAT power-law graph, like a social-network adjacency matrix.
    matrix = generators.rmat(scale=14, nnz=200_000, seed=7)
    print(f"matrix: {matrix}")

    # 2. The target machine: 16 SPADE PEs (cold) + 1 Sextans (hot)
    #    sharing 205 GB/s of memory bandwidth (paper Table IV, scale 4).
    arch = spade_sextans(system_scale=4)
    print(f"architecture: {arch}")

    # 3. Tile the matrix at the scratchpad-constrained tile size and look
    #    at its heterogeneity.
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    stats = imh_summary(tiled)
    print(
        f"tiles: {stats.n_tiles} non-empty, gini={stats.gini:.2f}, "
        f"top-10% tiles hold {stats.top10_share:.0%} of nonzeros"
    )

    # 4. HotTiles: model every tile for both worker types, partition with
    #    the four heuristics, keep the best predicted candidate.
    result = HotTilesPartitioner(arch).partition(tiled)
    chosen = result.chosen
    print(
        f"\nHotTiles chose '{chosen.label}' ({chosen.mode.value} execution): "
        f"{chosen.hot_tile_count}/{tiled.n_tiles} tiles hot, "
        f"{chosen.hot_nnz_fraction(tiled):.0%} of nonzeros on the hot worker"
    )
    print(f"predicted runtime: {chosen.predicted_time_s * 1e3:.3f} ms")

    # 5. Compare simulated runtimes against the baselines.
    hot_only = simulate_homogeneous(arch, tiled, WorkerKind.HOT)
    cold_only = simulate_homogeneous(arch, tiled, WorkerKind.COLD)
    iunaware = iunaware_assignment(tiled, arch)
    iunaware_sim = simulate(arch, tiled, iunaware.assignment, ExecutionMode.PARALLEL)
    hottiles = simulate(arch, tiled, chosen.assignment, chosen.mode)

    print("\nsimulated runtimes:")
    for name, sim in [
        ("HotOnly", hot_only),
        ("ColdOnly", cold_only),
        ("IUnaware", iunaware_sim),
        ("HotTiles", hottiles),
    ]:
        print(
            f"  {name:9s} {sim.time_s * 1e3:8.3f} ms   "
            f"({sim.bandwidth_utilization_bytes_per_sec / 1e9:6.1f} GB/s achieved)"
        )
    best_baseline = min(hot_only.time_s, cold_only.time_s, iunaware_sim.time_s)
    print(f"\nHotTiles speedup over best baseline: {best_baseline / hottiles.time_s:.2f}x")


if __name__ == "__main__":
    main()
