"""Beyond SpMM: gSpMM arithmetic intensities, SpMV and SDDMM.

gSpMM over algebraic semirings keeps SpMM's memory access pattern but
changes the arithmetic intensity (paper Sec. II-A); SpMV and SDDMM share
the same pattern (Sec. X).  HotTiles handles all of them through the
``ProblemSpec``: this example shows how the partitioning decision shifts
as the kernel changes, on the same sparse matrix and machine.

Run:  python examples/kernel_variants.py
"""

import numpy as np

from repro import HotTilesPartitioner, ProblemSpec, TiledMatrix, spade_sextans_pcie
from repro.sim import simulate
from repro.sparse import generators
from repro.sparse.semiring import MIN_PLUS, OR_AND, gspmm


def main() -> None:
    matrix = generators.community_blocks(8192, 500_000, 32, seed=9)
    print(f"matrix: {matrix}\n")

    # gSpMM sweep on the PCIe architecture (paper Fig. 14 setting): the
    # off-chip Sextans keeps a fixed nonzero rate while the SPADE PEs pay
    # for every extra SIMD op.
    print("gSpMM arithmetic-intensity sweep (SPADE-Sextans+PCIe):")
    print(f"{'ops/nnz':>8s} {'hot nnz %':>10s} {'heuristic':>20s} {'simulated ms':>13s}")
    for ops in (1, 4, 16):
        arch = spade_sextans_pcie(4, ops_per_nnz=ops)
        tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        chosen = result.chosen
        sim = simulate(arch, tiled, chosen.assignment, chosen.mode)
        print(
            f"{ops:>8d} {100 * chosen.hot_nnz_fraction(tiled):>9.0f}% "
            f"{chosen.label:>20s} {sim.time_s * 1e3:>12.3f}"
        )

    # SpMV and SDDMM on the on-chip machine: the spec swap is the only
    # change a user makes.
    print("\nother kernels (SPADE-Sextans, on-chip):")
    from repro import spade_sextans

    for name, problem in [
        ("SpMM (K=32)", ProblemSpec(k=32)),
        ("SpMV", ProblemSpec.spmv()),
        ("SDDMM (K=32)", ProblemSpec.sddmm(k=32)),
    ]:
        arch = spade_sextans(4).with_problem(problem)
        tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
        result = HotTilesPartitioner(arch).partition(tiled)
        chosen = result.chosen
        sim = simulate(arch, tiled, chosen.assignment, chosen.mode)
        print(
            f"  {name:14s} hot nnz {100 * chosen.hot_nnz_fraction(tiled):3.0f}%  "
            f"{chosen.label:18s} {sim.time_s * 1e3:8.3f} ms  "
            f"({sim.bytes_total / 1e6:.1f} MB moved)"
        )

    # gSpMM is not just a cost model: the semiring executor computes the
    # generalized kernels functionally (Sec. II-A's algebraic monoids).
    print("\nfunctional gSpMM over semirings (64-node subgraph):")
    small = generators.rmat(scale=6, nnz=200, seed=10)
    dist = np.full((64, 1), np.inf)
    dist[0] = 0.0
    relaxed = gspmm(small, dist, MIN_PLUS)
    reached = gspmm(small, dist < np.inf, OR_AND)
    print(f"  min-plus: one shortest-path relaxation reaches {np.isfinite(relaxed).sum()} nodes")
    print(f"  or-and:   one BFS frontier expansion reaches {int(reached.sum())} nodes")


if __name__ == "__main__":
    main()
