"""One planner shard: a :class:`PlanService` behind the frame IPC.

A shard is a separate OS process (its own interpreter, its own GIL)
hosting exactly the :class:`~repro.service.planner.PlanService` the
single-process server hosts -- same bounded admission queue, coalescing,
retry taxonomy, and metrics.  It listens on a loopback TCP port for
length-prefixed JSON frames (:mod:`repro.cluster.ipc`) instead of HTTP;
the router terminates HTTP and forwards one ``{"op": ...}`` frame per
request.  Endpoint semantics come from :mod:`repro.service.api`, shared
with the HTTP front end, so a reply's ``(status, body, headers)`` is
bit-identical whichever transport carried it.

Ops::

    {"op": "plan",     "payload": {...}}          -> plan_endpoint
    {"op": "delta",    "digest": d, "payload": p} -> delta_endpoint
    {"op": "get_plan", "digest": d}               -> get_plan_endpoint
    {"op": "stats"}                               -> stats + metrics dump
    {"op": "healthz"}                             -> liveness + drain state
    {"op": "drain"}                               -> start graceful drain
    {"op": "stop"}                                -> exit after replying

Run as a process with ``python -m repro.cluster.shard --shard-id N
--port 0 ...``; on startup it prints one machine-parseable handshake
line (``hottiles-shard ready shard=N port=P pid=...``) reporting the
kernel-chosen ephemeral port, which is how the manager learns where the
shard landed without racing on fixed ports.
"""

from __future__ import annotations

import argparse
import os
import socket
import socketserver
import sys
import threading
from typing import Any, Dict, List, Optional

from repro.cluster.ipc import FrameError, recv_frame, send_frame
from repro.service import api
from repro.service.admission import AdmissionController
from repro.service.planner import PlanService
from repro.service.store import PlanStore

__all__ = ["ShardServer", "serve_shard", "main", "HANDSHAKE_PREFIX"]

#: First token of the startup line the manager parses.
HANDSHAKE_PREFIX = "hottiles-shard ready"


class _ShardHandler(socketserver.BaseRequestHandler):
    server: "ShardServer"

    def handle(self) -> None:
        sock: socket.socket = self.request
        while True:
            try:
                message = recv_frame(sock)
            except (FrameError, OSError):
                return
            if message is None:
                return
            try:
                reply = self.server.dispatch(message)
            except Exception as exc:  # noqa: BLE001 -- never drop a frame
                reply = {
                    "status": 500,
                    "body": {"error": f"{type(exc).__name__}: {exc}"},
                    "headers": {},
                }
            try:
                send_frame(sock, reply)
            except OSError:
                return
            if reply.get("_stop"):
                self.server.begin_stop()
                return


class ShardServer(socketserver.ThreadingTCPServer):
    """The shard's frame loop around one :class:`PlanService`."""

    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 128

    def __init__(
        self,
        shard_id: int,
        service: PlanService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.shard_id = int(shard_id)
        self.service = service
        self._draining = False
        self._drained = threading.Event()
        self._drain_thread: Optional[threading.Thread] = None
        self._stop_requested = threading.Event()
        super().__init__((host, port), _ShardHandler)

    # ------------------------------------------------------------------
    @property
    def bound_port(self) -> int:
        return int(self.server_address[1])

    def describe(self) -> Dict[str, Any]:
        return {
            "shard": self.shard_id,
            "host": self.server_address[0],
            "port": self.bound_port,
            "pid": os.getpid(),
        }

    def handshake_line(self) -> str:
        d = self.describe()
        return (
            f"{HANDSHAKE_PREFIX} shard={d['shard']} port={d['port']} "
            f"pid={d['pid']}"
        )

    # ------------------------------------------------------------------
    def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One IPC frame in, one ``{"status", "body", "headers"}`` out."""
        op = message.get("op")
        service = self.service
        if op == "plan":
            reply = api.plan_endpoint(service, message.get("payload") or {})
        elif op == "delta":
            reply = api.delta_endpoint(
                service,
                str(message.get("digest", "")),
                message.get("payload") or {},
            )
        elif op == "get_plan":
            reply = api.get_plan_endpoint(service, str(message.get("digest", "")))
        elif op == "stats":
            status, body, headers = api.stats_endpoint(
                service, server=self.describe()
            )
            body["metrics_dump"] = service.metrics.dump()
            body["draining"] = self._draining
            reply = (status, body, headers)
        elif op == "healthz":
            status, body, headers = api.healthz_endpoint(service)
            body["shard"] = self.shard_id
            body["draining"] = self._draining
            body["drained"] = self._drained.is_set()
            reply = (status, body, headers)
        elif op == "drain":
            self.start_drain()
            reply = (200, {"draining": True, "shard": self.shard_id}, {})
        elif op == "stop":
            return {
                "status": 200,
                "body": {"stopping": True, "shard": self.shard_id},
                "headers": {},
                "_stop": True,
            }
        else:
            reply = (400, {"error": f"unknown op: {op!r}"}, {})
        status, body, headers = reply
        return {"status": status, "body": body, "headers": dict(headers)}

    # ------------------------------------------------------------------
    def start_drain(self) -> None:
        """Begin a graceful drain: stop admission, finish in-flight work.

        Idempotent; runs ``service.close(drain=True)`` off the handler
        thread so the drain reply returns immediately while admitted
        plans finish.  Requests arriving meanwhile answer ``503`` +
        ``Retry-After`` straight from the service's closed check.
        """
        if self._draining:
            return
        self._draining = True
        # Stop admission *before* the drain reply goes out, so a client
        # that saw the 200 can rely on every later request getting 503.
        self.service.begin_close(drain=True)

        def _drain() -> None:
            self.service.close(drain=True)
            self._drained.set()

        self._drain_thread = threading.Thread(
            target=_drain, name=f"shard-{self.shard_id}-drain", daemon=True
        )
        self._drain_thread.start()

    def begin_stop(self) -> None:
        """Request shutdown of the serve loop (from a handler thread)."""
        if not self._stop_requested.is_set():
            self._stop_requested.set()
            threading.Thread(target=self.shutdown, daemon=True).start()


# ----------------------------------------------------------------------
def serve_shard(
    shard_id: int,
    store_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    queue_depth: int = 16,
    timeout_s: float = 60.0,
    degraded_fallback: bool = True,
    admission: bool = False,
    announce=print,
) -> int:
    """Build the service, bind, announce the port, serve until stopped.

    With ``admission`` the shard runs the tiered predictive admission
    controller (docs/autoscaling.md) instead of plain FIFO + 429-on-full.
    """
    service = PlanService(
        store=PlanStore(store_dir),
        workers=workers,
        queue_depth=queue_depth,
        default_timeout_s=timeout_s,
        degraded_fallback=degraded_fallback,
        admission=AdmissionController() if admission else None,
    )
    server = ShardServer(shard_id, service, host=host, port=port)
    announce(server.handshake_line())
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close(drain=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.shard",
        description="One planner shard of a hottiles cluster (docs/cluster.md)",
    )
    parser.add_argument("--shard-id", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = kernel-chosen, reported on stdout)",
    )
    parser.add_argument("--store-dir", required=True,
                        help="the cluster-shared plan store directory")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--no-degraded-fallback", action="store_true")
    parser.add_argument(
        "--admission", action="store_true",
        help="run the tiered predictive admission controller "
        "(docs/autoscaling.md)",
    )
    args = parser.parse_args(argv)

    def announce(line: str) -> None:
        print(line, flush=True)

    return serve_shard(
        args.shard_id,
        args.store_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        timeout_s=args.timeout,
        degraded_fallback=not args.no_degraded_fallback,
        admission=args.admission,
        announce=announce,
    )


if __name__ == "__main__":
    sys.exit(main())
