"""Length-prefixed JSON framing between the router and its shards.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  Deliberately minimal and stdlib-only: both sides of the
cluster IPC (the asyncio router and the threaded shard loop) speak it,
and a frame is self-delimiting so a reader never has to guess where one
message ends -- the property HTTP needs headers for.

Sync helpers (:func:`send_frame` / :func:`recv_frame`) serve the shard's
blocking socket loop and the manager's control channel; async helpers
(:func:`read_frame_async` / :func:`write_frame_async`) serve the router.
Both enforce :data:`MAX_FRAME_BYTES` in both directions, so one
malformed or hostile peer cannot balloon memory.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Optional

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "send_frame",
    "recv_frame",
    "read_frame_async",
    "write_frame_async",
]

#: Upper bound on one frame's payload; far above any plan/stats body.
MAX_FRAME_BYTES = 64 << 20

_HEADER = struct.Struct(">I")


class FrameError(ConnectionError):
    """A malformed frame (oversized, truncated, or not JSON)."""


def _encode(obj: Any) -> bytes:
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame too large to send: {len(payload)} bytes")
    return _HEADER.pack(len(payload)) + payload


def _decode(payload: bytes) -> Any:
    try:
        return json.loads(payload)
    except json.JSONDecodeError as exc:
        raise FrameError(f"frame is not valid JSON: {exc}") from None


def _checked_length(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"incoming frame too large: {length} bytes")
    return length


# ----------------------------------------------------------------------
# Blocking side (shard server loop, manager control channel)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, obj: Any) -> None:
    """Serialize ``obj`` and send it as one frame."""
    sock.sendall(_encode(obj))


def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Read one frame; ``None`` when the peer closed between frames."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    payload = _recv_exactly(sock, _checked_length(header))
    if payload is None:
        raise FrameError("connection closed mid-frame")
    return _decode(payload)


# ----------------------------------------------------------------------
# Asyncio side (the router)
# ----------------------------------------------------------------------
async def write_frame_async(writer: asyncio.StreamWriter, obj: Any) -> None:
    writer.write(_encode(obj))
    await writer.drain()


async def read_frame_async(reader: asyncio.StreamReader) -> Optional[Any]:
    """Read one frame; ``None`` when the peer closed between frames."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-frame") from None
    try:
        payload = await reader.readexactly(_checked_length(header))
    except asyncio.IncompleteReadError:
        raise FrameError("connection closed mid-frame") from None
    return _decode(payload)
