"""Cluster lifecycle: spawn shards, run the router, supervise restarts.

:class:`ClusterManager` owns the whole topology that ``hottiles serve
--cluster N`` runs: N shard worker processes (``python -m
repro.cluster.shard``), each bound to ``--port 0`` and reporting its
kernel-chosen port through the one-line stdout handshake, plus the
asyncio :class:`~repro.cluster.router.ClusterRouter` front end running on
a dedicated event-loop thread.

A supervisor thread polls shard processes; when one dies (crash, OOM,
``kill_shard`` chaos) its ring slot is marked down -- requests for its
digests answer ``503`` + ``Retry-After`` instead of dropping -- and the
shard is respawned with a small backoff, the router re-pointed at the
new ephemeral port, and the slot marked up again.  Shard-local state
(lineages, in-memory cache) dies with the process; completed plans
survive in the shared on-disk store, so the restarted shard warms back
up from content-addressed reads.

``drain_shard`` starts a graceful drain (in-flight plans finish, new
work answers ``503`` + ``Retry-After``), and ``restart_shard`` chains
drain -> stop -> respawn, which is the zero-dropped-connection rolling
restart docs/cluster.md describes.
"""

from __future__ import annotations

import asyncio
import os
import re
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.ipc import FrameError, recv_frame, send_frame
from repro.cluster.router import ClusterRouter
from repro.cluster.shard import HANDSHAKE_PREFIX
from repro.service.autoscale import (
    AutoscaleConfig,
    Autoscaler,
    ScaleSnapshot,
)
from repro.service.metrics import Histogram

__all__ = ["ClusterManager", "ShardProcess"]

_HANDSHAKE_RE = re.compile(
    re.escape(HANDSHAKE_PREFIX) + r" shard=(\d+) port=(\d+) pid=(\d+)"
)

#: How long to wait for a freshly spawned shard to report its port.
HANDSHAKE_TIMEOUT_S = 30.0


def _src_root() -> str:
    """The directory that makes ``import repro`` work in a child."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


class ShardProcess:
    """One supervised shard worker process."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.proc: Optional[subprocess.Popen] = None
        self.port: int = 0
        self.restarts: int = 0
        self._handshake = threading.Event()
        self._reader: Optional[threading.Thread] = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class ClusterManager:
    """Spawn, front, and supervise a planning cluster."""

    def __init__(
        self,
        shards: int,
        store_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_depth: int = 16,
        timeout_s: float = 60.0,
        degraded_fallback: bool = True,
        admission: bool = False,
        supervise: bool = True,
        restart_backoff_s: float = 0.2,
        log=None,
    ) -> None:
        if shards < 1:
            raise ValueError("cluster needs at least one shard")
        self.host = host
        self.store_dir = str(store_dir)
        self.workers = workers
        self.queue_depth = queue_depth
        self.timeout_s = timeout_s
        self.degraded_fallback = degraded_fallback
        self.admission = admission
        self.supervise = supervise
        self.restart_backoff_s = restart_backoff_s
        self._log = log or (lambda line: None)
        self._shards: Dict[int, ShardProcess] = {
            sid: ShardProcess(sid) for sid in range(shards)
        }
        self._next_shard_id = shards
        self._autoscaler: Optional[Autoscaler] = None
        self._stopped: set = set()  # shards intentionally taken down
        self._lock = threading.RLock()
        self._closing = threading.Event()
        self.router = ClusterRouter(
            {sid: (host, 0) for sid in self._shards}, host=host, port=port
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._supervisor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    def start(self) -> None:
        Path(self.store_dir).mkdir(parents=True, exist_ok=True)
        for sid in self._shards:
            self._spawn(sid)
        self._start_router()
        if self.supervise:
            self._supervisor = threading.Thread(
                target=self._supervise_loop, name="cluster-supervisor", daemon=True
            )
            self._supervisor.start()

    def _spawn(self, shard_id: int) -> None:
        entry = self._shards[shard_id]
        cmd = [
            sys.executable, "-m", "repro.cluster.shard",
            "--shard-id", str(shard_id),
            "--host", self.host,
            "--port", "0",
            "--store-dir", self.store_dir,
            "--workers", str(self.workers),
            "--queue-depth", str(self.queue_depth),
            "--timeout", str(self.timeout_s),
        ]
        if not self.degraded_fallback:
            cmd.append("--no-degraded-fallback")
        if self.admission:
            cmd.append("--admission")
        env = dict(os.environ)
        src = _src_root()
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        entry._handshake = threading.Event()
        entry.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        entry._reader = threading.Thread(
            target=self._read_shard_output, args=(entry, entry.proc),
            name=f"shard-{shard_id}-stdout", daemon=True,
        )
        entry._reader.start()
        if not entry._handshake.wait(HANDSHAKE_TIMEOUT_S):
            raise RuntimeError(
                f"shard {shard_id} did not report its port within "
                f"{HANDSHAKE_TIMEOUT_S:.0f}s"
            )
        self._log(
            f"shard {shard_id} up on {self.host}:{entry.port} pid={entry.pid}"
        )

    def _read_shard_output(self, entry: ShardProcess, proc: subprocess.Popen) -> None:
        """Drain one shard's stdout forever; catch the handshake line."""
        assert proc.stdout is not None
        for line in proc.stdout:
            line = line.rstrip("\n")
            match = _HANDSHAKE_RE.search(line)
            if match and int(match.group(1)) == entry.shard_id:
                entry.port = int(match.group(2))
                entry._handshake.set()
            elif line:
                self._log(f"[shard {entry.shard_id}] {line}")

    def _start_router(self) -> None:
        for sid, entry in self._shards.items():
            self.router.update_shard(sid, self.host, entry.port)
        ready = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.router.start())
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.router.stop())
                loop.close()

        self._loop_thread = threading.Thread(
            target=_run, name="cluster-router", daemon=True
        )
        self._loop_thread.start()
        if not ready.wait(10.0):
            raise RuntimeError("router event loop failed to start")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bound_port(self) -> int:
        return self.router.bound_port

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.bound_port}"

    def describe(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "port": self.bound_port,
            "shards": [
                {
                    "shard": sid,
                    "port": entry.port,
                    "pid": entry.pid,
                    "alive": entry.alive(),
                    "restarts": entry.restarts,
                }
                for sid, entry in sorted(self._shards.items())
            ],
        }

    def shard_pid(self, shard_id: int) -> Optional[int]:
        return self._shards[shard_id].pid

    # ------------------------------------------------------------------
    # Control-plane ops (sync frame over a fresh connection)
    # ------------------------------------------------------------------
    def _control(self, shard_id: int, message: Dict[str, Any],
                 timeout_s: float = 10.0) -> Optional[Dict[str, Any]]:
        entry = self._shards.get(shard_id)
        if entry is None:  # removed by a concurrent scale-down
            return None
        try:
            with socket.create_connection(
                (self.host, entry.port), timeout=timeout_s
            ) as sock:
                send_frame(sock, message)
                return recv_frame(sock)
        except (OSError, FrameError):
            return None

    def drain_shard(self, shard_id: int) -> bool:
        """Start a graceful drain; the shard keeps answering 503s."""
        reply = self._control(shard_id, {"op": "drain"})
        return bool(reply and reply.get("status") == 200)

    def stop_shard(self, shard_id: int, timeout_s: float = 30.0) -> None:
        """Stop one shard's process without the supervisor respawning it."""
        with self._lock:
            self._stopped.add(shard_id)
        self.router.mark_down(shard_id)
        entry = self._shards[shard_id]
        self._control(shard_id, {"op": "stop"})
        if entry.proc is not None:
            try:
                entry.proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                entry.proc.kill()
                entry.proc.wait(timeout=5.0)

    def restart_shard(self, shard_id: int, drain: bool = True) -> None:
        """Rolling restart: drain, stop, respawn, re-point the router."""
        if drain:
            self.drain_shard(shard_id)
        self.stop_shard(shard_id)
        with self._lock:
            self._stopped.discard(shard_id)
            self._shards[shard_id].restarts += 1
            self._spawn(shard_id)
            entry = self._shards[shard_id]
        self.router.update_shard(shard_id, self.host, entry.port)

    def kill_shard(self, shard_id: int) -> Optional[int]:
        """SIGKILL a shard (chaos testing); the supervisor restarts it.

        The victim is marked down in the router immediately -- the
        supervisor's poll would do it within a tick anyway, but doing it
        synchronously means ``/healthz`` never reports the corpse as up,
        so callers can wait on ``shards_up`` recovering without racing
        the failure detector.
        """
        entry = self._shards[shard_id]
        pid = entry.pid
        if entry.proc is not None and entry.alive():
            entry.proc.kill()
            self.router.mark_down(shard_id)
        return pid

    # ------------------------------------------------------------------
    # Autoscaling (docs/autoscaling.md)
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        with self._lock:
            return len(self._shards)

    def scale_shards(self, target: int) -> int:
        """Grow or shrink the shard pool to ``target``; returns the size.

        Grow spawns fresh shard ids (never reusing a retired id, so the
        decision log stays unambiguous) and adds them to the ring --
        consistent hashing remaps only the keys each new shard takes
        over.  Shrink drains the newest shards first (graceful: in-flight
        plans finish, the router answers 503+Retry-After for stragglers),
        then removes them from the ring and stops the processes.
        """
        target = max(1, int(target))
        with self._lock:
            current = sorted(self._shards)
            delta = target - len(current)
            if delta == 0:
                return len(current)
            if delta > 0:
                for _ in range(delta):
                    sid = self._next_shard_id
                    self._next_shard_id += 1
                    self._shards[sid] = ShardProcess(sid)
                    try:
                        self._spawn(sid)
                    except (RuntimeError, OSError) as exc:
                        self._log(f"shard {sid} spawn failed: {exc}")
                        self._shards.pop(sid, None)
                        continue
                    self.router.add_shard(sid, self.host, self._shards[sid].port)
                    self._log(f"scaled up: shard {sid} joined the ring")
                return len(self._shards)
            victims = current[delta:]  # newest ids retire first
        for sid in victims:
            # Stop routing new work at it before draining, so the drain
            # converges instead of racing fresh admissions.
            try:
                self.router.remove_shard(sid)
            except KeyError:
                pass
            self.drain_shard(sid)
            self.stop_shard(sid)
            with self._lock:
                self._shards.pop(sid, None)
                self._stopped.discard(sid)
            self._log(f"scaled down: shard {sid} drained and retired")
        return self.shard_count

    def autoscale_snapshot(self) -> ScaleSnapshot:
        """Cluster-wide queueing state: the shard autoscaler's tick input.

        Polls every live shard's ``stats`` op and sums queue depths and
        admission backlogs; queue-wait p99 comes from merging the shards'
        raw sample windows, so it equals what one shared histogram would
        report.
        """
        with self._lock:
            entries = sorted(self._shards.items())
        queue_depth = 0
        backlog_s = 0.0
        waits = Histogram()
        for sid, entry in entries:
            if not entry.alive():
                continue
            reply = self._control(sid, {"op": "stats"}, timeout_s=5.0)
            if not reply or reply.get("status") != 200:
                continue
            body = reply.get("body") or {}
            queue_depth += int((body.get("gauges") or {}).get("queue_depth", 0))
            admission = body.get("admission") or {}
            backlog_s += float(admission.get("backlog_s", 0.0))
            dump = (body.get("metrics_dump") or {}).get("histograms") or {}
            if "queue_wait_s" in dump:
                waits.merge(dump["queue_wait_s"])
        return ScaleSnapshot(
            workers=len(entries),
            queue_depth=queue_depth,
            # The policy sizes one-worker units; a shard carries
            # ``self.workers`` of them, so express the backlog in
            # shard-sized units before it is divided by the SLO.
            backlog_s=backlog_s / max(1, self.workers),
            queue_wait_p99_s=waits.percentile(99),
        )

    def start_autoscaler(
        self, config: Optional[AutoscaleConfig] = None
    ) -> Autoscaler:
        """Run the shard-count advisory loop (``serve --cluster --autoscale``)."""
        if self._autoscaler is None:
            self._autoscaler = Autoscaler(
                self.autoscale_snapshot,
                self.scale_shards,
                config=config,
                unit="shards",
            ).start()
        return self._autoscaler

    @property
    def autoscaler(self) -> Optional[Autoscaler]:
        return self._autoscaler

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _supervise_loop(self) -> None:
        while not self._closing.is_set():
            # Snapshot: scale_shards mutates the dict from other threads.
            for sid, entry in list(self._shards.items()):
                if self._closing.is_set():
                    return
                with self._lock:
                    intentionally_down = sid in self._stopped
                if intentionally_down or entry.alive():
                    continue
                self.router.mark_down(sid)
                self._log(f"shard {sid} died (pid={entry.pid}); restarting")
                self._closing.wait(self.restart_backoff_s)
                if self._closing.is_set():
                    return
                try:
                    with self._lock:
                        entry.restarts += 1
                        self._spawn(sid)
                    self.router.update_shard(sid, self.host, entry.port)
                except (RuntimeError, OSError) as exc:
                    self._log(f"shard {sid} restart failed: {exc}")
            self._closing.wait(0.1)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the supervisor, every shard, then the router loop."""
        self._closing.set()
        if self._autoscaler is not None:
            self._autoscaler.stop()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        for sid, entry in list(self._shards.items()):
            with self._lock:
                self._stopped.add(sid)
            if entry.alive():
                self._control(sid, {"op": "stop"}, timeout_s=5.0)
        for entry in list(self._shards.values()):
            if entry.proc is None:
                continue
            try:
                entry.proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                entry.proc.kill()
                try:
                    entry.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    pass
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ClusterManager":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
