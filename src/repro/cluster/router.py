"""The cluster's asyncio HTTP front end with digest-affinity routing.

One event loop accepts every client connection (no thread per
connection, no accept-loop GIL fight), parses a minimal HTTP/1.1
request, decides which shard owns it, forwards one length-prefixed JSON
frame (:mod:`repro.cluster.ipc`), and relays the shard's
``(status, body, headers)`` reply -- plus an ``X-Hottiles-Shard`` header
so load generators can attribute tail latency per shard.

Routing (docs/cluster.md):

- ``POST /plan`` -- the request digest (the same content address the
  plan store and coalescing key on) picks the shard through the
  consistent-hash :class:`~repro.cluster.ring.HashRing`, so repeats of a
  digest always land where its cache entry and in-flight computation
  live.
- ``POST /matrices/<digest>/delta`` -- lineage heads are *chained*
  digests that would hash anywhere; the router pins every digest a
  lineage has carried to the shard that owns its root (a bounded
  affinity map updated from each delta reply), keeping whole lineages
  shard-local.
- ``GET /plan/<digest>`` -- served by the owner, failing over around
  down shards: any shard can answer from the shared plan store.
- ``GET /stats`` -- fans out to every live shard and merges counters and
  histogram sample windows through :meth:`~repro.service.metrics.
  MetricsRegistry.merge`, so cluster percentiles equal what one shared
  registry would report.
- ``GET /healthz`` -- router-level liveness plus per-shard up/down.

A request owned by a down or draining shard answers ``503`` +
``Retry-After`` (never a dropped connection); the supervisor restarts
the shard and the same digest routes back to it.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.ipc import FrameError, read_frame_async, write_frame_async
from repro.cluster.ring import HashRing
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import PlanRequest, ProtocolError

__all__ = ["ShardAddress", "ClusterRouter"]

#: Advisory client backoff while a shard is down and being restarted.
DOWN_SHARD_RETRY_AFTER_S = 0.5

#: Most lineage digests remembered for affinity pinning.
AFFINITY_CAP = 65536

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class ShardAddress:
    """Where one shard currently listens (mutable across restarts)."""

    __slots__ = ("shard_id", "host", "port")

    def __init__(self, shard_id: int, host: str, port: int) -> None:
        self.shard_id = int(shard_id)
        self.host = host
        self.port = int(port)

    def as_tuple(self) -> Tuple[str, int]:
        return self.host, self.port


class ClusterRouter:
    """Async front end for N planner shards."""

    def __init__(
        self,
        shards: Dict[int, Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        forward_timeout_s: float = 300.0,
        max_body_bytes: int = 1 << 20,
        vnodes: int = 64,
    ) -> None:
        if not shards:
            raise ValueError("router needs at least one shard")
        self.host = host
        self._requested_port = int(port)
        self.forward_timeout_s = float(forward_timeout_s)
        self.max_body_bytes = int(max_body_bytes)
        self.ring = HashRing(sorted(shards), vnodes=vnodes)
        self._addresses: Dict[int, ShardAddress] = {
            sid: ShardAddress(sid, h, p) for sid, (h, p) in shards.items()
        }
        self._affinity: "OrderedDict[str, int]" = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        self.started_unix = time.time()
        # Router-side tallies; touched only on the event loop thread.
        self.counters: Dict[str, int] = {
            "routed": 0, "unavailable_503": 0, "bad_request_400": 0,
            "stats_merges": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle (call from the event loop that will own the server)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self._requested_port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def bound_port(self) -> int:
        if self._server is None:
            return self._requested_port
        return int(self._server.sockets[0].getsockname()[1])

    # ------------------------------------------------------------------
    # Shard table maintenance (manager calls these across threads; plain
    # attribute/dict mutations, atomic under the GIL)
    # ------------------------------------------------------------------
    def update_shard(self, shard_id: int, host: str, port: int) -> None:
        """Point ``shard_id`` at a new address (post-restart) and mark up."""
        entry = self._addresses.get(shard_id)
        if entry is None:
            raise KeyError(f"unknown shard {shard_id}")
        entry.host = host
        entry.port = int(port)
        self.ring.mark_up(shard_id)

    def mark_down(self, shard_id: int) -> None:
        self.ring.mark_down(shard_id)

    def mark_up(self, shard_id: int) -> None:
        self.ring.mark_up(shard_id)

    def add_shard(self, shard_id: int, host: str, port: int) -> None:
        """Grow the ring with a freshly spawned shard (autoscale up).

        Consistent hashing remaps only the keys the new shard takes
        over; everything else keeps routing where its cache lives.
        """
        if shard_id in self._addresses:
            raise KeyError(f"shard {shard_id} already routed")
        self._addresses[shard_id] = ShardAddress(shard_id, host, port)
        self.ring.add_shard(shard_id)

    def remove_shard(self, shard_id: int) -> None:
        """Drop a drained shard from the ring (autoscale down).

        Lineage affinity pins pointing at the removed shard are
        scrubbed: the chained digests would otherwise keep routing to a
        shard that no longer exists.  Their lineages die with the shard
        process anyway (shard-local state); completed plans survive in
        the shared store, which any remaining shard can read.
        """
        if shard_id not in self._addresses:
            raise KeyError(f"unknown shard {shard_id}")
        self.ring.remove_shard(shard_id)
        self._addresses.pop(shard_id, None)
        stale = [d for d, sid in self._affinity.items() if sid == shard_id]
        for digest in stale:
            self._affinity.pop(digest, None)

    def shard_table(self) -> List[Dict[str, Any]]:
        return [
            {
                "shard": sid,
                "host": addr.host,
                "port": addr.port,
                "up": self.ring.is_up(sid),
            }
            for sid, addr in sorted(self._addresses.items())
        ]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _owner_for_delta(self, digest: str) -> Optional[int]:
        pinned = self._affinity.get(digest)
        if pinned is not None:
            self._affinity.move_to_end(digest)
            return pinned
        return self.ring.route(digest)

    def _pin_lineage(self, digest: str, shard_id: int) -> None:
        self._affinity[digest] = shard_id
        self._affinity.move_to_end(digest)
        while len(self._affinity) > AFFINITY_CAP:
            self._affinity.popitem(last=False)

    # ------------------------------------------------------------------
    # Shard IPC
    # ------------------------------------------------------------------
    async def _forward(
        self, shard_id: int, message: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """One frame to ``shard_id``; ``None`` marks it down."""
        addr = self._addresses.get(shard_id)
        if addr is None:  # removed by a concurrent scale-down
            return None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(addr.host, addr.port), timeout=5.0
            )
        except (OSError, asyncio.TimeoutError):
            self.ring.mark_down(shard_id)
            return None
        try:
            await write_frame_async(writer, message)
            reply = await asyncio.wait_for(
                read_frame_async(reader), timeout=self.forward_timeout_s
            )
        except (OSError, FrameError, asyncio.TimeoutError):
            self.ring.mark_down(shard_id)
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
        if reply is None:
            self.ring.mark_down(shard_id)
            return None
        return reply

    def _unavailable(self, shard_id: Optional[int]) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        self.counters["unavailable_503"] += 1
        body = {
            "error": (
                "no shard available"
                if shard_id is None
                else f"shard {shard_id} is unavailable, retrying soon"
            ),
            "retry_after_s": DOWN_SHARD_RETRY_AFTER_S,
        }
        headers = {"Retry-After": f"{DOWN_SHARD_RETRY_AFTER_S:.3f}"}
        if shard_id is not None:
            headers["X-Hottiles-Shard"] = str(shard_id)
        return 503, body, headers

    async def _route_to_shard(
        self, shard_id: Optional[int], message: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if shard_id is None:
            return self._unavailable(None)
        if not self.ring.is_up(shard_id):
            # Known-down owner: answer immediately instead of burning a
            # connect attempt per request; the supervisor marks it up
            # again (update_shard) once the restarted shard handshakes.
            return self._unavailable(shard_id)
        reply = await self._forward(shard_id, message)
        if reply is None:
            return self._unavailable(shard_id)
        headers = dict(reply.get("headers") or {})
        headers["X-Hottiles-Shard"] = str(shard_id)
        return int(reply.get("status", 500)), reply.get("body") or {}, headers

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def dispatch(
        self, method: str, path: str, payload: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        self.counters["routed"] += 1
        path = path.rstrip("/") or "/"
        if method == "POST" and path == "/plan":
            return await self._post_plan(payload)
        if (
            method == "POST"
            and path.startswith("/matrices/")
            and path.endswith("/delta")
        ):
            digest = path[len("/matrices/"):-len("/delta")]
            return await self._post_delta(digest, payload)
        if method == "GET" and path.startswith("/plan/"):
            return await self._get_plan(path[len("/plan/"):])
        if method == "GET" and path == "/healthz":
            return self._healthz()
        if method == "GET" and path == "/stats":
            return await self._stats()
        return 404, {"error": f"no such endpoint: {path}"}, {}

    async def _post_plan(
        self, payload: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        try:
            request = PlanRequest.from_dict(payload or {})
            digest = request.digest()
        except (ProtocolError, TypeError) as exc:
            self.counters["bad_request_400"] += 1
            return 400, {"error": str(exc)}, {}
        shard_id = self.ring.route(digest)
        status, body, headers = await self._route_to_shard(
            shard_id, {"op": "plan", "payload": payload}
        )
        if status == 200 and shard_id is not None:
            # The plan digest doubles as a lineage root; pin it so the
            # first delta routes to the shard holding the lineage even
            # if the ring is later resized.
            self._pin_lineage(body.get("plan", {}).get("digest", digest), shard_id)
        return status, body, headers

    async def _post_delta(
        self, digest: str, payload: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        shard_id = self._owner_for_delta(digest)
        status, body, headers = await self._route_to_shard(
            shard_id, {"op": "delta", "digest": digest, "payload": payload}
        )
        if status == 200 and shard_id is not None:
            new_digest = body.get("applied", {}).get("new_digest")
            if new_digest:
                self._pin_lineage(new_digest, shard_id)
        elif status == 409 and shard_id is not None:
            head = body.get("head_digest")
            if head:
                self._pin_lineage(head, shard_id)
        return status, body, headers

    async def _get_plan(
        self, digest: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        pinned = self._affinity.get(digest)
        shard_id = pinned if pinned is not None else self.ring.route(digest, failover=True)
        return await self._route_to_shard(
            shard_id, {"op": "get_plan", "digest": digest}
        )

    def _healthz(self) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        table = self.shard_table()
        up = sum(1 for row in table if row["up"])
        status = 200 if up else 503
        return status, {
            "status": "ok" if up else "no shards up",
            "shards_up": up,
            "shards_total": len(table),
        }, {}

    async def _stats(self) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Cross-shard aggregation: one merged snapshot + per-shard detail."""
        self.counters["stats_merges"] += 1
        shard_ids = self.ring.shard_ids
        replies = await asyncio.gather(
            *(self._forward(sid, {"op": "stats"}) for sid in shard_ids)
        )
        aggregate = MetricsRegistry()
        store: Dict[str, Any] = {"session_hits": 0, "session_misses": 0,
                                 "entries": 0, "total_bytes": 0}
        lineages = 0
        uptime = 0.0
        shards_detail: List[Dict[str, Any]] = []
        for sid, reply in zip(shard_ids, replies):
            row: Dict[str, Any] = {"shard": sid, "up": reply is not None}
            if reply is None or reply.get("status") != 200:
                shards_detail.append(row)
                continue
            body = reply.get("body") or {}
            aggregate.merge(body.get("metrics_dump") or {})
            shard_store = body.get("store") or {}
            store["session_hits"] += int(shard_store.get("session_hits", 0))
            store["session_misses"] += int(shard_store.get("session_misses", 0))
            # The on-disk store is shared: entries/bytes are one set seen
            # by every shard, so take the max rather than double count.
            store["entries"] = max(store["entries"], int(shard_store.get("entries", 0)))
            store["total_bytes"] = max(
                store["total_bytes"], int(shard_store.get("total_bytes", 0))
            )
            store.setdefault("store_dir", shard_store.get("store_dir"))
            lineages += int(body.get("lineages", 0))
            uptime = max(uptime, float(body.get("uptime_s", 0.0)))
            addr = self._addresses.get(sid)
            row.update(
                port=addr.port if addr is not None else None,
                draining=bool(body.get("draining", False)),
                counters=body.get("counters", {}),
                lineages=int(body.get("lineages", 0)),
                last_errors=body.get("last_errors", []),
            )
            shards_detail.append(row)
        hits = store["session_hits"]
        gets = hits + store["session_misses"]
        store["hit_rate"] = hits / gets if gets else 0.0
        merged = aggregate.snapshot()
        merged["store"] = store
        merged["lineages"] = lineages
        merged["uptime_s"] = uptime
        merged["closed"] = False
        merged["server"] = {"host": self.host, "port": self.bound_port}
        merged["cluster"] = {
            "shards": shards_detail,
            "router": dict(self.counters),
            "router_uptime_s": time.time() - self.started_unix,
        }
        return 200, merged, {}

    # ------------------------------------------------------------------
    # Minimal HTTP/1.1 plumbing
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (OSError, asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            await self._respond(writer, 400, {"error": "malformed request line"}, {},
                                close=True)
            return False
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        close = headers.get("connection", "").lower() == "close"
        payload: Optional[Dict[str, Any]] = None
        if method == "POST":
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                await self._respond(writer, 400, {"error": "bad Content-Length header"},
                                    {}, close=True)
                return False
            if length <= 0:
                await self._respond(writer, 400, {"error": "request body required"},
                                    {}, close=close)
                return not close
            if length > self.max_body_bytes:
                await self._respond(
                    writer, 400,
                    {"error": f"request body too large ({length} > "
                              f"{self.max_body_bytes} bytes)"},
                    {}, close=True)
                return False
            raw = await reader.readexactly(length)
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                await self._respond(
                    writer, 400,
                    {"error": f"request body is not valid JSON: {exc}"},
                    {}, close=close)
                return not close
        try:
            status, body, extra = await self.dispatch(
                method, target.split("?", 1)[0], payload
            )
        except Exception as exc:  # noqa: BLE001 -- never drop a connection
            status, extra = 500, {}
            body = {"error": f"{type(exc).__name__}: {exc}"}
        await self._respond(writer, status, body, extra, close=close)
        return not close

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict[str, Any],
        headers: Dict[str, str],
        close: bool,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}"]
        for name, value in headers.items():
            head.append(f"{name}: {value}")
        if close:
            head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)
        await writer.drain()
