"""Digest-affinity routing: a consistent-hash ring with shard health.

The cluster's whole point is that everything keyed by a matrix digest --
the per-digest plan cache, in-flight coalescing, and delta lineages --
stays **shard-local** (docs/cluster.md).  The router therefore maps each
digest to one shard deterministically with a classic consistent-hash
ring: every shard owns ``vnodes`` pseudo-random points on a 64-bit
circle (SHA-256 of ``"shard:<id>#<replica>"``), and a digest routes to
the first point at or after its own position.  Virtual nodes keep the
load split near-uniform, and removing a shard only remaps the keys that
shard owned -- the property that makes drain/resize cheap.

Health is tracked *on* the ring (:meth:`HashRing.mark_down` /
:meth:`~HashRing.mark_up`) but deliberately does **not** change default
routing: a digest keeps pointing at its owner while that shard is down,
and the router answers ``503 + Retry-After`` until the supervisor
restarts it.  Failing over to the ring successor would scatter a
lineage's digests across shards mid-chain; only reads that any shard can
serve from the shared plan store opt into ``failover=True``.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["HashRing"]

_SPACE_BITS = 64


def _point(token: str) -> int:
    """A stable position on the 64-bit circle for ``token``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def digest_point(digest: str) -> int:
    """Ring position of a matrix digest (already uniform hex: reuse it)."""
    # Plan digests are sha256 hex, so their leading 16 hex chars are a
    # uniform 64-bit value; rehashing would only burn cycles per request.
    head = digest[:16]
    try:
        return int(head, 16) << (4 * (16 - len(head)))
    except ValueError:
        return _point(digest)


class HashRing:
    """Consistent-hash routing of digests onto integer shard ids."""

    def __init__(self, shard_ids: Sequence[int], vnodes: int = 64) -> None:
        if not shard_ids:
            raise ValueError("ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("duplicate shard ids")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._lock = threading.Lock()
        self._down: set = set()
        self._points: List[Tuple[int, int]] = []
        self._shard_ids: List[int] = []
        for sid in shard_ids:
            self._insert_points(int(sid))

    def _insert_points(self, shard_id: int) -> None:
        self._shard_ids.append(shard_id)
        for replica in range(self.vnodes):
            self._points.append((_point(f"shard:{shard_id}#{replica}"), shard_id))
        self._points.sort()

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> List[int]:
        return sorted(self._shard_ids)

    def __len__(self) -> int:
        return len(self._shard_ids)

    # ------------------------------------------------------------------
    def route(self, digest: str, failover: bool = False) -> Optional[int]:
        """The shard owning ``digest``.

        With ``failover=False`` (the default) the owner is returned even
        while marked down -- affinity beats availability for cache- and
        lineage-bound traffic.  With ``failover=True`` the walk skips
        down shards clockwise (shared-store reads any shard can serve);
        ``None`` means every shard is down.
        """
        point = digest_point(digest)
        with self._lock:
            if not self._points:
                return None
            index = bisect.bisect_right(self._points, (point, 1 << 72))
            n = len(self._points)
            for step in range(n):
                _, shard_id = self._points[(index + step) % n]
                if not failover or shard_id not in self._down:
                    return shard_id
            return None

    # ------------------------------------------------------------------
    def mark_down(self, shard_id: int) -> None:
        with self._lock:
            if shard_id in self._shard_ids:
                self._down.add(shard_id)

    def mark_up(self, shard_id: int) -> None:
        with self._lock:
            self._down.discard(shard_id)

    def is_up(self, shard_id: int) -> bool:
        with self._lock:
            return shard_id in self._shard_ids and shard_id not in self._down

    @property
    def down_shards(self) -> List[int]:
        with self._lock:
            return sorted(self._down)

    # ------------------------------------------------------------------
    def add_shard(self, shard_id: int) -> None:
        """Grow the ring (remaps only the keys the new shard takes over)."""
        with self._lock:
            if shard_id in self._shard_ids:
                raise ValueError(f"shard {shard_id} already on the ring")
            self._insert_points(int(shard_id))

    def remove_shard(self, shard_id: int) -> None:
        """Shrink the ring (remaps only the keys the shard owned)."""
        with self._lock:
            if shard_id not in self._shard_ids:
                raise ValueError(f"shard {shard_id} not on the ring")
            self._shard_ids.remove(shard_id)
            self._points = [(p, s) for p, s in self._points if s != shard_id]
            self._down.discard(shard_id)

    # ------------------------------------------------------------------
    def distribution(self, digests: Sequence[str]) -> Dict[int, int]:
        """How many of ``digests`` each shard owns (balance diagnostics)."""
        counts = {sid: 0 for sid in self._shard_ids}
        for digest in digests:
            owner = self.route(digest)
            if owner is not None:
                counts[owner] += 1
        return counts
