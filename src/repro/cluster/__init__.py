"""Sharded multi-process planning cluster (docs/cluster.md).

``hottiles serve --cluster N`` runs N planner worker processes -- each
hosting the same :class:`~repro.service.planner.PlanService` as the
single-process server -- behind an asyncio front-end router that
consistent-hashes requests on matrix digest, so per-digest plan cache
hits, in-flight coalescing, and streaming delta lineages all stay
shard-local while plan *computation* scales across processes (and hence
across the GIL).

Exports resolve lazily so ``python -m repro.cluster.shard`` does not
re-import its own module through the package (runpy double-import).
"""

from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "send_frame",
    "recv_frame",
    "read_frame_async",
    "write_frame_async",
    "HashRing",
    "ClusterRouter",
    "ShardAddress",
    "ClusterManager",
    "ShardProcess",
    "ShardServer",
    "serve_shard",
    "HANDSHAKE_PREFIX",
]

_HOMES = {
    "MAX_FRAME_BYTES": "ipc",
    "FrameError": "ipc",
    "send_frame": "ipc",
    "recv_frame": "ipc",
    "read_frame_async": "ipc",
    "write_frame_async": "ipc",
    "HashRing": "ring",
    "ClusterRouter": "router",
    "ShardAddress": "router",
    "ClusterManager": "manager",
    "ShardProcess": "manager",
    "ShardServer": "shard",
    "serve_shard": "shard",
    "HANDSHAKE_PREFIX": "shard",
}


def __getattr__(name: str) -> Any:
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module 'repro.cluster' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"repro.cluster.{home}"), name)
