"""The plan-service request/response vocabulary.

A :class:`PlanRequest` names everything one preprocessing run is
parameterized by: the matrix (a benchmark short name, a MatrixMarket file
path, or a deterministic generator spec), the target architecture, and
the strategy options.  Its :meth:`~PlanRequest.digest` is a content
address built from :func:`~repro.experiments.cache.stable_digest` over
exactly those inputs plus the package code version -- two requests share
a digest iff they describe the same plan computed by the same code, which
is what in-flight coalescing and the plan store key on.

A :class:`PlanResult` is the JSON-serializable summary of one completed
plan: the chosen heuristic, the hot/cold split, predicted runtime, the
per-stage preprocessing cost, and the paths of the persisted ``.npz``
artifacts.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["ProtocolError", "PlanRequest", "PlanResult", "GENERATOR_KINDS"]


class ProtocolError(ValueError):
    """A malformed or unsatisfiable plan request."""


#: Deterministic synthetic-matrix generators requests may name, with the
#: parameters each accepts (all plain ints/floats; seeds default to 0).
GENERATOR_KINDS: Dict[str, Tuple[str, ...]] = {
    "rmat": ("scale", "nnz", "a", "b", "c", "seed"),
    "uniform": ("n_rows", "n_cols", "nnz", "seed"),
    "banded": ("n", "nnz", "bandwidth", "scatter_fraction", "seed"),
    "community": ("n", "nnz", "n_communities", "intra_fraction", "seed"),
}

_REQUEST_KEYS = {
    "matrix", "matrix_path", "generator", "arch", "scale", "cache_aware",
    "timeout_s", "tenant", "tier", "deadline_s",
}

#: Policy tiers (docs/autoscaling.md); kept in sync with
#: :data:`repro.service.admission.TIERS` by a regression test.
_TIERS = ("gold", "silver", "bronze")


@dataclass(frozen=True)
class PlanRequest:
    """One partition-planning request.

    Exactly one of ``matrix`` (benchmark short name), ``matrix_path``
    (MatrixMarket file), or ``generator`` (kind + parameters from
    :data:`GENERATOR_KINDS`) selects the matrix.
    """

    arch: str = "spade-sextans"
    scale: int = 4
    cache_aware: bool = False
    matrix: Optional[str] = None
    matrix_path: Optional[str] = None
    generator: Optional[Dict[str, Any]] = None
    timeout_s: Optional[float] = None  #: per-request wait bound (None = server default)
    tenant: Optional[str] = None  #: quota/accounting identity (None = shared default)
    tier: Optional[str] = None  #: policy tier: gold | silver | bronze
    deadline_s: Optional[float] = None  #: relative EDF deadline (None = tier default)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PlanRequest":
        """Validate and build a request from a decoded JSON object."""
        if not isinstance(payload, Mapping):
            raise ProtocolError("request body must be a JSON object")
        unknown = set(payload) - _REQUEST_KEYS
        if unknown:
            raise ProtocolError(f"unknown request field(s): {', '.join(sorted(unknown))}")
        request = cls(
            arch=payload.get("arch", "spade-sextans"),
            scale=payload.get("scale", 4),
            cache_aware=payload.get("cache_aware", False),
            matrix=payload.get("matrix"),
            matrix_path=payload.get("matrix_path"),
            generator=payload.get("generator"),
            timeout_s=payload.get("timeout_s"),
            tenant=payload.get("tenant"),
            tier=payload.get("tier"),
            deadline_s=payload.get("deadline_s"),
        )
        request.validate()
        return request

    def validate(self) -> None:
        """Raise :class:`ProtocolError` unless this request is well-formed."""
        from repro.arch.configs import ARCHITECTURE_FACTORIES

        if self.arch not in ARCHITECTURE_FACTORIES:
            raise ProtocolError(
                f"unknown arch {self.arch!r} (known: "
                f"{', '.join(sorted(ARCHITECTURE_FACTORIES))})"
            )
        if not isinstance(self.scale, int) or isinstance(self.scale, bool) or self.scale < 1:
            raise ProtocolError(f"scale must be a positive integer, got {self.scale!r}")
        if not isinstance(self.cache_aware, bool):
            raise ProtocolError("cache_aware must be a boolean")
        if self.timeout_s is not None and (
            not isinstance(self.timeout_s, (int, float))
            or isinstance(self.timeout_s, bool)
            or self.timeout_s <= 0
        ):
            raise ProtocolError("timeout_s must be a positive number")
        if self.tenant is not None and (
            not isinstance(self.tenant, str) or not self.tenant
        ):
            raise ProtocolError("tenant must be a non-empty string")
        if self.tier is not None and self.tier not in _TIERS:
            raise ProtocolError(
                f"unknown tier {self.tier!r} (known: {', '.join(_TIERS)})"
            )
        if self.deadline_s is not None and (
            not isinstance(self.deadline_s, (int, float))
            or isinstance(self.deadline_s, bool)
            or self.deadline_s <= 0
        ):
            raise ProtocolError("deadline_s must be a positive number")
        specs = [
            s for s in (self.matrix, self.matrix_path, self.generator) if s is not None
        ]
        if len(specs) != 1:
            raise ProtocolError(
                "exactly one of matrix / matrix_path / generator must be given"
            )
        if self.matrix is not None and not isinstance(self.matrix, str):
            raise ProtocolError("matrix must be a benchmark short name (string)")
        if self.matrix_path is not None and not isinstance(self.matrix_path, str):
            raise ProtocolError("matrix_path must be a string path")
        if self.generator is not None:
            self._validate_generator(self.generator)

    @staticmethod
    def _validate_generator(spec: Mapping[str, Any]) -> None:
        if not isinstance(spec, Mapping):
            raise ProtocolError("generator must be an object with a 'kind' field")
        kind = spec.get("kind")
        if kind not in GENERATOR_KINDS:
            raise ProtocolError(
                f"unknown generator kind {kind!r} (known: "
                f"{', '.join(sorted(GENERATOR_KINDS))})"
            )
        allowed = GENERATOR_KINDS[kind]
        for name, value in spec.items():
            if name == "kind":
                continue
            if name not in allowed:
                raise ProtocolError(
                    f"generator {kind!r} does not take {name!r} "
                    f"(takes: {', '.join(allowed)})"
                )
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProtocolError(f"generator parameter {name!r} must be a number")

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """The content address of this plan.

        Built from :func:`stable_digest` over the code version, the
        architecture selection, the strategy options, and the matrix
        *content* token: the short name or generator spec for
        deterministic sources, and a SHA-256 of the file bytes for
        ``matrix_path`` (so editing the file changes the digest even if
        the path does not).  ``timeout_s``, ``tenant``, ``tier``, and
        ``deadline_s`` are deliberately excluded -- they shape the wait
        and the scheduling, not the plan, so two tenants asking for the
        same matrix still coalesce onto one computation.
        """
        from repro.experiments.cache import code_version, stable_digest

        if self.matrix is not None:
            matrix_token: Any = ("short", self.matrix)
        elif self.generator is not None:
            matrix_token = ("generator", dict(self.generator))
        else:
            path = Path(self.matrix_path)  # type: ignore[arg-type]
            try:
                content = path.read_bytes()
            except OSError as exc:
                raise ProtocolError(f"cannot read matrix_path: {exc}") from None
            matrix_token = ("file", hashlib.sha256(content).hexdigest())
        return stable_digest(
            (
                "plan-request",
                code_version(),
                self.arch,
                self.scale,
                self.cache_aware,
                matrix_token,
            )
        )

    def resolve_matrix(self):
        """Materialize the requested :class:`~repro.sparse.matrix.SparseMatrix`."""
        from repro.sparse import generators

        if self.matrix is not None:
            from repro.experiments.matrices import ALL_MATRICES, load_matrix

            if self.matrix not in ALL_MATRICES:
                raise ProtocolError(
                    f"unknown benchmark matrix {self.matrix!r} "
                    f"(known: {', '.join(sorted(ALL_MATRICES))})"
                )
            return load_matrix(self.matrix)
        if self.matrix_path is not None:
            from repro.sparse.mmio import read_matrix_market

            try:
                return read_matrix_market(self.matrix_path)
            except OSError as exc:
                raise ProtocolError(f"cannot read matrix_path: {exc}") from None
        spec = dict(self.generator)  # type: ignore[arg-type]
        kind = spec.pop("kind")
        factory = {
            "rmat": generators.rmat,
            "uniform": generators.uniform_random,
            "banded": generators.banded,
            "community": generators.community_blocks,
        }[kind]
        int_params = {"scale", "nnz", "n", "n_rows", "n_cols", "bandwidth",
                      "n_communities", "seed"}
        kwargs = {
            k: int(v) if k in int_params else float(v) for k, v in spec.items()
        }
        try:
            return factory(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"generator {kind!r} rejected parameters: {exc}") from None

    def build_architecture(self):
        """Instantiate the requested :class:`~repro.arch.heterogeneous.Architecture`."""
        from repro.arch.configs import ARCHITECTURE_FACTORIES

        factory = ARCHITECTURE_FACTORIES[self.arch]
        return factory() if self.arch == "piuma" else factory(self.scale)

    def describe(self) -> str:
        if self.matrix is not None:
            src = self.matrix
        elif self.matrix_path is not None:
            src = Path(self.matrix_path).name
        else:
            src = f"{self.generator.get('kind', '?')}(...)"  # type: ignore[union-attr]
        return f"{src} on {self.arch}x{self.scale}"

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        return {k: v for k, v in out.items() if v is not None}


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanResult:
    """The JSON-serializable record of one completed plan."""

    digest: str
    arch: str
    scale: int
    cache_aware: bool
    n_rows: int
    n_cols: int
    nnz: int
    label: str  #: chosen heuristic label
    mode: str  #: 'parallel' or 'serial'
    n_tiles: int
    hot_tiles: int
    hot_nnz_fraction: float
    predicted_time_s: float
    scan_s: float
    partition_s: float
    format_generation_s: float
    plan_wall_s: float  #: end-to-end planning wall-clock (resolve + pipeline + persist)
    artifacts: Tuple[str, ...] = field(default_factory=tuple)
    created_unix: float = 0.0
    naive_time_s: float = 0.0  #: Fig. 8 closed-form prediction (audit trail)
    scorer: str = "naive"  #: which model selected the plan: 'contention' | 'naive' | 'roofline'

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["artifacts"] = list(self.artifacts)
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PlanResult":
        import dataclasses

        kwargs = {}
        for f in dataclasses.fields(cls):
            if f.name in payload:
                kwargs[f.name] = payload[f.name]
            elif (
                f.default is dataclasses.MISSING
                and f.default_factory is dataclasses.MISSING
            ):
                raise ProtocolError(f"plan result missing field {f.name!r}")
        if "artifacts" in kwargs:
            kwargs["artifacts"] = tuple(kwargs["artifacts"])
        return cls(**kwargs)

    @classmethod
    def from_preprocess(
        cls,
        request: PlanRequest,
        digest: str,
        matrix,
        preprocess,
        plan_wall_s: float,
        artifacts: Tuple[str, ...] = (),
    ) -> "PlanResult":
        """Summarize a :class:`~repro.pipeline.preprocess.PreprocessResult`."""
        chosen = preprocess.partition.chosen
        cost = preprocess.cost
        return cls(
            digest=digest,
            arch=request.arch,
            scale=request.scale,
            cache_aware=request.cache_aware,
            n_rows=matrix.n_rows,
            n_cols=matrix.n_cols,
            nnz=matrix.nnz,
            label=chosen.label,
            mode=chosen.mode.value,
            n_tiles=preprocess.tiled.n_tiles,
            hot_tiles=chosen.hot_tile_count,
            hot_nnz_fraction=chosen.hot_nnz_fraction(preprocess.tiled),
            predicted_time_s=chosen.predicted_time_s,
            naive_time_s=(
                chosen.naive_time_s
                if chosen.naive_time_s is not None
                else chosen.predicted_time_s
            ),
            scorer=chosen.scorer,
            scan_s=cost.scan_s,
            partition_s=cost.partition_s,
            format_generation_s=cost.format_generation_s,
            plan_wall_s=plan_wall_s,
            artifacts=artifacts,
            created_unix=time.time(),
        )
