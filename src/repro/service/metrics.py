"""Thread-safe service metrics: counters, gauges, latency histograms.

A deliberately small, stdlib-only metrics vocabulary in the shape of the
usual production registries: monotonically increasing :class:`Counter`\\ s,
point-in-time :class:`Gauge`\\ s, and :class:`Histogram`\\ s that answer
percentile queries over a bounded window of recent observations.  The
:class:`MetricsRegistry` hands out named instruments and renders one
consistent :meth:`~MetricsRegistry.snapshot` dict the ``/stats`` endpoint
serves.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, in-flight plans)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency distribution over a bounded window of recent samples.

    ``count`` and ``sum`` are exact over the full lifetime; percentiles
    are computed from the newest ``max_samples`` observations (a sliding
    window, which is what a serving dashboard wants anyway).
    """

    __slots__ = ("_lock", "_samples", "count", "sum", "max")

    def __init__(self, max_samples: int = 8192) -> None:
        self._lock = threading.Lock()
        self._samples: Deque[float] = deque(maxlen=max_samples)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._samples.append(value)
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the recent window, 0 if empty.

        Linear interpolation between the two closest order statistics
        (numpy's default ``"linear"`` method), *not* nearest-rank: the
        answer for a ``q`` that falls between two samples is a weighted
        blend of both, so e.g. the median of ``[1, 2]`` is ``1.5``.
        ``q=0`` is the minimum and ``q=100`` the maximum of the window.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            samples = sorted(self._samples)
        return self._percentile_of(samples, q)

    @staticmethod
    def _percentile_of(samples: list, q: float) -> float:
        """Linear-interpolated percentile of pre-sorted ``samples``."""
        if not samples:
            return 0.0
        pos = (len(samples) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1 - frac) + samples[hi] * frac

    def percentiles(self, qs: Iterable[float] = (50, 95, 99)) -> Dict[str, float]:
        return {f"p{q:g}": self.percentile(q) for q in qs}

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        """One internally consistent view of the whole instrument.

        Everything is read under the lock in a single critical section:
        reading ``count``/``sum``/``max`` field by field while observers
        run can pair a fresh count with a stale sum (a torn read the
        threaded metrics test catches), so the snapshot must not go
        through the individually locked accessors.
        """
        with self._lock:
            count = self.count
            total = self.sum
            peak = self.max
            samples = sorted(self._samples)
        out = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "max": peak,
        }
        out.update(
            {f"p{q:g}": self._percentile_of(samples, q) for q in (50, 95, 99)}
        )
        return out


class MetricsRegistry:
    """Named instruments plus one consistent snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, max_samples: int = 8192) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram(max_samples))

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one plain dict (JSON-serializable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }
