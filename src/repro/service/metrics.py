"""Thread-safe service metrics: counters, gauges, latency histograms.

A deliberately small, stdlib-only metrics vocabulary in the shape of the
usual production registries: monotonically increasing :class:`Counter`\\ s,
point-in-time :class:`Gauge`\\ s, and :class:`Histogram`\\ s that answer
percentile queries over a bounded window of recent observations.  The
:class:`MetricsRegistry` hands out named instruments and renders one
consistent :meth:`~MetricsRegistry.snapshot` dict the ``/stats`` endpoint
serves.

Every instrument also supports **merging** (``Counter.merge``,
``Histogram.merge``, ``MetricsRegistry.merge``), which is how the
cluster router aggregates per-shard registries into one cross-shard
``/stats`` answer (docs/cluster.md).  Histograms merge their raw sample
windows -- not pre-computed percentiles, which cannot be combined -- so
the merged percentiles equal what a single registry would have answered
over the concatenated samples.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Mapping, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        with self._lock:
            self._value += n

    def merge(self, other: Union["Counter", int]) -> None:
        """Fold another counter (or raw count) into this one."""
        n = other.value if isinstance(other, Counter) else int(other)
        self.inc(n)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, in-flight plans)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency distribution over a bounded window of recent samples.

    ``count`` and ``sum`` are exact over the full lifetime; percentiles
    are computed from the newest ``max_samples`` observations (a sliding
    window, which is what a serving dashboard wants anyway).
    """

    __slots__ = ("_lock", "_samples", "count", "sum", "max")

    def __init__(self, max_samples: int = 8192) -> None:
        self._lock = threading.Lock()
        self._samples: Deque[float] = deque(maxlen=max_samples)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._samples.append(value)
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the recent window, 0 if empty.

        Linear interpolation between the two closest order statistics
        (numpy's default ``"linear"`` method), *not* nearest-rank: the
        answer for a ``q`` that falls between two samples is a weighted
        blend of both, so e.g. the median of ``[1, 2]`` is ``1.5``.
        ``q=0`` is the minimum and ``q=100`` the maximum of the window.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            samples = sorted(self._samples)
        return self._percentile_of(samples, q)

    @staticmethod
    def _percentile_of(samples: list, q: float) -> float:
        """Linear-interpolated percentile of pre-sorted ``samples``."""
        if not samples:
            return 0.0
        pos = (len(samples) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1 - frac) + samples[hi] * frac

    def percentiles(self, qs: Iterable[float] = (50, 95, 99)) -> Dict[str, float]:
        return {f"p{q:g}": self.percentile(q) for q in qs}

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        """One internally consistent view of the whole instrument.

        Everything is read under the lock in a single critical section:
        reading ``count``/``sum``/``max`` field by field while observers
        run can pair a fresh count with a stale sum (a torn read the
        threaded metrics test catches), so the snapshot must not go
        through the individually locked accessors.
        """
        with self._lock:
            count = self.count
            total = self.sum
            peak = self.max
            samples = sorted(self._samples)
        out = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "max": peak,
        }
        out.update(
            {f"p{q:g}": self._percentile_of(samples, q) for q in (50, 95, 99)}
        )
        return out

    def dump(self) -> Dict[str, Any]:
        """The full transferable state, including the raw sample window.

        Unlike :meth:`snapshot` this is meant for :meth:`merge` on the
        receiving side -- percentiles cannot be combined, samples can.
        JSON-serializable (the cluster shards ship it over the wire).
        """
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "max": self.max,
                "samples": list(self._samples),
            }

    def merge(self, other: Union["Histogram", Mapping[str, Any]]) -> None:
        """Fold another histogram (or its :meth:`dump`) into this one.

        Lifetime ``count``/``sum``/``max`` add exactly; the sample
        windows concatenate, growing this instrument's window as needed
        so no merged sample is dropped -- merging N shard dumps into a
        fresh histogram therefore answers exactly the percentiles one
        shared histogram would have over the concatenated windows (the
        property the cluster ``/stats`` aggregation relies on).
        """
        if isinstance(other, Histogram):
            other = other.dump()
        count = int(other.get("count", 0))
        total = float(other.get("sum", 0.0))
        peak = float(other.get("max", 0.0))
        samples = [float(s) for s in other.get("samples", ())]
        if count < 0 or len(samples) > count:
            raise ValueError("malformed histogram dump")
        with self._lock:
            need = len(self._samples) + len(samples)
            if self._samples.maxlen is not None and need > self._samples.maxlen:
                self._samples = deque(self._samples, maxlen=need)
            self._samples.extend(samples)
            self.count += count
            self.sum += total
            if peak > self.max:
                self.max = peak

    @property
    def window(self) -> List[float]:
        """A copy of the current sample window (oldest first)."""
        with self._lock:
            return list(self._samples)


class MetricsRegistry:
    """Named instruments plus one consistent snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, max_samples: int = 8192) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram(max_samples))

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one plain dict (JSON-serializable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }

    def dump(self) -> Dict[str, Any]:
        """The full transferable registry state (see :meth:`merge`)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.dump() for name, h in sorted(histograms.items())
            },
        }

    def merge(self, dump: Mapping[str, Any]) -> None:
        """Fold one :meth:`dump` into this registry.

        Counters and gauges add (summing queue depths across shards is
        the aggregation a cluster dashboard wants); histograms merge
        their sample windows without dropping samples, so merging N
        shard dumps into a fresh registry yields exactly the percentiles
        a single shared registry would have reported over the
        concatenated windows.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).merge(int(value))
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).inc(float(value))
        for name, hist_dump in dump.get("histograms", {}).items():
            self.histogram(name).merge(hist_dump)
