"""SLO-aware autoscaling of the planner worker pool (and cluster shards).

The policy is a *pure function* of the observed queueing state --
:meth:`AutoscalePolicy.target` -- deliberately separated from the two
drivers that call it:

- :class:`Autoscaler`, the live ticking thread.  Every ``tick_s`` it
  reads a :class:`ScaleSnapshot` from its ``snapshot`` callback (the
  planner's :meth:`~repro.service.planner.PlanService.autoscale_snapshot`,
  or the cluster manager's shard-summed equivalent) and applies the
  target through its ``apply`` callback (``PlanService.set_workers`` or
  ``ClusterManager.scale_shards``).
- the virtual-time replay (:mod:`repro.service.replay`), which drives
  the identical policy object from simulated ticks -- which is why a
  replayed trace reproduces the live policy's decision sequence bit for
  bit, and why autoscaler behavior is testable as ordinary pinned
  regression tests (docs/autoscaling.md).

Sizing rule: the backlog is ``backlog_s`` predicted work-seconds (from
the admission controller's calibrated cost model); finishing it within
the queue-wait SLO needs ``ceil(backlog_s / slo)`` workers.  Scale-up is
immediate (a blown SLO is already late); scale-down waits for
``scale_down_idle_ticks`` consecutive idle ticks so a bursty arrival
process does not flap the pool.  Every scale decision is appended to the
shared :class:`~repro.service.admission.DecisionLog` and emitted through
:mod:`repro.obs` alongside a ``queue_depth`` counter sample.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.obs.tracer import POLICY, get_tracer
from repro.service.admission import DecisionLog

__all__ = [
    "AutoscaleConfig",
    "ScaleSnapshot",
    "AutoscalePolicy",
    "Autoscaler",
]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs of the scaling policy (docs/autoscaling.md)."""

    min_workers: int = 1
    max_workers: int = 8
    #: Live tick interval; the replay uses the same value in virtual time.
    tick_s: float = 0.25
    #: The queue-wait SLO the pool is sized against (target p99).
    queue_wait_slo_s: float = 0.5
    #: Consecutive ticks with an empty queue and no backlog before one
    #: worker is retired.
    scale_down_idle_ticks: int = 4

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.queue_wait_slo_s <= 0:
            raise ValueError("queue_wait_slo_s must be positive")


@dataclass(frozen=True)
class ScaleSnapshot:
    """What one tick observes: the queueing state the policy sizes for."""

    workers: int
    queue_depth: int
    backlog_s: float  #: predicted work-seconds waiting in the queue
    queue_wait_p99_s: float = 0.0  #: recent measured wait (advisory)


class AutoscalePolicy:
    """The deterministic sizing rule; one instance per scaled pool.

    Stateful only in its idle-tick counter (scale-down hysteresis), so
    the same sequence of snapshots always produces the same sequence of
    targets -- the property the replay regression tests rely on.
    """

    def __init__(self, config: Optional[AutoscaleConfig] = None) -> None:
        self.config = config if config is not None else AutoscaleConfig()
        self._idle_ticks = 0

    def target(self, snapshot: ScaleSnapshot) -> int:
        cfg = self.config
        workers = max(1, int(snapshot.workers))
        desired = workers
        if snapshot.backlog_s > 0.0:
            desired = int(math.ceil(snapshot.backlog_s / cfg.queue_wait_slo_s))
        if (
            snapshot.queue_depth > 0
            and snapshot.queue_wait_p99_s > cfg.queue_wait_slo_s
        ):
            # Measured waits already blow the SLO: the backlog estimate
            # alone is reactive (it cannot see the arrival rate), so
            # escalate multiplicatively until the waits recover.
            desired = max(desired, workers * 2)
        if snapshot.queue_depth == 0 and snapshot.backlog_s == 0.0:
            self._idle_ticks += 1
        else:
            self._idle_ticks = 0
        if desired <= workers:
            if self._idle_ticks >= cfg.scale_down_idle_ticks:
                self._idle_ticks = 0
                desired = workers - 1
            else:
                desired = workers
        return max(cfg.min_workers, min(desired, cfg.max_workers))


class Autoscaler:
    """The live driver: tick, observe, decide, apply, record.

    ``snapshot`` and ``apply`` make it pool-agnostic -- the same class
    scales the in-process worker pool and (in ``--cluster`` mode) the
    shard count, where ``apply`` is the manager's spawn/drain advisory
    (docs/cluster.md).  ``unit`` only labels the decision log entries.
    """

    def __init__(
        self,
        snapshot: Callable[[], ScaleSnapshot],
        apply: Callable[[int], int],
        config: Optional[AutoscaleConfig] = None,
        decision_log: Optional[DecisionLog] = None,
        unit: str = "workers",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else AutoscaleConfig()
        self.policy = AutoscalePolicy(self.config)
        self.decisions = (
            decision_log if decision_log is not None else DecisionLog()
        )
        self.unit = unit
        self._snapshot = snapshot
        self._apply = apply
        self._clock = clock
        self._epoch = clock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._ticks = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self) -> "Autoscaler":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name=f"autoscale-{self.unit}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.config.tick_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 -- a bad tick must not kill the loop
                continue

    # ------------------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> int:
        """One observe-decide-apply cycle; returns the applied target."""
        t = (self._clock() - self._epoch) if now is None else now
        snap = self._snapshot()
        target = self.policy.target(snap)
        with self._lock:
            self._ticks += 1
        tracer = get_tracer()
        if tracer.enabled:
            # The queue-depth counter track the scale events render against.
            tracer.counter(
                "queue_depth", snap.queue_depth, ts=t,
                process=POLICY, track="queue",
            )
        if target != snap.workers:
            applied = int(self._apply(target))
            kind = "scale_up" if target > snap.workers else "scale_down"
            self.decisions.append(
                kind, t,
                unit=self.unit,
                workers_from=snap.workers, workers_to=applied,
                queue_depth=snap.queue_depth, backlog_s=snap.backlog_s,
                queue_wait_p99_s=snap.queue_wait_p99_s,
            )
            return applied
        return snap.workers

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            ticks = self._ticks
        return {
            "unit": self.unit,
            "ticks": ticks,
            "decision_counts": self.decisions.counts(),
            "config": {
                "min_workers": self.config.min_workers,
                "max_workers": self.config.max_workers,
                "tick_s": self.config.tick_s,
                "queue_wait_slo_s": self.config.queue_wait_slo_s,
                "scale_down_idle_ticks": self.config.scale_down_idle_ticks,
            },
        }

    def __enter__(self) -> "Autoscaler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
