"""Deterministic request-trace record/replay -- the autoscaler test rig.

A *trace* is a canonical-JSON stream of plan requests: arrival offsets,
tenants, policy tiers, deadlines, matrix digests, and each request's
actual planning cost.  Traces come from three places:

- :class:`TraceRecorder`, which ``hottiles loadgen --record FILE`` hangs
  off a live run (arrival stamps are wall offsets, costs are the
  server-reported ``plan_wall_s``);
- :func:`burst_trace`, a seeded synthetic burst generator (the committed
  ``tests/golden/replay_burst.json`` is one of these); and
- hand-written JSON, since the wire form is plain and documented.

Replay has two modes.  **Live replay** (``loadgen --replay FILE``, in
:mod:`repro.service.loadgen`) fires the recorded arrivals at a real
server with an optional time warp.  **Virtual replay** (``--virtual``,
:func:`replay_trace` here) never touches a server or a wall clock: it is
a discrete-event simulation of the queueing system -- the *same*
:class:`~repro.service.admission.AdmissionController`,
:class:`~repro.service.admission.EDFQueue`, and
:class:`~repro.service.autoscale.AutoscalePolicy` objects the live
service runs, driven by simulated arrivals/completions/ticks with the
recorded costs as service times.  No threads, no planning, no clocks:
replaying one trace twice produces bit-identical decision logs and
queue-wait histograms, which is what turns autoscaler policy behavior
into ordinary pinned regression tests (docs/autoscaling.md).
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.service.admission import (
    DEFAULT_TENANT,
    DEFAULT_TIER,
    TIERS,
    AdmissionConfig,
    AdmissionController,
    DecisionLog,
    EDFQueue,
    Empty,
    QueueFull,
    TenantQuotaExceeded,
)
from repro.service.autoscale import (
    AutoscaleConfig,
    Autoscaler,
    ScaleSnapshot,
)
from repro.service.metrics import Histogram

__all__ = [
    "TRACE_VERSION",
    "TraceRequest",
    "RequestTrace",
    "TraceRecorder",
    "burst_trace",
    "replay_trace",
    "ReplayResult",
]

TRACE_VERSION = 1


# ----------------------------------------------------------------------
# The trace wire form
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceRequest:
    """One recorded request: when it arrived and what it asked for."""

    arrival_s: float  #: offset from the trace epoch, seconds
    tenant: str = DEFAULT_TENANT
    tier: str = DEFAULT_TIER
    deadline_s: float = 15.0  #: relative deadline (EDF sorts on arrival+deadline)
    digest: str = ""  #: the plan digest this request resolves to
    cost_s: float = 0.05  #: actual planning wall (the replay's service time)
    nnz: Optional[int] = None  #: cost-model feature hint
    payload: Optional[Dict[str, Any]] = None  #: full request body (live replay)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "arrival_s": round(self.arrival_s, 6),
            "tenant": self.tenant,
            "tier": self.tier,
            "deadline_s": round(self.deadline_s, 6),
            "digest": self.digest,
            "cost_s": round(self.cost_s, 6),
        }
        if self.nnz is not None:
            out["nnz"] = int(self.nnz)
        if self.payload is not None:
            out["payload"] = dict(self.payload)
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceRequest":
        tier = str(payload.get("tier", DEFAULT_TIER))
        if tier not in TIERS:
            raise ValueError(f"unknown tier {tier!r} (known: {', '.join(TIERS)})")
        return cls(
            arrival_s=float(payload["arrival_s"]),
            tenant=str(payload.get("tenant", DEFAULT_TENANT)),
            tier=tier,
            deadline_s=float(payload.get("deadline_s", 15.0)),
            digest=str(payload.get("digest", "")),
            cost_s=float(payload.get("cost_s", 0.05)),
            nnz=(int(payload["nnz"]) if payload.get("nnz") is not None else None),
            payload=(
                dict(payload["payload"]) if payload.get("payload") else None
            ),
        )


@dataclass(frozen=True)
class RequestTrace:
    """A whole recorded stream plus its metadata, in canonical JSON.

    Canonical means: requests sorted by ``(arrival_s, insertion order)``,
    floats rounded to 6 decimal places, keys sorted, 2-space indent,
    trailing newline -- so the committed golden diffs cleanly and two
    saves of the same trace are byte-identical.
    """

    requests: Tuple[TraceRequest, ...]
    meta: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration_s(self) -> float:
        return self.requests[-1].arrival_s if self.requests else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": TRACE_VERSION,
            "meta": dict(self.meta),
            "requests": [r.to_dict() for r in self.requests],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(self.to_json(), encoding="utf-8")
        tmp.replace(path)
        return path

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RequestTrace":
        version = int(payload.get("version", 0))
        if version != TRACE_VERSION:
            raise ValueError(
                f"unsupported trace version {version} (expected {TRACE_VERSION})"
            )
        requests = [
            TraceRequest.from_dict(r) for r in payload.get("requests", ())
        ]
        requests.sort(key=lambda r: r.arrival_s)
        return cls(requests=tuple(requests), meta=dict(payload.get("meta", {})))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RequestTrace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class TraceRecorder:
    """Collects :class:`TraceRequest` records during a live loadgen run.

    Arrival offsets are measured from the first :meth:`note` (or an
    explicit :meth:`start`); thread-safe, because the closed-loop client
    threads all note into one recorder.
    """

    def __init__(self, meta: Optional[Mapping[str, Any]] = None) -> None:
        self._lock = threading.Lock()
        self._epoch: Optional[float] = None
        self._requests: List[TraceRequest] = []
        self.meta: Dict[str, Any] = dict(meta or {})

    def start(self) -> None:
        with self._lock:
            if self._epoch is None:
                self._epoch = time.monotonic()

    def note(
        self,
        payload: Mapping[str, Any],
        digest: str = "",
        cost_s: float = 0.05,
        sent_at: Optional[float] = None,
    ) -> None:
        now = time.monotonic() if sent_at is None else sent_at
        with self._lock:
            if self._epoch is None:
                self._epoch = now
            arrival = max(0.0, now - self._epoch)
            generator = payload.get("generator") or {}
            self._requests.append(
                TraceRequest(
                    arrival_s=arrival,
                    tenant=str(payload.get("tenant", DEFAULT_TENANT)),
                    tier=str(payload.get("tier", DEFAULT_TIER)),
                    deadline_s=float(payload.get("deadline_s", 15.0)),
                    digest=digest,
                    cost_s=max(1e-4, float(cost_s)),
                    nnz=(
                        int(generator["nnz"]) if "nnz" in generator else None
                    ),
                    payload=dict(payload),
                )
            )

    def trace(self) -> RequestTrace:
        with self._lock:
            requests = sorted(self._requests, key=lambda r: r.arrival_s)
        meta = dict(self.meta)
        meta.setdefault("kind", "recorded")
        meta["n_requests"] = len(requests)
        return RequestTrace(requests=tuple(requests), meta=meta)

    def __len__(self) -> int:
        with self._lock:
            return len(self._requests)


# ----------------------------------------------------------------------
# Synthetic burst traces
# ----------------------------------------------------------------------
def burst_trace(
    seed: int = 0,
    duration_s: float = 10.0,
    base_rps: float = 20.0,
    burst_rps: float = 120.0,
    burst_window: Tuple[float, float] = (2.0, 4.0),
    tenants: int = 4,
    plans: int = 4,
    cost_mean_s: float = 0.04,
    arch: str = "spade-sextans",
    nnz: int = 6000,
    tier_weights: Tuple[float, float, float] = (0.2, 0.5, 0.3),
    queue_wait_slo_p99_s: float = 2.0,
) -> RequestTrace:
    """A seeded open-loop burst: steady arrivals with one overload window.

    Deterministic from ``seed`` via :class:`random.Random` (stable across
    Python versions, unlike numpy's generators), which is what lets the
    committed golden trace be regenerated byte-identically:
    ``hottiles loadgen --synth-burst FILE --seed N``.
    """
    if tenants < 1 or plans < 1:
        raise ValueError("tenants and plans must be >= 1")
    rng = random.Random(seed)
    burst_start, burst_end = burst_window
    w_gold, w_silver, _ = tier_weights
    config = AdmissionConfig()
    requests: List[TraceRequest] = []
    t = 0.0
    while True:
        rate = burst_rps if burst_start <= t < burst_end else base_rps
        t += rng.expovariate(rate)
        if t >= duration_s:
            break
        roll = rng.random()
        if roll < w_gold:
            tier = "gold"
        elif roll < w_gold + w_silver:
            tier = "silver"
        else:
            tier = "bronze"
        tenant = f"t{rng.randrange(tenants)}"
        plan_idx = rng.randrange(plans)
        digest = hashlib.sha256(
            f"burst-{seed}-{plan_idx}".encode("utf-8")
        ).hexdigest()
        cost = max(0.005, rng.gauss(cost_mean_s, cost_mean_s * 0.25))
        deadline = config.deadline_for(tier)
        payload = {
            "arch": arch,
            "scale": 4,
            "generator": {"kind": "rmat", "scale": 9, "nnz": nnz,
                          "seed": plan_idx},
            "tenant": tenant,
            "tier": tier,
            "deadline_s": deadline,
        }
        requests.append(
            TraceRequest(
                arrival_s=round(t, 6),
                tenant=tenant,
                tier=tier,
                deadline_s=deadline,
                digest=digest,
                cost_s=round(cost, 6),
                nnz=nnz,
                payload=payload,
            )
        )
    meta = {
        "kind": "burst",
        "seed": seed,
        "duration_s": duration_s,
        "base_rps": base_rps,
        "burst_rps": burst_rps,
        "burst_window": list(burst_window),
        "tenants": tenants,
        "plans": plans,
        "cost_mean_s": cost_mean_s,
        "arch": arch,
        "n_requests": len(requests),
        # The gate SLO the trace is judged against (bench_service / CI
        # slo-smoke): with autoscaling on the replay must meet this p99
        # queue wait, with --no-autoscale it must violate it.  The
        # autoscaler's *internal* sizing SLO stays tighter (0.5s) -- the
        # gate allows for the burst peak that max_workers bounds.
        "queue_wait_slo_p99_s": queue_wait_slo_p99_s,
    }
    return RequestTrace(requests=tuple(requests), meta=meta)


# ----------------------------------------------------------------------
# Virtual-time replay: the discrete-event simulation
# ----------------------------------------------------------------------
#: Event kinds, in tie-break order at equal timestamps: a completion
#: frees its worker before the tick observes, and the tick observes
#: before the next arrival is offered.  (Degraded answers skip the
#: partition pipeline and are served on the caller's thread, so they
#: never occupy a pool worker -- mirrored here by not scheduling them.)
_COMPLETION, _TICK, _ARRIVAL = 0, 1, 2


@dataclass
class ReplayResult:
    """Everything one virtual replay produced, JSON-ready and comparable.

    ``to_dict()`` of two replays of the same trace with the same configs
    is bit-identical (the acceptance regression test); ``decisions`` is
    the single interleaved admission+autoscale log.
    """

    trace_meta: Dict[str, Any]
    autoscale: bool
    decisions: List[Dict[str, Any]]
    queue_wait: Histogram
    offered: int = 0
    completed: int = 0
    degraded: int = 0
    shed: int = 0
    shed_by_tier: Dict[str, int] = field(default_factory=dict)
    uncalibrated: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    final_workers: int = 0
    peak_workers: int = 0
    makespan_s: float = 0.0
    tenants: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def queue_wait_p99_s(self) -> float:
        return self.queue_wait.percentile(99)

    def meets_slo(self, slo_s: float) -> bool:
        return self.queue_wait_p99_s <= slo_s

    def decision_summary(self) -> Dict[str, Any]:
        """The compact pin the golden replay test compares exactly."""
        return {
            "offered": self.offered,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "shed_by_tier": dict(sorted(self.shed_by_tier.items())),
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "peak_workers": self.peak_workers,
            "uncalibrated": self.uncalibrated,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_meta": dict(self.trace_meta),
            "autoscale": self.autoscale,
            "summary": self.decision_summary(),
            "final_workers": self.final_workers,
            "makespan_s": round(self.makespan_s, 9),
            "queue_wait_p99_s": round(self.queue_wait_p99_s, 9),
            "queue_wait": {
                k: (round(v, 9) if isinstance(v, float) else v)
                for k, v in self.queue_wait.dump().items()
                if k != "samples"
            },
            "queue_wait_samples": [
                round(s, 9) for s in self.queue_wait.dump()["samples"]
            ],
            "tenants": {t: dict(row) for t, row in sorted(self.tenants.items())},
            "decisions": [dict(d) for d in self.decisions],
        }


@dataclass
class _Queued:
    """One admitted request sitting in the virtual EDF queue."""

    event: TraceRequest
    enqueued_at: float
    predicted_cost_s: float


def replay_trace(
    trace: RequestTrace,
    admission_config: Optional[AdmissionConfig] = None,
    autoscale_config: Optional[AutoscaleConfig] = None,
    autoscale: bool = True,
    queue_depth: int = 64,
) -> ReplayResult:
    """Replay ``trace`` through the policy stack in virtual time.

    With ``autoscale=False`` the pool is pinned at
    ``autoscale_config.min_workers`` and no ticks fire -- the static
    baseline the SLO gate in ``bench_service.py`` compares against.
    """
    acfg = admission_config if admission_config is not None else AdmissionConfig()
    scfg = autoscale_config if autoscale_config is not None else AutoscaleConfig()
    log = DecisionLog(maxlen=None)
    controller = AdmissionController(acfg, decision_log=log)
    arch = str(trace.meta.get("arch", "spade-sextans"))
    queue = EDFQueue(queue_depth, acfg.tenant_quota_fraction)
    queue_wait = Histogram(max_samples=max(65536, len(trace) + 1))

    state = {
        "idle": scfg.min_workers,
        "busy": 0,
        "retiring": 0,
        "remaining": len(trace.requests),
        "t": 0.0,
        "peak": scfg.min_workers,
    }

    def capacity() -> int:
        return state["idle"] + state["busy"] - state["retiring"]

    def snapshot() -> ScaleSnapshot:
        return ScaleSnapshot(
            workers=capacity(),
            queue_depth=queue.qsize(),
            backlog_s=controller.backlog_s,
            queue_wait_p99_s=queue_wait.percentile(99),
        )

    def apply(target: int) -> int:
        current = capacity()
        if target > current:
            grow = target - current
            # Cancel pending retires before adding fresh workers.
            cancelled = min(grow, state["retiring"])
            state["retiring"] -= cancelled
            state["idle"] += grow - cancelled
            state["peak"] = max(state["peak"], capacity())
        elif target < current:
            shrink = current - target
            from_idle = min(shrink, state["idle"])
            state["idle"] -= from_idle
            state["retiring"] += shrink - from_idle
        return capacity()

    scaler = Autoscaler(
        snapshot, apply, config=scfg, decision_log=log, unit="workers"
    )

    import heapq as _heapq

    heap: List[Tuple[float, int, int, Any]] = []
    seq = [0]

    def push(t: float, kind: int, data: Any = None) -> None:
        _heapq.heappush(heap, (t, kind, seq[0], data))
        seq[0] += 1

    for event in trace.requests:
        push(event.arrival_s, _ARRIVAL, event)
    if autoscale:
        push(0.0, _TICK, None)

    result = ReplayResult(
        trace_meta=dict(trace.meta),
        autoscale=autoscale,
        decisions=[],
        queue_wait=queue_wait,
    )

    def dispatch(t: float) -> None:
        while state["idle"] > 0:
            try:
                item = queue.get_nowait()
            except Empty:
                return
            queue_wait.observe(t - item.enqueued_at)
            controller.started(item.predicted_cost_s)
            state["idle"] -= 1
            state["busy"] += 1
            push(t + item.event.cost_s, _COMPLETION, item)

    while heap:
        t, kind, _, data = _heapq.heappop(heap)
        state["t"] = t
        if kind == _COMPLETION:
            state["busy"] -= 1
            if state["retiring"] > 0:
                state["retiring"] -= 1
            else:
                state["idle"] += 1
            event = data.event
            controller.cost_model.observe(
                arch, event.cost_s, nnz=event.nnz, digest=event.digest
            )
            result.completed += 1
            dispatch(t)
        elif kind == _ARRIVAL:
            state["remaining"] -= 1
            event = data
            result.offered += 1
            estimate = controller.cost_model.predict(
                arch, nnz=event.nnz, digest=event.digest
            )
            if not estimate.calibrated:
                result.uncalibrated += 1
            decision = controller.decide(
                event.tenant, event.tier, estimate,
                workers=capacity(), queue_depth=queue.qsize(), now=t,
            )
            if decision.action == "admit":
                item = _Queued(event, t, estimate.cost_s)
                try:
                    queue.put_nowait(
                        item, deadline=t + event.deadline_s, tenant=event.tenant
                    )
                except QueueFull:
                    controller.shed(decision, "queue_full", now=t)
                    result.shed += 1
                    result.shed_by_tier[event.tier] = (
                        result.shed_by_tier.get(event.tier, 0) + 1
                    )
                except TenantQuotaExceeded:
                    controller.shed(decision, "tenant_quota", now=t)
                    result.shed += 1
                    result.shed_by_tier[event.tier] = (
                        result.shed_by_tier.get(event.tier, 0) + 1
                    )
                else:
                    controller.enqueued(decision)
                    dispatch(t)
            elif decision.action == "degrade":
                result.degraded += 1
            else:
                result.shed += 1
                result.shed_by_tier[event.tier] = (
                    result.shed_by_tier.get(event.tier, 0) + 1
                )
        else:  # _TICK
            scaler.tick(now=t)
            dispatch(t)  # scale-up may free capacity for queued work
            if state["remaining"] > 0 or queue.qsize() > 0 or state["busy"] > 0:
                push(t + scfg.tick_s, _TICK, None)

    result.decisions = log.entries()
    result.scale_ups = log.count("scale_up")
    result.scale_downs = log.count("scale_down")
    result.final_workers = capacity()
    result.peak_workers = state["peak"]
    result.makespan_s = state["t"]
    result.tenants = controller.tenant_accounting()
    return result
