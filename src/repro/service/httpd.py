"""The stdlib HTTP front end of the plan service.

Endpoints (all JSON):

- ``POST /plan`` -- body is a :class:`~repro.service.protocol.PlanRequest`
  object; replies ``200`` with ``{"served": ..., "plan": {...}}``,
  ``400`` on a malformed request, ``429`` + ``Retry-After`` when the
  admission queue sheds load, ``504`` on a per-request timeout, ``503``
  while draining, ``500`` when the plan computation failed *terminally*,
  and ``503`` + ``Retry-After`` when it failed with a *retryable* error
  (failure bodies carry a structured ``error_detail`` record -- see
  docs/faults.md).
- ``POST /matrices/<digest>/delta`` -- body is a :class:`~repro.
  streaming.delta.DeltaBatch` wire object addressed at the *current
  head* digest of a registered matrix lineage; replies ``200`` with
  ``{"applied": {...}, "plan": {...}}`` (the repaired plan under its new
  digest), ``400`` on a malformed batch, ``404`` for a digest no lineage
  carries, ``409`` + ``head_digest`` when the digest names a superseded
  head (re-read and retry), and ``503`` while draining (docs/streaming.md).
- ``GET /plan/<digest>`` -- a previously computed plan, or ``404``.
- ``GET /healthz`` -- liveness (``200`` while serving, ``503`` draining).
- ``GET /stats`` -- the full metrics snapshot (including
  ``deltas_applied`` / ``tiles_repaired`` counters and the live
  ``lineages`` count).

Built on :class:`http.server.ThreadingHTTPServer`: one thread per
connection feeding the service's bounded admission queue, which is where
concurrency is actually limited.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.tracer import get_tracer
from repro.service.planner import (
    AdmissionRejected,
    PlanFailed,
    PlanService,
    PlanTimeout,
    ServiceClosed,
)
from repro.service.protocol import PlanRequest, ProtocolError
from repro.streaming.lineage import StaleDigestError, UnknownLineageError

__all__ = ["PlanHTTPServer", "PlanRequestHandler", "make_server"]

_HEX = set("0123456789abcdef")


class PlanRequestHandler(BaseHTTPRequestHandler):
    server: "PlanHTTPServer"
    protocol_version = "HTTP/1.1"

    #: Status of the last reply, for span annotation.
    _last_status: int = 0

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 -- stdlib naming
        with get_tracer().span(
            "http.request", cat="http", method="POST", path=self.path
        ) as span:
            self._handle_post()
            span.set(status=self._last_status)

    def _handle_post(self) -> None:
        path = self.path.rstrip("/")
        if path.startswith("/matrices/") and path.endswith("/delta"):
            digest = path[len("/matrices/"):-len("/delta")]
            self._handle_post_delta(digest)
            return
        if path != "/plan":
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        try:
            payload = self._read_json_body()
            request = PlanRequest.from_dict(payload)
        except ProtocolError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        service = self.server.service
        try:
            result, served = service.plan(request)
        except AdmissionRejected as exc:
            self._send_json(
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                extra_headers={"Retry-After": f"{exc.retry_after_s:.3f}"},
            )
        except PlanTimeout as exc:
            self._send_json(504, {"error": str(exc), "digest": exc.digest})
        except ServiceClosed as exc:
            self._send_json(503, {"error": str(exc)})
        except PlanFailed as exc:
            # Retryable failures answer 503 + Retry-After so well-behaved
            # clients back off and try again; terminal failures stay 500
            # (a retry would reproduce them).  Either way the structured
            # record rides along for diagnosis (docs/faults.md).
            detail = exc.error.to_dict()
            if exc.retryable:
                retry_after = service._retry_after()
                self._send_json(
                    503,
                    {
                        "error": str(exc),
                        "error_detail": detail,
                        "retry_after_s": retry_after,
                    },
                    extra_headers={"Retry-After": f"{retry_after:.3f}"},
                )
            else:
                self._send_json(500, {"error": str(exc), "error_detail": detail})
        except ProtocolError as exc:
            # Raised while resolving the matrix inside the worker path.
            self._send_json(400, {"error": str(exc)})
        else:
            self._send_json(200, {"served": served, "plan": result.to_dict()})

    def _handle_post_delta(self, digest: str) -> None:
        if not digest or set(digest) - _HEX:
            self._send_json(400, {"error": f"not a hex digest: {digest!r}"})
            return
        service = self.server.service
        try:
            payload = self._read_json_body()
            result, update = service.apply_delta(digest, payload)
        except ProtocolError as exc:
            self._send_json(400, {"error": str(exc)})
        except UnknownLineageError as exc:
            self._send_json(404, {"error": str(exc.args[0]), "digest": exc.digest})
        except StaleDigestError as exc:
            self._send_json(
                409,
                {
                    "error": str(exc),
                    "digest": exc.digest,
                    "head_digest": exc.head_digest,
                },
            )
        except ServiceClosed as exc:
            self._send_json(503, {"error": str(exc)})
        except ValueError as exc:
            # Malformed DeltaBatch wire form or out-of-bounds coordinates.
            self._send_json(400, {"error": str(exc)})
        else:
            self._send_json(
                200,
                {
                    "applied": {
                        "prev_digest": update.prev_digest,
                        "new_digest": update.new_digest,
                        "n_inserted": update.report.n_inserted,
                        "n_overwritten": update.report.n_overwritten,
                        "n_deleted": update.report.n_deleted,
                        "nnz": update.nnz,
                        "n_tiles": update.n_tiles,
                        "tiles_repaired": update.repair.tiles_repaired,
                        "repaired_fraction": update.repair.repaired_fraction,
                        "rebuilt": update.report.rebuilt,
                    },
                    "plan": result.to_dict(),
                },
            )

    def do_GET(self) -> None:  # noqa: N802
        with get_tracer().span(
            "http.request", cat="http", method="GET", path=self.path
        ) as span:
            self._handle_get()
            span.set(status=self._last_status)

    def _handle_get(self) -> None:
        path = self.path.rstrip("/") or "/"
        service = self.server.service
        if path == "/healthz":
            if service.closed:
                self._send_json(503, {"status": "draining"})
            else:
                self._send_json(200, {"status": "ok"})
        elif path == "/stats":
            self._send_json(200, service.stats())
        elif path.startswith("/plan/"):
            digest = path[len("/plan/"):]
            if not digest or set(digest) - _HEX:
                self._send_json(400, {"error": f"not a hex digest: {digest!r}"})
                return
            result = service.store.get(digest)
            if result is None:
                self._send_json(404, {"error": f"no stored plan for {digest[:12]}"})
            else:
                self._send_json(200, {"served": "store", "plan": result.to_dict()})
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    # ------------------------------------------------------------------
    def _read_json_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ProtocolError("bad Content-Length header") from None
        if length <= 0:
            raise ProtocolError("request body required")
        if length > self.server.max_body_bytes:
            raise ProtocolError(
                f"request body too large ({length} > {self.server.max_body_bytes} bytes)"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(fmt, *args)


class PlanHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`PlanService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: PlanService,
        verbose: bool = False,
        max_body_bytes: int = 1 << 20,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes
        super().__init__(address, PlanRequestHandler)


def make_server(
    service: PlanService,
    host: str = "127.0.0.1",
    port: int = 8750,
    verbose: bool = False,
) -> PlanHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) without starting to serve."""
    return PlanHTTPServer((host, port), service, verbose=verbose)
