"""The stdlib HTTP front end of the plan service.

Endpoints (all JSON):

- ``POST /plan`` -- body is a :class:`~repro.service.protocol.PlanRequest`
  object; replies ``200`` with ``{"served": ..., "plan": {...}}``,
  ``400`` on a malformed request, ``429`` + ``Retry-After`` when the
  admission queue sheds load, ``504`` on a per-request timeout, ``503``
  + ``Retry-After`` while draining, ``500`` when the plan computation
  failed *terminally*, and ``503`` + ``Retry-After`` when it failed with
  a *retryable* error (failure bodies carry a structured
  ``error_detail`` record -- see docs/faults.md).
- ``POST /matrices/<digest>/delta`` -- body is a :class:`~repro.
  streaming.delta.DeltaBatch` wire object addressed at the *current
  head* digest of a registered matrix lineage; replies ``200`` with
  ``{"applied": {...}, "plan": {...}}`` (the repaired plan under its new
  digest), ``400`` on a malformed batch, ``404`` for a digest no lineage
  carries, ``409`` + ``head_digest`` when the digest names a superseded
  head (re-read and retry), and ``503`` + ``Retry-After`` while draining
  (docs/streaming.md).
- ``GET /plan/<digest>`` -- a previously computed plan, or ``404``.
- ``GET /healthz`` -- liveness (``200`` while serving, ``503`` draining).
- ``GET /stats`` -- the full metrics snapshot (including
  ``deltas_applied`` / ``tiles_repaired`` counters, the live
  ``lineages`` count, and a ``server`` record carrying the *bound*
  host/port -- with ``--port 0`` that is the kernel-chosen ephemeral
  port, so callers never have to race on a fixed one).

The endpoint logic itself lives in :mod:`repro.service.api`, shared with
the cluster shard transport (docs/cluster.md); this module only maps
HTTP requests onto it.  Built on :class:`http.server.
ThreadingHTTPServer`: one thread per connection feeding the service's
bounded admission queue, which is where concurrency is actually limited.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.tracer import get_tracer
from repro.service import api
from repro.service.planner import PlanService
from repro.service.protocol import ProtocolError

__all__ = ["PlanHTTPServer", "PlanRequestHandler", "make_server"]


class PlanRequestHandler(BaseHTTPRequestHandler):
    server: "PlanHTTPServer"
    protocol_version = "HTTP/1.1"

    #: Status of the last reply, for span annotation.
    _last_status: int = 0

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 -- stdlib naming
        with get_tracer().span(
            "http.request", cat="http", method="POST", path=self.path
        ) as span:
            self._handle_post()
            span.set(status=self._last_status)

    def _handle_post(self) -> None:
        path = self.path.rstrip("/")
        service = self.server.service
        try:
            payload = self._read_json_body()
        except ProtocolError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        if path.startswith("/matrices/") and path.endswith("/delta"):
            digest = path[len("/matrices/"):-len("/delta")]
            self._send_reply(api.delta_endpoint(service, digest, payload))
        elif path == "/plan":
            self._send_reply(api.plan_endpoint(service, payload))
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def do_GET(self) -> None:  # noqa: N802
        with get_tracer().span(
            "http.request", cat="http", method="GET", path=self.path
        ) as span:
            self._handle_get()
            span.set(status=self._last_status)

    def _handle_get(self) -> None:
        path = self.path.rstrip("/") or "/"
        service = self.server.service
        if path == "/healthz":
            self._send_reply(api.healthz_endpoint(service))
        elif path == "/stats":
            self._send_reply(
                api.stats_endpoint(service, server=self.server.describe())
            )
        elif path.startswith("/plan/"):
            digest = path[len("/plan/"):]
            self._send_reply(api.get_plan_endpoint(service, digest))
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    # ------------------------------------------------------------------
    def _read_json_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ProtocolError("bad Content-Length header") from None
        if length <= 0:
            raise ProtocolError("request body required")
        if length > self.server.max_body_bytes:
            raise ProtocolError(
                f"request body too large ({length} > {self.server.max_body_bytes} bytes)"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None

    def _send_reply(self, reply: api.Reply) -> None:
        status, body, headers = reply
        self._send_json(status, body, extra_headers=headers or None)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(fmt, *args)


class PlanHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`PlanService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: PlanService,
        verbose: bool = False,
        max_body_bytes: int = 1 << 20,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes
        super().__init__(address, PlanRequestHandler)

    @property
    def bound_port(self) -> int:
        """The actually bound port (the ephemeral one for ``port=0``)."""
        return int(self.server_address[1])

    def describe(self) -> Dict[str, Any]:
        """The ``server`` record ``/stats`` reports (host + bound port)."""
        return {"host": self.server_address[0], "port": self.bound_port}


def make_server(
    service: PlanService,
    host: str = "127.0.0.1",
    port: int = 8750,
    verbose: bool = False,
) -> PlanHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) without starting to serve."""
    return PlanHTTPServer((host, port), service, verbose=verbose)
