"""The content-addressed plan store.

Layered on the experiment cache machinery from PR 1: completed
:class:`~repro.service.protocol.PlanResult` records live in a
:class:`~repro.experiments.cache.ResultCache` keyed by the request
digest, and the generated hot/cold formats plus the tile assignment are
persisted as ``.npz`` artifacts (via :mod:`repro.pipeline.serialize`,
whose writes are atomic) under ``<store_dir>/artifacts/<digest>/``.

A warm request therefore costs one pickle load; the accelerator-ready
formats are already on disk, which is exactly the paper's
save-and-reuse story (Sec. VI-B) turned into a serving cache.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.experiments.cache import ResultCache, default_cache_dir
from repro.service.protocol import PlanResult

__all__ = ["PlanStore", "default_store_dir"]


def default_store_dir() -> Path:
    """``$HOTTILES_CACHE_DIR``/plans (or ``~/.cache/hottiles/plans``)."""
    return default_cache_dir() / "plans"


class PlanStore:
    """Digest-keyed persistence for plan results and their artifacts."""

    def __init__(
        self,
        store_dir: Union[str, Path, None] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.store_dir = Path(store_dir) if store_dir is not None else default_store_dir()
        self.results = ResultCache(self.store_dir / "results", max_bytes=max_bytes)
        self.artifacts_dir = self.store_dir / "artifacts"
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[PlanResult]:
        """The stored plan for ``digest``, or ``None`` (counts hit/miss)."""
        value = self.results.get(digest)
        if value is not None and not isinstance(value, PlanResult):
            # Foreign or stale entry under our key: treat as a miss.
            return None
        return value

    def put(self, result: PlanResult) -> None:
        self.results.put(result.digest, result)

    def __contains__(self, digest: str) -> bool:
        # Same type check as get(): a foreign or stale pickle under our
        # key must not make the digest look present when get() would
        # answer None.  peek() keeps presence probes out of the hit rate.
        return isinstance(self.results.peek(digest), PlanResult)

    # ------------------------------------------------------------------
    def save_artifacts(self, digest: str, preprocess) -> List[str]:
        """Persist the formats + assignment of one preprocessing run.

        Returns the written paths.  Each file write is atomic, so a
        concurrent reader (or a crashed worker) can never observe a torn
        ``.npz``; the directory itself fills in piecemeal, which is why
        the :class:`PlanResult` (written last, into the results cache)
        is the only publication point readers trust.
        """
        from repro.pipeline.serialize import save_assignment, save_format

        out = self.artifacts_dir / digest
        out.mkdir(parents=True, exist_ok=True)
        saved: List[str] = []
        for side, fmt in (("hot", preprocess.hot_format), ("cold", preprocess.cold_format)):
            if fmt is None:
                continue
            path = save_format(fmt, out / f"{side}_{type(fmt).__name__.lower()}.npz")
            saved.append(str(path))
        chosen = preprocess.partition.chosen
        path = save_assignment(
            chosen.assignment,
            out / "assignment.npz",
            label=chosen.label,
            mode=chosen.mode.value,
        )
        saved.append(str(path))
        return saved

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self.results.hits

    @property
    def misses(self) -> int:
        return self.results.misses

    @property
    def hit_rate(self) -> float:
        return self.results.hit_rate

    def stats(self) -> Dict[str, Any]:
        stats = self.results.stats()
        stats["store_dir"] = str(self.store_dir)
        stats["hit_rate"] = self.hit_rate
        return stats

    def flush_counters(self) -> None:
        self.results.flush_counters()

    def clear(self) -> int:
        """Drop every stored plan and artifact; returns plans removed."""
        removed = self.results.clear()
        if self.artifacts_dir.exists():
            shutil.rmtree(self.artifacts_dir)
            self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        return removed
