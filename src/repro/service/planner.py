"""The partition-planning service core.

:class:`PlanService` owns a bounded admission queue, a pool of plan
worker threads running :class:`~repro.pipeline.preprocess.
HotTilesPreprocessor`, the content-addressed :class:`~repro.service.
store.PlanStore`, and a :class:`~repro.service.metrics.MetricsRegistry`.

Request lifecycle::

    plan(request)
      -> store hit?            serve immediately           [completed]
      -> digest in flight?     join the existing compute   [coalesced, completed]
      -> queue has room?       enqueue a new compute       [completed | failed]
      -> queue full            AdmissionRejected           [rejected]

Every admitted request waits on the shared computation with its own
timeout; a computation abandoned by all of its waiters before a worker
picks it up is cancelled instead of executed.  Threads (not processes)
are the right grain here: one plan is milliseconds-to-seconds of
numpy-heavy work that releases the GIL in its hot loops, and the store
and coalescing map are cheap to share in-process.

Failure handling (docs/faults.md): a worker-side exception is captured
as a typed :class:`~repro.faults.errors.StructuredError` (exception
type, message, traceback tail, retryable flag) instead of a flattened
string.  *Retryable* failures (timeouts, connection-shaped OS errors,
:class:`~repro.faults.errors.RetryableError`) are retried in the worker
under a bounded exponential-backoff-with-jitter
:class:`~repro.faults.retry.RetryPolicy` before the error is surfaced;
*terminal* failures surface immediately.  The most recent failures are
kept in a ring exposed as ``last_errors`` in :meth:`PlanService.stats`.
With ``degraded_fallback=True``, a request whose wait bound elapses
receives a roofline-only fallback plan (label ``roofline-*``) instead of
a :class:`PlanTimeout` -- graceful degradation for callers that prefer a
coarse answer over none.

Counter semantics (the reconciliation the load generator checks):

- every arriving request ends in exactly one of ``requests_rejected``,
  ``requests_timeout``, ``requests_failed``, ``requests_degraded``, or
  ``requests_completed``;
- ``requests_accepted`` counts everything admitted past backpressure
  (store hits, coalesced joins, and new computations), so after a drain
  ``accepted == completed + failed + timeout + degraded``;
- ``requests_coalesced`` is informational (a subset of ``accepted``);
- ``plans_computed`` / ``plans_cancelled`` count unique computations,
  not requests; ``plans_retried`` counts retry attempts after
  retryable failures (also not requests).
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from typing import Any, Deque, Dict, Mapping, Optional, Tuple, Union

from repro.faults.errors import StructuredError, is_retryable
from repro.faults.retry import RetryPolicy
from repro.obs.tracer import get_tracer
from repro.service.admission import (
    DEFAULT_TENANT,
    DEFAULT_TIER,
    AdmissionController,
    EDFQueue,
    QueueFull,
    TenantQuotaExceeded,
)
from repro.service.autoscale import Autoscaler, ScaleSnapshot
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import PlanRequest, PlanResult
from repro.service.store import PlanStore
from repro.streaming.delta import DeltaBatch
from repro.streaming.lineage import LineageRegistry, LineageUpdate, MatrixLineage

__all__ = [
    "AdmissionRejected",
    "PlanTimeout",
    "PlanFailed",
    "ServiceClosed",
    "PlanService",
]


class AdmissionRejected(RuntimeError):
    """The request was shed: queue full, tenant over quota, or the
    admission policy's pressure action for its tier.  Retry after
    ``retry_after_s``; ``tier``/``reason`` say which policy path shed it
    (``None`` on the plain queue-full path)."""

    def __init__(
        self,
        retry_after_s: float,
        tier: Optional[str] = None,
        reason: Optional[str] = None,
    ) -> None:
        super().__init__(
            f"admission queue full, retry after {retry_after_s:.3f}s"
            if reason is None
            else f"request shed ({reason}), retry after {retry_after_s:.3f}s"
        )
        self.retry_after_s = retry_after_s
        self.tier = tier
        self.reason = reason


class PlanTimeout(TimeoutError):
    """The caller's wait bound elapsed before the plan completed."""

    def __init__(self, digest: str, timeout_s: float) -> None:
        super().__init__(f"plan {digest[:12]} not ready within {timeout_s:.3f}s")
        self.digest = digest


class PlanFailed(RuntimeError):
    """The plan computation raised; carries the structured worker error.

    ``error`` is the :class:`~repro.faults.errors.StructuredError`
    record (type, message, traceback tail, retryable flag); ``str(exc)``
    stays the ``"Type: message"`` form earlier callers parsed.
    """

    def __init__(self, error: StructuredError) -> None:
        super().__init__(str(error))
        self.error = error

    @property
    def retryable(self) -> bool:
        return self.error.retryable


class ServiceClosed(RuntimeError):
    """The service is draining or stopped and admits no new requests."""


class _Inflight:
    """One shared computation that any number of requests wait on."""

    __slots__ = ("digest", "request", "event", "result", "error", "waiters",
                 "started", "cancelled", "enqueued_at", "predicted_cost_s")

    def __init__(self, digest: str, request: PlanRequest) -> None:
        self.digest = digest
        self.request = request
        self.event = threading.Event()
        self.result: Optional[PlanResult] = None
        self.error: Optional[StructuredError] = None
        self.waiters = 1
        self.started = False
        self.cancelled = False
        self.enqueued_at = time.monotonic()
        self.predicted_cost_s = 0.0


_SENTINEL = object()  #: shutdown: the receiving worker exits (close())
_RETIRE = object()  #: scale-down: the receiving worker exits (set_workers())


class PlanService:
    """Async plan-serving: admission control, coalescing, worker pool."""

    def __init__(
        self,
        store: Optional[PlanStore] = None,
        workers: int = 2,
        queue_depth: int = 16,
        default_timeout_s: float = 60.0,
        metrics: Optional[MetricsRegistry] = None,
        retry: Optional[RetryPolicy] = None,
        degraded_fallback: bool = False,
        error_ring: int = 16,
        track_lineage: bool = True,
        max_lineages: int = 64,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.store = store if store is not None else PlanStore()
        self.workers = int(workers)
        self.queue_depth = int(queue_depth)
        self.default_timeout_s = float(default_timeout_s)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.retry = retry if retry is not None else RetryPolicy()
        self.degraded_fallback = bool(degraded_fallback)
        self.track_lineage = bool(track_lineage)
        self.lineages = LineageRegistry(max_lineages=max_lineages)
        self.started_unix = time.time()
        self._retry_rng = self.retry.rng()
        self._errors: Deque[Dict[str, Any]] = collections.deque(maxlen=error_ring)

        # With an AdmissionController the queue orders by deadline and
        # enforces per-tenant quotas; without one every deadline is 0, so
        # EDF degrades to exactly the FIFO the stdlib queue provided.
        self._admission = admission
        quota_fraction = (
            admission.config.tenant_quota_fraction if admission is not None else 1.0
        )
        self._queue = EDFQueue(queue_depth, quota_fraction)
        self._autoscaler: Optional[Autoscaler] = None
        self._inflight: Dict[str, _Inflight] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._discard = False
        self._shutdown_started = False
        self._deltas_inflight = 0
        self._deltas_idle = threading.Event()
        self._deltas_idle.set()

        m = self.metrics
        self._accepted = m.counter("requests_accepted")
        self._rejected = m.counter("requests_rejected")
        self._coalesced = m.counter("requests_coalesced")
        self._completed = m.counter("requests_completed")
        self._failed = m.counter("requests_failed")
        self._timeout = m.counter("requests_timeout")
        self._degraded = m.counter("requests_degraded")
        self._computed = m.counter("plans_computed")
        # Which runtime model selected each computed plan (audit trail;
        # 'contention' only appears for PCIe-attached architectures).
        self._scored_contention = m.counter("plans_scored_contention")
        self._scored_naive = m.counter("plans_scored_naive")
        self._cancelled = m.counter("plans_cancelled")
        self._retried = m.counter("plans_retried")
        self._deltas_applied = m.counter("deltas_applied")
        self._tiles_repaired = m.counter("tiles_repaired")
        self._adm_shed = m.counter("admission_shed")
        self._adm_degraded = m.counter("admission_degraded")
        self._adm_uncalibrated = m.counter("admission_uncalibrated")
        self._queue_gauge = m.gauge("queue_depth")
        self._inflight_gauge = m.gauge("plans_in_flight")
        self._workers_gauge = m.gauge("workers")
        self._workers_gauge.set(self.workers)
        self._latency = m.histogram("request_latency_s")
        self._plan_wall = m.histogram("plan_wall_s")
        self._queue_wait = m.histogram("queue_wait_s")
        self._delta_wall = m.histogram("delta_apply_s")

        self._worker_seq = self.workers
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"plan-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------
    def plan(
        self, request: PlanRequest, timeout_s: Optional[float] = None
    ) -> Tuple[PlanResult, str]:
        """Serve one plan request, blocking until done or timed out.

        Returns ``(result, served)`` where ``served`` is ``"store"``
        (warm hit), ``"computed"`` (this request triggered the
        computation), ``"coalesced"`` (joined an in-flight one), or
        ``"degraded"`` (wait bound elapsed and ``degraded_fallback``
        produced a roofline-only plan).

        Raises :class:`ServiceClosed`, :class:`AdmissionRejected`,
        :class:`PlanTimeout`, :class:`PlanFailed`, or
        :class:`~repro.service.protocol.ProtocolError`.

        Every call emits exactly one ``service.request`` span on the
        global tracer, annotated with the request digest and its final
        outcome (``store`` / ``computed`` / ``coalesced`` / ``degraded``
        / ``rejected`` / ``timeout`` / ``failed`` / ``closed``) -- the
        invariant the
        tracing concurrency test reconciles against the counters above.
        """
        with get_tracer().span("service.request", cat="service") as req_span:
            try:
                result, served = self._plan_traced(request, timeout_s, req_span)
            except AdmissionRejected:
                req_span.set(outcome="rejected")
                raise
            except PlanTimeout:
                req_span.set(outcome="timeout")
                raise
            except PlanFailed:
                req_span.set(outcome="failed")
                raise
            except ServiceClosed:
                req_span.set(outcome="closed")
                raise
            req_span.set(outcome=served)
            return result, served

    def _plan_traced(
        self, request: PlanRequest, timeout_s: Optional[float], req_span: Any
    ) -> Tuple[PlanResult, str]:
        tracer = get_tracer()
        start = time.monotonic()
        if self._closed:
            raise ServiceClosed("service is shutting down")
        if timeout_s is None:
            timeout_s = (
                request.timeout_s
                if request.timeout_s is not None
                else self.default_timeout_s
            )
        digest = request.digest()
        req_span.set(digest=digest[:12])

        with tracer.span("service.store_lookup", cat="service", digest=digest[:12]):
            cached = self.store.get(digest)
        if cached is not None:
            self._accepted.inc()
            self._completed.inc()
            self._latency.observe(time.monotonic() - start)
            return cached, "store"

        entry, primary = self._join_or_register(digest, request)
        if primary:
            if self._closed:  # close() raced us between register and enqueue
                with self._lock:
                    self._inflight.pop(digest, None)
                raise ServiceClosed("service is shutting down")
            if self._admission is not None:
                outcome = self._admit_predictive(
                    entry, request, digest, start, tracer
                )
                if outcome is not None:
                    return outcome
            else:
                try:
                    self._queue.put_nowait(entry)
                except QueueFull:
                    with self._lock:
                        self._inflight.pop(digest, None)
                    self._rejected.inc()
                    raise AdmissionRejected(self._retry_after()) from None
            self._queue_gauge.set(self._queue.qsize())
        self._accepted.inc()
        if not primary:
            self._coalesced.inc()

        served = "computed" if primary else "coalesced"
        with tracer.span(
            "service.wait", cat="service", digest=digest[:12], served=served
        ):
            completed = entry.event.wait(timeout_s)
        if not completed:
            with self._lock:
                entry.waiters -= 1
                if entry.waiters <= 0 and not entry.started:
                    entry.cancelled = True
            if self.degraded_fallback:
                fallback = self._degraded_plan(request, digest, tracer)
                if fallback is not None:
                    self._degraded.inc()
                    self._latency.observe(time.monotonic() - start)
                    return fallback, "degraded"
            self._timeout.inc()
            raise PlanTimeout(digest, timeout_s)
        if entry.error is not None:
            self._failed.inc()
            raise PlanFailed(entry.error)
        self._completed.inc()
        self._latency.observe(time.monotonic() - start)
        assert entry.result is not None
        return entry.result, served

    def apply_delta(
        self, digest: str, delta: Union[DeltaBatch, Mapping[str, Any]]
    ) -> Tuple[PlanResult, LineageUpdate]:
        """Apply a streaming delta to the matrix lineage behind ``digest``.

        ``digest`` must be the *current head* of a lineage this service
        registered (the digest returned by the original plan, or by the
        most recent delta).  ``delta`` is a :class:`~repro.streaming.
        delta.DeltaBatch` or its wire-form mapping (``DeltaBatch.
        from_dict``).  Returns the repaired plan's :class:`~repro.
        service.protocol.PlanResult` -- published to the store under the
        new head digest -- together with the :class:`~repro.streaming.
        lineage.LineageUpdate` accounting record.

        Raises :class:`ServiceClosed` when draining,
        :class:`~repro.streaming.lineage.UnknownLineageError` for a
        digest no lineage ever carried (HTTP 404),
        :class:`~repro.streaming.lineage.StaleDigestError` when the
        digest names a superseded head (HTTP 409; the error carries the
        current head), and :class:`ValueError` for a malformed payload
        (HTTP 400).  An empty batch is a pure no-op: same digest, same
        plan, no counters advanced.
        """
        tracer = get_tracer()
        # Admission and the in-flight count move together under the lock:
        # once close() has observed zero in-flight deltas after setting
        # _closed, no new delta can slip in, so a drain never interrupts
        # a half-advanced lineage head (every delta either completes
        # fully or is rejected here, before touching the lineage).
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shutting down")
            self._deltas_inflight += 1
            self._deltas_idle.clear()
        try:
            return self._apply_delta_admitted(digest, delta, tracer)
        finally:
            with self._lock:
                self._deltas_inflight -= 1
                if self._deltas_inflight == 0:
                    self._deltas_idle.set()

    def _apply_delta_admitted(
        self, digest: str, delta: Union[DeltaBatch, Mapping[str, Any]], tracer: Any
    ) -> Tuple[PlanResult, LineageUpdate]:
        if not isinstance(delta, DeltaBatch):
            delta = DeltaBatch.from_dict(delta)
        start = time.monotonic()
        with tracer.span(
            "service.apply_delta", cat="service", digest=digest[:12]
        ) as span:
            update = self.lineages.apply(digest, delta)
            lineage = self.lineages.resolve(update.new_digest)
            wall = time.monotonic() - start
            span.set(
                new_digest=update.new_digest[:12],
                tiles_repaired=update.repair.tiles_repaired,
            )
            if update.new_digest == update.prev_digest:
                base = lineage.meta
                assert isinstance(base, PlanResult)
                return base, update
            chosen = update.partition.chosen
            base = lineage.meta
            assert isinstance(base, PlanResult)
            result = dataclasses.replace(
                base,
                digest=update.new_digest,
                nnz=update.nnz,
                label=chosen.label,
                mode=chosen.mode.value,
                n_tiles=update.n_tiles,
                hot_tiles=chosen.hot_tile_count,
                hot_nnz_fraction=update.hot_nnz_fraction,
                predicted_time_s=chosen.predicted_time_s,
                naive_time_s=(
                    chosen.naive_time_s
                    if chosen.naive_time_s is not None
                    else chosen.predicted_time_s
                ),
                scorer=chosen.scorer,
                scan_s=0.0,
                partition_s=wall,
                format_generation_s=0.0,
                plan_wall_s=wall,
                artifacts=(),
                created_unix=time.time(),
            )
            lineage.meta = result
            with tracer.span(
                "service.store_publish", cat="service", digest=update.new_digest[:12]
            ):
                self.store.put(result)
            self._deltas_applied.inc()
            self._tiles_repaired.inc(update.repair.tiles_repaired)
            self._delta_wall.observe(wall)
            return result, update

    def _join_or_register(
        self, digest: str, request: PlanRequest
    ) -> Tuple[_Inflight, bool]:
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shutting down")
            entry = self._inflight.get(digest)
            if entry is not None and not entry.cancelled:
                entry.waiters += 1
                return entry, False
            entry = _Inflight(digest, request)
            self._inflight[digest] = entry
            return entry, True

    def _admit_predictive(
        self,
        entry: _Inflight,
        request: PlanRequest,
        digest: str,
        start: float,
        tracer: Any,
    ) -> Optional[Tuple[PlanResult, str]]:
        """Run the predictive admission policy for one primary request.

        Returns ``None`` when the request was enqueued (the caller then
        waits on the shared computation as usual), or ``(result,
        "degraded")`` when the policy degraded it to a roofline-only
        answer.  Sheds -- by tier policy, queue capacity, or tenant
        quota -- raise :class:`AdmissionRejected` (HTTP 429 +
        Retry-After, docs/autoscaling.md).
        """
        admission = self._admission
        assert admission is not None
        tenant = request.tenant if request.tenant is not None else DEFAULT_TENANT
        tier = request.tier if request.tier is not None else DEFAULT_TIER
        estimate = admission.cost_model.predict(
            request.arch, nnz=self._nnz_hint(request), digest=digest
        )
        if not estimate.calibrated:
            self._adm_uncalibrated.inc()
        decision = admission.decide(
            tenant, tier, estimate,
            workers=self.workers, queue_depth=self._queue.qsize(),
        )
        if decision.action == "degrade":
            fallback = self._degraded_plan(request, digest, tracer)
            if fallback is not None:
                with self._lock:
                    self._inflight.pop(digest, None)
                self._accepted.inc()
                self._degraded.inc()
                self._adm_degraded.inc()
                self._latency.observe(time.monotonic() - start)
                return fallback, "degraded"
            # The cheap answer failed; fall through and admit normally.
        elif decision.action == "shed":
            with self._lock:
                self._inflight.pop(digest, None)
            self._rejected.inc()
            self._adm_shed.inc()
            raise AdmissionRejected(
                self._retry_after(), tier=tier, reason=decision.reason
            )
        deadline_rel = (
            request.deadline_s
            if request.deadline_s is not None
            else admission.config.deadline_for(tier)
        )
        entry.predicted_cost_s = estimate.cost_s
        try:
            self._queue.put_nowait(
                entry, deadline=start + deadline_rel, tenant=tenant
            )
        except (QueueFull, TenantQuotaExceeded) as exc:
            with self._lock:
                self._inflight.pop(digest, None)
            reason = (
                "tenant_quota" if isinstance(exc, TenantQuotaExceeded)
                else "queue_full"
            )
            admission.shed(decision, reason)
            self._rejected.inc()
            self._adm_shed.inc()
            raise AdmissionRejected(
                self._retry_after(), tier=tier, reason=reason
            ) from None
        admission.enqueued(decision)
        return None

    @staticmethod
    def _nnz_hint(request: PlanRequest) -> Optional[int]:
        """A cheap nnz estimate for the cost model, without resolving."""
        gen = request.generator
        if gen is not None and gen.get("nnz") is not None:
            return int(gen["nnz"])
        return None

    def retry_after_hint(self) -> float:
        """Advisory client backoff: about one plan's worth of queue motion."""
        p50 = self._plan_wall.percentile(50)
        return max(0.05, min(p50 if p50 > 0 else 0.1, 5.0))

    # Kept as an alias: earlier callers reached for the private name.
    _retry_after = retry_after_hint

    def _degraded_plan(
        self, request: PlanRequest, digest: str, tracer: Any
    ) -> Optional[PlanResult]:
        """Roofline-only fallback for a request whose wait bound elapsed.

        Skips the scan/partition/format-generation pipeline entirely:
        resolve the matrix, predict the whole-matrix runtime of each
        worker group with the holistic roofline (PCIe-capped bandwidth
        for the hot group, as in the IUnaware baseline), and answer with
        the faster group's homogeneous plan.  The result is *not*
        published to the store -- it is a coarse stopgap, not the real
        plan (docs/faults.md).  Returns ``None`` if even the fallback
        fails, in which case the caller falls through to PlanTimeout.
        """
        from repro.core.contention import effective_cold_bw, effective_hot_bw
        from repro.core.roofline import roofline_estimate

        start = time.monotonic()
        try:
            with tracer.span("service.degraded", cat="service", digest=digest[:12]):
                matrix = request.resolve_matrix()
                arch = request.build_architecture()
                # Same drain-rate caps as the contention evaluator: the hot
                # group is serialized through PCIe *and* DRAM; the cold
                # group through DRAM (and its own aggregate peak rate).
                bw = effective_cold_bw(arch)
                hot_bw = effective_hot_bw(arch)
                candidates = []
                if arch.hot.count > 0:
                    th = roofline_estimate(
                        matrix, arch.hot.traits, arch.problem, hot_bw
                    ).time_s
                    candidates.append((th / arch.hot.count, "roofline-hot-only", 1.0))
                if arch.cold.count > 0:
                    tc = roofline_estimate(
                        matrix, arch.cold.traits, arch.problem, bw
                    ).time_s
                    candidates.append((tc / arch.cold.count, "roofline-cold-only", 0.0))
                predicted_s, label, hot_frac = min(candidates)
                return PlanResult(
                    digest=digest,
                    arch=request.arch,
                    scale=request.scale,
                    cache_aware=request.cache_aware,
                    n_rows=matrix.n_rows,
                    n_cols=matrix.n_cols,
                    nnz=matrix.nnz,
                    label=label,
                    mode="parallel",
                    n_tiles=0,
                    hot_tiles=0,
                    hot_nnz_fraction=hot_frac,
                    predicted_time_s=predicted_s,
                    scan_s=0.0,
                    partition_s=0.0,
                    format_generation_s=0.0,
                    plan_wall_s=time.monotonic() - start,
                    artifacts=(),
                    created_unix=time.time(),
                    naive_time_s=predicted_s,
                    scorer="roofline",
                )
        except Exception as exc:  # noqa: BLE001 -- fallback is best-effort
            tracer.event(
                "service.degraded_failed",
                cat="service",
                digest=digest[:12],
                error=f"{type(exc).__name__}: {exc}",
            )
            return None

    # ------------------------------------------------------------------
    # The worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL or item is _RETIRE:
                return
            tracer = get_tracer()
            self._queue_gauge.set(self._queue.qsize())
            if self._admission is not None:
                # The item left the queue (run or cancel): its predicted
                # cost no longer counts toward the admission backlog.
                self._admission.started(item.predicted_cost_s)
            with self._lock:
                if item.cancelled or self._discard:
                    self._inflight.pop(item.digest, None)
                    item.error = StructuredError(
                        type="Cancelled",
                        message="cancelled before execution",
                        retryable=True,
                    )
                    item.event.set()
                    self._cancelled.inc()
                    tracer.event(
                        "service.cancelled", cat="service", digest=item.digest[:12]
                    )
                    continue
                item.started = True
            picked_up = time.monotonic()
            self._queue_wait.observe(picked_up - item.enqueued_at)
            if tracer.enabled:
                # The wait already happened; backfill it as a completed
                # span ending now, on this worker's wall track.
                tracer.complete(
                    "service.queue_wait",
                    ts=tracer.rel(item.enqueued_at),
                    dur=picked_up - item.enqueued_at,
                    process="wall",
                    track=threading.current_thread().name,
                    cat="service",
                    digest=item.digest[:12],
                )
            self._inflight_gauge.inc()
            start = time.monotonic()
            try:
                item.result = self._compute_with_retry(item)
            except Exception as exc:  # noqa: BLE001 -- surfaced to every waiter
                item.error = StructuredError.from_exception(exc)
                self._record_error(item.digest, item.error)
            finally:
                wall = time.monotonic() - start
                with self._lock:
                    self._inflight.pop(item.digest, None)
                item.event.set()
                self._inflight_gauge.dec()
                self._computed.inc()
                self._plan_wall.observe(wall)
                if self._admission is not None and item.result is not None:
                    # Calibrate: the observed wall feeds the per-arch fit
                    # and the per-digest memo future predictions use.
                    self._admission.cost_model.observe(
                        item.request.arch, wall,
                        nnz=self._nnz_hint(item.request), digest=item.digest,
                    )

    def _compute_with_retry(self, item: _Inflight) -> PlanResult:
        """Run one computation under the bounded-backoff retry policy.

        Only *retryable* failures are retried, and only while the
        service is open; the exception that finally escapes is the
        underlying one (not a wrapper), so the ``StructuredError`` the
        waiters receive names the real fault.
        """
        tracer = get_tracer()
        policy = self.retry
        for attempt in range(1, policy.max_attempts + 1):
            try:
                with tracer.span(
                    "service.compute", cat="service", digest=item.digest[:12]
                ):
                    return self._compute(item.request, item.digest)
            except Exception as exc:  # noqa: BLE001 -- classified below
                if (
                    not is_retryable(exc)
                    or attempt == policy.max_attempts
                    or self._closed
                ):
                    raise
                self._retried.inc()
                tracer.event(
                    "service.retry",
                    cat="service",
                    digest=item.digest[:12],
                    attempt=attempt,
                    error=f"{type(exc).__name__}: {exc}",
                )
                with self._lock:
                    delay = policy.delay_s(attempt, self._retry_rng)
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _record_error(self, digest: str, error: StructuredError) -> None:
        """Append one failure to the ``last_errors`` ring (``/stats``)."""
        record = dict(error.to_dict())
        record["digest"] = digest[:12]
        record["unix"] = time.time()
        with self._lock:
            self._errors.append(record)

    def _compute(self, request: PlanRequest, digest: str) -> PlanResult:
        """Resolve, preprocess, persist -- the whole Sec. VI-B pipeline."""
        from repro.pipeline.preprocess import HotTilesPreprocessor

        tracer = get_tracer()
        start = time.monotonic()
        with tracer.span("service.resolve_matrix", cat="service"):
            matrix = request.resolve_matrix()
        arch = request.build_architecture()
        with tracer.span("service.preprocess", cat="service"):
            preprocessor = HotTilesPreprocessor(arch, cache_aware=request.cache_aware)
            preprocess = preprocessor.run(matrix)
        with tracer.span("service.save_artifacts", cat="service", digest=digest[:12]):
            artifacts = tuple(self.store.save_artifacts(digest, preprocess))
        result = PlanResult.from_preprocess(
            request,
            digest,
            matrix,
            preprocess,
            plan_wall_s=time.monotonic() - start,
            artifacts=artifacts,
        )
        if result.scorer == "contention":
            self._scored_contention.inc()
        else:
            self._scored_naive.inc()
        # Publish to the store *before* waking waiters/deregistering so a
        # request that misses the in-flight map can only do so after the
        # store already holds the result.
        with tracer.span("service.store_publish", cat="service", digest=digest[:12]):
            self.store.put(result)
        if self.track_lineage:
            with tracer.span(
                "service.register_lineage", cat="service", digest=digest[:12]
            ):
                self.lineages.register(
                    MatrixLineage(
                        digest,
                        preprocess.tiled,
                        preprocessor.partitioner,
                        result=preprocess.partition,
                        meta=result,
                    )
                )
        return result

    # ------------------------------------------------------------------
    # Worker-pool scaling (docs/autoscaling.md)
    # ------------------------------------------------------------------
    def set_workers(self, n: int) -> int:
        """Grow or shrink the worker pool to ``n`` threads; returns it.

        Growth starts new threads immediately.  Shrink enqueues retire
        controls, which the queue delivers only once no items remain --
        so a scale-down only ever removes an *idle* worker and never
        abandons admitted work.  No-op once the service is closing.
        """
        n = int(n)
        if n < 1:
            raise ValueError("workers must be >= 1")
        with self._lock:
            if self._closed or self._shutdown_started:
                return self.workers
            delta = n - self.workers
            if delta == 0:
                return self.workers
            self.workers = n
            self._workers_gauge.set(n)
            if delta > 0:
                self._threads = [t for t in self._threads if t.is_alive()]
                for _ in range(delta):
                    thread = threading.Thread(
                        target=self._worker_loop,
                        name=f"plan-worker-{self._worker_seq}",
                        daemon=True,
                    )
                    self._worker_seq += 1
                    self._threads.append(thread)
                    thread.start()
            else:
                for _ in range(-delta):
                    self._queue.put_control(_RETIRE)
            return self.workers

    def autoscale_snapshot(self) -> ScaleSnapshot:
        """What the autoscaler's tick observes (docs/autoscaling.md)."""
        if self._admission is not None:
            backlog = self._admission.backlog_s
        else:
            # No cost model: estimate the backlog from queue depth times
            # a typical plan wall (the same prior admission would use).
            p50 = self._plan_wall.percentile(50)
            backlog = self._queue.qsize() * (p50 if p50 > 0 else 0.05)
        return ScaleSnapshot(
            workers=self.workers,
            queue_depth=self._queue.qsize(),
            backlog_s=backlog,
            queue_wait_p99_s=self._queue_wait.percentile(99),
        )

    def attach_autoscaler(self, autoscaler: Autoscaler) -> Autoscaler:
        """Adopt ``autoscaler``: surface it in ``/stats``, stop it on close."""
        self._autoscaler = autoscaler
        return autoscaler

    @property
    def admission(self) -> Optional[AdmissionController]:
        return self._admission

    @property
    def autoscaler(self) -> Optional[Autoscaler]:
        return self._autoscaler

    # ------------------------------------------------------------------
    # Introspection and shutdown
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """One JSON-serializable snapshot (the ``/stats`` payload)."""
        from repro.sim import backend as sim_backend

        snapshot = self.metrics.snapshot()
        snapshot["store"] = self.store.stats()
        snapshot["lineages"] = len(self.lineages)
        snapshot["uptime_s"] = time.time() - self.started_unix
        snapshot["backend"] = sim_backend.backend_info()
        snapshot["config"] = {
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "default_timeout_s": self.default_timeout_s,
            "degraded_fallback": self.degraded_fallback,
            "retry_max_attempts": self.retry.max_attempts,
        }
        if self._admission is not None:
            snapshot["admission"] = self._admission.stats()
        if self._autoscaler is not None:
            snapshot["autoscale"] = self._autoscaler.stats()
        with self._lock:
            snapshot["last_errors"] = list(self._errors)
        snapshot["closed"] = self._closed
        return snapshot

    @property
    def closed(self) -> bool:
        return self._closed

    def begin_close(self, drain: bool = True) -> bool:
        """Atomically stop admission without waiting for shutdown.

        The first caller wins (returns ``True``); from that point every
        new ``plan``/``apply_delta`` answers :class:`ServiceClosed`.  A
        graceful drain (cluster shards, docs/cluster.md) calls this
        synchronously so the 503 window opens *before* the drain reply
        is sent, then finishes the slow part -- :meth:`close` -- off the
        handler thread.
        """
        with self._lock:
            if self._closed:
                return False
            self._closed = True
            if not drain:
                self._discard = True
            return True

    def close(self, drain: bool = True) -> None:
        """Stop admission, finish (or discard) queued plans, join workers.

        ``drain=True`` lets every already-admitted plan complete so no
        accepted request is abandoned; ``drain=False`` cancels whatever a
        worker has not yet started.  Idempotent.
        """
        self.begin_close(drain)
        with self._lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        if self._autoscaler is not None:
            self._autoscaler.stop()
        for _ in self._threads:
            self._queue.put_control(_SENTINEL)
        for thread in self._threads:
            thread.join()
        # Let in-flight deltas (HTTP handler threads, not workers) finish
        # so no lineage head is left half-advanced; new ones are already
        # rejected because _closed is set.
        self._deltas_idle.wait(timeout=60.0)
        self.store.flush_counters()

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(drain=True)
