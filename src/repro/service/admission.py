"""Predictive admission control: cost model, EDF queue, policy tiers.

HotTiles' analytical model predicts plan *runtime* before a plan runs;
this module applies the same idea to the planning service itself.  The
service already records ``plan_wall_s`` for every computation -- the
calibration data.  :class:`CostModel` turns those observations into a
per-architecture predictor of how long a new request will take to plan,
so admission can be decided *before* the work is queued instead of after
a timeout.

Three pieces, shared verbatim between the live service and the
deterministic virtual-time replay (:mod:`repro.service.replay`):

- :class:`CostModel` -- an online per-arch least-squares fit of planning
  wall time against nnz, with an exact per-digest memo for repeat
  digests and an explicit *uncalibrated prior* fallback.  A digest with
  no calibration data predicts the prior (never crashes); callers count
  those through the ``admission_uncalibrated`` counter.
- :class:`EDFQueue` -- the bounded admission queue, ordered by absolute
  deadline (earliest first, FIFO among equal deadlines), with per-tenant
  quota slots so one flooding tenant cannot starve the rest.  Control
  items (worker retire/shutdown sentinels) are delivered only once the
  item heap is empty, which preserves the planner's drain semantics.
- :class:`AdmissionController` -- the policy brain.  Each arriving
  request is *offered*; by tier the controller answers admit (gold:
  always a full plan), degrade (silver: roofline-only once the predicted
  queue wait exceeds the tier SLO), or shed (bronze: 429 + Retry-After
  under the same pressure).  Per-tenant accounting conserves
  ``offered == admitted + shed + degraded`` -- the invariant the
  hypothesis property tests pin.

Every decision lands in a :class:`DecisionLog` and is emitted through
:mod:`repro.obs` (process ``"policy"``) so a Perfetto trace shows
admit/shed/degrade/scale events against queue depth (docs/autoscaling.md).
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.obs.tracer import POLICY, get_tracer

__all__ = [
    "TIERS",
    "DEFAULT_TIER",
    "CostEstimate",
    "CostModel",
    "QueueFull",
    "TenantQuotaExceeded",
    "Empty",
    "EDFQueue",
    "AdmissionConfig",
    "Decision",
    "DecisionLog",
    "AdmissionController",
]

#: Policy tiers, best first.  gold = always a full plan; silver = may be
#: degraded to a roofline-only plan under pressure; bronze = may be shed
#: (429 + Retry-After) under pressure.
TIERS: Tuple[str, ...] = ("gold", "silver", "bronze")
DEFAULT_TIER = "silver"
DEFAULT_TENANT = "default"


# ----------------------------------------------------------------------
# The calibrated planning-cost model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostEstimate:
    """One predicted planning cost and where it came from.

    ``source`` is ``"digest"`` (exact memo of this digest's last
    planning wall), ``"fit"`` (the per-arch least-squares fit), or
    ``"prior"`` (no calibration data -- the uncalibrated fallback).
    """

    cost_s: float
    source: str

    @property
    def calibrated(self) -> bool:
        return self.source != "prior"


class _ArchFit:
    """Running least-squares of wall seconds against nnz for one arch."""

    __slots__ = ("n", "sx", "sy", "sxx", "sxy")

    def __init__(self) -> None:
        self.n = 0
        self.sx = 0.0
        self.sy = 0.0
        self.sxx = 0.0
        self.sxy = 0.0

    def add(self, nnz: float, wall_s: float) -> None:
        self.n += 1
        self.sx += nnz
        self.sy += wall_s
        self.sxx += nnz * nnz
        self.sxy += nnz * wall_s

    def predict(self, nnz: Optional[float]) -> Optional[float]:
        if self.n == 0:
            return None
        mean = self.sy / self.n
        if nnz is None:
            return mean
        denom = self.n * self.sxx - self.sx * self.sx
        if denom <= 0.0:
            return mean
        slope = (self.n * self.sxy - self.sx * self.sy) / denom
        intercept = (self.sy - slope * self.sx) / self.n
        return intercept + slope * nnz


class CostModel:
    """Online predictor of per-request planning wall time.

    Observations arrive from the worker side (actual ``plan_wall_s``);
    predictions are asked for at admission.  A digest seen before
    answers its own last wall time exactly; otherwise the per-arch fit
    answers once it has ``min_samples`` observations; otherwise the
    uncalibrated ``prior_s`` -- a deliberate, counted fallback, never an
    error (docs/autoscaling.md).
    """

    #: Predictions are clamped into this range: a fit extrapolated to a
    #: tiny or huge nnz must not answer nonsense (or a negative time).
    MIN_PREDICT_S = 1e-4
    MAX_PREDICT_S = 600.0

    def __init__(
        self,
        prior_s: float = 0.05,
        min_samples: int = 3,
        max_digests: int = 4096,
    ) -> None:
        if prior_s <= 0:
            raise ValueError("prior_s must be positive")
        self.prior_s = float(prior_s)
        self.min_samples = int(min_samples)
        self.max_digests = int(max_digests)
        self._lock = threading.Lock()
        self._fits: Dict[str, _ArchFit] = {}
        self._digests: "OrderedDict[str, float]" = OrderedDict()

    def observe(
        self,
        arch: str,
        wall_s: float,
        nnz: Optional[float] = None,
        digest: Optional[str] = None,
    ) -> None:
        """Fold one actual planning wall time into the model."""
        wall_s = float(wall_s)
        if wall_s < 0:
            return
        with self._lock:
            if nnz is not None:
                fit = self._fits.get(arch)
                if fit is None:
                    fit = self._fits[arch] = _ArchFit()
                fit.add(float(nnz), wall_s)
            if digest is not None:
                self._digests[digest] = wall_s
                self._digests.move_to_end(digest)
                while len(self._digests) > self.max_digests:
                    self._digests.popitem(last=False)

    def predict(
        self,
        arch: str,
        nnz: Optional[float] = None,
        digest: Optional[str] = None,
    ) -> CostEstimate:
        """Predict the planning cost of one request; never raises."""
        with self._lock:
            if digest is not None and digest in self._digests:
                return CostEstimate(self._clamp(self._digests[digest]), "digest")
            fit = self._fits.get(arch)
            if fit is not None and fit.n >= self.min_samples:
                predicted = fit.predict(None if nnz is None else float(nnz))
                if predicted is not None:
                    return CostEstimate(self._clamp(predicted), "fit")
        return CostEstimate(self.prior_s, "prior")

    @classmethod
    def _clamp(cls, value: float) -> float:
        return max(cls.MIN_PREDICT_S, min(float(value), cls.MAX_PREDICT_S))

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "prior_s": self.prior_s,
                "min_samples": self.min_samples,
                "digests": len(self._digests),
                "fits": {
                    arch: {"n": fit.n, "mean_s": fit.sy / fit.n if fit.n else 0.0}
                    for arch, fit in sorted(self._fits.items())
                },
            }


# ----------------------------------------------------------------------
# The EDF admission queue
# ----------------------------------------------------------------------
class QueueFull(Exception):
    """The queue holds ``maxsize`` items; the request must be shed."""


class TenantQuotaExceeded(Exception):
    """The tenant already holds its full quota of queue slots."""

    def __init__(self, tenant: str, quota: int) -> None:
        super().__init__(f"tenant {tenant!r} holds all {quota} of its slots")
        self.tenant = tenant
        self.quota = quota


def tenant_quota_slots(maxsize: int, fraction: float) -> int:
    """How many of ``maxsize`` slots one tenant may hold (at least 1)."""
    return max(1, int(math.ceil(maxsize * fraction)))


class EDFQueue:
    """Bounded earliest-deadline-first queue with per-tenant quotas.

    Items are popped in ``(deadline, arrival order)`` order -- equal
    deadlines degrade to FIFO, so a service built without admission
    policy (every deadline 0) behaves exactly like the stdlib queue it
    replaced.  ``tenant=None`` bypasses the quota (the single-tenant
    path).  Control objects enqueued with :meth:`put_control` are
    delivered only when no items remain, which is what both uses need:
    shutdown sentinels must not overtake queued work during a drain, and
    a retire request should only remove an *idle* worker.

    Thread-safe; also usable single-threaded with the ``_nowait``
    methods (the virtual-time replay drives it that way).
    """

    def __init__(self, maxsize: int, tenant_quota_fraction: float = 1.0) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if not 0.0 < tenant_quota_fraction <= 1.0:
            raise ValueError("tenant_quota_fraction must be in (0, 1]")
        self.maxsize = int(maxsize)
        self.quota = tenant_quota_slots(self.maxsize, tenant_quota_fraction)
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: List[Tuple[float, int, str, Any]] = []
        self._controls: Deque[Any] = deque()
        self._tenants: Dict[str, int] = {}
        self._seq = 0

    def put_nowait(
        self, item: Any, deadline: float = 0.0, tenant: Optional[str] = None
    ) -> None:
        """Enqueue or raise :class:`QueueFull`/:class:`TenantQuotaExceeded`."""
        with self._not_empty:
            if len(self._heap) >= self.maxsize:
                raise QueueFull()
            if tenant is not None and self._tenants.get(tenant, 0) >= self.quota:
                raise TenantQuotaExceeded(tenant, self.quota)
            key = tenant if tenant is not None else ""
            self._tenants[key] = self._tenants.get(key, 0) + 1
            heapq.heappush(
                self._heap, (float(deadline), self._seq, key, item)
            )
            self._seq += 1
            self._not_empty.notify()

    def put_control(self, obj: Any) -> None:
        """Enqueue a control object, delivered once the items drain."""
        with self._not_empty:
            self._controls.append(obj)
            self._not_empty.notify_all()

    def get(self, timeout: Optional[float] = None) -> Any:
        """Pop the earliest-deadline item, else a control object; blocks."""
        with self._not_empty:
            while True:
                got = self._pop_locked()
                if got is not _EMPTY:
                    return got
                if not self._not_empty.wait(timeout):
                    raise Empty()

    def get_nowait(self) -> Any:
        with self._lock:
            got = self._pop_locked()
            if got is _EMPTY:
                raise Empty()
            return got

    def _pop_locked(self) -> Any:
        if self._heap:
            _, _, key, item = heapq.heappop(self._heap)
            count = self._tenants.get(key, 0) - 1
            if count <= 0:
                self._tenants.pop(key, None)
            else:
                self._tenants[key] = count
            return item
        if self._controls:
            return self._controls.popleft()
        return _EMPTY

    def qsize(self) -> int:
        """Number of queued *items* (control objects are not counted)."""
        with self._lock:
            return len(self._heap)

    def tenant_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._tenants)


class Empty(Exception):
    """Non-blocking/timed get found neither items nor control objects."""


_EMPTY = object()


# ----------------------------------------------------------------------
# The admission policy
# ----------------------------------------------------------------------
def _tier_map(
    gold: float, silver: float, bronze: float
) -> Dict[str, float]:
    return {"gold": gold, "silver": silver, "bronze": bronze}


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the tiered admission policy (docs/autoscaling.md)."""

    #: Of the queue's slots, the fraction any one tenant may hold.
    tenant_quota_fraction: float = 0.5
    #: Per-tier queue-wait SLO: once the *predicted* wait exceeds it the
    #: tier's pressure action fires.  Gold's action is "admit anyway",
    #: so its entry only documents the target.
    tier_slo_s: Mapping[str, float] = field(
        default_factory=lambda: _tier_map(8.0, 2.0, 0.5)
    )
    #: Default relative deadline per tier when the request names none --
    #: gold naturally sorts first under EDF.
    tier_deadline_s: Mapping[str, float] = field(
        default_factory=lambda: _tier_map(5.0, 15.0, 60.0)
    )
    #: What each tier does when its SLO is predicted blown.
    tier_pressure_action: Mapping[str, str] = field(
        default_factory=lambda: {
            "gold": "admit", "silver": "degrade", "bronze": "shed",
        }
    )
    #: Uncalibrated prior and fit warm-up for the cost model.
    prior_s: float = 0.05
    min_samples: int = 3

    def slo_for(self, tier: str) -> float:
        return float(self.tier_slo_s.get(tier, self.tier_slo_s[DEFAULT_TIER]))

    def deadline_for(self, tier: str) -> float:
        return float(
            self.tier_deadline_s.get(tier, self.tier_deadline_s[DEFAULT_TIER])
        )

    def pressure_action_for(self, tier: str) -> str:
        return str(self.tier_pressure_action.get(tier, "degrade"))

    def make_cost_model(self) -> CostModel:
        return CostModel(prior_s=self.prior_s, min_samples=self.min_samples)


@dataclass(frozen=True)
class Decision:
    """One admission verdict: what to do with an offered request."""

    action: str  #: ``"admit"`` | ``"degrade"`` | ``"shed"``
    tier: str
    tenant: str
    predicted_cost_s: float
    predicted_wait_s: float
    calibrated: bool
    reason: str


class DecisionLog:
    """An append-only, JSON-ready record of every policy decision.

    Live services keep a bounded ring (``/stats`` and ``/decisions``
    serve it); the virtual-time replay keeps everything (``maxlen=None``)
    so two replays of one trace can be compared bit for bit.  Floats are
    rounded to 9 decimal places on entry purely to keep the serialized
    form canonical.  Each append is also emitted as a tracer event on
    the ``"policy"`` process.
    """

    def __init__(
        self, maxlen: Optional[int] = 512, tracer_process: str = POLICY
    ) -> None:
        self._lock = threading.Lock()
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=maxlen)
        self._counts: Dict[str, int] = {}
        self._process = tracer_process

    @staticmethod
    def _canonical(value: Any) -> Any:
        if isinstance(value, float):
            return round(value, 9)
        return value

    def append(self, kind: str, t: float, **fields: Any) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"t": round(float(t), 9), "kind": kind}
        for name in sorted(fields):
            entry[name] = self._canonical(fields[name])
        with self._lock:
            self._entries.append(entry)
            self._counts[kind] = self._counts.get(kind, 0) + 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                f"policy.{kind}", ts=entry["t"], process=self._process,
                track="decisions", cat="policy", **fields,
            )
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(e) for e in self._entries]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def count(self, kind: str) -> int:
        with self._lock:
            return self._counts.get(kind, 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class AdmissionController:
    """Tiered predictive admission with per-tenant conservation.

    The controller itself is queue-agnostic: it predicts the wait a new
    request would see (``backlog_s / workers``), answers a
    :class:`Decision`, and keeps the books.  The caller (the planner's
    request path, or the replay's event loop) enforces the verdict and
    reports back through :meth:`enqueued` / :meth:`started` /
    :meth:`shed` / :meth:`degraded` so backlog and per-tenant accounting
    stay true.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        cost_model: Optional[CostModel] = None,
        decision_log: Optional[DecisionLog] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.cost_model = (
            cost_model if cost_model is not None else self.config.make_cost_model()
        )
        self.decisions = (
            decision_log if decision_log is not None else DecisionLog()
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._backlog_s = 0.0
        self._tenants: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    @property
    def backlog_s(self) -> float:
        with self._lock:
            return self._backlog_s

    def _tenant_row(self, tenant: str) -> Dict[str, int]:
        row = self._tenants.get(tenant)
        if row is None:
            row = self._tenants[tenant] = {
                "offered": 0, "admitted": 0, "shed": 0, "degraded": 0,
            }
        return row

    # ------------------------------------------------------------------
    def decide(
        self,
        tenant: str,
        tier: str,
        estimate: CostEstimate,
        workers: int,
        queue_depth: int,
        now: Optional[float] = None,
    ) -> Decision:
        """Offer one request to the policy; returns the verdict.

        The verdict is an *intent*: an ``"admit"`` may still bounce off
        the queue (full, or tenant over quota), in which case the caller
        records the shed through :meth:`shed`.
        """
        if tier not in TIERS:
            tier = DEFAULT_TIER
        t = self._clock() if now is None else now
        with self._lock:
            self._tenant_row(tenant)["offered"] += 1
            backlog = self._backlog_s
        predicted_wait = backlog / max(1, int(workers))
        slo = self.config.slo_for(tier)
        if predicted_wait > slo:
            action = self.config.pressure_action_for(tier)
            reason = "predicted_wait"
        else:
            action = "admit"
            reason = "within_slo"
        decision = Decision(
            action=action,
            tier=tier,
            tenant=tenant,
            predicted_cost_s=estimate.cost_s,
            predicted_wait_s=predicted_wait,
            calibrated=estimate.calibrated,
            reason=reason,
        )
        if action != "admit":
            # Terminal verdicts book immediately; admits book once the
            # queue actually takes them (enqueued/shed below).
            with self._lock:
                self._tenant_row(tenant)[
                    "degraded" if action == "degrade" else "shed"
                ] += 1
        self.decisions.append(
            action, t,
            tenant=tenant, tier=tier, reason=reason,
            predicted_cost_s=estimate.cost_s,
            predicted_wait_s=predicted_wait,
            calibrated=estimate.calibrated,
            queue_depth=int(queue_depth), workers=int(workers),
        )
        return decision

    def enqueued(self, decision: Decision) -> None:
        """The admit verdict landed in the queue; grow the backlog."""
        with self._lock:
            self._backlog_s += decision.predicted_cost_s
            self._tenant_row(decision.tenant)["admitted"] += 1

    def started(self, predicted_cost_s: float) -> None:
        """A worker picked the item up; shrink the backlog."""
        with self._lock:
            self._backlog_s = max(0.0, self._backlog_s - predicted_cost_s)

    def shed(
        self, decision: Decision, reason: str, now: Optional[float] = None
    ) -> None:
        """An admit verdict bounced off the queue -- book it as shed."""
        t = self._clock() if now is None else now
        with self._lock:
            self._tenant_row(decision.tenant)["shed"] += 1
        self.decisions.append(
            "shed", t,
            tenant=decision.tenant, tier=decision.tier, reason=reason,
            predicted_cost_s=decision.predicted_cost_s,
            predicted_wait_s=decision.predicted_wait_s,
            calibrated=decision.calibrated,
        )

    # ------------------------------------------------------------------
    def shed_by_tier(self) -> Dict[str, int]:
        """Shed counts per tier, from the decision log's full history."""
        out: Dict[str, int] = {}
        for entry in self.decisions.entries():
            if entry["kind"] == "shed":
                out[entry["tier"]] = out.get(entry["tier"], 0) + 1
        return out

    def tenant_accounting(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {t: dict(row) for t, row in sorted(self._tenants.items())}

    def stats(self) -> Dict[str, Any]:
        """JSON-serializable snapshot for ``/stats`` (docs/autoscaling.md)."""
        with self._lock:
            backlog = self._backlog_s
            tenants = {t: dict(row) for t, row in sorted(self._tenants.items())}
        return {
            "backlog_s": backlog,
            "decision_counts": self.decisions.counts(),
            "tenants": tenants,
            "cost_model": self.cost_model.snapshot(),
            "config": {
                "tenant_quota_fraction": self.config.tenant_quota_fraction,
                "tier_slo_s": dict(self.config.tier_slo_s),
                "tier_deadline_s": dict(self.config.tier_deadline_s),
                "tier_pressure_action": dict(self.config.tier_pressure_action),
                "prior_s": self.config.prior_s,
            },
        }
