"""The partition-planning service (the serving layer's first subsystem).

The paper frames HotTiles preprocessing as an amortizable host-side step
whose artifacts "can be stored for later use" and reused across SpMM
invocations (Sec. VI-B).  This package turns that one-shot pipeline into
a long-running *plan server*:

- :mod:`repro.service.protocol` -- the :class:`PlanRequest` /
  :class:`PlanResult` wire vocabulary and its content digests,
- :mod:`repro.service.store` -- the content-addressed plan store
  (results + ``.npz`` artifacts) layered on the experiment cache,
- :mod:`repro.service.metrics` -- counters / gauges / latency histograms,
- :mod:`repro.service.planner` -- :class:`PlanService`: a bounded
  admission queue with backpressure, in-flight request coalescing,
  per-request timeouts, and drain-and-shutdown,
- :mod:`repro.service.httpd` -- the stdlib HTTP front end
  (``POST /plan``, ``GET /plan/<digest>``, ``GET /healthz``,
  ``GET /stats``),
- :mod:`repro.service.loadgen` -- a closed-loop load generator with
  trace record / open-loop replay,
- :mod:`repro.service.admission` -- tiered predictive admission: a
  calibrated per-arch cost model, EDF queueing with per-tenant quotas,
  and the shared decision log (docs/autoscaling.md),
- :mod:`repro.service.autoscale` -- the SLO-aware worker/shard
  autoscaler (one pure policy, live thread + virtual replay drivers),
- :mod:`repro.service.replay` -- canonical-JSON request traces and the
  deterministic virtual-time replay.

``hottiles serve`` and ``hottiles loadgen`` are the CLI entry points.
"""

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    CostModel,
    DecisionLog,
    EDFQueue,
)
from repro.service.autoscale import (
    AutoscaleConfig,
    AutoscalePolicy,
    Autoscaler,
    ScaleSnapshot,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.planner import (
    AdmissionRejected,
    PlanFailed,
    PlanService,
    PlanTimeout,
    ServiceClosed,
)
from repro.service.protocol import PlanRequest, PlanResult, ProtocolError
from repro.service.replay import (
    RequestTrace,
    TraceRecorder,
    burst_trace,
    replay_trace,
)
from repro.service.store import PlanStore

__all__ = [
    "PlanRequest",
    "PlanResult",
    "ProtocolError",
    "PlanStore",
    "PlanService",
    "AdmissionRejected",
    "PlanTimeout",
    "PlanFailed",
    "ServiceClosed",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "AdmissionConfig",
    "AdmissionController",
    "CostModel",
    "DecisionLog",
    "EDFQueue",
    "AutoscaleConfig",
    "AutoscalePolicy",
    "Autoscaler",
    "ScaleSnapshot",
    "RequestTrace",
    "TraceRecorder",
    "burst_trace",
    "replay_trace",
]
