"""Closed-loop load generator for the plan service.

``concurrency`` client threads each keep exactly one request in flight
(the classic closed loop), drawing round-robin from a set of ``plans``
distinct plan requests until ``requests`` total have completed.  A
``429`` reply is not a failure: the client honours ``Retry-After`` and
retries, which is precisely the contract backpressure advertises.

:func:`run_loadgen` runs the workload twice by default -- a cold pass
that populates the plan store and a warm pass that must be served from
it -- and reads ``GET /stats`` around each pass so the report can state
the store hit rate and verify the server's counters reconcile with the
client's totals.

Chaos mode (``hottiles loadgen --chaos``, docs/faults.md): a seeded
:class:`~repro.faults.chaos.ChaosConfig` perturbs a fraction of requests
before they are sent.  An injected request that settles in one of its
*expected* statuses (e.g. ``504`` for an injected timeout, ``400`` for a
deliberately malformed body) is counted as *absorbed*, not failed -- the
fault handling worked; only an unexpected status is a failure.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.faults.chaos import ChaosConfig
from repro.service.metrics import Histogram
from repro.service.replay import RequestTrace, TraceRecorder

__all__ = [
    "default_request_payloads",
    "LoadgenPass",
    "LoadgenReport",
    "run_pass",
    "run_loadgen",
    "replay_pass_live",
]


def default_request_payloads(
    plans: int,
    scale: int = 9,
    nnz: int = 6_000,
    arch: str = "spade-sextans",
    tenants: Optional[Sequence[str]] = None,
    tiers: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """``plans`` distinct (by seed) small R-MAT plan requests.

    ``tenants`` / ``tiers`` (optional) are assigned round-robin, so a
    multi-tenant workload against the predictive admission controller
    (docs/autoscaling.md) needs no hand-written payloads.
    """
    if plans < 1:
        raise ValueError("plans must be >= 1")
    payloads: List[Dict[str, Any]] = []
    for seed in range(plans):
        payload: Dict[str, Any] = {
            "arch": arch,
            "scale": 4,
            "generator": {"kind": "rmat", "scale": scale, "nnz": nnz, "seed": seed},
        }
        if tenants:
            payload["tenant"] = tenants[seed % len(tenants)]
        if tiers:
            payload["tier"] = tiers[seed % len(tiers)]
        payloads.append(payload)
    return payloads


# ----------------------------------------------------------------------
@dataclass
class LoadgenPass:
    """Outcome of one closed-loop pass."""

    name: str
    requests: int = 0
    completed: int = 0
    failed: int = 0
    retries_429: int = 0  #: backpressure retries (not failures)
    served: Dict[str, int] = field(default_factory=dict)  #: store/computed/coalesced
    wall_s: float = 0.0
    latency: Histogram = field(default_factory=Histogram)
    #: Latency split by the ``X-Hottiles-Shard`` reply header (cluster
    #: runs only; single-process replies carry no shard header).
    shard_latency: Dict[str, Histogram] = field(default_factory=dict)
    store_hits_delta: int = 0
    store_gets_delta: int = 0
    errors: List[str] = field(default_factory=list)
    transport_errors: int = 0  #: dropped connections (no HTTP status at all)
    chaos_injected: Dict[str, int] = field(default_factory=dict)  #: per fault kind
    chaos_absorbed: int = 0  #: injected requests that settled as expected
    #: Open-loop replay only: 429 sheds are *answers* (the admission
    #: controller doing its job), never retried and never failures.
    shed_429: int = 0
    shed_by_tier: Dict[str, int] = field(default_factory=dict)
    #: A 429 without a Retry-After header violates the backpressure
    #: contract -- the CI slo-smoke job asserts this stays 0.
    shed_missing_retry_after: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def store_hit_rate(self) -> float:
        if self.store_gets_delta <= 0:
            return 0.0
        return self.store_hits_delta / self.store_gets_delta

    def render(self) -> str:
        p = self.latency.percentiles()
        served = ", ".join(f"{k}={v}" for k, v in sorted(self.served.items()))
        lines = [
            f"{self.name}: {self.completed}/{self.requests} ok, "
            f"{self.failed} failed, {self.retries_429} backpressure retries "
            f"in {self.wall_s:.2f}s ({self.throughput_rps:.1f} req/s)",
            f"  latency p50 {p['p50'] * 1e3:.1f} ms, p95 {p['p95'] * 1e3:.1f} ms, "
            f"p99 {p['p99'] * 1e3:.1f} ms",
            f"  served: {served or '-'}; plan-store hit rate {self.store_hit_rate:.0%}",
        ]
        if self.chaos_injected:
            kinds = ", ".join(
                f"{k}={v}" for k, v in sorted(self.chaos_injected.items())
            )
            total = sum(self.chaos_injected.values())
            lines.append(
                f"  chaos: {total} injected ({kinds}), "
                f"{self.chaos_absorbed} absorbed as expected"
            )
        if self.shed_429:
            tiers = ", ".join(
                f"{k}={v}" for k, v in sorted(self.shed_by_tier.items())
            )
            lines.append(
                f"  shed: {self.shed_429} answered 429 ({tiers or '-'}), "
                f"{self.shed_missing_retry_after} missing Retry-After"
            )
        if self.shard_latency:
            for shard in sorted(self.shard_latency, key=str):
                sp = self.shard_latency[shard].percentiles()
                count = self.shard_latency[shard].count
                lines.append(
                    f"  shard {shard}: {count} replies, "
                    f"p50 {sp['p50'] * 1e3:.1f} ms, p99 {sp['p99'] * 1e3:.1f} ms"
                )
        for err in self.errors[:5]:
            lines.append(f"  error: {err}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable record (the loadgen ``--json`` artifact)."""
        p = self.latency.percentiles()
        return {
            "name": self.name,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "transport_errors": self.transport_errors,
            "retries_429": self.retries_429,
            "served": dict(self.served),
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {k: v * 1e3 for k, v in p.items()},
            "shards": {
                str(shard): {
                    "count": hist.count,
                    **{k: v * 1e3 for k, v in hist.percentiles().items()},
                }
                for shard, hist in sorted(self.shard_latency.items(), key=lambda kv: str(kv[0]))
            },
            "store_hit_rate": self.store_hit_rate,
            "chaos_injected": dict(self.chaos_injected),
            "chaos_absorbed": self.chaos_absorbed,
            "shed_429": self.shed_429,
            "shed_by_tier": dict(sorted(self.shed_by_tier.items())),
            "shed_missing_retry_after": self.shed_missing_retry_after,
            "errors": list(self.errors[:10]),
        }


@dataclass
class LoadgenReport:
    passes: List[LoadgenPass]
    server_stats: Dict[str, Any]  #: final /stats snapshot

    @property
    def failed(self) -> int:
        return sum(p.failed for p in self.passes)

    def reconciles(self) -> bool:
        """Server counters vs. the accounting contract (see planner docs)."""
        counters = self.server_stats.get("counters", {})
        accepted = counters.get("requests_accepted", 0)
        settled = (
            counters.get("requests_completed", 0)
            + counters.get("requests_failed", 0)
            + counters.get("requests_timeout", 0)
            + counters.get("requests_degraded", 0)
        )
        return accepted == settled

    @property
    def transport_errors(self) -> int:
        """Dropped connections across all passes (must be 0 in a cluster)."""
        return sum(p.transport_errors for p in self.passes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passes": [p.to_dict() for p in self.passes],
            "failed": self.failed,
            "transport_errors": self.transport_errors,
            "reconciles": self.reconciles(),
            "server_counters": dict(self.server_stats.get("counters", {})),
            "cluster": self.server_stats.get("cluster"),
        }

    def render(self) -> str:
        lines = [p.render() for p in self.passes]
        counters = self.server_stats.get("counters", {})
        lines.append(
            "server: accepted={requests_accepted} completed={requests_completed} "
            "failed={requests_failed} timeout={requests_timeout} "
            "degraded={requests_degraded} rejected={requests_rejected} "
            "coalesced={requests_coalesced} computed={plans_computed} "
            "retried={plans_retried}".format(
                **{
                    k: counters.get(k, 0)
                    for k in (
                        "requests_accepted", "requests_completed", "requests_failed",
                        "requests_timeout", "requests_degraded", "requests_rejected",
                        "requests_coalesced", "plans_computed", "plans_retried",
                    )
                }
            )
        )
        lines.append(
            "counters reconcile "
            "(accepted = completed + failed + timeout + degraded): "
            + ("yes" if self.reconciles() else "NO")
        )
        lines.append(f"dropped connections (transport errors): {self.transport_errors}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _http_json(
    url: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout_s: float = 60.0,
) -> Any:
    """One request; returns ``(status, decoded_body)``; raises URLError."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data else "GET",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            decoded = json.loads(body) if body else {}
        except json.JSONDecodeError:
            decoded = {"error": body.decode("utf-8", "replace")}
        return exc.code, decoded, dict(exc.headers or {})


def fetch_stats(base_url: str, timeout_s: float = 10.0) -> Dict[str, Any]:
    status, body, _ = _http_json(f"{base_url}/stats", timeout_s=timeout_s)
    if status != 200:
        raise RuntimeError(f"GET /stats -> {status}: {body}")
    return body


def run_pass(
    base_url: str,
    payloads: Sequence[Dict[str, Any]],
    requests: int,
    concurrency: int,
    name: str = "pass",
    max_retries: int = 64,
    request_timeout_s: float = 120.0,
    chaos: Optional[ChaosConfig] = None,
    recorder: Optional[TraceRecorder] = None,
) -> LoadgenPass:
    """One closed-loop pass of ``requests`` total requests.

    With ``recorder`` (``loadgen --record FILE``), every completed
    request is noted with its send offset, reply digest, and the
    server-reported ``plan_wall_s`` -- the trace a later ``--replay``
    (live or virtual) feeds back in (docs/autoscaling.md).
    """
    if requests < 1 or concurrency < 1:
        raise ValueError("requests and concurrency must be >= 1")
    result = LoadgenPass(name=name, requests=requests)
    counter_lock = threading.Lock()
    next_index = [0]
    url = f"{base_url}/plan"

    def take() -> Optional[int]:
        with counter_lock:
            if next_index[0] >= requests:
                return None
            i = next_index[0]
            next_index[0] += 1
            return i

    def record(outcome: str, latency_s: float, served: Optional[str],
               retries: int, error: Optional[str],
               chaos_kind: Optional[str] = None,
               shard: Optional[str] = None) -> None:
        with counter_lock:
            if chaos_kind is not None:
                result.chaos_injected[chaos_kind] = (
                    result.chaos_injected.get(chaos_kind, 0) + 1
                )
            if outcome == "ok":
                result.completed += 1
                result.latency.observe(latency_s)
                if shard is not None:
                    hist = result.shard_latency.setdefault(shard, Histogram())
                    hist.observe(latency_s)
                if served:
                    result.served[served] = result.served.get(served, 0) + 1
                if chaos_kind is not None:
                    result.chaos_absorbed += 1
            elif outcome == "chaos":
                # An injected fault answered with an expected status: the
                # service's fault handling worked, so not a failure.
                result.chaos_absorbed += 1
            else:
                result.failed += 1
                if error and error.startswith("transport:"):
                    result.transport_errors += 1
                if error and len(result.errors) < 32:
                    result.errors.append(error)
            result.retries_429 += retries

    def client() -> None:
        while True:
            i = take()
            if i is None:
                return
            payload = payloads[i % len(payloads)]
            decision = None
            if chaos is not None:
                with counter_lock:  # the seeded RNG is shared across clients
                    decision = chaos.decide(payload)
                payload = decision.payload
            kind = decision.kind if decision is not None else None
            retries = 0
            start = time.monotonic()
            while True:
                try:
                    status, body, headers = _http_json(
                        url, payload, timeout_s=request_timeout_s
                    )
                except (urllib.error.URLError, OSError, TimeoutError) as exc:
                    record("failed", 0.0, None, retries, f"transport: {exc}",
                           chaos_kind=kind)
                    break
                if status == 200:
                    if recorder is not None:
                        plan = body.get("plan") or {}
                        recorder.note(
                            payload,
                            digest=str(plan.get("digest", "")),
                            cost_s=float(plan.get("plan_wall_s", 0.05) or 0.05),
                            sent_at=start,
                        )
                    record(
                        "ok",
                        time.monotonic() - start,
                        body.get("served"),
                        retries,
                        None,
                        chaos_kind=kind,
                        shard=headers.get("X-Hottiles-Shard"),
                    )
                    break
                retry_after = headers.get("Retry-After")
                if (
                    retries < max_retries
                    and (status == 429 or (status == 503 and retry_after))
                ):
                    # Backpressure (429) and retryable plan failures
                    # (503 + Retry-After) are both invitations to retry.
                    retries += 1
                    try:
                        delay = float(retry_after) if retry_after else 0.05
                    except ValueError:
                        delay = 0.05
                    time.sleep(min(delay, 1.0))
                    continue
                if decision is not None and decision.injected and decision.expects(status):
                    record("chaos", 0.0, None, retries, None, chaos_kind=kind)
                    break
                record(
                    "failed", 0.0, None, retries,
                    f"HTTP {status}: {body.get('error', body)}",
                    chaos_kind=kind,
                )
                break

    before = fetch_stats(base_url)
    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    if recorder is not None:
        recorder.start()  # epoch = pass start, so arrival offsets are real
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    result.wall_s = time.monotonic() - start
    after = fetch_stats(base_url)

    def store_counter(stats: Dict[str, Any], key: str) -> int:
        return int(stats.get("store", {}).get(key, 0))

    hits = store_counter(after, "session_hits") - store_counter(before, "session_hits")
    misses = (
        store_counter(after, "session_misses") - store_counter(before, "session_misses")
    )
    result.store_hits_delta = hits
    result.store_gets_delta = hits + misses
    return result


def replay_pass_live(
    base_url: str,
    trace: RequestTrace,
    warp: float = 1.0,
    name: str = "replay",
    request_timeout_s: float = 120.0,
    concurrency: int = 32,
) -> LoadgenPass:
    """Open-loop live replay: fire the trace's arrivals at a real server.

    Unlike the closed loop, arrivals are scheduled at the *recorded*
    offsets (divided by ``warp`` -- ``warp=2`` replays twice as fast),
    regardless of how fast the server answers: that is what reproduces
    the recorded overload and exercises the admission controller.  A
    ``429`` here is the controller shedding as designed, so it is counted
    as an answered shed (per tier, from the reply body) and never
    retried; only transport errors and unexpected statuses fail.  The CI
    slo-smoke job asserts ``transport_errors == 0`` and
    ``shed_missing_retry_after == 0`` (docs/autoscaling.md).
    """
    if warp <= 0:
        raise ValueError("warp must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    result = LoadgenPass(name=name, requests=len(trace.requests))
    lock = threading.Lock()
    url = f"{base_url}/plan"
    sem = threading.Semaphore(concurrency)

    def fire(req: Any) -> None:
        payload = dict(req.payload or {})
        if not payload:
            # A trace without payloads (e.g. cost-only synthetic) still
            # exercises admission with a minimal plan request.
            payload = {
                "arch": "spade-sextans",
                "scale": 4,
                "generator": {"kind": "rmat", "scale": 9,
                              "nnz": req.nnz or 6000, "seed": 0},
                "tenant": req.tenant,
                "tier": req.tier,
                "deadline_s": req.deadline_s,
            }
        start = time.monotonic()
        try:
            try:
                status, body, headers = _http_json(
                    url, payload, timeout_s=request_timeout_s
                )
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                with lock:
                    result.failed += 1
                    result.transport_errors += 1
                    if len(result.errors) < 32:
                        result.errors.append(f"transport: {exc}")
                return
            elapsed = time.monotonic() - start
            with lock:
                if status == 200:
                    result.completed += 1
                    result.latency.observe(elapsed)
                    served = body.get("served")
                    if served:
                        result.served[served] = result.served.get(served, 0) + 1
                    shard = headers.get("X-Hottiles-Shard")
                    if shard is not None:
                        result.shard_latency.setdefault(
                            shard, Histogram()
                        ).observe(elapsed)
                elif status == 429:
                    result.shed_429 += 1
                    tier = str(body.get("tier") or req.tier)
                    result.shed_by_tier[tier] = (
                        result.shed_by_tier.get(tier, 0) + 1
                    )
                    if not headers.get("Retry-After"):
                        result.shed_missing_retry_after += 1
                else:
                    result.failed += 1
                    if len(result.errors) < 32:
                        result.errors.append(
                            f"HTTP {status}: {body.get('error', body)}"
                        )
        finally:
            sem.release()

    before = fetch_stats(base_url)
    epoch = time.monotonic()
    threads: List[threading.Thread] = []
    for req in trace.requests:
        due = epoch + req.arrival_s / warp
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        sem.acquire()  # bound the number of in-flight requests
        t = threading.Thread(target=fire, args=(req,), daemon=True)
        t.start()
        threads.append(t)
    for t in threads:
        t.join(timeout=request_timeout_s + 5.0)
    result.wall_s = time.monotonic() - epoch
    after = fetch_stats(base_url)

    def store_counter(stats: Dict[str, Any], key: str) -> int:
        return int(stats.get("store", {}).get(key, 0))

    hits = store_counter(after, "session_hits") - store_counter(before, "session_hits")
    misses = (
        store_counter(after, "session_misses") - store_counter(before, "session_misses")
    )
    result.store_hits_delta = hits
    result.store_gets_delta = hits + misses
    return result


def run_loadgen(
    base_url: str,
    requests: int = 200,
    concurrency: int = 8,
    plans: int = 4,
    passes: int = 2,
    max_retries: int = 64,
    chaos: Optional[ChaosConfig] = None,
    recorder: Optional[TraceRecorder] = None,
    tenants: Optional[Sequence[str]] = None,
    tiers: Optional[Sequence[str]] = None,
) -> LoadgenReport:
    """The standard cold-then-warm workload against a running server.

    With ``chaos``, every pass shares the one seeded config, so the
    whole run's injection sequence is reproducible from its seed.  With
    ``recorder``, all passes record into one trace (arrival offsets keep
    running across passes).
    """
    payloads = default_request_payloads(plans, tenants=tenants, tiers=tiers)
    names = ["cold"] + [f"warm{i if passes > 2 else ''}" for i in range(1, passes)]
    results = [
        run_pass(
            base_url,
            payloads,
            requests=requests,
            concurrency=concurrency,
            name=names[i],
            max_retries=max_retries,
            chaos=chaos,
            recorder=recorder,
        )
        for i in range(passes)
    ]
    return LoadgenReport(passes=results, server_stats=fetch_stats(base_url))
