"""Transport-agnostic endpoint handlers for the plan service.

One place owns the mapping from :class:`~repro.service.planner.
PlanService` outcomes and exceptions to ``(status, body, headers)``
triples, so the two transports that expose the service -- the stdlib
HTTP front end (:mod:`repro.service.httpd`) and the cluster shard's
length-prefixed JSON IPC loop (:mod:`repro.cluster.shard`) -- cannot
drift apart in their error taxonomy.

Status contract (docs/service.md, docs/faults.md, docs/streaming.md):

========  ===========================================================
``200``   served (plan / applied delta / stored plan / stats)
``400``   malformed request, digest, or delta payload
``404``   unknown endpoint, digest, or lineage
``409``   superseded lineage head (body carries ``head_digest``)
``429``   admission queue shed the request (+ ``Retry-After``)
``500``   terminal plan failure (structured ``error_detail``)
``503``   retryable failure or draining service (+ ``Retry-After``)
``504``   per-request wait bound elapsed
========  ===========================================================
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.service.planner import (
    AdmissionRejected,
    PlanFailed,
    PlanService,
    PlanTimeout,
    ServiceClosed,
)
from repro.service.protocol import PlanRequest, ProtocolError
from repro.streaming.lineage import StaleDigestError, UnknownLineageError

__all__ = [
    "Reply",
    "is_hex_digest",
    "plan_endpoint",
    "delta_endpoint",
    "get_plan_endpoint",
    "healthz_endpoint",
    "stats_endpoint",
]

#: ``(status, body, headers)`` -- what every endpoint handler answers.
Reply = Tuple[int, Dict[str, Any], Dict[str, str]]

_HEX = set("0123456789abcdef")


def is_hex_digest(digest: str) -> bool:
    return bool(digest) and not (set(digest) - _HEX)


def _retry_headers(retry_after_s: float) -> Dict[str, str]:
    return {"Retry-After": f"{retry_after_s:.3f}"}


def _draining_reply(service: PlanService, exc: ServiceClosed) -> Reply:
    # A draining service is a *transient* condition for the caller: the
    # shard restarts (cluster mode) or a replica takes over, so answer
    # like a retryable failure -- 503 plus an advisory Retry-After --
    # instead of a bare 503 the client cannot distinguish from "gone".
    retry_after = service.retry_after_hint()
    body = {"error": str(exc), "retry_after_s": retry_after}
    return 503, body, _retry_headers(retry_after)


def plan_endpoint(service: PlanService, payload: Mapping[str, Any]) -> Reply:
    """``POST /plan`` -- compute or fetch the plan for ``payload``."""
    try:
        request = PlanRequest.from_dict(payload)
    except ProtocolError as exc:
        return 400, {"error": str(exc)}, {}
    try:
        result, served = service.plan(request)
    except AdmissionRejected as exc:
        body = {"error": str(exc), "retry_after_s": exc.retry_after_s}
        # Predictive sheds (docs/autoscaling.md) say *why* and for whom,
        # so the loadgen's per-tier shed accounting works client-side.
        if exc.tier is not None:
            body["tier"] = exc.tier
        if exc.reason is not None:
            body["reason"] = exc.reason
        return 429, body, _retry_headers(exc.retry_after_s)
    except PlanTimeout as exc:
        return 504, {"error": str(exc), "digest": exc.digest}, {}
    except ServiceClosed as exc:
        return _draining_reply(service, exc)
    except PlanFailed as exc:
        # Retryable failures answer 503 + Retry-After so well-behaved
        # clients back off and try again; terminal failures stay 500
        # (a retry would reproduce them).  Either way the structured
        # record rides along for diagnosis (docs/faults.md).
        detail = exc.error.to_dict()
        if exc.retryable:
            retry_after = service.retry_after_hint()
            body = {
                "error": str(exc),
                "error_detail": detail,
                "retry_after_s": retry_after,
            }
            return 503, body, _retry_headers(retry_after)
        return 500, {"error": str(exc), "error_detail": detail}, {}
    except ProtocolError as exc:
        # Raised while resolving the matrix inside the worker path.
        return 400, {"error": str(exc)}, {}
    return 200, {"served": served, "plan": result.to_dict()}, {}


def delta_endpoint(
    service: PlanService, digest: str, payload: Mapping[str, Any]
) -> Reply:
    """``POST /matrices/<digest>/delta`` -- apply a streaming delta."""
    if not is_hex_digest(digest):
        return 400, {"error": f"not a hex digest: {digest!r}"}, {}
    try:
        result, update = service.apply_delta(digest, payload)
    except ProtocolError as exc:
        return 400, {"error": str(exc)}, {}
    except UnknownLineageError as exc:
        return 404, {"error": str(exc.args[0]), "digest": exc.digest}, {}
    except StaleDigestError as exc:
        body = {
            "error": str(exc),
            "digest": exc.digest,
            "head_digest": exc.head_digest,
        }
        return 409, body, {}
    except ServiceClosed as exc:
        return _draining_reply(service, exc)
    except ValueError as exc:
        # Malformed DeltaBatch wire form or out-of-bounds coordinates.
        return 400, {"error": str(exc)}, {}
    body = {
        "applied": {
            "prev_digest": update.prev_digest,
            "new_digest": update.new_digest,
            "n_inserted": update.report.n_inserted,
            "n_overwritten": update.report.n_overwritten,
            "n_deleted": update.report.n_deleted,
            "nnz": update.nnz,
            "n_tiles": update.n_tiles,
            "tiles_repaired": update.repair.tiles_repaired,
            "repaired_fraction": update.repair.repaired_fraction,
            "rebuilt": update.report.rebuilt,
        },
        "plan": result.to_dict(),
    }
    return 200, body, {}


def get_plan_endpoint(service: PlanService, digest: str) -> Reply:
    """``GET /plan/<digest>`` -- a previously stored plan."""
    if not is_hex_digest(digest):
        return 400, {"error": f"not a hex digest: {digest!r}"}, {}
    result = service.store.get(digest)
    if result is None:
        return 404, {"error": f"no stored plan for {digest[:12]}"}, {}
    return 200, {"served": "store", "plan": result.to_dict()}, {}


def healthz_endpoint(service: PlanService) -> Reply:
    """``GET /healthz`` -- liveness (503 while draining)."""
    if service.closed:
        return 503, {"status": "draining"}, {}
    return 200, {"status": "ok"}, {}


def stats_endpoint(
    service: PlanService, server: Optional[Mapping[str, Any]] = None
) -> Reply:
    """``GET /stats`` -- the full metrics snapshot.

    ``server`` (host, bound port, ...) is folded in under the
    ``"server"`` key so callers that started the listener on ``--port 0``
    can discover the kernel-chosen ephemeral port from the API as well
    as from the startup line on stdout.
    """
    snapshot = service.stats()
    if server is not None:
        snapshot["server"] = dict(server)
    return 200, snapshot, {}
