"""Persisting preprocessing artifacts.

The paper notes the generated formats "can be stored for later use --
e.g., they can be generated and used during GNN training and then saved
and reused during GNN inference" (Sec. VI-B).  This module round-trips
the four accelerator formats and the partition assignment through ``.npz``
archives so a preprocessing run is a durable artifact.

Writes are atomic: each archive is written to a temporary file in the
destination directory and published with ``os.replace``, so a reader
(e.g. another plan-service worker, or a process that crashed mid-write)
can only ever observe a complete artifact or none at all.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Type, Union

import numpy as np

from repro.pipeline.formats import AnyFormat, TiledCoo, TiledCsr, UntiledCoo, UntiledCsr

__all__ = ["save_format", "load_format", "save_assignment", "load_assignment"]

_FORMAT_TYPES: Dict[str, Type] = {
    cls.__name__: cls for cls in (UntiledCoo, TiledCoo, UntiledCsr, TiledCsr)
}


def _atomic_savez(path: Union[str, Path], payload: Dict[str, np.ndarray]) -> Path:
    """``np.savez`` into ``path`` atomically; returns the final path.

    Mirrors ``np.savez``'s naming rule (append ``.npz`` unless already
    present), but stages the archive in a temp file in the destination
    directory and publishes it with ``os.replace`` -- a crash mid-write
    leaves no partial ``.npz`` visible, only an unreferenced temp file
    that is removed on the way out.
    """
    final = Path(path)
    if final.suffix != ".npz":
        final = final.with_suffix(final.suffix + ".npz")
    fd, tmp = tempfile.mkstemp(
        dir=final.parent, prefix=f".{final.stem}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, final)
    except BaseException:
        Path(tmp).unlink(missing_ok=True)
        raise
    return final

#: Scalar (non-array) constructor fields per format type.
_SCALAR_FIELDS = {
    "UntiledCoo": ("n_rows", "n_cols"),
    "TiledCoo": ("n_rows", "n_cols"),
    "UntiledCsr": ("n_rows", "n_cols"),
    "TiledCsr": ("n_rows", "n_cols", "tile_height"),
}


def save_format(fmt: AnyFormat, path: Union[str, Path]) -> Path:
    """Write one accelerator format as a self-describing ``.npz``."""
    path = Path(path)
    type_name = type(fmt).__name__
    if type_name not in _FORMAT_TYPES:
        raise ValueError(f"unknown format type {type_name}")
    payload = {"__format__": np.array(type_name)}
    scalars = {}
    for field_name in fmt.__dataclass_fields__:
        value = getattr(fmt, field_name)
        if isinstance(value, np.ndarray):
            payload[field_name] = value
        else:
            scalars[field_name] = int(value)
    payload["__scalars__"] = np.array(json.dumps(scalars))
    return _atomic_savez(path, payload)


def load_format(path: Union[str, Path]) -> AnyFormat:
    """Load a format written by :func:`save_format`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            type_name = str(data["__format__"])
            scalars = json.loads(str(data["__scalars__"]))
        except KeyError as exc:
            raise ValueError(f"{path} is not a saved HotTiles format") from exc
        cls = _FORMAT_TYPES.get(type_name)
        if cls is None:
            raise ValueError(f"unknown format type {type_name!r} in {path}")
        kwargs = dict(scalars)
        for field_name in cls.__dataclass_fields__:
            if field_name in kwargs:
                continue
            if field_name not in data:
                raise ValueError(f"{path} is missing array field {field_name!r}")
            kwargs[field_name] = data[field_name]
    return cls(**kwargs)


def save_assignment(
    assignment: np.ndarray, path: Union[str, Path], label: str = "", mode: str = ""
) -> Path:
    """Persist a hot/cold tile assignment with its provenance labels."""
    return _atomic_savez(
        path,
        {
            "assignment": np.asarray(assignment, dtype=bool),
            "label": np.array(label),
            "mode": np.array(mode),
        },
    )


def load_assignment(path: Union[str, Path]):
    """Load ``(assignment, label, mode)`` written by :func:`save_assignment`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            return (
                data["assignment"].astype(bool),
                str(data["label"]),
                str(data["mode"]),
            )
        except KeyError as exc:
            raise ValueError(f"{path} is not a saved assignment") from exc
