"""Accelerator sparse formats (paper Table III / Sec. VII-A).

Each worker type consumes the partition's tiles in its own compression
format and traversal order:

- SPADE PEs: *untiled COO* (row-major nonzeros of the cold partition),
- Sextans: *tiled COO* (tile-major nonzeros with tile descriptors),
- PIUMA MTPs: *untiled CSR*,
- PIUMA STPs: *tiled CSR*.

Every format object carries a reference ``spmm`` so tests can verify that
the hot and cold partial outputs recombine into the exact SpMM result --
functionally, this is what the Merger module (or the PIUMA atomics) do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.traits import SparseFormat, Traversal, WorkerTraits
from repro.sparse.tiling import TiledMatrix

__all__ = ["UntiledCoo", "TiledCoo", "UntiledCsr", "TiledCsr", "build_format", "AnyFormat"]


@dataclass(frozen=True)
class UntiledCoo:
    """Row-major COO over a tile subset (SPADE's format, Fig. 6(a))."""

    n_rows: int
    n_cols: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.rows.shape[0])

    @property
    def data_items(self) -> int:
        """Items fetched from memory (Table I): 3 per nonzero."""
        return 3 * self.nnz

    def spmm(self, din: np.ndarray) -> np.ndarray:
        out = np.zeros((self.n_rows, din.shape[1]), dtype=np.result_type(self.vals, din))
        np.add.at(out, self.rows, self.vals[:, None] * din[self.cols])
        return out


@dataclass(frozen=True)
class TiledCoo:
    """Tile-major COO with per-tile descriptors (Sextans, Fig. 6(b))."""

    n_rows: int
    n_cols: int
    tile_row: np.ndarray  #: per tile
    tile_col: np.ndarray  #: per tile
    tile_offsets: np.ndarray  #: per tile + sentinel, into the nnz arrays
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.rows.shape[0])

    @property
    def n_tiles(self) -> int:
        return int(self.tile_row.shape[0])

    @property
    def data_items(self) -> int:
        return 3 * self.nnz

    def spmm(self, din: np.ndarray) -> np.ndarray:
        out = np.zeros((self.n_rows, din.shape[1]), dtype=np.result_type(self.vals, din))
        # Tile-by-tile accumulation, mirroring the streaming execution.
        for t in range(self.n_tiles):
            lo, hi = self.tile_offsets[t], self.tile_offsets[t + 1]
            np.add.at(
                out,
                self.rows[lo:hi],
                self.vals[lo:hi, None] * din[self.cols[lo:hi]],
            )
        return out


@dataclass(frozen=True)
class UntiledCsr:
    """CSR over the full row range, holding a tile subset (PIUMA MTP)."""

    n_rows: int
    n_cols: int
    indptr: np.ndarray
    indices: np.ndarray
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def data_items(self) -> int:
        """Table I: ``height + 2 * nnz`` items."""
        return self.n_rows + 2 * self.nnz

    def spmm(self, din: np.ndarray) -> np.ndarray:
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr))
        out = np.zeros((self.n_rows, din.shape[1]), dtype=np.result_type(self.vals, din))
        np.add.at(out, rows, self.vals[:, None] * din[self.indices])
        return out


@dataclass(frozen=True)
class TiledCsr:
    """Per-tile CSR blocks (PIUMA STP).

    Each tile carries a local ``tile_height + 1`` indptr; row ids are local
    to the tile's row panel.
    """

    n_rows: int
    n_cols: int
    tile_height: int
    tile_row: np.ndarray
    tile_col: np.ndarray
    tile_indptr_offsets: np.ndarray  #: per tile, start into indptrs array
    indptrs: np.ndarray  #: concatenated per-tile local indptrs
    tile_offsets: np.ndarray  #: per tile + sentinel, into indices/vals
    indices: np.ndarray
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def n_tiles(self) -> int:
        return int(self.tile_row.shape[0])

    @property
    def data_items(self) -> int:
        """Table I: per tile, ``tile_height + 2 * tile_nnz`` items."""
        return int(self.indptrs.shape[0] - self.n_tiles) + 2 * self.nnz

    def spmm(self, din: np.ndarray) -> np.ndarray:
        out = np.zeros((self.n_rows, din.shape[1]), dtype=np.result_type(self.vals, din))
        for t in range(self.n_tiles):
            base_row = int(self.tile_row[t]) * self.tile_height
            ip_lo = self.tile_indptr_offsets[t]
            height = (
                self.tile_indptr_offsets[t + 1] - ip_lo - 1
                if t + 1 < self.n_tiles
                else self.indptrs.shape[0] - ip_lo - 1
            )
            local_indptr = self.indptrs[ip_lo : ip_lo + height + 1]
            nnz_lo = self.tile_offsets[t]
            local_rows = np.repeat(
                np.arange(height, dtype=np.int64), np.diff(local_indptr)
            )
            lo, hi = nnz_lo, self.tile_offsets[t + 1]
            np.add.at(
                out,
                base_row + local_rows,
                self.vals[lo:hi, None] * din[self.indices[lo:hi]],
            )
        return out


AnyFormat = Union[UntiledCoo, TiledCoo, UntiledCsr, TiledCsr]


def build_format(
    tiled: TiledMatrix, tile_subset: np.ndarray, worker: WorkerTraits
) -> AnyFormat:
    """Materialize the worker's sparse format over a subset of tiles.

    ``tile_subset`` is a boolean mask over the non-empty tiles; the format
    is chosen by the worker's (sparse_format, traversal) pair.
    """
    tile_subset = np.asarray(tile_subset, dtype=bool)
    if tile_subset.shape != (tiled.n_tiles,):
        raise ValueError(f"tile_subset must have shape ({tiled.n_tiles},)")
    tile_idx = np.flatnonzero(tile_subset)
    pieces = [np.arange(tiled.tile_offsets[i], tiled.tile_offsets[i + 1]) for i in tile_idx]
    nnz_idx = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)
    matrix = tiled.matrix

    if worker.traversal is Traversal.UNTILED_ROW_ORDERED:
        key = tiled.rows[nnz_idx] * np.int64(max(matrix.n_cols, 1)) + tiled.cols[nnz_idx]
        nnz_idx = nnz_idx[np.argsort(key, kind="stable")]
        rows = tiled.rows[nnz_idx]
        cols = tiled.cols[nnz_idx]
        vals = tiled.vals[nnz_idx]
        if worker.sparse_format is SparseFormat.COO_LIKE:
            return UntiledCoo(matrix.n_rows, matrix.n_cols, rows, cols, vals)
        counts = np.bincount(rows, minlength=matrix.n_rows)
        indptr = np.zeros(matrix.n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return UntiledCsr(matrix.n_rows, matrix.n_cols, indptr, cols, vals)

    # Tiled traversal: nonzeros already tile-major inside TiledMatrix.
    rows = tiled.rows[nnz_idx]
    cols = tiled.cols[nnz_idx]
    vals = tiled.vals[nnz_idx]
    sizes = tiled.tile_offsets[tile_idx + 1] - tiled.tile_offsets[tile_idx]
    offsets = np.zeros(tile_idx.shape[0] + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    tile_row = tiled.stats.tile_row[tile_idx]
    tile_col = tiled.stats.tile_col[tile_idx]
    if worker.sparse_format is SparseFormat.COO_LIKE:
        return TiledCoo(
            matrix.n_rows, matrix.n_cols, tile_row, tile_col, offsets, rows, cols, vals
        )

    # Tiled CSR: local indptr per tile over the (clipped) tile height.
    th = tiled.tile_height
    indptr_chunks = []
    indptr_offsets = np.zeros(tile_idx.shape[0], dtype=np.int64)
    pos = 0
    for j, t in enumerate(tile_idx):
        lo, hi = offsets[j], offsets[j + 1]
        base = int(tile_row[j]) * th
        height = min(th, matrix.n_rows - base)
        counts = np.bincount(rows[lo:hi] - base, minlength=height)
        local = np.zeros(height + 1, dtype=np.int64)
        np.cumsum(counts, out=local[1:])
        indptr_chunks.append(local)
        indptr_offsets[j] = pos
        pos += height + 1
    indptrs = (
        np.concatenate(indptr_chunks) if indptr_chunks else np.zeros(0, dtype=np.int64)
    )
    return TiledCsr(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        tile_height=th,
        tile_row=tile_row,
        tile_col=tile_col,
        tile_indptr_offsets=indptr_offsets,
        indptrs=indptrs,
        tile_offsets=offsets,
        indices=cols,
        vals=vals,
    )
