"""HotTiles preprocessing pipeline (paper Fig. 7 and Sec. VI-B).

``matrix scan -> per-tile modeling -> partitioning heuristic -> sparse
format generation`` for each worker type.  The generated formats are
directly executable (each carries a reference SpMM), which is how the
tests prove that partitioning + merging preserves the computation.
"""

from repro.pipeline.formats import (
    TiledCoo,
    TiledCsr,
    UntiledCoo,
    UntiledCsr,
    build_format,
)
from repro.pipeline.preprocess import HotTilesPreprocessor, PreprocessResult
from repro.pipeline.cost import PreprocessCost

__all__ = [
    "TiledCoo",
    "TiledCsr",
    "UntiledCoo",
    "UntiledCsr",
    "build_format",
    "HotTilesPreprocessor",
    "PreprocessResult",
    "PreprocessCost",
]
