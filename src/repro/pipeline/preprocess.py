"""The end-to-end HotTiles preprocessing pipeline (paper Fig. 7).

Runs on the host of the heterogeneous architecture: scan the matrix into
tiles, model every tile for both worker types, partition with the
heuristics, and emit the hot and cold sparse formats the accelerators
execute.  Per-stage wall-clock timings are recorded for the Fig. 18
preprocessing-cost study.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.heterogeneous import Architecture
from repro.core.partition import HotTilesPartitioner, HotTilesResult
from repro.pipeline.cost import PreprocessCost
from repro.pipeline.formats import AnyFormat, build_format
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix

__all__ = ["PreprocessResult", "HotTilesPreprocessor"]


@dataclass(frozen=True)
class PreprocessResult:
    """Everything the preprocessing produces for one matrix."""

    tiled: TiledMatrix
    partition: HotTilesResult
    hot_format: Optional[AnyFormat]  #: None when no tile is hot
    cold_format: Optional[AnyFormat]  #: None when no tile is cold
    cost: PreprocessCost

    def verify_spmm(self, din: np.ndarray) -> np.ndarray:
        """Execute both partial formats and merge -- the Merger's job."""
        matrix = self.tiled.matrix
        out = np.zeros(
            (matrix.n_rows, din.shape[1]), dtype=np.result_type(matrix.vals, din)
        )
        for fmt in (self.hot_format, self.cold_format):
            if fmt is not None:
                out += fmt.spmm(din)
        return out


class HotTilesPreprocessor:
    """Scan + model + partition + format generation for one architecture.

    ``cache_aware`` enables the Sec. X cache-aware model extension in the
    partitioner -- the strategy knob plan requests expose.
    ``contention_aware`` selects the water-filling runtime evaluator
    (:mod:`repro.core.contention`) for candidate scoring on PCIe-attached
    architectures; disabling it pins the naive Fig. 8 closed forms.
    """

    def __init__(
        self,
        arch: Architecture,
        cache_aware: bool = False,
        contention_aware: bool = True,
    ) -> None:
        self.arch = arch
        self.partitioner = HotTilesPartitioner(
            arch, cache_aware=cache_aware, contention_aware=contention_aware
        )

    def run(self, matrix: SparseMatrix) -> PreprocessResult:
        """Full pipeline over one sparse matrix.

        Also times the homogeneous-only format generation (the cost any
        single-accelerator software stack pays anyway) so Fig. 18 can
        report the *HotTiles-specific* overhead on top of it.
        """
        t0 = time.perf_counter()
        tiled = TiledMatrix(matrix, self.arch.tile_height, self.arch.tile_width)
        t_scan = time.perf_counter() - t0

        t0 = time.perf_counter()
        partition = self.partitioner.partition(tiled)
        t_partition = time.perf_counter() - t0

        # A block-split plan (partition.chosen.split) still materializes
        # whole-tile formats: the split tile's data lands in the hot-side
        # format and the cold group reads its sub-block from it.  Format
        # bytes are charged per tile either way, so only the simulator
        # (which honors ``split=``) needs the finer granularity.
        assignment = partition.chosen.assignment
        t0 = time.perf_counter()
        hot_format = (
            build_format(tiled, assignment, self.arch.hot.traits)
            if assignment.any()
            else None
        )
        cold_format = (
            build_format(tiled, ~assignment, self.arch.cold.traits)
            if (~assignment).any()
            else None
        )
        t_formats = time.perf_counter() - t0

        # Baseline: what a homogeneous accelerator's pipeline would spend
        # generating its single format for the whole matrix.
        baseline_traits = (
            self.arch.cold.traits if self.arch.cold.count else self.arch.hot.traits
        )
        t0 = time.perf_counter()
        build_format(tiled, np.ones(tiled.n_tiles, dtype=bool), baseline_traits)
        t_homogeneous = time.perf_counter() - t0

        cost = PreprocessCost(
            scan_s=t_scan,
            partition_s=t_partition,
            format_generation_s=t_formats,
            homogeneous_format_s=t_homogeneous,
        )
        return PreprocessResult(
            tiled=tiled,
            partition=partition,
            hot_format=hot_format,
            cold_format=cold_format,
            cost=cost,
        )
