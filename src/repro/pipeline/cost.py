"""Preprocessing cost accounting (paper Sec. VIII-C, Fig. 18).

The paper splits preprocessing into the matrix-format creation any
homogeneous accelerator pays anyway, and the *HotTiles overhead*: the
matrix scan, the modeling + partitioning, and the format generation for
one additional worker type.  Fig. 18 reports the overhead at ~73% of total
preprocessing, i.e. roughly 4x a homogeneous pipeline, amortized over many
SpMM iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PreprocessCost"]


@dataclass(frozen=True)
class PreprocessCost:
    """Wall-clock stage timings of one preprocessing run."""

    scan_s: float  #: tiling + per-tile statistics
    partition_s: float  #: per-tile modeling + heuristics + selection
    format_generation_s: float  #: hot and cold formats actually emitted
    homogeneous_format_s: float  #: baseline single-format generation

    def __post_init__(self) -> None:
        for name in ("scan_s", "partition_s", "format_generation_s", "homogeneous_format_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_s(self) -> float:
        """Total heterogeneous preprocessing time."""
        return self.scan_s + self.partition_s + self.format_generation_s

    @property
    def hottiles_overhead_s(self) -> float:
        """The HotTiles-specific share: everything beyond generating one
        worker type's format (the paper's 'Hot Tiles Overhead')."""
        return max(self.total_s - self.homogeneous_format_s, 0.0)

    @property
    def overhead_fraction(self) -> float:
        """Overhead share of total preprocessing (paper average: ~0.73)."""
        return self.hottiles_overhead_s / self.total_s if self.total_s > 0 else 0.0

    @property
    def slowdown_vs_homogeneous(self) -> float:
        """How many homogeneous format generations the pipeline costs
        (paper: 'about four times the preprocessing overhead')."""
        if self.homogeneous_format_s <= 0:
            return float("inf") if self.total_s > 0 else 1.0
        return self.total_s / self.homogeneous_format_s
