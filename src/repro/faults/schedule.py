"""Deterministic, seeded fault schedules for the fluid simulator.

A :class:`FaultSchedule` is an immutable, time-sorted set of injection
events consumed by :func:`repro.sim.faulted.simulate_faulted` (reached
through ``simulate(..., faults=schedule)``):

- :class:`WorkerSlowdown` -- from ``t_s`` on, instance ``index`` of the
  ``kind`` group computes ``factor``x slower (``factor >= 1``; memory
  traffic is unaffected -- stragglers are compute-bound in this model).
- :class:`WorkerFailure` -- at ``t_s`` the instance dies permanently;
  its unfinished work is reassigned to surviving same-kind instances or,
  when none remain, the run raises :class:`~repro.faults.errors.SimFault`.
- :class:`BandwidthWindow` -- during ``[t_start_s, t_end_s)`` the shared
  main-memory bandwidth is scaled by ``factor`` (``0 < factor <= 1``);
  overlapping windows multiply.  The PCIe link, being a point-to-point
  resource, keeps its nominal bandwidth.

Event times are *global* simulated seconds: in serial execution mode the
cold group starts at the hot group's span, so a failure timed during the
hot phase removes the cold instance before it starts.

Schedules serialize to/from a small JSON document (``docs/faults.md``)
and :meth:`FaultSchedule.random` draws a reproducible schedule from a
seed and per-type expected event counts -- the generator behind
``hottiles resilience`` and the chaos load generator.  An empty schedule
is a strict no-op: ``simulate`` takes the untouched bit-identical path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults.errors import FaultScheduleError

__all__ = [
    "WorkerSlowdown",
    "WorkerFailure",
    "BandwidthWindow",
    "FaultEvent",
    "FaultSchedule",
    "FaultSummary",
]

_KINDS = ("hot", "cold")


@dataclass(frozen=True)
class WorkerSlowdown:
    """Instance ``kind``-``index`` computes ``factor``x slower from ``t_s``."""

    t_s: float
    kind: str  #: 'hot' or 'cold'
    index: int  #: instance index within the group
    factor: float  #: >= 1; 2.0 means compute takes twice as long

    def validate(self) -> None:
        _check_target(self.kind, self.index, self.t_s)
        if not (self.factor >= 1.0 and np.isfinite(self.factor)):
            raise FaultScheduleError(
                f"slowdown factor must be finite and >= 1, got {self.factor!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "event": "slowdown",
            "t_s": self.t_s,
            "kind": self.kind,
            "index": self.index,
            "factor": self.factor,
        }


@dataclass(frozen=True)
class WorkerFailure:
    """Instance ``kind``-``index`` dies permanently at ``t_s``."""

    t_s: float
    kind: str
    index: int

    def validate(self) -> None:
        _check_target(self.kind, self.index, self.t_s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "event": "failure",
            "t_s": self.t_s,
            "kind": self.kind,
            "index": self.index,
        }


@dataclass(frozen=True)
class BandwidthWindow:
    """Main-memory bandwidth scaled by ``factor`` during the window."""

    t_start_s: float
    t_end_s: float
    factor: float  #: in (0, 1]

    def validate(self) -> None:
        if not (
            np.isfinite(self.t_start_s)
            and np.isfinite(self.t_end_s)
            and 0.0 <= self.t_start_s < self.t_end_s
        ):
            raise FaultScheduleError(
                f"bandwidth window needs 0 <= start < end, got "
                f"[{self.t_start_s!r}, {self.t_end_s!r})"
            )
        if not (0.0 < self.factor <= 1.0):
            raise FaultScheduleError(
                f"bandwidth factor must be in (0, 1], got {self.factor!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "event": "bandwidth",
            "t_start_s": self.t_start_s,
            "t_end_s": self.t_end_s,
            "factor": self.factor,
        }


FaultEvent = Union[WorkerSlowdown, WorkerFailure, BandwidthWindow]


def _check_target(kind: str, index: int, t_s: float) -> None:
    if kind not in _KINDS:
        raise FaultScheduleError(f"worker kind must be 'hot' or 'cold', got {kind!r}")
    if not isinstance(index, int) or isinstance(index, bool) or index < 0:
        raise FaultScheduleError(f"instance index must be an int >= 0, got {index!r}")
    if not (np.isfinite(t_s) and t_s >= 0.0):
        raise FaultScheduleError(f"event time must be finite and >= 0, got {t_s!r}")


@dataclass(frozen=True)
class FaultSummary:
    """What one degraded-mode run actually injected and recovered from."""

    slowdowns: int = 0
    failures: int = 0
    bandwidth_windows: int = 0
    reassigned_phases: int = 0  #: work units moved off dead instances
    failed_instances: Tuple[str, ...] = ()  #: e.g. ('hot-1',)

    @property
    def injected(self) -> int:
        return self.slowdowns + self.failures + self.bandwidth_windows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slowdowns": self.slowdowns,
            "failures": self.failures,
            "bandwidth_windows": self.bandwidth_windows,
            "reassigned_phases": self.reassigned_phases,
            "failed_instances": list(self.failed_instances),
        }


class FaultSchedule:
    """An immutable, validated, time-sorted collection of fault events."""

    __slots__ = ("events",)

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        for event in events:
            if not isinstance(
                event, (WorkerSlowdown, WorkerFailure, BandwidthWindow)
            ):
                raise FaultScheduleError(f"not a fault event: {event!r}")
            event.validate()
        object.__setattr__(
            self,
            "events",
            tuple(sorted(events, key=_event_sort_key)),
        )

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("FaultSchedule is immutable")

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:
        kinds = {
            "slowdown": sum(isinstance(e, WorkerSlowdown) for e in self.events),
            "failure": sum(isinstance(e, WorkerFailure) for e in self.events),
            "bandwidth": sum(isinstance(e, BandwidthWindow) for e in self.events),
        }
        inner = ", ".join(f"{k}={v}" for k, v in kinds.items() if v)
        return f"FaultSchedule({inner or 'empty'})"

    def failures_for(self, kind: str) -> List[WorkerFailure]:
        return [
            e for e in self.events if isinstance(e, WorkerFailure) and e.kind == kind
        ]

    def validate_against(self, hot_count: int, cold_count: int) -> None:
        """Raise unless every targeted instance exists in the architecture."""
        counts = {"hot": hot_count, "cold": cold_count}
        for event in self.events:
            if isinstance(event, BandwidthWindow):
                continue
            if event.index >= counts[event.kind]:
                raise FaultScheduleError(
                    f"{event.kind}-{event.index} does not exist "
                    f"(architecture has {counts[event.kind]} {event.kind} workers)"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"version": 1, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSchedule":
        if not isinstance(payload, dict) or "events" not in payload:
            raise FaultScheduleError(
                "fault schedule must be an object with an 'events' list"
            )
        events: List[FaultEvent] = []
        for i, raw in enumerate(payload["events"]):
            if not isinstance(raw, dict):
                raise FaultScheduleError(f"event {i} must be an object, got {raw!r}")
            events.append(_event_from_dict(raw, i))
        return cls(events)

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise FaultScheduleError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # Seeded generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        horizon_s: float,
        hot_instances: int,
        cold_instances: int,
        failure_rate: float = 0.0,
        slowdown_rate: float = 0.0,
        bandwidth_rate: float = 0.0,
        max_slowdown: float = 4.0,
        min_bandwidth_factor: float = 0.3,
    ) -> "FaultSchedule":
        """Draw a reproducible schedule over ``[0, horizon_s)``.

        Each ``*_rate`` is the *expected number of events* of that type
        over the horizon (Poisson-sampled).  Failures are capped at
        ``group size - 1`` per group so at least one instance of every
        populated group survives -- random schedules exercise degraded
        mode, never the unrecoverable :class:`SimFault` path (build that
        by hand when you want it).
        """
        if horizon_s <= 0 or not np.isfinite(horizon_s):
            raise FaultScheduleError(f"horizon_s must be positive, got {horizon_s!r}")
        for name, rate in (
            ("failure_rate", failure_rate),
            ("slowdown_rate", slowdown_rate),
            ("bandwidth_rate", bandwidth_rate),
        ):
            if rate < 0 or not np.isfinite(rate):
                raise FaultScheduleError(f"{name} must be >= 0, got {rate!r}")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []

        targets = [("hot", i) for i in range(hot_instances)] + [
            ("cold", i) for i in range(cold_instances)
        ]

        n_fail = int(rng.poisson(failure_rate))
        killable = [
            (k, i)
            for k, i in targets
            if (hot_instances if k == "hot" else cold_instances) > 1
        ]
        rng.shuffle(killable)
        per_kind_budget = {"hot": max(hot_instances - 1, 0),
                          "cold": max(cold_instances - 1, 0)}
        for kind, index in killable[: max(n_fail, 0)]:
            if per_kind_budget[kind] <= 0:
                continue
            per_kind_budget[kind] -= 1
            events.append(
                WorkerFailure(
                    t_s=float(rng.uniform(0.0, horizon_s)), kind=kind, index=index
                )
            )

        if targets:
            for _ in range(int(rng.poisson(slowdown_rate))):
                kind, index = targets[int(rng.integers(len(targets)))]
                events.append(
                    WorkerSlowdown(
                        t_s=float(rng.uniform(0.0, horizon_s)),
                        kind=kind,
                        index=index,
                        factor=float(rng.uniform(1.5, max_slowdown)),
                    )
                )

        for _ in range(int(rng.poisson(bandwidth_rate))):
            start = float(rng.uniform(0.0, horizon_s))
            length = float(rng.uniform(0.05, 0.5)) * horizon_s
            events.append(
                BandwidthWindow(
                    t_start_s=start,
                    t_end_s=start + length,
                    factor=float(rng.uniform(min_bandwidth_factor, 0.9)),
                )
            )
        return cls(events)


def _event_sort_key(event: FaultEvent) -> Tuple[float, int, str]:
    if isinstance(event, BandwidthWindow):
        return (event.t_start_s, 0, "")
    order = 1 if isinstance(event, WorkerFailure) else 2
    return (event.t_s, order, f"{event.kind}-{event.index}")


def _event_from_dict(raw: Dict[str, Any], position: int) -> FaultEvent:
    name = raw.get("event")
    try:
        if name == "slowdown":
            return WorkerSlowdown(
                t_s=float(raw["t_s"]),
                kind=str(raw["kind"]),
                index=int(raw["index"]),
                factor=float(raw["factor"]),
            )
        if name == "failure":
            return WorkerFailure(
                t_s=float(raw["t_s"]), kind=str(raw["kind"]), index=int(raw["index"])
            )
        if name == "bandwidth":
            return BandwidthWindow(
                t_start_s=float(raw["t_start_s"]),
                t_end_s=float(raw["t_end_s"]),
                factor=float(raw["factor"]),
            )
    except KeyError as exc:
        raise FaultScheduleError(
            f"event {position} ({name!r}) missing field {exc.args[0]!r}"
        ) from None
    except (TypeError, ValueError) as exc:
        raise FaultScheduleError(f"event {position} ({name!r}): {exc}") from None
    raise FaultScheduleError(
        f"event {position}: unknown event type {name!r} "
        "(known: slowdown, failure, bandwidth)"
    )
