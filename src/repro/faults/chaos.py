"""Chaos configuration for the closed-loop load generator.

``hottiles loadgen --chaos`` perturbs a configurable fraction of
requests before they leave the client, exercising the service's fault
handling end to end:

- ``timeout`` -- the request carries a near-zero ``timeout_s``, so the
  server either answers from the store in time, falls back to the
  roofline-only degraded plan, or sheds the request with ``504``.  All
  three are *expected* chaos outcomes, not failures.
- ``malformed`` -- the request body is corrupted (an unknown generator
  parameter), so the server must answer ``400`` deterministically.
  Opt-in (``--chaos-kinds timeout malformed``): a malformed request is a
  terminal error by design, and the CI chaos smoke asserts *zero*
  terminal errors under the default kinds.

Decisions are drawn from one seeded generator, so a chaos run is
reproducible given ``(seed, rate, kinds)``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = ["CHAOS_KINDS", "ChaosConfig", "ChaosDecision"]

#: Injectable fault kinds, in the order the RNG indexes them.
CHAOS_KINDS: Tuple[str, ...] = ("timeout", "malformed")

#: timeout_s injected by the ``timeout`` fault: small enough that a cold
#: plan cannot finish, large enough that a store hit still wins the race.
_CHAOS_TIMEOUT_S = 0.005


@dataclass(frozen=True)
class ChaosDecision:
    """What the chaos layer did to one request."""

    kind: Optional[str]  #: None = untouched
    payload: Dict[str, Any]

    @property
    def injected(self) -> bool:
        return self.kind is not None

    def expects(self, status: int) -> bool:
        """Is ``status`` an acceptable outcome for this injection?"""
        if self.kind == "timeout":
            # Store hit / degraded fallback (200), shed (504), or
            # backpressure the client already retries (429).
            return status in (200, 429, 504)
        if self.kind == "malformed":
            return status == 400
        return status == 200


@dataclass
class ChaosConfig:
    """Rate, seed, and fault mix of one chaos loadgen run."""

    rate: float = 0.1  #: fraction of requests perturbed
    seed: int = 0
    kinds: Tuple[str, ...] = ("timeout",)
    _rng: np.random.Generator = field(init=False, repr=False)
    _lock_free_note: None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {self.rate!r}")
        unknown = set(self.kinds) - set(CHAOS_KINDS)
        if unknown:
            raise ValueError(
                f"unknown chaos kind(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(CHAOS_KINDS)})"
            )
        if not self.kinds:
            raise ValueError("chaos kinds must not be empty")
        self._rng = np.random.default_rng(self.seed)

    def decide(self, payload: Dict[str, Any]) -> ChaosDecision:
        """Perturb (or pass through) one request payload.

        Called under the load generator's counter lock, so the seeded
        RNG needs no synchronization of its own.
        """
        if float(self._rng.random()) >= self.rate:
            return ChaosDecision(kind=None, payload=payload)
        kind = self.kinds[int(self._rng.integers(len(self.kinds)))]
        mutated = copy.deepcopy(dict(payload))
        if kind == "timeout":
            mutated["timeout_s"] = _CHAOS_TIMEOUT_S
        else:  # malformed
            generator = dict(mutated.get("generator") or {"kind": "rmat"})
            generator["chaos_bogus_param"] = 1
            mutated["generator"] = generator
        return ChaosDecision(kind=kind, payload=mutated)
