"""The typed fault/error taxonomy shared by the simulator and the service.

Two axes:

1. *Simulator faults* -- :class:`SimFault` is raised when an injected
   failure leaves a worker group with pending work and no surviving
   instance to absorb it: the execution genuinely cannot complete, so a
   typed, catchable signal replaces a silent wrong answer.
2. *Service errors* -- every worker-side exception is classified as
   **retryable** (transient: timeouts, connection resets, resource
   pressure, or anything raised as :class:`RetryableError`) or
   **terminal** (deterministic: malformed requests, value errors -- a
   retry would fail identically).  The classification drives the
   planner's bounded-backoff retry loop and the HTTP status mapping
   (``503`` + ``Retry-After`` vs ``500``).

A :class:`StructuredError` is the wire/record form of one failure: type
name, message, the tail of the traceback, and the retryable flag.  It is
what :class:`~repro.service.planner.PlanFailed` carries and what
``GET /stats`` exposes in ``last_errors``, replacing the stringified
``f"{type}: {exc}"`` that used to discard all of this.
"""

from __future__ import annotations

import traceback
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

__all__ = [
    "FaultError",
    "SimFault",
    "FaultScheduleError",
    "RetryableError",
    "TerminalError",
    "is_retryable",
    "StructuredError",
]


class FaultError(RuntimeError):
    """Base of all fault-injection errors."""


class SimFault(FaultError):
    """An injected failure left pending work with no surviving worker.

    Carries the group (``"hot"``/``"cold"``), the simulated time of the
    fatal failure, and the label of the last instance to die.
    """

    def __init__(self, kind: str, t_s: float, instance: str) -> None:
        super().__init__(
            f"all {kind} workers failed by t={t_s:.6g}s "
            f"(last survivor {instance!r}) with work pending"
        )
        self.kind = kind
        self.t_s = t_s
        self.instance = instance


class FaultScheduleError(ValueError):
    """A malformed fault schedule (bad event, factor, or target)."""


class RetryableError(RuntimeError):
    """Marker: a transient failure a retry is expected to clear."""


class TerminalError(RuntimeError):
    """Marker: a deterministic failure a retry would reproduce."""


#: Exception types treated as transient without an explicit marker.
_RETRYABLE_TYPES = (TimeoutError, ConnectionError, InterruptedError, BlockingIOError)


def is_retryable(exc: BaseException) -> bool:
    """Classify one exception on the retryable/terminal axis.

    Explicit markers win; otherwise timeouts and connection-shaped OS
    errors are transient and everything else (``ValueError``,
    ``ProtocolError``, ...) is terminal -- retrying a deterministic
    computation with identical inputs cannot change the outcome.
    """
    if isinstance(exc, TerminalError):
        return False
    if isinstance(exc, RetryableError):
        return True
    return isinstance(exc, _RETRYABLE_TYPES)


@dataclass(frozen=True)
class StructuredError:
    """The record form of one worker-side failure."""

    type: str  #: exception class name
    message: str
    retryable: bool
    traceback_tail: str = ""  #: last few frames, newline-joined

    def __str__(self) -> str:
        return f"{self.type}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StructuredError":
        return cls(
            type=str(payload.get("type", "Exception")),
            message=str(payload.get("message", "")),
            retryable=bool(payload.get("retryable", False)),
            traceback_tail=str(payload.get("traceback_tail", "")),
        )

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        retryable: Optional[bool] = None,
        tail_lines: int = 10,
    ) -> "StructuredError":
        """Capture ``exc`` with the last ``tail_lines`` traceback lines."""
        lines = traceback.format_exception(type(exc), exc, exc.__traceback__)
        tail = "".join(lines)[-4096:]
        tail = "\n".join(tail.strip().splitlines()[-tail_lines:])
        return cls(
            type=type(exc).__name__,
            message=str(exc),
            retryable=is_retryable(exc) if retryable is None else retryable,
            traceback_tail=tail,
        )
