"""Deterministic fault injection and degraded-mode execution.

See ``docs/faults.md``.  Three layers:

- :mod:`repro.faults.schedule` -- seeded :class:`FaultSchedule` consumed
  by the simulator (``simulate(..., faults=...)``),
- :mod:`repro.faults.errors` -- the retryable/terminal error taxonomy and
  :class:`StructuredError` record the planning service carries,
- :mod:`repro.faults.retry` / :mod:`repro.faults.chaos` -- bounded
  backoff with jitter and the chaos load-generator configuration.
"""

from repro.faults.chaos import CHAOS_KINDS, ChaosConfig, ChaosDecision
from repro.faults.errors import (
    FaultError,
    FaultScheduleError,
    RetryableError,
    SimFault,
    StructuredError,
    TerminalError,
    is_retryable,
)
from repro.faults.retry import RetryExhausted, RetryPolicy
from repro.faults.schedule import (
    BandwidthWindow,
    FaultEvent,
    FaultSchedule,
    FaultSummary,
    WorkerFailure,
    WorkerSlowdown,
)

__all__ = [
    "BandwidthWindow",
    "CHAOS_KINDS",
    "ChaosConfig",
    "ChaosDecision",
    "FaultError",
    "FaultEvent",
    "FaultSchedule",
    "FaultScheduleError",
    "FaultSummary",
    "RetryExhausted",
    "RetryPolicy",
    "RetryableError",
    "SimFault",
    "StructuredError",
    "TerminalError",
    "WorkerFailure",
    "WorkerSlowdown",
    "is_retryable",
]
