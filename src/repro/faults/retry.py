"""Bounded exponential backoff with deterministic jitter.

The planner's worker loop retries *retryable* failures (see
:mod:`repro.faults.errors`) under a :class:`RetryPolicy`: attempt ``k``
sleeps ``base * 2**(k-1)`` seconds, capped at ``max_delay_s``, with a
uniform jitter of up to ``jitter`` of the delay added on top.  Jitter is
drawn from a seeded generator so test runs are reproducible while still
decorrelating real retry storms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

import numpy as np

from repro.faults.errors import is_retryable

__all__ = ["RetryPolicy", "RetryExhausted"]

T = TypeVar("T")


class RetryExhausted(RuntimeError):
    """Every attempt failed; ``last`` is the final exception."""

    def __init__(self, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"retryable failure persisted through {attempts} attempts: "
            f"{type(last).__name__}: {last}"
        )
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts."""

    max_attempts: int = 3  #: total attempts, including the first
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25  #: fraction of the delay added uniformly at random
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def rng(self) -> np.random.Generator:
        """A fresh seeded jitter source (one per consumer, not shared)."""
        return np.random.default_rng(self.seed)

    def delay_s(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.base_delay_s * (2.0 ** (attempt - 1)), self.max_delay_s)
        if self.jitter > 0.0 and rng is not None:
            delay += delay * self.jitter * float(rng.random())
        return delay

    def call(
        self,
        fn: Callable[[], T],
        rng: Optional[np.random.Generator] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Run ``fn`` with retries on retryable exceptions.

        Terminal exceptions propagate unchanged on the first occurrence;
        a retryable exception that survives every attempt is wrapped in
        :class:`RetryExhausted` (callers inspect ``.last``).
        """
        rng = self.rng() if rng is None else rng
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 -- classified below
                if not is_retryable(exc):
                    raise
                last = exc
                if attempt == self.max_attempts:
                    break
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay_s(attempt, rng))
        assert last is not None
        raise RetryExhausted(self.max_attempts, last) from last
