"""HotTiles reproduction: IMH-aware SpMM for heterogeneous accelerators.

Reproduction of Gerogiannis et al., "HotTiles: Accelerating SpMM with
Heterogeneous Accelerator Architectures" (HPCA 2024).

Quickstart::

    from repro import SparseMatrix, TiledMatrix, spade_sextans, HotTilesPartitioner
    from repro.sparse import generators

    matrix = generators.rmat(scale=14, nnz=200_000, seed=7)
    arch = spade_sextans(system_scale=4)
    tiled = TiledMatrix(matrix, arch.tile_height, arch.tile_width)
    result = HotTilesPartitioner(arch).partition(tiled)
    print(result.chosen.label, result.chosen.hot_nnz_fraction(tiled))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.sparse import SparseMatrix, TiledMatrix
from repro.core import (
    AnalyticalModel,
    HotTilesPartitioner,
    ProblemSpec,
    WorkerTraits,
)
from repro.core.partition import ExecutionMode, Heuristic, HotTilesResult, PartitionResult
from repro.arch import (
    Architecture,
    WorkerGroup,
    piuma,
    spade_sextans,
    spade_sextans_iso_scale,
    spade_sextans_pcie,
)

__version__ = "1.0.0"

__all__ = [
    "SparseMatrix",
    "TiledMatrix",
    "AnalyticalModel",
    "HotTilesPartitioner",
    "HotTilesResult",
    "PartitionResult",
    "Heuristic",
    "ExecutionMode",
    "ProblemSpec",
    "WorkerTraits",
    "Architecture",
    "WorkerGroup",
    "spade_sextans",
    "spade_sextans_iso_scale",
    "spade_sextans_pcie",
    "piuma",
    "__version__",
]
