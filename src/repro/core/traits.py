"""Worker (processing element) trait descriptions.

The analytical model (Sec. IV) and the simulator (:mod:`repro.sim`) are
both parameterized purely by these traits.  A trait object captures what
the paper's Sec. VI-B lists as user-supplied architecture inputs:
computational throughput, scratchpad sizes, *Din*/*Dout* reuse types,
sparse format, task-overlap behaviour, and the calibrated visible latency
per byte (``vis_lat``).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

__all__ = [
    "ReuseType",
    "SparseFormat",
    "Traversal",
    "WorkerKind",
    "Task",
    "OVERLAP_FULL",
    "OVERLAP_NONE",
    "WorkerTraits",
]


class ReuseType(enum.Enum):
    """Dense-row reuse types of Table I."""

    NONE = "none"  #: every nonzero fetches a dense row from memory
    INTRA_TILE_STREAM = "intra_stream"  #: full dense tile streamed to a scratchpad
    INTRA_TILE_DEMAND = "intra_demand"  #: rows fetched once per distinct id (registers/cache)
    INTER_TILE = "inter_tile"  #: rows already resident from an earlier tile in the panel


class SparseFormat(enum.Enum):
    """Sparse-input compression families of Table I (bottom)."""

    COO_LIKE = "coo"  #: 3 data items per nonzero (r_id, c_id, val)
    CSR_LIKE = "csr"  #: row offsets + (c_id, val) per nonzero


class Traversal(enum.Enum):
    """Sparse-matrix traversal orders of Fig. 6."""

    UNTILED_ROW_ORDERED = "untiled"
    TILED_ROW_ORDERED = "tiled"


class WorkerKind(enum.Enum):
    """Hot workers suit compute-bound dense regions; cold workers suit
    memory-bound sparse regions (Sec. III-A)."""

    HOT = "hot"
    COLD = "cold"


class Task(enum.Enum):
    """The five per-tile tasks of the execution-time model (Sec. IV-B)."""

    SPARSE_READ = "sparse_read"
    DIN_READ = "din_read"
    DOUT_READ = "dout_read"
    COMPUTE = "compute"
    DOUT_WRITE = "dout_write"


_ALL_TASKS = frozenset(Task)

#: Worker overlaps all five tasks: tile time = max over task times.
OVERLAP_FULL: Tuple[FrozenSet[Task], ...] = (_ALL_TASKS,)

#: Worker overlaps nothing: tile time = sum over task times.
OVERLAP_NONE: Tuple[FrozenSet[Task], ...] = tuple(frozenset((t,)) for t in Task)


@dataclass(frozen=True)
class WorkerTraits:
    """Full description of one worker (PE) type.

    Model parameters (consumed by :class:`repro.core.model.AnalyticalModel`):

    - ``macs_per_cycle`` / ``simd_width`` / ``frequency_ghz`` -- compute
      throughput; a nonzero costs
      ``ceil(K / simd_width) * ops_per_nnz / macs_per_cycle`` cycles,
    - ``fixed_nnz_per_cycle`` -- when set, the worker processes that many
      nonzeros per cycle *regardless of arithmetic intensity* (the enhanced
      Sextans of the SPADE-Sextans+PCIe study, Sec. VII),
    - ``din_reuse`` / ``dout_reuse`` -- Table III reuse types,
    - ``din_first_tile_reuse`` / ``dout_first_tile_reuse`` -- the reuse type
      charged to the *first* tile of this worker type in a row panel when
      the steady-state type is ``INTER_TILE`` (Sec. IV-C readjustment),
    - ``sparse_format``, ``traversal``, ``overlap_groups``,
    - ``vis_lat_s_per_byte`` -- calibrated visible latency per byte.

    Simulator parameters (consumed by :mod:`repro.sim`, i.e. the stand-in
    for the paper's SST/Sniper ground truth):

    - ``mem_bytes_per_cycle`` -- maximum memory draw rate of one worker,
    - ``scratchpad_bytes`` -- stream-buffer capacity (constrains tile size),
    - ``cache_bytes`` -- demand-reuse cache capacity; the analytical model
      deliberately ignores it (Sec. IV-C limitation 2), the simulator
      honors it.
    """

    name: str
    kind: WorkerKind
    macs_per_cycle: float
    simd_width: int
    frequency_ghz: float
    din_reuse: ReuseType
    dout_reuse: ReuseType
    sparse_format: SparseFormat
    traversal: Traversal
    overlap_groups: Tuple[FrozenSet[Task], ...] = OVERLAP_FULL
    din_first_tile_reuse: Optional[ReuseType] = None
    dout_first_tile_reuse: Optional[ReuseType] = None
    fixed_nnz_per_cycle: Optional[float] = None
    vis_lat_s_per_byte: float = 1e-11
    mem_bytes_per_cycle: float = 16.0
    scratchpad_bytes: Optional[int] = None
    cache_bytes: int = 0

    def __post_init__(self) -> None:
        if self.macs_per_cycle <= 0 or self.simd_width <= 0 or self.frequency_ghz <= 0:
            raise ValueError(f"{self.name}: compute parameters must be positive")
        if self.vis_lat_s_per_byte < 0 or self.mem_bytes_per_cycle <= 0:
            raise ValueError(f"{self.name}: memory parameters must be positive")
        covered = frozenset().union(*self.overlap_groups) if self.overlap_groups else frozenset()
        if covered != _ALL_TASKS:
            raise ValueError(f"{self.name}: overlap groups must cover all five tasks")
        total = sum(len(g) for g in self.overlap_groups)
        if total != len(_ALL_TASKS):
            raise ValueError(f"{self.name}: overlap groups must not overlap each other")
        for attr in ("din_first_tile_reuse", "dout_first_tile_reuse"):
            first = getattr(self, attr)
            if first is ReuseType.INTER_TILE:
                raise ValueError(f"{self.name}: {attr} cannot itself be INTER_TILE")

    # ------------------------------------------------------------------
    def cycles_per_nonzero(self, k: int, ops_per_nnz: int = 1) -> float:
        """Cycles to process one nonzero of an SpMM with ``K = k``.

        A nonzero requires ``ops_per_nnz`` SIMD operations over a K-element
        row (``ops_per_nnz`` = 1 for vanilla SpMM; larger for gSpMM variants
        with heavier monoids, Fig. 14).
        """
        if k <= 0 or ops_per_nnz <= 0:
            raise ValueError("k and ops_per_nnz must be positive")
        if self.fixed_nnz_per_cycle is not None:
            return 1.0 / self.fixed_nnz_per_cycle
        return math.ceil(k / self.simd_width) * ops_per_nnz / self.macs_per_cycle

    def nnz_throughput_per_sec(self, k: int, ops_per_nnz: int = 1) -> float:
        """Peak nonzeros/second of one worker instance."""
        return self.frequency_ghz * 1e9 / self.cycles_per_nonzero(k, ops_per_nnz)

    def peak_gflops(self, k: int, ops_per_nnz: int = 1) -> float:
        """Peak GFLOP/s (2 flops per element per MAC-equivalent op)."""
        flops_per_nnz = 2.0 * k * ops_per_nnz
        return self.nnz_throughput_per_sec(k, ops_per_nnz) * flops_per_nnz / 1e9

    def mem_rate_bytes_per_sec(self) -> float:
        """Maximum memory draw rate of one worker instance (simulator)."""
        return self.mem_bytes_per_cycle * self.frequency_ghz * 1e9

    def effective_first_reuse(self, operand: str) -> ReuseType:
        """Reuse type charged to a panel's first tile for ``din``/``dout``."""
        if operand == "din":
            steady, first = self.din_reuse, self.din_first_tile_reuse
        elif operand == "dout":
            steady, first = self.dout_reuse, self.dout_first_tile_reuse
        else:
            raise ValueError(f"operand must be 'din' or 'dout', got {operand!r}")
        if steady is not ReuseType.INTER_TILE:
            return steady
        if first is None:
            raise ValueError(
                f"{self.name}: {operand}_first_tile_reuse required with INTER_TILE reuse"
            )
        return first

    def with_vis_lat(self, vis_lat: float) -> "WorkerTraits":
        """Copy of these traits with a (re-)calibrated ``vis_lat``."""
        return replace(self, vis_lat_s_per_byte=vis_lat)

    def scaled_compute(self, factor: float) -> "WorkerTraits":
        """Copy with compute throughput scaled by ``factor`` (Fig. 14)."""
        if self.fixed_nnz_per_cycle is not None:
            return replace(self, fixed_nnz_per_cycle=self.fixed_nnz_per_cycle * factor)
        return replace(self, macs_per_cycle=self.macs_per_cycle * factor)
