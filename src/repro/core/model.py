"""The IMH-aware per-tile analytical model (paper Sec. IV).

For every tile and worker type the model predicts

- the execution time, combining the five per-tile tasks (read sparse input,
  read *Din*, read *Dout*, SIMD multiply-accumulate, write *Dout*)
  according to the worker's overlap behaviour, and
- the number of bytes read/written from main memory, used later to account
  for bandwidth contention between worker types.

Memory task times are ``bytes * vis_lat`` where ``vis_lat`` is the
calibrated visible latency per byte (Sec. VI-B); the compute task time is
``tile_nnzs * cycles_per_nonzero / frequency``.

The model follows the paper's two deliberate simplifications (Sec. IV-C):

1. *Maximum reuse assumption*: during partitioning, a tile whose operand
   reuse is inter-tile is charged zero traffic, as if it were never the
   first tile of its worker type in its row panel.  Once the assignment is
   known, callers pass ``first_mask`` to re-charge the actual first tiles.
2. *No cache reuse*: demand reuse through caches is ignored (the simulator
   honors it, which reproduces the paper's Fig. 17 error pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.problem import Kernel, ProblemSpec
from repro.core.reuse import (
    dense_rows_accessed,
    effective_tile_heights,
    effective_tile_widths,
    sparse_bytes_accessed,
)
from repro.core.traits import ReuseType, Task, WorkerTraits
from repro.sparse.tiling import TiledMatrix

__all__ = ["TileCosts", "AnalyticalModel"]


@dataclass(frozen=True)
class TileCosts:
    """Per-tile model outputs for one worker type.

    ``time_s[i]`` is the predicted execution time of tile ``i`` on a single
    worker of this type (no bandwidth contention); ``bytes[i]`` the
    predicted main-memory traffic (``bh_i`` / ``bc_i`` in the paper).
    """

    worker_name: str
    time_s: np.ndarray
    bytes: np.ndarray
    task_times: Mapping[Task, np.ndarray]
    task_bytes: Mapping[Task, np.ndarray]

    @property
    def n_tiles(self) -> int:
        return int(self.time_s.shape[0])

    def total_time(self, mask: Optional[np.ndarray] = None) -> float:
        """Summed tile time over ``mask`` (all tiles when omitted)."""
        return float(self.time_s.sum() if mask is None else self.time_s[mask].sum())

    def total_bytes(self, mask: Optional[np.ndarray] = None) -> float:
        """Summed tile traffic over ``mask`` (all tiles when omitted)."""
        return float(self.bytes.sum() if mask is None else self.bytes[mask].sum())


class AnalyticalModel:
    """Vectorized per-tile time/traffic estimator for one problem spec.

    Parameters
    ----------
    problem:
        Data sizes and kernel spec.
    cache_aware:
        Paper future work (Sec. X): when True, demand caches are modeled
        for no-reuse operands with a threshold approximation -- a tile
        whose working set (distinct dense rows) fits the worker's cache is
        charged one fetch per distinct row instead of one per nonzero;
        larger tiles are assumed to thrash.  The paper's model (default,
        False) pessimistically ignores caches, which is the main source of
        its ColdOnly prediction error (Fig. 17).
    """

    def __init__(self, problem: ProblemSpec, cache_aware: bool = False) -> None:
        self.problem = problem
        self.cache_aware = cache_aware

    # ------------------------------------------------------------------
    def tile_costs(
        self,
        tiled: TiledMatrix,
        worker: WorkerTraits,
        first_mask: Optional[np.ndarray] = None,
    ) -> TileCosts:
        """Estimate all tiles of ``tiled`` as if executed by ``worker``.

        Parameters
        ----------
        first_mask:
            Boolean array marking tiles that are the first of this worker
            type in their row panel.  ``None`` applies the maximum-reuse
            assumption (no tile is first), which is what the partitioning
            heuristics consume; the final-runtime predictions pass the real
            mask derived from the assignment.
        """
        stats = tiled.stats
        n = stats.n_tiles
        if first_mask is not None:
            first_mask = np.asarray(first_mask, dtype=bool)
            if first_mask.shape != (n,):
                raise ValueError(f"first_mask must have shape ({n},)")

        widths = effective_tile_widths(tiled)
        heights = effective_tile_heights(tiled)
        nnz = stats.nnz.astype(np.float64)
        row_bytes = float(self.problem.dense_row_bytes)

        task_bytes: Dict[Task, np.ndarray] = {}
        task_bytes[Task.SPARSE_READ] = sparse_bytes_accessed(
            worker.sparse_format,
            stats.nnz,
            heights,
            self.problem.value_bytes,
            self.problem.index_bytes,
        )
        din_rows = self._operand_rows(
            worker, "din", stats.nnz, stats.uniq_cids, widths, first_mask
        )
        task_bytes[Task.DIN_READ] = din_rows * row_bytes

        if self.problem.kernel is Kernel.SDDMM:
            # SDDMM reads a second dense input indexed by r_id and writes a
            # scalar per nonzero instead of read-modify-writing Dout rows.
            dout_rows = self._operand_rows(
                worker, "dout", stats.nnz, stats.uniq_rids, heights, first_mask
            )
            task_bytes[Task.DOUT_READ] = dout_rows * row_bytes
            task_bytes[Task.DOUT_WRITE] = nnz * float(self.problem.value_bytes)
        else:
            dout_rows = self._operand_rows(
                worker, "dout", stats.nnz, stats.uniq_rids, heights, first_mask
            )
            task_bytes[Task.DOUT_READ] = dout_rows * row_bytes
            task_bytes[Task.DOUT_WRITE] = dout_rows * row_bytes

        vis_lat = worker.vis_lat_s_per_byte
        task_times: Dict[Task, np.ndarray] = {
            task: task_bytes[task] * vis_lat for task in task_bytes
        }
        cycles = worker.cycles_per_nonzero(self.problem.k, self.problem.ops_per_nnz)
        task_times[Task.COMPUTE] = nnz * (cycles / (worker.frequency_ghz * 1e9))
        task_bytes[Task.COMPUTE] = np.zeros(n, dtype=np.float64)

        time_s = np.zeros(n, dtype=np.float64)
        for group in worker.overlap_groups:
            group_times = np.stack([task_times[t] for t in group])
            time_s += group_times.max(axis=0)
        total_bytes = sum(task_bytes[t] for t in Task)

        for arr in (time_s, total_bytes):
            arr.flags.writeable = False
        return TileCosts(
            worker_name=worker.name,
            time_s=time_s,
            bytes=total_bytes,
            task_times=task_times,
            task_bytes=task_bytes,
        )

    # ------------------------------------------------------------------
    def _operand_rows(
        self,
        worker: WorkerTraits,
        operand: str,
        tile_nnzs: np.ndarray,
        tile_uniq_ids: np.ndarray,
        tile_extents: np.ndarray,
        first_mask: Optional[np.ndarray],
    ) -> np.ndarray:
        """Rows accessed for one dense operand, honoring the first-tile mask."""
        steady = worker.din_reuse if operand == "din" else worker.dout_reuse
        rows = dense_rows_accessed(steady, tile_nnzs, tile_uniq_ids, tile_extents)
        if (
            self.cache_aware
            and steady is ReuseType.NONE
            and worker.cache_bytes > 0
        ):
            capacity_rows = worker.cache_bytes // self.problem.dense_row_bytes
            fits = np.asarray(tile_uniq_ids, dtype=np.float64) <= capacity_rows
            rows = np.where(fits, np.asarray(tile_uniq_ids, dtype=np.float64), rows)
        if steady is ReuseType.INTER_TILE and first_mask is not None and first_mask.any():
            first_reuse = worker.effective_first_reuse(operand)
            first_rows = dense_rows_accessed(
                first_reuse, tile_nnzs, tile_uniq_ids, tile_extents
            )
            rows = np.where(first_mask, first_rows, rows)
        return rows

    # ------------------------------------------------------------------
    def matrix_flops(self, tiled: TiledMatrix) -> float:
        """Total FLOPs of the kernel: ``2 * K * nnz * ops_per_nnz``."""
        return float(tiled.matrix.nnz) * self.problem.flops_per_nnz
