"""Whole-matrix roofline model (the IMH-*unaware* estimator, Sec. III-B).

IUnaware models the full matrix with a single holistic Roofline: execution
time is the maximum of the compute time (total FLOPs over the worker's
throughput) and the memory time (total bytes over the achievable
bandwidth), where the byte count assumes nonzeros are *uniformly
distributed* across the matrix -- the same assumption AESPA makes.

Crucially, the holistic model reasons at whole-matrix granularity: a
streaming worker is charged one pass over the dense matrices, and demand
reuse is charged the balls-in-bins expected number of distinct rows among
``nnz`` uniform throws.  For a power-law matrix this *severely*
underestimates a scratchpad worker's real traffic (which streams a full
dense tile for every almost-empty sparse tile), which is why IUnaware
over-assigns tiles to hot workers and underperforms (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import ProblemSpec
from repro.core.traits import ReuseType, SparseFormat, WorkerTraits
from repro.sparse.matrix import SparseMatrix

__all__ = ["RooflineEstimate", "expected_unique", "roofline_estimate"]


@dataclass(frozen=True)
class RooflineEstimate:
    """Whole-matrix prediction for a single worker instance."""

    time_s: float
    compute_time_s: float
    memory_time_s: float
    bytes_total: float


def expected_unique(bins: float, balls: float) -> float:
    """Expected occupied bins after ``balls`` uniform throws.

    ``bins * (1 - (1 - 1/bins)**balls)``: the expected number of distinct
    row (column) ids among uniformly scattered nonzeros.
    """
    if bins <= 0 or balls <= 0:
        return 0.0
    return bins * (1.0 - (1.0 - 1.0 / bins) ** balls)


def roofline_estimate(
    matrix: SparseMatrix,
    worker: WorkerTraits,
    problem: ProblemSpec,
    bw_bytes_per_sec: float,
) -> RooflineEstimate:
    """Predict the whole-matrix runtime of one worker, IMH-unaware.

    ``bw_bytes_per_sec`` should be the bandwidth one worker instance can
    actually draw (``min(worker rate, system BW)``); callers divide the
    resulting time by the worker count to approximate group execution
    (Sec. III-B).
    """
    nnz = float(matrix.nnz)
    row_bytes = float(problem.dense_row_bytes)
    din_rows = _matrix_level_rows(worker, "din", nnz, float(matrix.n_cols))
    dout_rows = _matrix_level_rows(worker, "dout", nnz, float(matrix.n_rows))
    dense_bytes = din_rows * row_bytes + 2.0 * dout_rows * row_bytes  # Dout read + write

    if worker.sparse_format is SparseFormat.COO_LIKE:
        sparse_bytes = nnz * (2.0 * problem.index_bytes + problem.value_bytes)
    else:
        sparse_bytes = matrix.n_rows * problem.index_bytes + nnz * (
            problem.index_bytes + problem.value_bytes
        )

    bytes_total = dense_bytes + sparse_bytes
    cycles = worker.cycles_per_nonzero(problem.k, problem.ops_per_nnz)
    compute_time = nnz * cycles / (worker.frequency_ghz * 1e9)
    memory_time = bytes_total / bw_bytes_per_sec
    return RooflineEstimate(
        time_s=max(compute_time, memory_time),
        compute_time_s=compute_time,
        memory_time_s=memory_time,
        bytes_total=bytes_total,
    )


def _matrix_level_rows(
    worker: WorkerTraits, operand: str, nnz: float, extent: float
) -> float:
    """Dense rows fetched for one operand, at whole-matrix granularity."""
    reuse = worker.din_reuse if operand == "din" else worker.dout_reuse
    if reuse is ReuseType.INTER_TILE:
        # At matrix granularity the steady-state/first-tile split collapses
        # into the first-tile reuse type applied once.
        reuse = worker.effective_first_reuse(operand)
    if reuse is ReuseType.NONE:
        return nnz
    if reuse is ReuseType.INTRA_TILE_DEMAND:
        return expected_unique(extent, nnz)
    if reuse is ReuseType.INTRA_TILE_STREAM:
        return extent
    raise ValueError(f"unexpected reuse type {reuse!r}")
