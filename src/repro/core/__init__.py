"""HotTiles core: IMH-aware performance modeling and partitioning.

This package implements the paper's primary contribution:

- :mod:`repro.core.traits` -- worker (PE) trait descriptions (Table III),
- :mod:`repro.core.reuse` -- the Table I traffic formulas,
- :mod:`repro.core.problem` -- SpMM / gSpMM / SpMV / SDDMM problem specs,
- :mod:`repro.core.model` -- the per-tile analytical model (Sec. IV),
- :mod:`repro.core.roofline` -- the whole-matrix roofline used by IUnaware,
- :mod:`repro.core.partition` -- the four heuristics and HotTiles selection
  (Sec. V, Fig. 8),
- :mod:`repro.core.baselines` -- IUnaware / HotOnly / ColdOnly baselines,
- :mod:`repro.core.calibration` -- data-driven ``vis_lat`` fitting
  (Sec. VI-B),
- :mod:`repro.core.tilesize` -- free-dimension tile-size search (Sec. IV).
"""

from repro.core.traits import (
    ReuseType,
    SparseFormat,
    Task,
    Traversal,
    WorkerKind,
    WorkerTraits,
    OVERLAP_FULL,
    OVERLAP_NONE,
)
from repro.core.problem import ProblemSpec
from repro.core.model import AnalyticalModel, TileCosts
from repro.core.partition import (
    Heuristic,
    PartitionResult,
    HotTilesPartitioner,
    first_of_type_masks,
)
from repro.core.baselines import (
    hot_only_assignment,
    cold_only_assignment,
    iunaware_assignment,
)
from repro.core.calibration import calibrate_vis_lat

__all__ = [
    "ReuseType",
    "SparseFormat",
    "Task",
    "Traversal",
    "WorkerKind",
    "WorkerTraits",
    "OVERLAP_FULL",
    "OVERLAP_NONE",
    "ProblemSpec",
    "AnalyticalModel",
    "TileCosts",
    "Heuristic",
    "PartitionResult",
    "HotTilesPartitioner",
    "first_of_type_masks",
    "hot_only_assignment",
    "cold_only_assignment",
    "iunaware_assignment",
    "calibrate_vis_lat",
]
