"""IMH-aware partitioning (paper Sec. V).

Optimal hot/cold tile assignment needs an exhaustive search over
``2**n_tiles`` combinations, so HotTiles decomposes the problem into four
``N log N`` subproblems (Fig. 8):

================  ========================================================
Heuristic         Optimization subproblem objective
================  ========================================================
MinTime Parallel  minimize max(sum_hot th_i / N_hw, sum_cold tc_i / N_cw)
MinTime Serial    minimize sum_hot th_i / N_hw + sum_cold tc_i / N_cw
MinByte Parallel  minimize b_total
MinByte Serial    minimize b_total
================  ========================================================

Each subproblem sorts the tiles (by increasing hot - cold execution-time
difference for MinTime, hot - cold traffic difference for MinByte) and
sweeps a *cutoff index* rightward from the start of the sorted array: every
move turns one more tile hot, the objective is re-evaluated, and the sweep
rolls back and stops at the first non-improving move.  The four candidate
partitionings are then scored with the *final predicted runtime* formulas
(Fig. 8, last column) -- which re-add the maximum-reuse first-tile charges,
the shared-bandwidth term, and the merge cost -- and the best one wins.

On architectures with race-free atomic updates (PIUMA) there are no output
buffers, ``t_merge`` is zero, and only the Parallel heuristics are used.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.heterogeneous import Architecture
from repro.core.model import AnalyticalModel, TileCosts
from repro.core.traits import WorkerKind
from repro.sparse.tiling import TiledMatrix, TileStats

__all__ = [
    "Heuristic",
    "ExecutionMode",
    "PredictedTotals",
    "PartitionResult",
    "HotTilesResult",
    "HotTilesPartitioner",
    "first_of_type_masks",
    "exhaustive_partition",
    "PartitionCache",
    "RepairStats",
    "RepairOutcome",
    "plan_cache_from",
    "repair_plan",
]


class Heuristic(enum.Enum):
    """The four HotTiles heuristics (Table II)."""

    MIN_TIME_PARALLEL = "min-time-parallel"
    MIN_TIME_SERIAL = "min-time-serial"
    MIN_BYTE_PARALLEL = "min-byte-parallel"
    MIN_BYTE_SERIAL = "min-byte-serial"


class ExecutionMode(enum.Enum):
    """Whether the two worker types run concurrently or back-to-back."""

    PARALLEL = "parallel"
    SERIAL = "serial"


_HEURISTIC_MODE = {
    Heuristic.MIN_TIME_PARALLEL: ExecutionMode.PARALLEL,
    Heuristic.MIN_TIME_SERIAL: ExecutionMode.SERIAL,
    Heuristic.MIN_BYTE_PARALLEL: ExecutionMode.PARALLEL,
    Heuristic.MIN_BYTE_SERIAL: ExecutionMode.SERIAL,
}


@dataclass(frozen=True)
class PredictedTotals:
    """Readjusted totals entering the final predicted-runtime formulas."""

    th_total: float  #: hot-group time: sum of hot-tile times / N_hw
    tc_total: float  #: cold-group time: sum of cold-tile times / N_cw
    bh_total: float  #: bytes moved for hot tiles
    bc_total: float  #: bytes moved for cold tiles
    t_merge: float  #: output-buffer merge cost (0 when serial or atomic)

    @property
    def b_total(self) -> float:
        return self.bh_total + self.bc_total


@dataclass(frozen=True)
class PartitionResult:
    """One candidate partitioning with its final predicted runtime."""

    label: str
    assignment: np.ndarray  #: per-tile, True = hot worker
    mode: ExecutionMode
    predicted_time_s: float
    totals: PredictedTotals

    @property
    def hot_tile_count(self) -> int:
        return int(self.assignment.sum())

    def hot_nnz_fraction(self, tiled: TiledMatrix) -> float:
        """Fraction of nonzeros assigned to hot workers (Fig. 5 / Fig. 14)."""
        total = tiled.stats.nnz.sum()
        if total == 0:
            return 0.0
        return float(tiled.stats.nnz[self.assignment].sum() / total)


@dataclass(frozen=True)
class HotTilesResult:
    """The chosen partitioning plus every heuristic candidate."""

    chosen: PartitionResult
    candidates: Dict[Heuristic, PartitionResult]


def first_of_type_masks(
    tiled: TiledMatrix, assignment: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Mark the first hot and first cold tile of each row panel.

    Tiles in :class:`TiledMatrix` are sorted panel-major, so the first tile
    of a type in a panel is that type's minimum tile index within the
    panel.  These masks drive the Sec. IV-C readjustment of the
    maximum-reuse assumption.
    """
    assignment = np.asarray(assignment, dtype=bool)
    n = tiled.n_tiles
    if assignment.shape != (n,):
        raise ValueError(f"assignment must have shape ({n},)")
    hot_first = np.zeros(n, dtype=bool)
    cold_first = np.zeros(n, dtype=bool)
    panels = tiled.stats.tile_row
    for mask, out in ((assignment, hot_first), (~assignment, cold_first)):
        idx = np.flatnonzero(mask)
        if idx.size:
            _, first = np.unique(panels[idx], return_index=True)
            out[idx[first]] = True
    return hot_first, cold_first


class HotTilesPartitioner:
    """Runs the HotTiles modeling + partitioning pipeline for one machine.

    ``cache_aware`` enables the Sec. X model extension (see
    :class:`~repro.core.model.AnalyticalModel`).
    """

    def __init__(self, arch: Architecture, cache_aware: bool = False) -> None:
        self.arch = arch
        self.model = AnalyticalModel(arch.problem, cache_aware=cache_aware)

    # ------------------------------------------------------------------
    def tile_costs(self, tiled: TiledMatrix) -> Tuple[TileCosts, TileCosts]:
        """Maximum-reuse per-tile costs ``(hot, cold)`` (partitioning input)."""
        hot = self.model.tile_costs(tiled, self.arch.hot.traits)
        cold = self.model.tile_costs(tiled, self.arch.cold.traits)
        return hot, cold

    def partition(self, tiled: TiledMatrix) -> HotTilesResult:
        """Run all applicable heuristics and keep the best candidate.

        With zero workers of one type the partitioning degenerates to the
        corresponding homogeneous assignment.
        """
        n = tiled.n_tiles
        if self.arch.hot.count == 0 or self.arch.cold.count == 0:
            all_hot = self.arch.cold.count == 0
            assignment = np.full(n, all_hot, dtype=bool)
            result = self._score(tiled, assignment, ExecutionMode.PARALLEL, "homogeneous")
            return HotTilesResult(chosen=result, candidates={})

        hot_costs, cold_costs = self.tile_costs(tiled)
        heuristics = list(Heuristic)
        if self.arch.atomic_updates:
            # No output buffers to merge: serial operation can never win
            # under the model (Sec. V-B), so only Parallel heuristics run.
            heuristics = [Heuristic.MIN_TIME_PARALLEL, Heuristic.MIN_BYTE_PARALLEL]

        candidates: Dict[Heuristic, PartitionResult] = {}
        for heuristic in heuristics:
            assignment = self._heuristic_assignment(heuristic, hot_costs, cold_costs)
            candidates[heuristic] = self._score(
                tiled, assignment, _HEURISTIC_MODE[heuristic], heuristic.value
            )
        chosen = min(candidates.values(), key=lambda r: r.predicted_time_s)
        return HotTilesResult(chosen=chosen, candidates=candidates)

    # ------------------------------------------------------------------
    def _heuristic_assignment(
        self, heuristic: Heuristic, hot_costs: TileCosts, cold_costs: TileCosts
    ) -> np.ndarray:
        n_hw, n_cw = self.arch.hot.count, self.arch.cold.count
        if heuristic in (Heuristic.MIN_TIME_PARALLEL, Heuristic.MIN_TIME_SERIAL):
            order = np.argsort(hot_costs.time_s - cold_costs.time_s, kind="stable")
            prefix_hot = _prefix(hot_costs.time_s[order] / n_hw)
            suffix_cold = _suffix(cold_costs.time_s[order] / n_cw)
            if heuristic is Heuristic.MIN_TIME_PARALLEL:
                objective = np.maximum(prefix_hot, suffix_cold)
            else:
                objective = prefix_hot + suffix_cold
        else:
            order = np.argsort(hot_costs.bytes - cold_costs.bytes, kind="stable")
            objective = _prefix(hot_costs.bytes[order]) + _suffix(cold_costs.bytes[order])
        cutoff = _cutoff_sweep(objective)
        assignment = np.zeros(hot_costs.n_tiles, dtype=bool)
        assignment[order[:cutoff]] = True
        return assignment

    def _score(
        self,
        tiled: TiledMatrix,
        assignment: np.ndarray,
        mode: ExecutionMode,
        label: str,
    ) -> PartitionResult:
        time_s, totals = self.predicted_runtime(tiled, assignment, mode)
        return PartitionResult(
            label=label,
            assignment=assignment,
            mode=mode,
            predicted_time_s=time_s,
            totals=totals,
        )

    # ------------------------------------------------------------------
    def predicted_runtime(
        self,
        tiled: TiledMatrix,
        assignment: np.ndarray,
        mode: ExecutionMode,
    ) -> Tuple[float, PredictedTotals]:
        """Final predicted runtime for an assignment (Fig. 8, last column).

        Re-estimates tile costs with the first-tile-of-type readjustment,
        then applies the parallel formula
        ``max(max(th, tc), b_total / BW) + t_merge`` or the serial formula
        ``max(th, bh / BW) + max(tc, bc / BW)``.  A PCIe link in front of
        the hot group adds a ``bh / BW_pcie`` term to the hot side.
        """
        assignment = np.asarray(assignment, dtype=bool)
        totals = self._totals(tiled, assignment, mode)
        return _runtime_from_totals(self.arch, totals, mode), totals

    def predict_homogeneous(self, tiled: TiledMatrix, kind: WorkerKind) -> float:
        """Predicted runtime of a homogeneous execution (Fig. 17 baselines)."""
        assignment = np.full(tiled.n_tiles, kind is WorkerKind.HOT, dtype=bool)
        time_s, _ = self.predicted_runtime(tiled, assignment, ExecutionMode.PARALLEL)
        return time_s

    def _totals(
        self, tiled: TiledMatrix, assignment: np.ndarray, mode: ExecutionMode
    ) -> PredictedTotals:
        hot_first, cold_first = first_of_type_masks(tiled, assignment)
        hot_adj = self.model.tile_costs(tiled, self.arch.hot.traits, first_mask=hot_first)
        cold_adj = self.model.tile_costs(tiled, self.arch.cold.traits, first_mask=cold_first)
        any_hot = bool(assignment.any())
        any_cold = bool((~assignment).any())
        th_total = hot_adj.total_time(assignment) / self.arch.hot.count if any_hot else 0.0
        tc_total = cold_adj.total_time(~assignment) / self.arch.cold.count if any_cold else 0.0
        bh_total = hot_adj.total_bytes(assignment) if any_hot else 0.0
        bc_total = cold_adj.total_bytes(~assignment) if any_cold else 0.0
        t_merge = 0.0
        if mode is ExecutionMode.PARALLEL and any_hot and any_cold:
            t_merge = self.arch.merge_time_s(tiled.matrix.n_rows)
        return PredictedTotals(
            th_total=th_total,
            tc_total=tc_total,
            bh_total=bh_total,
            bc_total=bc_total,
            t_merge=t_merge,
        )


def exhaustive_partition(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    max_tiles: int = 16,
) -> PartitionResult:
    """Oracle partitioning by exhaustive search (Sec. V-A).

    Enumerates all ``2**n_tiles`` assignments and both execution modes,
    scoring each with the final predicted-runtime formulas.  Exponential --
    guarded by ``max_tiles`` -- and used by the tests to bound how far the
    heuristics stray from the model-optimal partitioning.
    """
    n = tiled.n_tiles
    if n > max_tiles:
        raise ValueError(f"exhaustive search limited to {max_tiles} tiles, got {n}")
    arch = partitioner.arch
    modes = [ExecutionMode.PARALLEL]
    if not arch.atomic_updates:
        modes.append(ExecutionMode.SERIAL)

    # Bit-unpack every assignment at once: row ``b`` of ``A`` is the
    # assignment for bitmask ``b`` (bit i = tile i hot), in the same
    # ascending enumeration order as the scalar loop this replaces.
    n_assign = 1 << n
    A = (
        (np.arange(n_assign, dtype=np.int64)[:, None] >> np.arange(n, dtype=np.int64))
        & 1
    ).astype(bool)
    any_hot = A.any(axis=1)
    any_cold = (~A).any(axis=1)
    valid = np.ones(n_assign, dtype=bool)
    if arch.hot.count == 0:
        valid &= ~any_hot
    if arch.cold.count == 0:
        valid &= ~any_cold

    # Per-tile costs only depend on whether a tile is the first of its
    # type in its panel, so two model evaluations per worker type (first
    # vs not-first) cover every assignment.
    model = partitioner.model
    all_first = np.ones(n, dtype=bool)
    h_base = model.tile_costs(tiled, arch.hot.traits)
    h_full = model.tile_costs(tiled, arch.hot.traits, first_mask=all_first)
    c_base = model.tile_costs(tiled, arch.cold.traits)
    c_full = model.tile_costs(tiled, arch.cold.traits, first_mask=all_first)

    # First-of-type masks for every assignment: tiles are panel-major, so
    # each panel is a contiguous column range and its first hot (cold)
    # tile is the range's first True (False) column.
    hot_first = np.zeros((n_assign, n), dtype=bool)
    cold_first = np.zeros((n_assign, n), dtype=bool)
    panels = tiled.stats.tile_row
    panel_starts = (
        np.flatnonzero(np.concatenate(([True], panels[1:] != panels[:-1])))
        if n
        else np.zeros(0, dtype=np.int64)
    )
    panel_ends = np.append(panel_starts[1:], n)
    rows_idx = np.arange(n_assign)
    for s, e in zip(panel_starts.tolist(), panel_ends.tolist()):
        sub = A[:, s:e]
        has = sub.any(axis=1)
        hot_first[rows_idx[has], s + sub.argmax(axis=1)[has]] = True
        sub = ~sub
        has = sub.any(axis=1)
        cold_first[rows_idx[has], s + sub.argmax(axis=1)[has]] = True

    def group_totals(first, chosen, base, full, count, active):
        time_tile = np.where(first, full.time_s[None, :], base.time_s[None, :])
        byte_tile = np.where(first, full.bytes[None, :], base.bytes[None, :])
        t = (time_tile * chosen).sum(axis=1) / max(count, 1)
        b = (byte_tile * chosen).sum(axis=1)
        return np.where(active, t, 0.0), np.where(active, b, 0.0)

    th_total, bh_total = group_totals(
        hot_first, A, h_base, h_full, arch.hot.count, any_hot
    )
    tc_total, bc_total = group_totals(
        cold_first, ~A, c_base, c_full, arch.cold.count, any_cold
    )

    bw = arch.mem_bw_bytes_per_sec
    pcie = arch.pcie_bw_bytes_per_sec
    hot_pcie_time = bh_total / pcie if pcie else np.zeros(n_assign)
    scores = []
    for mode in modes:
        if mode is ExecutionMode.PARALLEL:
            t_merge = np.where(
                any_hot & any_cold, arch.merge_time_s(tiled.matrix.n_rows), 0.0
            )
            scores.append(
                np.maximum(
                    np.maximum(th_total, tc_total),
                    np.maximum((bh_total + bc_total) / bw, hot_pcie_time),
                )
                + t_merge
            )
        else:
            scores.append(
                np.maximum(np.maximum(th_total, bh_total / bw), hot_pcie_time)
                + np.maximum(tc_total, bc_total / bw)
            )
    # Flatten bit-major, mode-minor -- the scalar loop's evaluation order
    # -- so argmin's first-minimum rule reproduces its strict-< tie-break.
    score = np.stack(scores, axis=1)
    score[~valid, :] = np.inf
    flat = score.reshape(-1)
    k = int(np.argmin(flat))
    assert np.isfinite(flat[k])  # some assignment is always admissible
    assignment = A[k // len(modes)].copy()
    mode = modes[k % len(modes)]
    # Re-score the winner through the scalar path so the returned time and
    # totals are exactly what predicted_runtime reports for it.
    time_s, totals = partitioner.predicted_runtime(tiled, assignment, mode)
    return PartitionResult(
        label="exhaustive",
        assignment=assignment,
        mode=mode,
        predicted_time_s=time_s,
        totals=totals,
    )


def _runtime_from_totals(
    arch: Architecture, totals: PredictedTotals, mode: ExecutionMode
) -> float:
    """Apply the Fig. 8 final-runtime formulas to readjusted totals."""
    bw = arch.mem_bw_bytes_per_sec
    pcie = arch.pcie_bw_bytes_per_sec
    hot_pcie_time = totals.bh_total / pcie if pcie else 0.0
    if mode is ExecutionMode.PARALLEL:
        return max(
            max(totals.th_total, totals.tc_total),
            totals.b_total / bw,
            hot_pcie_time,
        ) + totals.t_merge
    hot_side = max(totals.th_total, totals.bh_total / bw, hot_pcie_time)
    cold_side = max(totals.tc_total, totals.bc_total / bw)
    return hot_side + cold_side


# ----------------------------------------------------------------------
# Incremental plan repair (streaming deltas)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionCache:
    """Per-tile model evaluations memoized across delta repairs.

    The analytical model is strictly per-tile: a tile's cost depends only
    on its own statistics, the matrix shape, and the worker traits, plus a
    binary "first of its type in the panel" flag.  Caching the two variants
    (``base`` = maximum-reuse, ``first`` = first-of-type readjusted) for
    both worker types therefore captures *every* number the partitioner can
    ever ask about a tile -- the same trick ``exhaustive_partition`` uses,
    and the dirty-bitmask idiom of ``RateAllocator`` in
    :mod:`repro.sim.memory`.

    ``tile_keys`` (sorted ``tile_row * n_panel_cols + tile_col``) aligns
    the arrays with a tiling; ``assignment`` records the hot/cold split
    chosen for those keys, for downstream consumers that want the previous
    plan without re-deriving it.
    """

    tile_keys: np.ndarray
    hot_base_time: np.ndarray
    hot_first_time: np.ndarray
    hot_base_bytes: np.ndarray
    hot_first_bytes: np.ndarray
    cold_base_time: np.ndarray
    cold_first_time: np.ndarray
    cold_base_bytes: np.ndarray
    cold_first_bytes: np.ndarray
    assignment: np.ndarray

    @property
    def n_tiles(self) -> int:
        return int(self.tile_keys.shape[0])


@dataclass(frozen=True)
class RepairStats:
    """How much of a repair was incremental."""

    n_tiles: int  #: tiles in the post-delta tiling
    tiles_repaired: int  #: tiles whose model costs were recomputed
    tiles_pinned: int  #: clean tiles served from the cached cost table
    new_tiles: int  #: tiles absent from the previous tiling
    dropped_tiles: int  #: previous tiles no longer present

    @property
    def repaired_fraction(self) -> float:
        return self.tiles_repaired / self.n_tiles if self.n_tiles else 0.0


@dataclass(frozen=True)
class RepairOutcome:
    """Everything a repair produces: plan, accounting, and the next cache."""

    result: HotTilesResult
    stats: RepairStats
    cache: PartitionCache


class _TileSubset:
    """Duck-typed tiling view over a subset of tiles.

    :meth:`AnalyticalModel.tile_costs` only touches ``stats``,
    ``tile_height`` / ``tile_width`` and ``matrix`` (shape), so a sliced
    stats block is enough to cost just the dirty tiles.
    """

    __slots__ = ("stats", "tile_height", "tile_width", "matrix")

    def __init__(self, tiled: TiledMatrix, idx: np.ndarray) -> None:
        s = tiled.stats
        self.stats = TileStats(
            tile_row=s.tile_row[idx],
            tile_col=s.tile_col[idx],
            nnz=s.nnz[idx],
            uniq_rids=s.uniq_rids[idx],
            uniq_cids=s.uniq_cids[idx],
        )
        self.tile_height = tiled.tile_height
        self.tile_width = tiled.tile_width
        self.matrix = tiled.matrix


def _cost_table(
    partitioner: HotTilesPartitioner, tiled_like, n: int
) -> Tuple[np.ndarray, ...]:
    """The eight per-tile cost arrays (hot/cold x base/first x time/bytes)."""
    model, arch = partitioner.model, partitioner.arch
    all_first = np.ones(n, dtype=bool)
    hb = model.tile_costs(tiled_like, arch.hot.traits)
    hf = model.tile_costs(tiled_like, arch.hot.traits, first_mask=all_first)
    cb = model.tile_costs(tiled_like, arch.cold.traits)
    cf = model.tile_costs(tiled_like, arch.cold.traits, first_mask=all_first)
    return (
        hb.time_s, hf.time_s, hb.bytes, hf.bytes,
        cb.time_s, cf.time_s, cb.bytes, cf.bytes,
    )


def plan_cache_from(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    result: Optional[HotTilesResult] = None,
) -> PartitionCache:
    """Seed a :class:`PartitionCache` from a full partitioning.

    Runs :meth:`HotTilesPartitioner.partition` when ``result`` is omitted.
    """
    if result is None:
        result = partitioner.partition(tiled)
    npc = np.int64(max(tiled.n_panel_cols, 1))
    keys = (tiled.stats.tile_row * npc + tiled.stats.tile_col).astype(np.int64)
    table = _cost_table(partitioner, tiled, tiled.n_tiles)
    return PartitionCache(
        keys,
        *table,
        assignment=np.asarray(result.chosen.assignment, dtype=bool).copy(),
    )


def repair_plan(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    cache: PartitionCache,
    dirty_keys: np.ndarray,
) -> RepairOutcome:
    """Re-partition after a delta, re-running the model only on dirty tiles.

    ``tiled`` is the post-delta tiling and ``dirty_keys`` the sorted tile
    keys reported structurally dirty by
    :func:`repro.streaming.apply.apply_delta_tiled`.  The expensive step
    of planning is the per-tile model evaluation, and that is what gets
    memoized: clean tiles are served from the cached base/first cost
    variants, only dirty tiles hit :class:`AnalyticalModel` again.  The
    cheap ``N log N`` cutoff sweep then runs globally over the composed
    cost table, and candidates are scored with the exact final-runtime
    formulas -- so the repaired plan is bit-equal to from-scratch
    :meth:`HotTilesPartitioner.partition` on the post-delta matrix (cached
    per-tile costs are bit-identical to recomputing them), while
    ``RepairStats.tiles_repaired`` counts only the model re-evaluations.
    """
    arch = partitioner.arch
    n = tiled.n_tiles
    npc = np.int64(max(tiled.n_panel_cols, 1))
    keys = (tiled.stats.tile_row * npc + tiled.stats.tile_col).astype(np.int64)
    dirty_keys = np.asarray(dirty_keys, dtype=np.int64)

    pos = np.searchsorted(cache.tile_keys, keys)
    in_range = pos < cache.n_tiles
    known = np.zeros(n, dtype=bool)
    known[in_range] = cache.tile_keys[pos[in_range]] == keys[in_range]
    dirty = ~known | np.isin(keys, dirty_keys, assume_unique=True)

    clean_idx = np.flatnonzero(~dirty)
    dirty_idx = np.flatnonzero(dirty)
    src = pos[clean_idx]

    # Compose the full cost table: cached rows for clean tiles, fresh model
    # evaluations for dirty ones only.
    names = (
        "hot_base_time", "hot_first_time", "hot_base_bytes", "hot_first_bytes",
        "cold_base_time", "cold_first_time", "cold_base_bytes", "cold_first_bytes",
    )
    table = {name: np.empty(n, dtype=np.float64) for name in names}
    for name in names:
        table[name][clean_idx] = getattr(cache, name)[src]
    if dirty_idx.size:
        fresh = _cost_table(partitioner, _TileSubset(tiled, dirty_idx), dirty_idx.size)
        for name, arr in zip(names, fresh):
            table[name][dirty_idx] = arr

    stats = RepairStats(
        n_tiles=n,
        tiles_repaired=int(dirty_idx.size),
        tiles_pinned=int(clean_idx.size),
        new_tiles=int((~known).sum()),
        dropped_tiles=int(cache.n_tiles - known.sum()),
    )

    def _finish(result: HotTilesResult) -> RepairOutcome:
        new_cache = PartitionCache(
            keys,
            *(table[name] for name in names),
            assignment=result.chosen.assignment.copy(),
        )
        return RepairOutcome(result=result, stats=stats, cache=new_cache)

    if arch.hot.count == 0 or arch.cold.count == 0:
        assignment = np.full(n, arch.cold.count == 0, dtype=bool)
        chosen = _score_from_table(
            partitioner, tiled, table, assignment, ExecutionMode.PARALLEL, "homogeneous"
        )
        return _finish(HotTilesResult(chosen=chosen, candidates={}))

    n_hw, n_cw = arch.hot.count, arch.cold.count
    heuristics = list(Heuristic)
    if arch.atomic_updates:
        heuristics = [Heuristic.MIN_TIME_PARALLEL, Heuristic.MIN_BYTE_PARALLEL]

    h_time = table["hot_base_time"]
    c_time = table["cold_base_time"]
    h_bytes = table["hot_base_bytes"]
    c_bytes = table["cold_base_bytes"]

    # Mirror _heuristic_assignment over the composed table: the sweep is
    # O(n log n) in plain numpy and does not touch the model, so running
    # it globally keeps the repair exact at negligible cost.
    candidates: Dict[Heuristic, PartitionResult] = {}
    for heuristic in heuristics:
        if heuristic in (Heuristic.MIN_TIME_PARALLEL, Heuristic.MIN_TIME_SERIAL):
            order = np.argsort(h_time - c_time, kind="stable")
            prefix_hot = _prefix(h_time[order] / n_hw)
            suffix_cold = _suffix(c_time[order] / n_cw)
            if heuristic is Heuristic.MIN_TIME_PARALLEL:
                objective = np.maximum(prefix_hot, suffix_cold)
            else:
                objective = prefix_hot + suffix_cold
        else:
            order = np.argsort(h_bytes - c_bytes, kind="stable")
            objective = _prefix(h_bytes[order]) + _suffix(c_bytes[order])
        cutoff = _cutoff_sweep(objective)
        assignment = np.zeros(n, dtype=bool)
        assignment[order[:cutoff]] = True
        candidates[heuristic] = _score_from_table(
            partitioner, tiled, table, assignment,
            _HEURISTIC_MODE[heuristic], heuristic.value,
        )
    chosen = min(candidates.values(), key=lambda r: r.predicted_time_s)
    return _finish(HotTilesResult(chosen=chosen, candidates=candidates))


def _score_from_table(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    table: Dict[str, np.ndarray],
    assignment: np.ndarray,
    mode: ExecutionMode,
    label: str,
) -> PartitionResult:
    """Score an assignment from the cached cost table.

    Bit-equal to :meth:`HotTilesPartitioner._score`: composing the cached
    ``base``/``first`` variants per tile reproduces exactly what the model
    returns for the assignment-derived first-of-type mask.
    """
    arch = partitioner.arch
    hot_first, cold_first = first_of_type_masks(tiled, assignment)
    ht = np.where(hot_first, table["hot_first_time"], table["hot_base_time"])
    hb = np.where(hot_first, table["hot_first_bytes"], table["hot_base_bytes"])
    ct = np.where(cold_first, table["cold_first_time"], table["cold_base_time"])
    cb = np.where(cold_first, table["cold_first_bytes"], table["cold_base_bytes"])
    any_hot = bool(assignment.any())
    any_cold = bool((~assignment).any())
    th_total = float(ht[assignment].sum()) / arch.hot.count if any_hot else 0.0
    tc_total = float(ct[~assignment].sum()) / arch.cold.count if any_cold else 0.0
    bh_total = float(hb[assignment].sum()) if any_hot else 0.0
    bc_total = float(cb[~assignment].sum()) if any_cold else 0.0
    t_merge = 0.0
    if mode is ExecutionMode.PARALLEL and any_hot and any_cold:
        t_merge = arch.merge_time_s(tiled.matrix.n_rows)
    totals = PredictedTotals(
        th_total=th_total,
        tc_total=tc_total,
        bh_total=bh_total,
        bc_total=bc_total,
        t_merge=t_merge,
    )
    return PartitionResult(
        label=label,
        assignment=assignment,
        mode=mode,
        predicted_time_s=_runtime_from_totals(arch, totals, mode),
        totals=totals,
    )


def _prefix(values: np.ndarray) -> np.ndarray:
    """``out[k]`` = sum of the first ``k`` values, for k = 0..n."""
    out = np.zeros(values.shape[0] + 1, dtype=np.float64)
    np.cumsum(values, out=out[1:])
    return out


def _suffix(values: np.ndarray) -> np.ndarray:
    """``out[k]`` = sum of values from index ``k`` on, for k = 0..n."""
    total = values.sum()
    return total - _prefix(values)


def _cutoff_sweep(objective: np.ndarray) -> int:
    """The paper's cutoff-index placement: advance while improving.

    ``objective[k]`` is the subproblem objective with the first ``k``
    sorted tiles hot.  Starting from 0, the cutoff moves right as long as
    the objective strictly decreases and rolls back on the first
    non-improving move (Sec. V-B).  All four objectives are unimodal in
    ``k`` (the sort makes their increments monotone), so this first local
    minimum is also the global one.
    """
    cutoff = 0
    for k in range(1, objective.shape[0]):
        if objective[k] < objective[cutoff]:
            cutoff = k
        else:
            break
    return cutoff
