"""IMH-aware partitioning (paper Sec. V).

Optimal hot/cold tile assignment needs an exhaustive search over
``2**n_tiles`` combinations, so HotTiles decomposes the problem into four
``N log N`` subproblems (Fig. 8):

================  ========================================================
Heuristic         Optimization subproblem objective
================  ========================================================
MinTime Parallel  minimize max(sum_hot th_i / N_hw, sum_cold tc_i / N_cw)
MinTime Serial    minimize sum_hot th_i / N_hw + sum_cold tc_i / N_cw
MinByte Parallel  minimize b_total
MinByte Serial    minimize b_total
================  ========================================================

Each subproblem sorts the tiles (by increasing hot - cold execution-time
difference for MinTime, hot - cold traffic difference for MinByte) and
sweeps a *cutoff index* rightward from the start of the sorted array: every
move turns one more tile hot, the objective is re-evaluated, and the sweep
rolls back and stops at the first non-improving move.  The four candidate
partitionings are then scored with the *final predicted runtime* formulas
(Fig. 8, last column) -- which re-add the maximum-reuse first-tile charges,
the shared-bandwidth term, and the merge cost -- and the best one wins.

On architectures with race-free atomic updates (PIUMA) there are no output
buffers, ``t_merge`` is zero, and only the Parallel heuristics are used.

On machines with a PCIe link in front of the hot group the final-runtime
formulas are, by default, the contention-aware evaluator of
:mod:`repro.core.contention` instead of the plain Fig. 8 forms -- the
naive formulas over-credit the PCIe-capped hot side (they treat the link
as a free-standing ``max`` term while the simulator water-fills it in
series with DRAM and the instances' own ports).  The
``contention_aware`` flag on :class:`HotTilesPartitioner` selects the
scorer; without a PCIe link both scorers are bit-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.heterogeneous import Architecture
from repro.core import contention
from repro.core.model import AnalyticalModel, TileCosts
from repro.core.traits import WorkerKind
from repro.sparse.tiling import TiledMatrix, TileStats

__all__ = [
    "Heuristic",
    "ExecutionMode",
    "PredictedTotals",
    "TileSplit",
    "PartitionResult",
    "HotTilesResult",
    "HotTilesPartitioner",
    "first_of_type_masks",
    "exhaustive_partition",
    "PartitionCache",
    "RepairStats",
    "RepairOutcome",
    "plan_cache_from",
    "repair_plan",
]


class Heuristic(enum.Enum):
    """The four HotTiles heuristics (Table II) plus block-level splitting.

    ``BLOCK_SPLIT`` refines the best whole-tile candidate by splitting
    the dominating tile at a row boundary across the two worker groups
    (see :func:`_block_split_candidate`); it is scored with the same
    final-runtime formulas, so it competes fairly and by construction
    never scores worse than the candidate it refines.
    """

    MIN_TIME_PARALLEL = "min-time-parallel"
    MIN_TIME_SERIAL = "min-time-serial"
    MIN_BYTE_PARALLEL = "min-byte-parallel"
    MIN_BYTE_SERIAL = "min-byte-serial"
    BLOCK_SPLIT = "block-split"


class ExecutionMode(enum.Enum):
    """Whether the two worker types run concurrently or back-to-back."""

    PARALLEL = "parallel"
    SERIAL = "serial"


_HEURISTIC_MODE = {
    Heuristic.MIN_TIME_PARALLEL: ExecutionMode.PARALLEL,
    Heuristic.MIN_TIME_SERIAL: ExecutionMode.SERIAL,
    Heuristic.MIN_BYTE_PARALLEL: ExecutionMode.PARALLEL,
    Heuristic.MIN_BYTE_SERIAL: ExecutionMode.SERIAL,
}

#: The four cutoff-sweep heuristics; ``BLOCK_SPLIT`` has no fixed mode --
#: it refines whichever whole-tile candidate scored best.
_SWEEP_HEURISTICS = [h for h in Heuristic if h in _HEURISTIC_MODE]

#: The eight per-tile cost arrays (hot/cold x base/first x time/bytes) in
#: the order :func:`_cost_table` produces them.
_TABLE_NAMES = (
    "hot_base_time", "hot_first_time", "hot_base_bytes", "hot_first_bytes",
    "cold_base_time", "cold_first_time", "cold_base_bytes", "cold_first_bytes",
)


@dataclass(frozen=True)
class PredictedTotals:
    """Readjusted totals entering the final predicted-runtime formulas."""

    th_total: float  #: hot-group time: sum of hot-tile times / N_hw
    tc_total: float  #: cold-group time: sum of cold-tile times / N_cw
    bh_total: float  #: bytes moved for hot tiles
    bc_total: float  #: bytes moved for cold tiles
    t_merge: float  #: output-buffer merge cost (0 when serial or atomic)

    @property
    def b_total(self) -> float:
        return self.bh_total + self.bc_total


@dataclass(frozen=True)
class TileSplit:
    """Row-aligned subdivision of one tile across the two worker groups.

    The tile's nonzeros are stored row-major within the tile permutation,
    so a split is fully described by a prefix length: the first
    ``hot_nnz`` nonzeros (rows below ``row_cut``) execute on the hot
    group, the remaining ``cold_nnz`` (rows from ``row_cut`` up) on the
    cold group.  The cut always falls on a row boundary, keeping the two
    sides race-free at row granularity like ordinary same-panel hot/cold
    tiles.
    """

    tile: int  #: index of the split tile in the tiling
    hot_nnz: int  #: leading row-major nonzeros sent to the hot group
    cold_nnz: int  #: trailing nonzeros sent to the cold group
    row_cut: int  #: first absolute matrix row of the cold-side block


@dataclass(frozen=True)
class PartitionResult:
    """One candidate partitioning with its final predicted runtime."""

    label: str
    assignment: np.ndarray  #: per-tile, True = hot worker
    mode: ExecutionMode
    predicted_time_s: float
    totals: PredictedTotals
    #: block-level refinement: when set, ``assignment[split.tile]`` is
    #: True and the tile's trailing ``split.cold_nnz`` nonzeros go to the
    #: cold group instead (``repro.sim.worker_sim.build_plans`` honors
    #: this via ``split=``).
    split: Optional[TileSplit] = None
    #: the plain Fig. 8 prediction for this candidate; equals
    #: ``predicted_time_s`` when the naive scorer selected the plan.
    naive_time_s: Optional[float] = None
    #: which evaluator produced ``predicted_time_s``: ``"naive"`` or
    #: ``"contention"`` (:mod:`repro.core.contention`).
    scorer: str = "naive"

    @property
    def hot_tile_count(self) -> int:
        return int(self.assignment.sum())

    def hot_nnz_fraction(self, tiled: TiledMatrix) -> float:
        """Fraction of nonzeros assigned to hot workers (Fig. 5 / Fig. 14)."""
        total = tiled.stats.nnz.sum()
        if total == 0:
            return 0.0
        hot = int(tiled.stats.nnz[self.assignment].sum())
        if self.split is not None:
            hot -= self.split.cold_nnz
        return float(hot / total)


@dataclass(frozen=True)
class HotTilesResult:
    """The chosen partitioning plus every heuristic candidate."""

    chosen: PartitionResult
    candidates: Dict[Heuristic, PartitionResult]


def first_of_type_masks(
    tiled: TiledMatrix, assignment: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Mark the first hot and first cold tile of each row panel.

    Tiles in :class:`TiledMatrix` are sorted panel-major, so the first tile
    of a type in a panel is that type's minimum tile index within the
    panel.  These masks drive the Sec. IV-C readjustment of the
    maximum-reuse assumption.
    """
    assignment = np.asarray(assignment, dtype=bool)
    n = tiled.n_tiles
    if assignment.shape != (n,):
        raise ValueError(f"assignment must have shape ({n},)")
    return _first_masks(tiled.stats.tile_row, assignment)


def _first_masks(
    panels: np.ndarray, assignment: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`first_of_type_masks` over an explicit panel-id array.

    Used directly when scoring split candidates, whose expanded tilings
    exist only as arrays (the split tile contributes two entries sharing
    one panel id).
    """
    n = panels.shape[0]
    hot_first = np.zeros(n, dtype=bool)
    cold_first = np.zeros(n, dtype=bool)
    for mask, out in ((assignment, hot_first), (~assignment, cold_first)):
        idx = np.flatnonzero(mask)
        if idx.size:
            _, first = np.unique(panels[idx], return_index=True)
            out[idx[first]] = True
    return hot_first, cold_first


class HotTilesPartitioner:
    """Runs the HotTiles modeling + partitioning pipeline for one machine.

    ``cache_aware`` enables the Sec. X model extension (see
    :class:`~repro.core.model.AnalyticalModel`).  ``contention_aware``
    selects the :mod:`repro.core.contention` evaluator for the final
    runtime formulas (default); it only changes scores on architectures
    with a PCIe link -- without one it is bit-identical to the naive
    Fig. 8 forms, which remain available with ``contention_aware=False``.
    """

    def __init__(
        self,
        arch: Architecture,
        cache_aware: bool = False,
        contention_aware: bool = True,
    ) -> None:
        self.arch = arch
        self.model = AnalyticalModel(arch.problem, cache_aware=cache_aware)
        self.contention_aware = bool(contention_aware)

    def _contended(self) -> bool:
        """Whether the contention evaluator actually differs from naive."""
        return self.contention_aware and self.arch.pcie_bw_bytes_per_sec is not None

    @property
    def scorer(self) -> str:
        """Label of the evaluator selecting plans: 'naive' or 'contention'."""
        return "contention" if self._contended() else "naive"

    # ------------------------------------------------------------------
    def tile_costs(self, tiled: TiledMatrix) -> Tuple[TileCosts, TileCosts]:
        """Maximum-reuse per-tile costs ``(hot, cold)`` (partitioning input)."""
        hot = self.model.tile_costs(tiled, self.arch.hot.traits)
        cold = self.model.tile_costs(tiled, self.arch.cold.traits)
        return hot, cold

    def partition(self, tiled: TiledMatrix) -> HotTilesResult:
        """Run all applicable heuristics and keep the best candidate.

        With zero workers of one type the partitioning degenerates to the
        corresponding homogeneous assignment.
        """
        n = tiled.n_tiles
        if self.arch.hot.count == 0 or self.arch.cold.count == 0:
            all_hot = self.arch.cold.count == 0
            assignment = np.full(n, all_hot, dtype=bool)
            result = self._score(tiled, assignment, ExecutionMode.PARALLEL, "homogeneous")
            return HotTilesResult(chosen=result, candidates={})

        hot_costs, cold_costs = self.tile_costs(tiled)
        heuristics = _SWEEP_HEURISTICS
        if self.arch.atomic_updates:
            # No output buffers to merge: serial operation can never win
            # under the model (Sec. V-B), so only Parallel heuristics run.
            heuristics = [Heuristic.MIN_TIME_PARALLEL, Heuristic.MIN_BYTE_PARALLEL]

        candidates: Dict[Heuristic, PartitionResult] = {}
        for heuristic in heuristics:
            assignment = self._heuristic_assignment(heuristic, hot_costs, cold_costs)
            candidates[heuristic] = self._score(
                tiled, assignment, _HEURISTIC_MODE[heuristic], heuristic.value
            )
        base = min(candidates.values(), key=lambda r: r.predicted_time_s)
        table = dict(
            zip(_TABLE_NAMES, _cost_table(self, tiled, n, base=(hot_costs, cold_costs)))
        )
        candidates[Heuristic.BLOCK_SPLIT] = _block_split_candidate(
            self, tiled, table, base
        )
        # min keeps the first of tied values, and the whole-tile heuristics
        # precede BLOCK_SPLIT: the split is chosen only when strictly better.
        chosen = min(candidates.values(), key=lambda r: r.predicted_time_s)
        return HotTilesResult(chosen=chosen, candidates=candidates)

    # ------------------------------------------------------------------
    def _heuristic_assignment(
        self, heuristic: Heuristic, hot_costs: TileCosts, cold_costs: TileCosts
    ) -> np.ndarray:
        n_hw, n_cw = self.arch.hot.count, self.arch.cold.count
        if heuristic in (Heuristic.MIN_TIME_PARALLEL, Heuristic.MIN_TIME_SERIAL):
            order = np.argsort(hot_costs.time_s - cold_costs.time_s, kind="stable")
            prefix_hot = _prefix(hot_costs.time_s[order] / n_hw)
            suffix_cold = _suffix(cold_costs.time_s[order] / n_cw)
            if heuristic is Heuristic.MIN_TIME_PARALLEL:
                objective = np.maximum(prefix_hot, suffix_cold)
            else:
                objective = prefix_hot + suffix_cold
        else:
            order = np.argsort(hot_costs.bytes - cold_costs.bytes, kind="stable")
            objective = _prefix(hot_costs.bytes[order]) + _suffix(cold_costs.bytes[order])
        cutoff = _cutoff_sweep(objective)
        assignment = np.zeros(hot_costs.n_tiles, dtype=bool)
        assignment[order[:cutoff]] = True
        return assignment

    def _score(
        self,
        tiled: TiledMatrix,
        assignment: np.ndarray,
        mode: ExecutionMode,
        label: str,
    ) -> PartitionResult:
        time_s, naive_s, totals = self._predicted(tiled, assignment, mode)
        return PartitionResult(
            label=label,
            assignment=assignment,
            mode=mode,
            predicted_time_s=time_s,
            totals=totals,
            naive_time_s=naive_s,
            scorer=self.scorer,
        )

    # ------------------------------------------------------------------
    def predicted_runtime(
        self,
        tiled: TiledMatrix,
        assignment: np.ndarray,
        mode: ExecutionMode,
    ) -> Tuple[float, PredictedTotals]:
        """Final predicted runtime for an assignment (Fig. 8, last column).

        Re-estimates tile costs with the first-tile-of-type readjustment,
        then applies the parallel formula
        ``max(max(th, tc), b_total / BW) + t_merge`` or the serial formula
        ``max(th, bh / BW) + max(tc, bc / BW)``.  A PCIe link in front of
        the hot group adds a ``bh / BW_pcie`` term to the hot side --
        and, under the default contention-aware scorer, the full
        :func:`repro.core.contention.contended_runtime` refinement.
        """
        time_s, _naive, totals = self._predicted(tiled, assignment, mode)
        return time_s, totals

    def _predicted(
        self,
        tiled: TiledMatrix,
        assignment: np.ndarray,
        mode: ExecutionMode,
    ) -> Tuple[float, float, PredictedTotals]:
        """``(scorer time, naive time, totals)`` for one assignment."""
        assignment = np.asarray(assignment, dtype=bool)
        totals, hot_times, cold_times = self._totals_with_times(
            tiled, assignment, mode
        )
        naive_s = contention.naive_runtime(
            self.arch, totals, mode is ExecutionMode.SERIAL
        )
        if not self._contended():
            return naive_s, naive_s, totals
        hot_floor, cold_floor = contention.group_floors(
            self.arch, hot_times, cold_times,
            tiled.stats.uniq_rids, tiled.stats.tile_row, assignment,
        )
        time_s = contention.contended_runtime(
            self.arch, totals, mode is ExecutionMode.SERIAL,
            hot_floor=hot_floor, cold_floor=cold_floor,
        )
        return time_s, naive_s, totals

    def predict_homogeneous(self, tiled: TiledMatrix, kind: WorkerKind) -> float:
        """Predicted runtime of a homogeneous execution (Fig. 17 baselines)."""
        assignment = np.full(tiled.n_tiles, kind is WorkerKind.HOT, dtype=bool)
        time_s, _ = self.predicted_runtime(tiled, assignment, ExecutionMode.PARALLEL)
        return time_s

    def _totals(
        self, tiled: TiledMatrix, assignment: np.ndarray, mode: ExecutionMode
    ) -> PredictedTotals:
        totals, _, _ = self._totals_with_times(tiled, assignment, mode)
        return totals

    def _totals_with_times(
        self, tiled: TiledMatrix, assignment: np.ndarray, mode: ExecutionMode
    ) -> Tuple[PredictedTotals, np.ndarray, np.ndarray]:
        """Totals plus the per-tile readjusted time arrays behind them."""
        hot_first, cold_first = first_of_type_masks(tiled, assignment)
        hot_adj = self.model.tile_costs(tiled, self.arch.hot.traits, first_mask=hot_first)
        cold_adj = self.model.tile_costs(tiled, self.arch.cold.traits, first_mask=cold_first)
        any_hot = bool(assignment.any())
        any_cold = bool((~assignment).any())
        th_total = hot_adj.total_time(assignment) / self.arch.hot.count if any_hot else 0.0
        tc_total = cold_adj.total_time(~assignment) / self.arch.cold.count if any_cold else 0.0
        bh_total = hot_adj.total_bytes(assignment) if any_hot else 0.0
        bc_total = cold_adj.total_bytes(~assignment) if any_cold else 0.0
        t_merge = 0.0
        if mode is ExecutionMode.PARALLEL and any_hot and any_cold:
            t_merge = self.arch.merge_time_s(tiled.matrix.n_rows)
        totals = PredictedTotals(
            th_total=th_total,
            tc_total=tc_total,
            bh_total=bh_total,
            bc_total=bc_total,
            t_merge=t_merge,
        )
        return totals, hot_adj.time_s, cold_adj.time_s


def exhaustive_partition(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    max_tiles: int = 16,
) -> PartitionResult:
    """Oracle partitioning by exhaustive search (Sec. V-A).

    Enumerates all ``2**n_tiles`` assignments and both execution modes,
    scoring each with the final predicted-runtime formulas.  Exponential --
    guarded by ``max_tiles`` -- and used by the tests to bound how far the
    heuristics stray from the model-optimal partitioning.
    """
    n = tiled.n_tiles
    if n > max_tiles:
        raise ValueError(f"exhaustive search limited to {max_tiles} tiles, got {n}")
    arch = partitioner.arch
    modes = [ExecutionMode.PARALLEL]
    if not arch.atomic_updates:
        modes.append(ExecutionMode.SERIAL)

    # Bit-unpack every assignment at once: row ``b`` of ``A`` is the
    # assignment for bitmask ``b`` (bit i = tile i hot), in the same
    # ascending enumeration order as the scalar loop this replaces.
    n_assign = 1 << n
    A = (
        (np.arange(n_assign, dtype=np.int64)[:, None] >> np.arange(n, dtype=np.int64))
        & 1
    ).astype(bool)
    any_hot = A.any(axis=1)
    any_cold = (~A).any(axis=1)
    valid = np.ones(n_assign, dtype=bool)
    if arch.hot.count == 0:
        valid &= ~any_hot
    if arch.cold.count == 0:
        valid &= ~any_cold

    # Per-tile costs only depend on whether a tile is the first of its
    # type in its panel, so two model evaluations per worker type (first
    # vs not-first) cover every assignment.
    model = partitioner.model
    all_first = np.ones(n, dtype=bool)
    h_base = model.tile_costs(tiled, arch.hot.traits)
    h_full = model.tile_costs(tiled, arch.hot.traits, first_mask=all_first)
    c_base = model.tile_costs(tiled, arch.cold.traits)
    c_full = model.tile_costs(tiled, arch.cold.traits, first_mask=all_first)

    # First-of-type masks for every assignment: tiles are panel-major, so
    # each panel is a contiguous column range and its first hot (cold)
    # tile is the range's first True (False) column.
    hot_first = np.zeros((n_assign, n), dtype=bool)
    cold_first = np.zeros((n_assign, n), dtype=bool)
    panels = tiled.stats.tile_row
    panel_starts = (
        np.flatnonzero(np.concatenate(([True], panels[1:] != panels[:-1])))
        if n
        else np.zeros(0, dtype=np.int64)
    )
    panel_ends = np.append(panel_starts[1:], n)
    rows_idx = np.arange(n_assign)
    for s, e in zip(panel_starts.tolist(), panel_ends.tolist()):
        sub = A[:, s:e]
        has = sub.any(axis=1)
        hot_first[rows_idx[has], s + sub.argmax(axis=1)[has]] = True
        sub = ~sub
        has = sub.any(axis=1)
        cold_first[rows_idx[has], s + sub.argmax(axis=1)[has]] = True

    def group_totals(first, chosen, base, full, count, active):
        time_tile = np.where(first, full.time_s[None, :], base.time_s[None, :])
        byte_tile = np.where(first, full.bytes[None, :], base.bytes[None, :])
        t = (time_tile * chosen).sum(axis=1) / max(count, 1)
        b = (byte_tile * chosen).sum(axis=1)
        return np.where(active, t, 0.0), np.where(active, b, 0.0), time_tile

    th_total, bh_total, hot_time_tile = group_totals(
        hot_first, A, h_base, h_full, arch.hot.count, any_hot
    )
    tc_total, bc_total, cold_time_tile = group_totals(
        cold_first, ~A, c_base, c_full, arch.cold.count, any_cold
    )

    # Scheduling-granularity floors for the contention-aware scorer;
    # None (unused) when the naive formulas apply.
    hot_floor = cold_floor = None
    if partitioner._contended():
        hot_floor = contention.granularity_floor_batch(
            hot_time_tile, A, tiled.stats.uniq_rids, panel_starts,
            traits=arch.hot.traits, n_instances=arch.hot.count,
            tile_height=arch.tile_height,
        )
        cold_floor = contention.granularity_floor_batch(
            cold_time_tile, ~A, tiled.stats.uniq_rids, panel_starts,
            traits=arch.cold.traits, n_instances=arch.cold.count,
            tile_height=arch.tile_height,
        )

    def batch_score(serial: bool, t_merge: np.ndarray) -> np.ndarray:
        if partitioner._contended():
            return contention.contended_runtime_batch(
                arch, th_total, tc_total, bh_total, bc_total, t_merge,
                serial, hot_floor=hot_floor, cold_floor=cold_floor,
            )
        return contention.naive_runtime_batch(
            arch, th_total, tc_total, bh_total, bc_total, t_merge, serial
        )

    scores = []
    for mode in modes:
        if mode is ExecutionMode.PARALLEL:
            t_merge = np.where(
                any_hot & any_cold, arch.merge_time_s(tiled.matrix.n_rows), 0.0
            )
            scores.append(batch_score(False, t_merge))
        else:
            scores.append(batch_score(True, np.zeros(n_assign)))
    # Flatten bit-major, mode-minor -- the scalar loop's evaluation order
    # -- so argmin's first-minimum rule reproduces its strict-< tie-break.
    score = np.stack(scores, axis=1)
    score[~valid, :] = np.inf
    flat = score.reshape(-1)
    k = int(np.argmin(flat))
    assert np.isfinite(flat[k])  # some assignment is always admissible
    assignment = A[k // len(modes)].copy()
    mode = modes[k % len(modes)]
    # Re-score the winner through the scalar path so the returned time and
    # totals are exactly what predicted_runtime reports for it.
    time_s, naive_s, totals = partitioner._predicted(tiled, assignment, mode)
    return PartitionResult(
        label="exhaustive",
        assignment=assignment,
        mode=mode,
        predicted_time_s=time_s,
        totals=totals,
        naive_time_s=naive_s,
        scorer=partitioner.scorer,
    )


def _runtime_from_totals(
    arch: Architecture, totals: PredictedTotals, mode: ExecutionMode
) -> float:
    """The naive Fig. 8 final-runtime formulas over readjusted totals.

    Kept as the documented fallback scorer; the contention-aware default
    lives in :func:`repro.core.contention.contended_runtime`.
    """
    return contention.naive_runtime(arch, totals, mode is ExecutionMode.SERIAL)


# ----------------------------------------------------------------------
# Incremental plan repair (streaming deltas)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionCache:
    """Per-tile model evaluations memoized across delta repairs.

    The analytical model is strictly per-tile: a tile's cost depends only
    on its own statistics, the matrix shape, and the worker traits, plus a
    binary "first of its type in the panel" flag.  Caching the two variants
    (``base`` = maximum-reuse, ``first`` = first-of-type readjusted) for
    both worker types therefore captures *every* number the partitioner can
    ever ask about a tile -- the same trick ``exhaustive_partition`` uses,
    and the dirty-bitmask idiom of ``RateAllocator`` in
    :mod:`repro.sim.memory`.

    ``tile_keys`` (sorted ``tile_row * n_panel_cols + tile_col``) aligns
    the arrays with a tiling; ``assignment`` records the hot/cold split
    chosen for those keys, for downstream consumers that want the previous
    plan without re-deriving it.
    """

    tile_keys: np.ndarray
    hot_base_time: np.ndarray
    hot_first_time: np.ndarray
    hot_base_bytes: np.ndarray
    hot_first_bytes: np.ndarray
    cold_base_time: np.ndarray
    cold_first_time: np.ndarray
    cold_base_bytes: np.ndarray
    cold_first_bytes: np.ndarray
    assignment: np.ndarray

    @property
    def n_tiles(self) -> int:
        return int(self.tile_keys.shape[0])


@dataclass(frozen=True)
class RepairStats:
    """How much of a repair was incremental."""

    n_tiles: int  #: tiles in the post-delta tiling
    tiles_repaired: int  #: tiles whose model costs were recomputed
    tiles_pinned: int  #: clean tiles served from the cached cost table
    new_tiles: int  #: tiles absent from the previous tiling
    dropped_tiles: int  #: previous tiles no longer present

    @property
    def repaired_fraction(self) -> float:
        return self.tiles_repaired / self.n_tiles if self.n_tiles else 0.0


@dataclass(frozen=True)
class RepairOutcome:
    """Everything a repair produces: plan, accounting, and the next cache."""

    result: HotTilesResult
    stats: RepairStats
    cache: PartitionCache


class _TileSubset:
    """Duck-typed tiling view over a subset of tiles.

    :meth:`AnalyticalModel.tile_costs` only touches ``stats``,
    ``tile_height`` / ``tile_width`` and ``matrix`` (shape), so a sliced
    stats block is enough to cost just the dirty tiles.
    """

    __slots__ = ("stats", "tile_height", "tile_width", "matrix")

    def __init__(self, tiled: TiledMatrix, idx: np.ndarray) -> None:
        s = tiled.stats
        self.stats = TileStats(
            tile_row=s.tile_row[idx],
            tile_col=s.tile_col[idx],
            nnz=s.nnz[idx],
            uniq_rids=s.uniq_rids[idx],
            uniq_cids=s.uniq_cids[idx],
        )
        self.tile_height = tiled.tile_height
        self.tile_width = tiled.tile_width
        self.matrix = tiled.matrix


def _cost_table(
    partitioner: HotTilesPartitioner,
    tiled_like,
    n: int,
    base: Optional[Tuple[TileCosts, TileCosts]] = None,
) -> Tuple[np.ndarray, ...]:
    """The eight per-tile cost arrays (hot/cold x base/first x time/bytes).

    ``base`` passes in already-computed maximum-reuse ``(hot, cold)``
    costs (the sweep input) so callers that have them pay only the two
    first-of-type model evaluations.
    """
    model, arch = partitioner.model, partitioner.arch
    all_first = np.ones(n, dtype=bool)
    if base is None:
        hb = model.tile_costs(tiled_like, arch.hot.traits)
        cb = model.tile_costs(tiled_like, arch.cold.traits)
    else:
        hb, cb = base
    hf = model.tile_costs(tiled_like, arch.hot.traits, first_mask=all_first)
    cf = model.tile_costs(tiled_like, arch.cold.traits, first_mask=all_first)
    return (
        hb.time_s, hf.time_s, hb.bytes, hf.bytes,
        cb.time_s, cf.time_s, cb.bytes, cf.bytes,
    )


def plan_cache_from(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    result: Optional[HotTilesResult] = None,
) -> PartitionCache:
    """Seed a :class:`PartitionCache` from a full partitioning.

    Runs :meth:`HotTilesPartitioner.partition` when ``result`` is omitted.
    """
    if result is None:
        result = partitioner.partition(tiled)
    npc = np.int64(max(tiled.n_panel_cols, 1))
    keys = (tiled.stats.tile_row * npc + tiled.stats.tile_col).astype(np.int64)
    table = _cost_table(partitioner, tiled, tiled.n_tiles)
    return PartitionCache(
        keys,
        *table,
        assignment=np.asarray(result.chosen.assignment, dtype=bool).copy(),
    )


def repair_plan(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    cache: PartitionCache,
    dirty_keys: np.ndarray,
) -> RepairOutcome:
    """Re-partition after a delta, re-running the model only on dirty tiles.

    ``tiled`` is the post-delta tiling and ``dirty_keys`` the sorted tile
    keys reported structurally dirty by
    :func:`repro.streaming.apply.apply_delta_tiled`.  The expensive step
    of planning is the per-tile model evaluation, and that is what gets
    memoized: clean tiles are served from the cached base/first cost
    variants, only dirty tiles hit :class:`AnalyticalModel` again.  The
    cheap ``N log N`` cutoff sweep then runs globally over the composed
    cost table, and candidates are scored with the exact final-runtime
    formulas -- so the repaired plan is bit-equal to from-scratch
    :meth:`HotTilesPartitioner.partition` on the post-delta matrix (cached
    per-tile costs are bit-identical to recomputing them), while
    ``RepairStats.tiles_repaired`` counts only the model re-evaluations.
    """
    arch = partitioner.arch
    n = tiled.n_tiles
    npc = np.int64(max(tiled.n_panel_cols, 1))
    keys = (tiled.stats.tile_row * npc + tiled.stats.tile_col).astype(np.int64)
    dirty_keys = np.asarray(dirty_keys, dtype=np.int64)

    pos = np.searchsorted(cache.tile_keys, keys)
    in_range = pos < cache.n_tiles
    known = np.zeros(n, dtype=bool)
    known[in_range] = cache.tile_keys[pos[in_range]] == keys[in_range]
    dirty = ~known | np.isin(keys, dirty_keys, assume_unique=True)

    clean_idx = np.flatnonzero(~dirty)
    dirty_idx = np.flatnonzero(dirty)
    src = pos[clean_idx]

    # Compose the full cost table: cached rows for clean tiles, fresh model
    # evaluations for dirty ones only.
    names = _TABLE_NAMES
    table = {name: np.empty(n, dtype=np.float64) for name in names}
    for name in names:
        table[name][clean_idx] = getattr(cache, name)[src]
    if dirty_idx.size:
        fresh = _cost_table(partitioner, _TileSubset(tiled, dirty_idx), dirty_idx.size)
        for name, arr in zip(names, fresh):
            table[name][dirty_idx] = arr

    stats = RepairStats(
        n_tiles=n,
        tiles_repaired=int(dirty_idx.size),
        tiles_pinned=int(clean_idx.size),
        new_tiles=int((~known).sum()),
        dropped_tiles=int(cache.n_tiles - known.sum()),
    )

    def _finish(result: HotTilesResult) -> RepairOutcome:
        new_cache = PartitionCache(
            keys,
            *(table[name] for name in names),
            assignment=result.chosen.assignment.copy(),
        )
        return RepairOutcome(result=result, stats=stats, cache=new_cache)

    if arch.hot.count == 0 or arch.cold.count == 0:
        assignment = np.full(n, arch.cold.count == 0, dtype=bool)
        chosen = _score_from_table(
            partitioner, tiled, table, assignment, ExecutionMode.PARALLEL, "homogeneous"
        )
        return _finish(HotTilesResult(chosen=chosen, candidates={}))

    n_hw, n_cw = arch.hot.count, arch.cold.count
    heuristics = _SWEEP_HEURISTICS
    if arch.atomic_updates:
        heuristics = [Heuristic.MIN_TIME_PARALLEL, Heuristic.MIN_BYTE_PARALLEL]

    h_time = table["hot_base_time"]
    c_time = table["cold_base_time"]
    h_bytes = table["hot_base_bytes"]
    c_bytes = table["cold_base_bytes"]

    # Mirror _heuristic_assignment over the composed table: the sweep is
    # O(n log n) in plain numpy and does not touch the model, so running
    # it globally keeps the repair exact at negligible cost.
    candidates: Dict[Heuristic, PartitionResult] = {}
    for heuristic in heuristics:
        if heuristic in (Heuristic.MIN_TIME_PARALLEL, Heuristic.MIN_TIME_SERIAL):
            order = np.argsort(h_time - c_time, kind="stable")
            prefix_hot = _prefix(h_time[order] / n_hw)
            suffix_cold = _suffix(c_time[order] / n_cw)
            if heuristic is Heuristic.MIN_TIME_PARALLEL:
                objective = np.maximum(prefix_hot, suffix_cold)
            else:
                objective = prefix_hot + suffix_cold
        else:
            order = np.argsort(h_bytes - c_bytes, kind="stable")
            objective = _prefix(h_bytes[order]) + _suffix(c_bytes[order])
        cutoff = _cutoff_sweep(objective)
        assignment = np.zeros(n, dtype=bool)
        assignment[order[:cutoff]] = True
        candidates[heuristic] = _score_from_table(
            partitioner, tiled, table, assignment,
            _HEURISTIC_MODE[heuristic], heuristic.value,
        )
    base = min(candidates.values(), key=lambda r: r.predicted_time_s)
    # Same split refinement as partition(), over the same table values
    # (cached rows are bit-identical to fresh ones), so the repaired
    # result stays bit-equal to a from-scratch partition.
    candidates[Heuristic.BLOCK_SPLIT] = _block_split_candidate(
        partitioner, tiled, table, base
    )
    chosen = min(candidates.values(), key=lambda r: r.predicted_time_s)
    return _finish(HotTilesResult(chosen=chosen, candidates=candidates))


def _score_from_table(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    table: Dict[str, np.ndarray],
    assignment: np.ndarray,
    mode: ExecutionMode,
    label: str,
) -> PartitionResult:
    """Score an assignment from the cached cost table.

    Bit-equal to :meth:`HotTilesPartitioner._score`: composing the cached
    ``base``/``first`` variants per tile reproduces exactly what the model
    returns for the assignment-derived first-of-type mask.
    """
    arch = partitioner.arch
    totals, hot_times, cold_times = _table_totals_with_times(
        arch, table, tiled.stats.tile_row, assignment, mode, tiled.matrix.n_rows
    )
    time_s, naive_s = _evaluate_totals(
        partitioner, totals, mode, hot_times, cold_times,
        tiled.stats.uniq_rids, tiled.stats.tile_row, assignment,
    )
    return PartitionResult(
        label=label,
        assignment=assignment,
        mode=mode,
        predicted_time_s=time_s,
        totals=totals,
        naive_time_s=naive_s,
        scorer=partitioner.scorer,
    )


def _evaluate_totals(
    partitioner: HotTilesPartitioner,
    totals: PredictedTotals,
    mode: ExecutionMode,
    hot_times: np.ndarray,
    cold_times: np.ndarray,
    uniq_rids: np.ndarray,
    panels: np.ndarray,
    assignment: np.ndarray,
) -> Tuple[float, float]:
    """``(scorer time, naive time)`` for totals backed by per-tile arrays."""
    arch = partitioner.arch
    serial = mode is ExecutionMode.SERIAL
    naive_s = contention.naive_runtime(arch, totals, serial)
    if not partitioner._contended():
        return naive_s, naive_s
    hot_floor, cold_floor = contention.group_floors(
        arch, hot_times, cold_times, uniq_rids, panels, assignment
    )
    time_s = contention.contended_runtime(
        arch, totals, serial, hot_floor=hot_floor, cold_floor=cold_floor
    )
    return time_s, naive_s


def _table_totals(
    arch: Architecture,
    table: Dict[str, np.ndarray],
    panels: np.ndarray,
    assignment: np.ndarray,
    mode: ExecutionMode,
    n_rows: int,
) -> PredictedTotals:
    totals, _, _ = _table_totals_with_times(
        arch, table, panels, assignment, mode, n_rows
    )
    return totals


def _table_totals_with_times(
    arch: Architecture,
    table: Dict[str, np.ndarray],
    panels: np.ndarray,
    assignment: np.ndarray,
    mode: ExecutionMode,
    n_rows: int,
) -> Tuple[PredictedTotals, np.ndarray, np.ndarray]:
    """Readjusted totals for an assignment over an explicit cost table.

    Works on arrays alone (no tiling object) so split candidates -- whose
    expanded tilings exist only as arrays -- score through the exact same
    arithmetic as whole-tile candidates.  Also returns the composed
    per-tile hot/cold time arrays, which the contention scorer's
    granularity floors consume.
    """
    hot_first, cold_first = _first_masks(panels, assignment)
    ht = np.where(hot_first, table["hot_first_time"], table["hot_base_time"])
    hb = np.where(hot_first, table["hot_first_bytes"], table["hot_base_bytes"])
    ct = np.where(cold_first, table["cold_first_time"], table["cold_base_time"])
    cb = np.where(cold_first, table["cold_first_bytes"], table["cold_base_bytes"])
    any_hot = bool(assignment.any())
    any_cold = bool((~assignment).any())
    th_total = float(ht[assignment].sum()) / arch.hot.count if any_hot else 0.0
    tc_total = float(ct[~assignment].sum()) / arch.cold.count if any_cold else 0.0
    bh_total = float(hb[assignment].sum()) if any_hot else 0.0
    bc_total = float(cb[~assignment].sum()) if any_cold else 0.0
    t_merge = 0.0
    if mode is ExecutionMode.PARALLEL and any_hot and any_cold:
        t_merge = arch.merge_time_s(n_rows)
    totals = PredictedTotals(
        th_total=th_total,
        tc_total=tc_total,
        bh_total=bh_total,
        bc_total=bc_total,
        t_merge=t_merge,
    )
    return totals, ht, ct


class _SplitPartsView:
    """Model view of the two row-blocks of one split tile.

    :meth:`AnalyticalModel.tile_costs` touches ``stats``, the tile
    dimensions, ``matrix`` (shape), and the effective heights -- which for
    sub-tiles are row-range extents carried in ``tile_eff_heights`` (see
    :func:`repro.core.reuse.effective_tile_heights`).  Unique id counts
    are computed from the tile's actual nonzeros, so the parts' costs are
    as honest as any whole tile's.
    """

    __slots__ = ("stats", "tile_height", "tile_width", "matrix", "tile_eff_heights")

    def __init__(self, tiled: TiledMatrix, tile: int, hot_nnz: int) -> None:
        s = tiled.stats
        lo = int(tiled.tile_offsets[tile])
        hi = int(tiled.tile_offsets[tile + 1])
        # Degenerate cuts must be rejected here, not just downstream:
        # with hot_nnz == 0 or == the tile's nnz, ``tiled.rows[lo + hot_nnz]``
        # would read the *next* tile's first row -- or past the array on
        # the last tile -- and silently produce garbage part heights.
        if not 0 < hot_nnz < hi - lo:
            raise ValueError(
                f"degenerate split of tile {tile}: hot_nnz must be in "
                f"(0, {hi - lo}), got {hot_nnz}"
            )
        cut = lo + hot_nnz
        rows_a, rows_b = tiled.rows[lo:cut], tiled.rows[cut:hi]
        cols_a, cols_b = tiled.cols[lo:cut], tiled.cols[cut:hi]
        panel = int(s.tile_row[tile])
        self.stats = TileStats(
            tile_row=np.array([panel, panel], dtype=s.tile_row.dtype),
            tile_col=np.array([s.tile_col[tile]] * 2, dtype=s.tile_col.dtype),
            nnz=np.array([hot_nnz, hi - lo - hot_nnz], dtype=s.nnz.dtype),
            uniq_rids=np.array(
                [np.unique(rows_a).size, np.unique(rows_b).size], dtype=s.uniq_rids.dtype
            ),
            uniq_cids=np.array(
                [np.unique(cols_a).size, np.unique(cols_b).size], dtype=s.uniq_cids.dtype
            ),
        )
        self.tile_height = tiled.tile_height
        self.tile_width = tiled.tile_width
        self.matrix = tiled.matrix
        panel_start = panel * tiled.tile_height
        eff = min(tiled.tile_height, tiled.matrix.n_rows - panel_start)
        row_cut = int(tiled.rows[cut])
        self.tile_eff_heights = np.array(
            [row_cut - panel_start, panel_start + eff - row_cut], dtype=np.float64
        )


def _score_split(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    table: Dict[str, np.ndarray],
    assignment: np.ndarray,
    tile: int,
    hot_nnz: int,
) -> PartitionResult:
    """Exactly score one split candidate with the final-runtime formulas.

    The split tiling is the original tiling with tile ``tile`` replaced by
    its two row-blocks (prefix hot, suffix cold); its cost table is the
    whole-tile table with that row replaced by two freshly modeled rows.
    Both execution modes are scored (parallel only on atomic machines) and
    the better one kept.
    """
    arch = partitioner.arch
    lo = int(tiled.tile_offsets[tile])
    hi = int(tiled.tile_offsets[tile + 1])
    view = _SplitPartsView(tiled, tile, hot_nnz)  # rejects degenerate cuts
    fresh = _cost_table(partitioner, view, 2)
    ext = {
        name: np.concatenate([table[name][:tile], pair, table[name][tile + 1 :]])
        for name, pair in zip(_TABLE_NAMES, fresh)
    }
    s = tiled.stats
    panels = s.tile_row
    ext_panels = np.concatenate(
        [panels[:tile], panels[tile : tile + 1], panels[tile:]]
    )
    ext_uniq = np.concatenate(
        [s.uniq_rids[:tile], view.stats.uniq_rids, s.uniq_rids[tile + 1 :]]
    )
    ext_assignment = np.concatenate(
        [assignment[:tile], [True, False], assignment[tile + 1 :]]
    )
    modes = [ExecutionMode.PARALLEL]
    if not arch.atomic_updates:
        modes.append(ExecutionMode.SERIAL)
    best: Optional[Tuple[float, float, PredictedTotals, ExecutionMode]] = None
    for mode in modes:
        totals, hot_times, cold_times = _table_totals_with_times(
            arch, ext, ext_panels, ext_assignment, mode, tiled.matrix.n_rows
        )
        time_s, naive_s = _evaluate_totals(
            partitioner, totals, mode, hot_times, cold_times,
            ext_uniq, ext_panels, ext_assignment,
        )
        if best is None or time_s < best[0]:
            best = (time_s, naive_s, totals, mode)
    final_assignment = assignment.copy()
    final_assignment[tile] = True
    return PartitionResult(
        label=Heuristic.BLOCK_SPLIT.value,
        assignment=final_assignment,
        mode=best[3],
        predicted_time_s=best[0],
        totals=best[2],
        naive_time_s=best[1],
        scorer=partitioner.scorer,
        split=TileSplit(
            tile=tile,
            hot_nnz=hot_nnz,
            cold_nnz=(hi - lo) - hot_nnz,
            row_cut=int(tiled.rows[lo + hot_nnz]),
        ),
    )


def _block_split_candidate(
    partitioner: HotTilesPartitioner,
    tiled: TiledMatrix,
    table: Dict[str, np.ndarray],
    base: PartitionResult,
) -> PartitionResult:
    """The fifth candidate: refine ``base`` by splitting its dominating tile.

    When one worker group's time term dominates the predicted makespan,
    the whole-tile heuristics have hit their granularity floor: no whole
    tile can move without overshooting.  This refinement picks the
    dominating group's most expensive tile, solves the continuous
    load-balance relaxation for how many of its nonzeros to hand to the
    other group, quantizes to the nearest row boundaries (plus quartile
    fallbacks -- the balance point may lie outside the tile), and scores
    each row-aligned cut exactly.  The best strictly-improving cut wins;
    otherwise ``base`` is returned relabeled, so this candidate never
    scores worse than the best whole-tile heuristic.
    """
    fallback = PartitionResult(
        label=Heuristic.BLOCK_SPLIT.value,
        assignment=base.assignment,
        mode=base.mode,
        predicted_time_s=base.predicted_time_s,
        totals=base.totals,
        split=None,
        naive_time_s=base.naive_time_s,
        scorer=base.scorer,
    )
    assignment = np.asarray(base.assignment, dtype=bool)
    totals = base.totals
    donor_is_hot = totals.th_total >= totals.tc_total
    donor_idx = np.flatnonzero(assignment if donor_is_hot else ~assignment)
    if donor_idx.size == 0:
        return fallback
    donor_time = table["hot_base_time" if donor_is_hot else "cold_base_time"]
    tile = int(donor_idx[np.argmax(donor_time[donor_idx])])
    lo = int(tiled.tile_offsets[tile])
    hi = int(tiled.tile_offsets[tile + 1])
    nnz_j = hi - lo
    if nnz_j < 2:
        return fallback
    tile_rows = tiled.rows[lo:hi]
    # Row-aligned cut positions: prefix lengths ending exactly on a row
    # boundary (nonzeros are row-major within a tile).
    bounds = np.flatnonzero(np.diff(tile_rows)) + 1
    if bounds.size == 0:
        return fallback  # single-row tile: nothing row-aligned to cut

    # Continuous relaxation: moving k nonzeros from the donor group to the
    # recipient shrinks the donor's time term at the tile's donor-side
    # per-nnz rate and grows the recipient's at its own rate; balance at
    # th(k) == tc(k).
    n_hw, n_cw = partitioner.arch.hot.count, partitioner.arch.cold.count
    hot_rate = float(table["hot_base_time"][tile]) / nnz_j / n_hw
    cold_rate = float(table["cold_base_time"][tile]) / nnz_j / n_cw
    denom = hot_rate + cold_rate
    k_star = abs(totals.th_total - totals.tc_total) / denom if denom > 0.0 else 0.0
    moved = min(max(k_star, 1.0), float(nnz_j - 1))
    target = (nnz_j - moved) if donor_is_hot else moved  # prefix (hot) size

    probes = set()
    pos = int(np.searchsorted(bounds, target))
    for p in (pos - 1, pos):
        if 0 <= p < bounds.size:
            probes.add(int(bounds[p]))
    for q in (0.25, 0.5, 0.75):
        probes.add(int(bounds[min(bounds.size - 1, int(q * bounds.size))]))
    # Row-boundary probes are interior by construction; reject degenerate
    # cuts explicitly anyway so no probe can ever read past the tile.
    probes = {cut for cut in probes if 0 < cut < nnz_j}

    best: Optional[PartitionResult] = None
    for cut in sorted(probes):
        result = _score_split(partitioner, tiled, table, assignment, tile, cut)
        if best is None or result.predicted_time_s < best.predicted_time_s:
            best = result
    # The comparison runs under the partitioner's active scorer (both
    # sides were scored by it), so a split must strictly improve the
    # contention-aware prediction -- not the naive one -- to be chosen.
    if best is not None and best.predicted_time_s < base.predicted_time_s:
        return best
    return fallback


def _prefix(values: np.ndarray) -> np.ndarray:
    """``out[k]`` = sum of the first ``k`` values, for k = 0..n."""
    out = np.zeros(values.shape[0] + 1, dtype=np.float64)
    np.cumsum(values, out=out[1:])
    return out


def _suffix(values: np.ndarray) -> np.ndarray:
    """``out[k]`` = sum of values from index ``k`` on, for k = 0..n."""
    total = values.sum()
    return total - _prefix(values)


def _cutoff_sweep(objective: np.ndarray) -> int:
    """The paper's cutoff-index placement: advance while improving.

    ``objective[k]`` is the subproblem objective with the first ``k``
    sorted tiles hot.  Starting from 0, the cutoff moves right as long as
    the objective strictly decreases and rolls back on the first
    non-improving move (Sec. V-B).  All four objectives are unimodal in
    ``k`` (the sort makes their increments monotone), so this first local
    minimum is also the global one.
    """
    cutoff = 0
    for k in range(1, objective.shape[0]):
        if objective[k] < objective[cutoff]:
            cutoff = k
        else:
            break
    return cutoff
