"""Execution baselines: HotOnly, ColdOnly and IUnaware (paper Sec. III-B).

*HotOnly* / *ColdOnly* assign every tile to one worker type.  *IUnaware*
is the IMH-unaware heterogeneous strategy modeled on AESPA: it predicts
whole-matrix runtimes with the holistic roofline (uniform-nonzero
assumption), derives the hot tile fraction with the collaborative-execution
split of Huang et al.,

    frac_tile_hot = Ex_cw / (Ex_cw + Ex_hw)          (Eq. 1)

where ``Ex_hw = th / N_hw`` and ``Ex_cw = tc / N_cw``, and then assigns
that fraction of tiles to hot workers *uniformly at random*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.heterogeneous import Architecture
from repro.core.roofline import roofline_estimate
from repro.sparse.tiling import TiledMatrix

__all__ = [
    "hot_only_assignment",
    "cold_only_assignment",
    "clamp_hot_tile_count",
    "IUnawareDecision",
    "iunaware_assignment",
]


def clamp_hot_tile_count(frac: float, n: int) -> int:
    """Hot-tile count for an Eq. 1 fraction, never rounding a split away.

    ``int(round(frac * n))`` banker's-rounds, so a strictly interior
    fraction (``0 < frac < 1``) could collapse to 0 hot tiles (or all
    ``n``) on small matrices -- silently turning IUnaware into ColdOnly
    (or HotOnly).  A genuine split keeps at least one tile on each side:
    ``1 <= n_hot <= n - 1`` whenever ``n >= 2``.
    """
    if n <= 0 or frac <= 0.0:
        return 0
    if frac >= 1.0:
        return n
    if n == 1:
        return 1 if frac >= 0.5 else 0
    return max(1, min(int(round(frac * n)), n - 1))


def hot_only_assignment(n_tiles: int) -> np.ndarray:
    """Every tile on the hot workers."""
    return np.ones(n_tiles, dtype=bool)


def cold_only_assignment(n_tiles: int) -> np.ndarray:
    """Every tile on the cold workers."""
    return np.zeros(n_tiles, dtype=bool)


@dataclass(frozen=True)
class IUnawareDecision:
    """The IUnaware split plus the roofline inputs that produced it."""

    assignment: np.ndarray  #: per-tile, True = hot worker
    frac_tile_hot: float  #: Eq. 1 fraction
    th_single_worker_s: float  #: roofline whole-matrix time, one hot worker
    tc_single_worker_s: float  #: roofline whole-matrix time, one cold worker


def iunaware_assignment(
    tiled: TiledMatrix, arch: Architecture, seed: int = 0
) -> IUnawareDecision:
    """Partition tiles with the IMH-unaware strategy (random placement).

    The random tile placement is seeded for reproducibility; the paper's
    only constraint is that the assigned fraction satisfies Eq. 1.
    """
    n = tiled.n_tiles
    # Paper Sec. III-B: "the memory access time is the number of memory
    # bytes accessed divided by the memory bandwidth" -- the system
    # bandwidth, for both worker types.  A PCIe link in front of the hot
    # workers caps their achievable bandwidth below that.
    bw = arch.mem_bw_bytes_per_sec
    hot_bw = bw
    if arch.pcie_bw_bytes_per_sec is not None:
        hot_bw = min(hot_bw, arch.pcie_bw_bytes_per_sec)
    th = roofline_estimate(tiled.matrix, arch.hot.traits, arch.problem, hot_bw).time_s
    tc = roofline_estimate(tiled.matrix, arch.cold.traits, arch.problem, bw).time_s
    if arch.hot.count == 0:
        frac = 0.0
    elif arch.cold.count == 0:
        frac = 1.0
    else:
        ex_hw = th / arch.hot.count
        ex_cw = tc / arch.cold.count
        frac = ex_cw / (ex_cw + ex_hw) if (ex_cw + ex_hw) > 0 else 0.0
    n_hot = clamp_hot_tile_count(frac, n)
    assignment = np.zeros(n, dtype=bool)
    if n_hot > 0:
        rng = np.random.default_rng(seed)
        assignment[rng.choice(n, size=n_hot, replace=False)] = True
    return IUnawareDecision(
        assignment=assignment,
        frac_tile_hot=frac,
        th_single_worker_s=th,
        tc_single_worker_s=tc,
    )
