"""Problem specifications: SpMM and its generalized variants.

The paper's primary kernel is SpMM with ``K = 32`` dense columns; it also
evaluates gSpMM variants over algebraic semirings whose generalized monoids
change the arithmetic intensity (Sec. II-A, Fig. 14), and names SpMV and
SDDMM as kernels with the same access pattern (Sec. X).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["Kernel", "ProblemSpec"]


class Kernel(enum.Enum):
    """Supported kernels; all share the SpMM memory-access pattern."""

    SPMM = "spmm"
    GSPMM = "gspmm"  #: generalized monoids -> ``ops_per_nnz`` may exceed 1
    SPMV = "spmv"  #: SpMM with K = 1
    SDDMM = "sddmm"  #: reads both dense matrices, writes one value per nnz


@dataclass(frozen=True)
class ProblemSpec:
    """One kernel instance: what gets computed and with which data sizes.

    Parameters
    ----------
    k:
        Number of dense-matrix columns (paper uses 32).
    value_bytes:
        Bytes per matrix value (4 for SPADE-Sextans fp32, 8 for PIUMA fp64).
    index_bytes:
        Bytes per sparse index item.
    ops_per_nnz:
        SIMD K-wide operations per nonzero.  1 models the vanilla SpMM
        multiply-accumulate; larger values model gSpMM monoids with higher
        arithmetic intensity (the x-axis of Fig. 14).
    kernel:
        Which kernel the spec describes.
    """

    k: int = 32
    value_bytes: int = 4
    index_bytes: int = 4
    ops_per_nnz: int = 1
    kernel: Kernel = Kernel.SPMM

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.value_bytes <= 0 or self.index_bytes <= 0:
            raise ValueError("data sizes must be positive")
        if self.ops_per_nnz <= 0:
            raise ValueError("ops_per_nnz must be positive")
        if self.kernel is Kernel.SPMV and self.k != 1:
            raise ValueError("SpMV requires k == 1")

    @property
    def dense_row_bytes(self) -> int:
        """Bytes of one dense-matrix row (K elements)."""
        return self.k * self.value_bytes

    @property
    def flops_per_nnz(self) -> float:
        """FLOPs per nonzero: ``2 * K`` per SIMD MAC-equivalent op."""
        return 2.0 * self.k * self.ops_per_nnz

    def with_ops_per_nnz(self, ops_per_nnz: int) -> "ProblemSpec":
        """Copy with a different arithmetic intensity (gSpMM sweep)."""
        kernel = Kernel.GSPMM if ops_per_nnz > 1 else self.kernel
        return replace(self, ops_per_nnz=ops_per_nnz, kernel=kernel)

    @classmethod
    def spmv(cls, value_bytes: int = 4, index_bytes: int = 4) -> "ProblemSpec":
        """SpMV spec (K = 1)."""
        return cls(k=1, value_bytes=value_bytes, index_bytes=index_bytes, kernel=Kernel.SPMV)

    @classmethod
    def sddmm(cls, k: int = 32, value_bytes: int = 4, index_bytes: int = 4) -> "ProblemSpec":
        """SDDMM spec: same dense-row traffic, per-nnz scalar output."""
        return cls(k=k, value_bytes=value_bytes, index_bytes=index_bytes, kernel=Kernel.SDDMM)
