"""Table I: dense rows and sparse items accessed from main memory per tile.

These are the building blocks of the per-tile traffic estimate.  All
functions are vectorized over tiles: they take the struct-of-arrays
statistics of :class:`repro.sparse.tiling.TileStats` plus effective tile
dimensions (edge tiles may be smaller than the nominal tile size) and
return one value per tile.
"""

from __future__ import annotations

import numpy as np

from repro.core.traits import ReuseType, SparseFormat
from repro.sparse.tiling import TiledMatrix

__all__ = [
    "dense_rows_accessed",
    "sparse_items_accessed",
    "sparse_bytes_accessed",
    "effective_tile_widths",
    "effective_tile_heights",
]


def dense_rows_accessed(
    reuse: ReuseType,
    tile_nnzs: np.ndarray,
    tile_uniq_ids: np.ndarray,
    tile_extents: np.ndarray,
) -> np.ndarray:
    """Dense rows fetched from main memory per tile (Table I, upper part).

    Parameters
    ----------
    reuse:
        The worker's reuse type for the operand (*Din* or *Dout*).
    tile_nnzs:
        Nonzeros per tile.
    tile_uniq_ids:
        Distinct column ids per tile for *Din*, distinct row ids for *Dout*.
    tile_extents:
        Effective tile width for *Din*, effective tile height for *Dout*
        (a streamed dense tile spans the whole tile extent).
    """
    if reuse is ReuseType.NONE:
        return np.asarray(tile_nnzs, dtype=np.float64)
    if reuse is ReuseType.INTRA_TILE_DEMAND:
        return np.asarray(tile_uniq_ids, dtype=np.float64)
    if reuse is ReuseType.INTRA_TILE_STREAM:
        return np.asarray(tile_extents, dtype=np.float64)
    if reuse is ReuseType.INTER_TILE:
        return np.zeros(np.asarray(tile_nnzs).shape, dtype=np.float64)
    raise ValueError(f"unknown reuse type {reuse!r}")


def sparse_items_accessed(
    fmt: SparseFormat, tile_nnzs: np.ndarray, tile_heights: np.ndarray
) -> np.ndarray:
    """Sparse input data items per tile (Table I, bottom part).

    COO-like formats read three items per nonzero (r_id, c_id, val);
    CSR-like formats read a row-offset item per tile row plus two items per
    nonzero.
    """
    tile_nnzs = np.asarray(tile_nnzs, dtype=np.float64)
    if fmt is SparseFormat.COO_LIKE:
        return 3.0 * tile_nnzs
    if fmt is SparseFormat.CSR_LIKE:
        return np.asarray(tile_heights, dtype=np.float64) + 2.0 * tile_nnzs
    raise ValueError(f"unknown sparse format {fmt!r}")


def sparse_bytes_accessed(
    fmt: SparseFormat,
    tile_nnzs: np.ndarray,
    tile_heights: np.ndarray,
    value_bytes: int,
    index_bytes: int,
) -> np.ndarray:
    """Sparse input bytes per tile, splitting items into indices and values.

    COO carries two indices and one value per nonzero; CSR carries one
    offset index per tile row plus one index and one value per nonzero.
    """
    tile_nnzs = np.asarray(tile_nnzs, dtype=np.float64)
    if fmt is SparseFormat.COO_LIKE:
        return tile_nnzs * (2.0 * index_bytes + value_bytes)
    if fmt is SparseFormat.CSR_LIKE:
        heights = np.asarray(tile_heights, dtype=np.float64)
        return heights * index_bytes + tile_nnzs * (index_bytes + value_bytes)
    raise ValueError(f"unknown sparse format {fmt!r}")


def effective_tile_widths(tiled: TiledMatrix) -> np.ndarray:
    """Per-tile effective width: edge tiles are clipped by the matrix."""
    start = tiled.stats.tile_col * tiled.tile_width
    return np.minimum(tiled.tile_width, tiled.matrix.n_cols - start).astype(np.float64)


def effective_tile_heights(tiled: TiledMatrix) -> np.ndarray:
    """Per-tile effective height: edge tiles are clipped by the matrix.

    Tiling *views* that subdivide a tile at a row boundary (block-level
    splitting, :class:`repro.core.partition.TileSplit`) carry an explicit
    ``tile_eff_heights`` array -- the sub-tiles of a split share a panel,
    so their heights are row-range extents, not the panel clip.
    """
    override = getattr(tiled, "tile_eff_heights", None)
    if override is not None:
        return override
    start = tiled.stats.tile_row * tiled.tile_height
    return np.minimum(tiled.tile_height, tiled.matrix.n_rows - start).astype(np.float64)
