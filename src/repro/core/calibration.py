"""Data-driven calibration of the visible latency per byte (Sec. VI-B).

``vis_lat`` captures how much memory latency a worker type fails to hide.
The paper determines it empirically: a few profiling runs execute small
test matrices homogeneously on one worker type, and a search picks the
``vis_lat`` minimizing the error between the model's predicted runtimes
and the measured ones.  Calibration is a one-time cost per machine; the
value is reused across matrices.

In this reproduction the "real" runtimes come from the simulator
(:mod:`repro.sim`), exactly as the paper's come from SST/Sniper.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Tuple

from repro.arch.heterogeneous import Architecture
from repro.core.traits import WorkerKind
from repro.sparse.tiling import TiledMatrix

__all__ = ["calibration_error", "calibrate_vis_lat", "calibrate_architecture"]

#: Search window for vis_lat, in seconds per byte.  1e-13 s/B corresponds
#: to 10 TB/s of perfectly hidden bandwidth per worker, 1e-8 s/B to a fully
#: exposed 100 MB/s; every realistic PE falls inside.
_LOG10_LO, _LOG10_HI = -13.0, -8.0

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


def calibration_error(predicted: Sequence[float], measured: Sequence[float]) -> float:
    """Mean squared log-error between predicted and measured runtimes."""
    if len(predicted) != len(measured) or not predicted:
        raise ValueError("need equally many predicted and measured runtimes")
    total = 0.0
    for p, m in zip(predicted, measured):
        if p <= 0 or m <= 0:
            raise ValueError("runtimes must be positive")
        total += math.log(p / m) ** 2
    return total / len(predicted)


def calibrate_vis_lat(
    arch: Architecture,
    kind: WorkerKind,
    profiling_runs: Sequence[Tuple[TiledMatrix, float]],
    iterations: int = 60,
) -> float:
    """Fit one worker type's ``vis_lat`` against measured homogeneous runs.

    Parameters
    ----------
    profiling_runs:
        ``(tiled_matrix, measured_time_s)`` pairs from homogeneous
        executions using only this worker type.
    iterations:
        Golden-section iterations over ``log10(vis_lat)``; the model's
        predicted time is monotone in ``vis_lat`` so the squared-log error
        is unimodal.

    Returns the fitted ``vis_lat`` in seconds per byte.
    """
    if not profiling_runs:
        raise ValueError("at least one profiling run is required")

    # Import here to avoid a circular import (partition -> model -> traits).
    from repro.core.partition import HotTilesPartitioner

    def objective(log_v: float) -> float:
        vis_lat = 10.0 ** log_v
        group = arch.group(kind)
        worker = group.traits.with_vis_lat(vis_lat)
        if kind is WorkerKind.HOT:
            candidate = arch.with_calibrated(worker, arch.cold.traits)
        else:
            candidate = arch.with_calibrated(arch.hot.traits, worker)
        partitioner = HotTilesPartitioner(candidate)
        predicted = [partitioner.predict_homogeneous(t, kind) for t, _ in profiling_runs]
        return calibration_error(predicted, [m for _, m in profiling_runs])

    return 10.0 ** _golden_section(objective, _LOG10_LO, _LOG10_HI, iterations)


def calibrate_architecture(
    arch: Architecture,
    measure: Callable[[Architecture, TiledMatrix, WorkerKind], float],
    profiling_matrices: Sequence[TiledMatrix],
) -> Architecture:
    """Calibrate both worker types of an architecture.

    ``measure(arch, tiled, kind)`` must return the measured homogeneous
    runtime; in the experiment harness it runs the simulator.  Returns a
    copy of the architecture with both worker types' ``vis_lat`` fitted.
    """
    if not profiling_matrices:
        raise ValueError("at least one profiling matrix is required")
    traits = {}
    for kind in (WorkerKind.HOT, WorkerKind.COLD):
        group = arch.group(kind)
        if group.count == 0:
            traits[kind] = group.traits
            continue
        runs = [(t, measure(arch, t, kind)) for t in profiling_matrices]
        traits[kind] = group.traits.with_vis_lat(calibrate_vis_lat(arch, kind, runs))
    return arch.with_calibrated(traits[WorkerKind.HOT], traits[WorkerKind.COLD])


def _golden_section(
    objective: Callable[[float], float], lo: float, hi: float, iterations: int
) -> float:
    """Minimize a unimodal function over ``[lo, hi]``."""
    a, b = lo, hi
    c = b - _GOLDEN * (b - a)
    d = a + _GOLDEN * (b - a)
    fc, fd = objective(c), objective(d)
    for _ in range(iterations):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _GOLDEN * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + _GOLDEN * (b - a)
            fd = objective(d)
    return (a + b) / 2.0
