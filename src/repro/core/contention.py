"""Contention-aware closed-form runtime evaluation.

The Fig. 8 final-runtime formulas (:func:`naive_runtime`) treat every
bandwidth resource as a free-standing ``max`` term: the PCIe link in
front of the hot group appears only as ``bh / BW_pcie``, and shared main
memory only as ``b_total / BW``.  The fluid simulator is stricter: its
:class:`~repro.sim.memory.RateAllocator` water-fills per-*instance*
traffic through the PCIe link and main memory in series, so a worker
group can never drain bytes faster than its instances' own memory ports,
the link in front of it, or the DRAM share the other group leaves over.
On the PCIe machine this gap made the model over-credit the hot side of
a block split (a recorded 14.9%-predicted-win / 5.6%-simulated-loss
case) -- the model believed shaving hot bytes shaved the makespan 1:1
while the displaced work throttled the cold group.

:func:`contended_runtime` closes the gap with a closed-form evaluation
over the same group totals, mirroring ``RateAllocator``'s resource model
without running the event loop:

1. **Serialized drain rates.**  Group ``g`` drains bytes at
   ``rho_g = min(N_g * r_g, links_g..., BW)`` -- its instances' aggregate
   port rate, any link in front of it (PCIe for the hot group), and DRAM
   in *series*, exactly the per-instance rate caps + PCIe + DRAM
   resources the allocator water-fills.
2. **Scheduling-granularity floors.**  The allocator grants bandwidth
   per instance, and an instance only demands for work it owns.  The
   simulator's scheduler hands untiled workers row blocks of
   ``tile_height // UNTILED_BLOCK_DIVISOR`` rows and panel-affine
   (scratchpad) workers whole panels, so a tile reaching ``k``
   schedulable units can occupy at most ``k`` instances: its time can
   never drop below ``tile_time / min(N_g, k)``
   (:func:`granularity_floor`).  This is the term that catches the
   recorded PCIe mispredict -- the split's cold sub-block spans too few
   row blocks to spread over the whole cold group.
3. **Two-phase water-fill.**  While both groups demand, DRAM is shared
   max-min with per-instance fairness (``N_g`` users at the group's
   smeared per-instance demand).  When the first group drains its bytes
   it releases its bandwidth -- compute-bound phases do not occupy the
   memory system -- and the survivor finishes at its own serialized
   rate (:func:`_two_phase_makespan`).

Two properties are load-bearing and pinned by tests:

- ``contended_runtime >= naive_runtime`` on every instance (contention
  never speeds anything up): every naive term reappears under a ``max``.
- When ``pcie_bw_gbs is None`` the function *returns the naive value
  bit-for-bit* -- non-PCIe architectures are unaffected by the flag.

The scalar forms score one candidate; the ``*_batch`` variants evaluate
whole assignment enumerations at once for
:func:`~repro.core.partition.exhaustive_partition`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.arch.heterogeneous import Architecture
from repro.core.traits import ReuseType, Traversal, WorkerTraits

__all__ = [
    "UNTILED_BLOCK_DIVISOR",
    "naive_runtime",
    "naive_runtime_batch",
    "contended_runtime",
    "contended_runtime_batch",
    "granularity_floor",
    "granularity_floor_batch",
    "group_floors",
    "effective_hot_bw",
    "effective_cold_bw",
]

#: Row-block granularity of the simulator's untiled-worker scheduler:
#: blocks of ``tile_height // UNTILED_BLOCK_DIVISOR`` rows (the paper's
#: contiguous-row chunks).  Single source of truth --
#: :mod:`repro.sim.worker_sim` re-exports it as
#: ``DEFAULT_UNTILED_BLOCK_DIVISOR``.
UNTILED_BLOCK_DIVISOR = 8


# ----------------------------------------------------------------------
# Naive Fig. 8 formulas (the documented fallback)
# ----------------------------------------------------------------------
def naive_runtime(arch: Architecture, totals, serial: bool) -> float:
    """The Fig. 8 final-runtime formulas over readjusted totals.

    ``totals`` is any object with ``th_total`` / ``tc_total`` /
    ``bh_total`` / ``bc_total`` / ``t_merge`` attributes
    (:class:`~repro.core.partition.PredictedTotals` in practice).  This
    is the pre-contention model, kept bit-identical as the documented
    fallback and as the ``pcie_bw_gbs is None`` behavior.
    """
    bw = arch.mem_bw_bytes_per_sec
    pcie = arch.pcie_bw_bytes_per_sec
    hot_pcie_time = totals.bh_total / pcie if pcie else 0.0
    if not serial:
        return max(
            max(totals.th_total, totals.tc_total),
            (totals.bh_total + totals.bc_total) / bw,
            hot_pcie_time,
        ) + totals.t_merge
    hot_side = max(totals.th_total, totals.bh_total / bw, hot_pcie_time)
    cold_side = max(totals.tc_total, totals.bc_total / bw)
    return hot_side + cold_side


def naive_runtime_batch(
    arch: Architecture,
    th: np.ndarray,
    tc: np.ndarray,
    bh: np.ndarray,
    bc: np.ndarray,
    t_merge: np.ndarray,
    serial: bool,
) -> np.ndarray:
    """Vectorized :func:`naive_runtime` (same operations, element-wise)."""
    bw = arch.mem_bw_bytes_per_sec
    pcie = arch.pcie_bw_bytes_per_sec
    hot_pcie_time = bh / pcie if pcie else np.zeros_like(bh)
    if not serial:
        return (
            np.maximum(np.maximum(th, tc), np.maximum((bh + bc) / bw, hot_pcie_time))
            + t_merge
        )
    return np.maximum(np.maximum(th, bh / bw), hot_pcie_time) + np.maximum(tc, bc / bw)


# ----------------------------------------------------------------------
# Serialized group drain rates
# ----------------------------------------------------------------------
def effective_hot_bw(arch: Architecture) -> float:
    """Bytes/s the hot group can actually drain: ports, PCIe, DRAM in series.

    Equals plain ``mem_bw_bytes_per_sec`` when no PCIe link is configured,
    so non-PCIe behavior (roofline baselines, degraded fallback) is
    unchanged.
    """
    bw = arch.mem_bw_bytes_per_sec
    pcie = arch.pcie_bw_bytes_per_sec
    if pcie is None:
        return bw
    rho = min(pcie, bw)
    if arch.hot.count > 0:
        rho = min(rho, arch.hot.peak_mem_rate_bytes_per_sec)
    return rho


def effective_cold_bw(arch: Architecture) -> float:
    """Bytes/s the cold group can actually drain (ports and DRAM in series).

    Gated on the PCIe link being present for the same reason as
    :func:`effective_hot_bw`: the contention model only refines
    architectures whose recorded fidelity gap it closes.
    """
    bw = arch.mem_bw_bytes_per_sec
    if arch.pcie_bw_bytes_per_sec is None:
        return bw
    if arch.cold.count > 0:
        return min(bw, arch.cold.peak_mem_rate_bytes_per_sec)
    return bw


# ----------------------------------------------------------------------
# Scheduling-granularity floors
# ----------------------------------------------------------------------
def _panel_affine(traits: WorkerTraits) -> bool:
    """Whether the scheduler hands this worker whole panels (scratchpad state).

    Mirrors the unit-construction branch of
    :func:`repro.sim.worker_sim._work_units` exactly.
    """
    return traits.traversal is Traversal.TILED_ROW_ORDERED or traits.din_reuse in (
        ReuseType.INTRA_TILE_STREAM,
        ReuseType.INTRA_TILE_DEMAND,
    )


def _unit_capacity(
    uniq_rids: np.ndarray, n_instances: int, tile_height: int
) -> np.ndarray:
    """Max instances an untiled tile's work can spread over.

    A tile touching ``u`` distinct rows occupies at least
    ``ceil(u / block_rows)`` of the scheduler's aligned row blocks, and
    each block lands on exactly one instance.
    """
    block_rows = max(1, tile_height // UNTILED_BLOCK_DIVISOR)
    blocks = np.maximum(np.ceil(uniq_rids / block_rows), 1.0)
    return np.minimum(float(n_instances), blocks)


def granularity_floor(
    times: np.ndarray,
    uniq_rids: np.ndarray,
    panels: np.ndarray,
    selected: np.ndarray,
    *,
    traits: WorkerTraits,
    n_instances: int,
    tile_height: int,
) -> float:
    """Lower bound on one group's time from scheduling granularity.

    ``times`` are the group's per-tile (first-of-type readjusted) model
    times, ``selected`` the tiles assigned to it.  Panel-affine workers
    process all of a panel's selected tiles on one instance, so the
    floor is the largest per-panel time sum; untiled workers are bounded
    by the most indivisible single tile, ``time / min(N, row blocks)``.
    Zero when the group has at most one instance (its total time already
    is the exact serialization) or no work.
    """
    if n_instances <= 1 or not selected.any():
        return 0.0
    t = times[selected]
    if _panel_affine(traits):
        p = panels[selected]
        order = np.argsort(p, kind="stable")
        ts = t[order]
        ps = p[order]
        starts = np.flatnonzero(np.concatenate(([True], ps[1:] != ps[:-1])))
        return float(np.add.reduceat(ts, starts).max())
    capacity = _unit_capacity(uniq_rids[selected], n_instances, tile_height)
    return float((t / capacity).max())


def granularity_floor_batch(
    times: np.ndarray,
    selected: np.ndarray,
    uniq_rids: np.ndarray,
    panel_starts: np.ndarray,
    *,
    traits: WorkerTraits,
    n_instances: int,
    tile_height: int,
) -> np.ndarray:
    """Vectorized :func:`granularity_floor` over an assignment enumeration.

    ``times`` and ``selected`` are ``(n_assignments, n_tiles)``;
    ``panel_starts`` are the first tile indices of each panel (tiles are
    stored panel-major, so panels are contiguous column ranges).
    """
    m = times.shape[0]
    if n_instances <= 1 or times.shape[1] == 0:
        return np.zeros(m)
    contrib = np.where(selected, times, 0.0)
    if _panel_affine(traits):
        return np.add.reduceat(contrib, panel_starts, axis=1).max(axis=1)
    capacity = _unit_capacity(uniq_rids, n_instances, tile_height)
    return (contrib / capacity[None, :]).max(axis=1)


def group_floors(
    arch: Architecture,
    hot_times: np.ndarray,
    cold_times: np.ndarray,
    uniq_rids: np.ndarray,
    panels: np.ndarray,
    assignment: np.ndarray,
) -> Tuple[float, float]:
    """Granularity floors for both groups of one candidate assignment."""
    hot = granularity_floor(
        hot_times, uniq_rids, panels, assignment,
        traits=arch.hot.traits, n_instances=arch.hot.count,
        tile_height=arch.tile_height,
    )
    cold = granularity_floor(
        cold_times, uniq_rids, panels, ~assignment,
        traits=arch.cold.traits, n_instances=arch.cold.count,
        tile_height=arch.tile_height,
    )
    return hot, cold


# ----------------------------------------------------------------------
# Two-phase group water-fill
# ----------------------------------------------------------------------
def _waterfill_two_groups(
    d_h: float, n_h: int, d_c: float, n_c: int, bw: float
) -> Tuple[float, float]:
    """Max-min DRAM grants for two groups of uniformly-demanding users.

    Group ``g`` holds ``n_g`` users each demanding ``d_g / n_g``;
    progressive filling against total budget ``bw``, exactly the
    semantics of :func:`repro.sim.memory.allocate_rates` collapsed to
    two user classes.  Only meaningful when ``d_h + d_c > bw``.
    """
    n_h = max(n_h, 1)
    n_c = max(n_c, 1)
    cap_h = d_h / n_h
    cap_c = d_c / n_c
    level = bw / (n_h + n_c)
    if level <= min(cap_h, cap_c):
        return n_h * level, n_c * level
    if cap_h <= cap_c:
        grant_h = d_h
        return grant_h, min(d_c, bw - grant_h)
    grant_c = d_c
    return min(d_h, bw - grant_c), grant_c


def _two_phase_makespan(
    hot_solo: float,
    cold_solo: float,
    bh: float,
    bc: float,
    rho_h: float,
    rho_c: float,
    n_h: int,
    n_c: int,
    bw: float,
) -> float:
    """Parallel-mode makespan of the smeared two-group fluid system.

    Each group smears its bytes over its serialized solo duration
    (demand ``d_g = b_g / solo_g``, never above ``rho_g``).  If the
    demands fit in DRAM there is no contention and the groups run at
    their solo durations.  Otherwise both run at their max-min grants
    until the first drains and releases its bandwidth; the survivor
    finishes the remainder at its own serialized rate.
    """
    d_h = bh / hot_solo if hot_solo > 0.0 else 0.0
    d_c = bc / cold_solo if cold_solo > 0.0 else 0.0
    if d_h + d_c <= bw:
        return max(hot_solo, cold_solo)
    a_h, a_c = _waterfill_two_groups(d_h, n_h, d_c, n_c, bw)
    finish_h = bh / a_h if a_h > 0.0 else 0.0
    finish_c = bc / a_c if a_c > 0.0 else 0.0
    if finish_h <= finish_c:
        remaining = bc - a_c * finish_h
        return max(cold_solo, finish_h + remaining / rho_c)
    remaining = bh - a_h * finish_c
    return max(hot_solo, finish_c + remaining / rho_h)


# ----------------------------------------------------------------------
# The contention-aware evaluator
# ----------------------------------------------------------------------
def contended_runtime(
    arch: Architecture,
    totals,
    serial: bool,
    hot_floor: float = 0.0,
    cold_floor: float = 0.0,
) -> float:
    """Contention-aware final runtime over readjusted group totals.

    Falls back to :func:`naive_runtime` bit-for-bit when no PCIe link is
    configured.  Otherwise every naive term survives under a ``max`` --
    the result is provably ``>= naive_runtime`` -- with three additions
    mirroring ``RateAllocator``: serialized drain rates, scheduling
    granularity floors, and the two-phase water-fill (module docstring).
    """
    if arch.pcie_bw_bytes_per_sec is None:
        return naive_runtime(arch, totals, serial)
    bw = arch.mem_bw_bytes_per_sec
    rho_h = effective_hot_bw(arch)
    rho_c = effective_cold_bw(arch)
    bh, bc = totals.bh_total, totals.bc_total
    hot_solo = max(totals.th_total, bh / rho_h, hot_floor)
    cold_solo = max(totals.tc_total, bc / rho_c, cold_floor)
    if serial:
        return max(hot_solo, bh / bw) + max(cold_solo, bc / bw)
    makespan = _two_phase_makespan(
        hot_solo, cold_solo, bh, bc, rho_h, rho_c,
        arch.hot.count, arch.cold.count, bw,
    )
    return max(makespan, (bh + bc) / bw) + totals.t_merge


def contended_runtime_batch(
    arch: Architecture,
    th: np.ndarray,
    tc: np.ndarray,
    bh: np.ndarray,
    bc: np.ndarray,
    t_merge: np.ndarray,
    serial: bool,
    hot_floor: Optional[np.ndarray] = None,
    cold_floor: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized :func:`contended_runtime` over parallel total arrays."""
    if arch.pcie_bw_bytes_per_sec is None:
        return naive_runtime_batch(arch, th, tc, bh, bc, t_merge, serial)
    bw = arch.mem_bw_bytes_per_sec
    rho_h = effective_hot_bw(arch)
    rho_c = effective_cold_bw(arch)
    hot_solo = np.maximum(th, bh / rho_h)
    cold_solo = np.maximum(tc, bc / rho_c)
    if hot_floor is not None:
        hot_solo = np.maximum(hot_solo, hot_floor)
    if cold_floor is not None:
        cold_solo = np.maximum(cold_solo, cold_floor)
    if serial:
        return np.maximum(hot_solo, bh / bw) + np.maximum(cold_solo, bc / bw)

    with np.errstate(divide="ignore", invalid="ignore"):
        d_h = np.where(hot_solo > 0.0, bh / hot_solo, 0.0)
        d_c = np.where(cold_solo > 0.0, bc / cold_solo, 0.0)
        over = d_h + d_c > bw
        # Water-fill grants for the contended rows (harmless elsewhere).
        n_h = max(arch.hot.count, 1)
        n_c = max(arch.cold.count, 1)
        cap_h = d_h / n_h
        cap_c = d_c / n_c
        level = bw / (n_h + n_c)
        uniform = level <= np.minimum(cap_h, cap_c)
        hot_smaller = cap_h <= cap_c
        a_h = np.where(
            uniform, n_h * level, np.where(hot_smaller, d_h, np.minimum(d_h, bw - d_c))
        )
        a_c = np.where(
            uniform, n_c * level, np.where(hot_smaller, np.minimum(d_c, bw - d_h), d_c)
        )
        finish_h = np.where(a_h > 0.0, bh / a_h, 0.0)
        finish_c = np.where(a_c > 0.0, bc / a_c, 0.0)
        hot_first = finish_h <= finish_c
        survivor = np.where(
            hot_first,
            np.maximum(cold_solo, finish_h + (bc - a_c * finish_h) / rho_c),
            np.maximum(hot_solo, finish_c + (bh - a_h * finish_c) / rho_h),
        )
    makespan = np.where(over, survivor, np.maximum(hot_solo, cold_solo))
    return np.maximum(makespan, (bh + bc) / bw) + t_merge
