"""Free-dimension tile-size search (paper Sec. IV).

When a worker type uses no scratchpad for *Din* (or *Dout*), the tile
width (height) is unconstrained, and "the IMH-aware modeling and
partitioning methodology can be iteratively applied to find the value that
is predicted to deliver the maximum performance".  This module implements
that iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.arch.heterogeneous import Architecture
from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix

__all__ = ["TileSizeChoice", "search_tile_size"]


@dataclass(frozen=True)
class TileSizeChoice:
    """The winning tile shape and its predicted runtime."""

    tile_height: int
    tile_width: int
    predicted_time_s: float


def search_tile_size(
    matrix: SparseMatrix,
    arch: Architecture,
    heights: Optional[Sequence[int]] = None,
    widths: Optional[Sequence[int]] = None,
) -> Tuple[TileSizeChoice, TiledMatrix]:
    """Pick the tile shape with the lowest HotTiles-predicted runtime.

    ``heights``/``widths`` default to the architecture's fixed value for
    constrained dimensions; pass candidate lists for free dimensions.
    Returns the winning choice and the matrix tiled with it.
    """
    from repro.core.partition import HotTilesPartitioner

    heights = list(heights) if heights else [arch.tile_height]
    widths = list(widths) if widths else [arch.tile_width]
    if any(h <= 0 for h in heights) or any(w <= 0 for w in widths):
        raise ValueError("tile dimensions must be positive")

    best: Optional[TileSizeChoice] = None
    best_tiled: Optional[TiledMatrix] = None
    for h in heights:
        for w in widths:
            candidate_arch = replace(arch, tile_height=h, tile_width=w)
            tiled = TiledMatrix(matrix, h, w)
            result = HotTilesPartitioner(candidate_arch).partition(tiled)
            if best is None or result.chosen.predicted_time_s < best.predicted_time_s:
                best = TileSizeChoice(h, w, result.chosen.predicted_time_s)
                best_tiled = tiled
    assert best is not None and best_tiled is not None
    return best, best_tiled
