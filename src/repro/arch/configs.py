"""Concrete architecture configurations from the paper's methodology.

Table IV system scales for SPADE-Sextans, the PCIe variant, the PIUMA
machine, and the skewed iso-scale SPADE-Sextans architectures explored in
Sec. VIII-B.

All benchmark matrices are scaled down by ``MATRIX_SCALE_DIVISOR``
(DESIGN.md Sec. 6), so scratchpad capacities -- and hence tile sizes --
scale by the same factor: the paper's 8192x8192 tiles become 128x128 at
the default divisor of 64, keeping the number of row panels and the
per-tile sparsity statistics aligned with the paper's geometry.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.arch.heterogeneous import Architecture, WorkerGroup
from repro.core.problem import ProblemSpec
from repro.workers.piuma import piuma_mtp, piuma_stp
from repro.workers.sextans import sextans, sextans_enhanced, sextans_tile_width
from repro.workers.spade import spade_pe

__all__ = [
    "MATRIX_SCALE_DIVISOR",
    "SPADE_SEXTANS_BW_GBS",
    "PIUMA_BW_GBS",
    "PCIE_BW_GBS",
    "spade_sextans",
    "spade_sextans_iso_scale",
    "spade_sextans_pcie",
    "piuma",
    "ARCHITECTURE_FACTORIES",
]

#: Benchmark matrices (and scratchpads/tiles) are shrunk by this factor.
MATRIX_SCALE_DIVISOR = 64

#: Paper Sec. VII-A: maximum theoretical memory-controller bandwidth.
SPADE_SEXTANS_BW_GBS = 205.0

#: PCIe bandwidth in front of the off-chip Sextans (Sec. VII-A).
PCIE_BW_GBS = 32.0

#: Single-die PIUMA memory bandwidth (the paper withholds PIUMA
#: microarchitectural numbers as proprietary; this is a plausible setting
#: that keeps the MTPs memory-bound and the STP DMA traffic contended).
PIUMA_BW_GBS = 128.0

#: Table IV: number of SPADE PEs per system scale unit.
SPADE_PES_PER_SCALE = 4

#: Paper tile size before matrix scaling.
PAPER_TILE_SIZE = 8192


def spade_sextans(
    system_scale: int = 4, matrix_scale_divisor: int = MATRIX_SCALE_DIVISOR
) -> Architecture:
    """SPADE-Sextans at a Table IV system scale (1, 2, 4 or 8).

    ``4 * scale`` SPADE PEs (cold) share the die and the memory controllers
    with one Sextans worker (hot) whose compute throughput and scratchpad
    grow with the scale.  Output races are avoided with private buffers and
    a Merger module, so both Parallel and Serial heuristics apply.
    """
    return spade_sextans_iso_scale(system_scale, system_scale, matrix_scale_divisor)


def spade_sextans_iso_scale(
    cold_scale: int,
    hot_scale: int,
    matrix_scale_divisor: int = MATRIX_SCALE_DIVISOR,
) -> Architecture:
    """A skewed SPADE-Sextans architecture (Sec. VIII-B).

    ``cold_scale`` scales the number of SPADE PEs, ``hot_scale`` scales the
    single Sextans worker; the iso-scale family of Fig. 16 keeps
    ``cold_scale + hot_scale = 8``.  A scale of 0 removes that worker type.
    """
    if cold_scale < 0 or hot_scale < 0 or cold_scale + hot_scale == 0:
        raise ValueError("scales must be non-negative and not both zero")
    problem = ProblemSpec(k=32, value_bytes=4, index_bytes=4)
    tile_height = PAPER_TILE_SIZE // matrix_scale_divisor
    cold = WorkerGroup(spade_pe(), SPADE_PES_PER_SCALE * cold_scale)
    if hot_scale > 0:
        hot_traits = sextans(hot_scale, matrix_scale_divisor)
        hot = WorkerGroup(hot_traits, 1)
        tile_width = sextans_tile_width(hot_traits, problem.dense_row_bytes)
    else:
        hot = WorkerGroup(sextans(1, matrix_scale_divisor), 0)
        tile_width = tile_height  # no scratchpad constraint: square tiles
    name = (
        f"spade-sextans-x{cold_scale}"
        if cold_scale == hot_scale
        else f"spade-sextans-{cold_scale}-{hot_scale}"
    )
    return Architecture(
        name=name,
        hot=hot,
        cold=cold,
        mem_bw_gbs=SPADE_SEXTANS_BW_GBS,
        problem=problem,
        tile_height=tile_height,
        tile_width=tile_width,
        atomic_updates=False,
    )


def spade_sextans_pcie(
    system_scale: int = 4,
    matrix_scale_divisor: int = MATRIX_SCALE_DIVISOR,
    ops_per_nnz: int = 1,
) -> Architecture:
    """SPADE-Sextans with the Sextans behind a 32 GB/s PCIe link.

    The off-chip Sextans is *enhanced*: it processes ``5 * scale`` nonzeros
    per cycle regardless of the kernel's arithmetic intensity, while the
    SPADE PEs need proportionally more cycles as ``ops_per_nnz`` grows
    (the Fig. 14 gSpMM study).
    """
    base = spade_sextans(system_scale, matrix_scale_divisor)
    hot_traits = sextans_enhanced(
        nnz_per_cycle=5.0 * system_scale,
        system_scale=system_scale,
        matrix_scale_divisor=matrix_scale_divisor,
    )
    problem = base.problem.with_ops_per_nnz(ops_per_nnz)
    return Architecture(
        name=f"spade-sextans-pcie-x{system_scale}",
        hot=WorkerGroup(hot_traits, 1),
        cold=base.cold,
        mem_bw_gbs=base.mem_bw_gbs,
        problem=problem,
        tile_height=base.tile_height,
        tile_width=base.tile_width,
        atomic_updates=False,
        pcie_bw_gbs=PCIE_BW_GBS,
    )


def piuma(matrix_scale_divisor: int = MATRIX_SCALE_DIVISOR) -> Architecture:
    """PIUMA: 4 MTPs (cold) + 2 STPs with scratchpads/DMA (hot), fp64.

    The Atomic engine gives race-free read-modify-write, so the worker
    types always run in parallel and only the Parallel heuristics are used.
    """
    problem = ProblemSpec(k=32, value_bytes=8, index_bytes=8)
    tile = PAPER_TILE_SIZE // matrix_scale_divisor
    stp = piuma_stp(matrix_scale_divisor, problem.dense_row_bytes)
    return Architecture(
        name="piuma",
        hot=WorkerGroup(stp, 2),
        cold=WorkerGroup(piuma_mtp(), 4),
        mem_bw_gbs=PIUMA_BW_GBS,
        problem=problem,
        tile_height=tile,
        tile_width=tile,
        atomic_updates=True,
    )


#: Name-based factories for the CLI.
ARCHITECTURE_FACTORIES: Dict[str, Callable[..., Architecture]] = {
    "spade-sextans": spade_sextans,
    "spade-sextans-pcie": spade_sextans_pcie,
    "piuma": piuma,
}
