"""The heterogeneous architecture abstraction.

An :class:`Architecture` is what the HotTiles framework is configured with
(Sec. VI-B): one hot and one cold worker group, the shared main-memory
bandwidth, the optional PCIe link in front of the hot group, whether the
memory system supports race-free read-modify-write (atomics), and the tile
geometry derived from the scratchpad capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.problem import ProblemSpec
from repro.core.traits import WorkerKind, WorkerTraits

__all__ = ["WorkerGroup", "Architecture"]


@dataclass(frozen=True)
class WorkerGroup:
    """``count`` identical workers of one type."""

    traits: WorkerTraits
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("worker count must be non-negative")

    @property
    def peak_mem_rate_bytes_per_sec(self) -> float:
        """Aggregate maximum memory draw of the group (simulator)."""
        return self.count * self.traits.mem_rate_bytes_per_sec()


@dataclass(frozen=True)
class Architecture:
    """A two-worker-type heterogeneous SpMM accelerator.

    Parameters
    ----------
    hot, cold:
        The worker groups (either may have ``count == 0`` for the skewed
        iso-scale architectures of Sec. VIII-B).
    mem_bw_gbs:
        Shared main-memory bandwidth in GB/s (a contended resource).
    atomic_updates:
        True when the memory system performs race-free read-modify-write
        (PIUMA's Atomic engine): no private output buffers, ``t_merge = 0``
        and only the Parallel heuristics apply (Sec. V-B).
    pcie_bw_gbs:
        When set, all hot-group traffic additionally flows through a PCIe
        link of this bandwidth (the SPADE-Sextans+PCIe architecture).
    problem:
        Data sizes and kernel spec the architecture operates on.
    tile_height, tile_width:
        Sparse-tile geometry; set to the largest size that does not
        overflow any worker scratchpad (Sec. IV).
    """

    name: str
    hot: WorkerGroup
    cold: WorkerGroup
    mem_bw_gbs: float
    problem: ProblemSpec
    tile_height: int
    tile_width: int
    atomic_updates: bool = False
    pcie_bw_gbs: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mem_bw_gbs <= 0:
            raise ValueError("memory bandwidth must be positive")
        if self.pcie_bw_gbs is not None and self.pcie_bw_gbs <= 0:
            raise ValueError("PCIe bandwidth must be positive")
        if self.tile_height <= 0 or self.tile_width <= 0:
            raise ValueError("tile dimensions must be positive")
        if self.hot.count == 0 and self.cold.count == 0:
            raise ValueError("architecture needs at least one worker")
        if self.hot.traits.kind is not WorkerKind.HOT:
            raise ValueError("hot group must hold HOT workers")
        if self.cold.traits.kind is not WorkerKind.COLD:
            raise ValueError("cold group must hold COLD workers")

    # ------------------------------------------------------------------
    @property
    def mem_bw_bytes_per_sec(self) -> float:
        return self.mem_bw_gbs * 1e9

    @property
    def pcie_bw_bytes_per_sec(self) -> Optional[float]:
        return None if self.pcie_bw_gbs is None else self.pcie_bw_gbs * 1e9

    def group(self, kind: WorkerKind) -> WorkerGroup:
        """The worker group of the requested kind."""
        return self.hot if kind is WorkerKind.HOT else self.cold

    def tile_shape(self) -> Tuple[int, int]:
        return (self.tile_height, self.tile_width)

    def merge_time_s(self, n_rows: int) -> float:
        """Merger cost for combining the two private output buffers.

        Following the paper's assumption (Sec. V-A), the cost depends only
        on the *Dout* footprint and the system bandwidth, not on what was
        written: the Merger reads both buffers and writes the final one,
        i.e. three passes over ``n_rows`` dense rows.
        """
        if self.atomic_updates:
            return 0.0
        footprint = n_rows * self.problem.dense_row_bytes
        return 3.0 * footprint / self.mem_bw_bytes_per_sec

    def with_calibrated(self, hot: WorkerTraits, cold: WorkerTraits) -> "Architecture":
        """Copy with (re-)calibrated worker traits (same counts)."""
        return replace(
            self,
            hot=WorkerGroup(hot, self.hot.count),
            cold=WorkerGroup(cold, self.cold.count),
        )

    def with_problem(self, problem: ProblemSpec) -> "Architecture":
        """Copy operating on a different problem spec (e.g. gSpMM sweep)."""
        return replace(self, problem=problem)

    def __str__(self) -> str:
        pcie = f", pcie={self.pcie_bw_gbs}GB/s" if self.pcie_bw_gbs else ""
        return (
            f"{self.name}: {self.cold.count}x{self.cold.traits.name} (cold) + "
            f"{self.hot.count}x{self.hot.traits.name} (hot), "
            f"bw={self.mem_bw_gbs}GB/s{pcie}, tile={self.tile_height}x{self.tile_width}"
        )
