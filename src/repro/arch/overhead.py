"""Merger-module area and power estimate (paper Sec. VII-C).

The only hardware HotTiles adds to SPADE-Sextans is the Merger module (a
SIMD ADD unit plus registers) that combines the two private output buffers
after a parallel run.  The paper estimates its area/power with CACTI (for
the registers) and Galal-Horowitz FPU numbers (for the SIMD arithmetic),
scaled to 10 nm, and reports it at "less than 20% of the area and power of
a single SPADE PE".

We have no CACTI binary offline, so this module performs the same
constant-based bookkeeping: per-lane fp32 adder area/energy from the
Galal-Horowitz survey, register-file area/power per kB from published
CACTI fits, and the Stillmaker-Baas scaling factors from 45 nm to 10 nm.
The point of the module is to make the overhead claim reproducible and
testable, not to re-derive silicon numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MergerOverhead", "merger_overhead_estimate"]

# Galal & Horowitz (IEEE TC'11): fp32 add ~ 0.003 mm^2 and ~ 0.9 pJ/op at
# 45 nm.  Stillmaker & Baas (Integration'17) scaling 45 nm -> 10 nm: area
# ~ x0.06, energy ~ x0.21.
_FP32_ADD_AREA_MM2_45NM = 0.003
_FP32_ADD_ENERGY_PJ_45NM = 0.9
_AREA_SCALE_45_TO_10 = 0.06
_ENERGY_SCALE_45_TO_10 = 0.21

# CACTI-flavoured register/SRAM fit at 10 nm: ~ 0.008 mm^2 and ~ 4 mW per kB
# of heavily-ported register storage.
_REG_AREA_MM2_PER_KB = 0.008
_REG_POWER_MW_PER_KB = 4.0

# A SPADE PE (pipeline + 32 kB L1 + BBF) lands around 0.25 mm^2 / 120 mW at
# 10 nm in the SPADE paper's accounting; used as the comparison base.
_SPADE_PE_AREA_MM2 = 0.25
_SPADE_PE_POWER_MW = 120.0


@dataclass(frozen=True)
class MergerOverhead:
    """Estimated Merger cost and its ratio to one SPADE PE."""

    area_mm2: float
    power_mw: float
    area_ratio_vs_spade_pe: float
    power_ratio_vs_spade_pe: float


def merger_overhead_estimate(
    simd_lanes: int = 16, register_kb: float = 2.0, frequency_ghz: float = 0.8
) -> MergerOverhead:
    """Estimate the Merger module's area and power at 10 nm.

    Parameters
    ----------
    simd_lanes:
        fp32 adder lanes of the SIMD ADD module.
    register_kb:
        Buffering registers in kB.
    frequency_ghz:
        Operating frequency (converts adder energy/op to power assuming
        every lane fires each cycle -- a worst-case power estimate).
    """
    if simd_lanes <= 0 or register_kb < 0 or frequency_ghz <= 0:
        raise ValueError("merger parameters must be positive")
    add_area = simd_lanes * _FP32_ADD_AREA_MM2_45NM * _AREA_SCALE_45_TO_10
    add_energy_pj = _FP32_ADD_ENERGY_PJ_45NM * _ENERGY_SCALE_45_TO_10
    add_power_mw = simd_lanes * add_energy_pj * frequency_ghz  # pJ * GHz = mW
    reg_area = register_kb * _REG_AREA_MM2_PER_KB
    reg_power = register_kb * _REG_POWER_MW_PER_KB
    area = add_area + reg_area
    power = add_power_mw + reg_power
    return MergerOverhead(
        area_mm2=area,
        power_mw=power,
        area_ratio_vs_spade_pe=area / _SPADE_PE_AREA_MM2,
        power_ratio_vs_spade_pe=power / _SPADE_PE_POWER_MW,
    )
