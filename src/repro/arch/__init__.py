"""Heterogeneous accelerator architecture descriptions (paper Sec. VI)."""

from repro.arch.heterogeneous import Architecture, WorkerGroup
from repro.arch.configs import (
    spade_sextans,
    spade_sextans_iso_scale,
    spade_sextans_pcie,
    piuma,
    ARCHITECTURE_FACTORIES,
)
from repro.arch.overhead import merger_overhead_estimate, MergerOverhead

__all__ = [
    "Architecture",
    "WorkerGroup",
    "spade_sextans",
    "spade_sextans_iso_scale",
    "spade_sextans_pcie",
    "piuma",
    "ARCHITECTURE_FACTORIES",
    "merger_overhead_estimate",
    "MergerOverhead",
]
