"""Incremental application of a :class:`DeltaBatch`.

Re-canonicalizing a mutated matrix from scratch costs a global
``O(nnz log nnz)`` argsort twice over (once for the COO canonical order,
once for the tile-major permutation).  A delta batch touches a vanishing
fraction of the nonzeros, so both sorted orders can instead be *repaired*
by merging the (already sorted) batch into the (already sorted) arrays
with ``searchsorted`` + ``np.insert`` -- ``O(nnz + |delta| log nnz)`` and
no argsort.

The contract is exact, not approximate: the matrix produced by
:func:`apply_delta_matrix` and the tiling produced by
:func:`apply_delta_tiled` are **bit-identical** -- every array, dtype and
digest -- to constructing ``SparseMatrix`` / ``TiledMatrix`` from scratch
on the mutated coordinates.  The differential tests in
``tests/test_streaming.py`` and the ``delta-replay`` experiment enforce
this.

Alongside the repaired tiling, :func:`apply_delta_tiled` reports which
tiles went *structurally dirty* (nonzero added or removed; value-only
overwrites keep a tile clean).  That dirty set is what
:func:`repro.core.partition.repair_plan` uses to skip re-costing clean
tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sparse.matrix import SparseMatrix
from repro.sparse.tiling import TiledMatrix, TileStats, _unique_per_segment, concat_ranges
from repro.streaming.delta import DeltaBatch

__all__ = ["DeltaApplyReport", "apply_delta_matrix", "apply_delta_tiled"]

# Composite merge keys are ``tile_rank * nnz + position``; fall back to a
# full rebuild rather than risk int64 overflow on absurdly large inputs.
_INT64_SAFE = 2**62


@dataclass(frozen=True)
class _MergeInfo:
    """How a delta mapped onto the canonical nonzero order.

    Internal to the streaming package: :func:`apply_delta_tiled` uses it to
    repair the tile-major permutation without re-sorting.
    """

    #: per-old-nonzero survival mask (False = deleted by the batch)
    keep: np.ndarray
    #: new canonical position of each surviving old nonzero (len = keep.sum())
    new_pos_of_kept: np.ndarray
    #: new canonical positions of brand-new nonzeros, ascending
    ins_pos: np.ndarray
    #: coordinates of the brand-new nonzeros (sorted by canonical key)
    ins_rows: np.ndarray
    ins_cols: np.ndarray
    #: coordinates of the nonzeros actually removed (delete hits only)
    del_rows: np.ndarray
    del_cols: np.ndarray
    #: number of in-place value overwrites (structurally clean)
    n_overwrites: int


@dataclass(frozen=True)
class DeltaApplyReport:
    """What one batch did to a tiling, for lineage counters and repair."""

    n_inserted: int  #: brand-new nonzeros added
    n_overwritten: int  #: existing nonzeros whose value changed
    n_deleted: int  #: nonzeros removed (delete misses excluded)
    #: sorted tile keys (``tile_row * n_panel_cols + tile_col``) of tiles
    #: whose *structure* changed; value-only overwrites stay clean
    dirty_tile_keys: np.ndarray
    tiles_before: int
    tiles_after: int
    #: True when the incremental merge bailed into a full rebuild
    rebuilt: bool

    @property
    def n_dirty_tiles(self) -> int:
        return int(self.dirty_tile_keys.shape[0])


def _empty_info(matrix: SparseMatrix) -> _MergeInfo:
    z = np.zeros(0, dtype=np.int64)
    return _MergeInfo(
        keep=np.ones(matrix.nnz, dtype=bool),
        new_pos_of_kept=np.arange(matrix.nnz, dtype=np.int64),
        ins_pos=z, ins_rows=z, ins_cols=z, del_rows=z, del_cols=z,
        n_overwrites=0,
    )


def apply_delta_matrix(
    matrix: SparseMatrix, delta: DeltaBatch
) -> Tuple[SparseMatrix, _MergeInfo]:
    """Apply ``delta`` to ``matrix``; return the new matrix and merge map.

    Deletes apply first (absent cells are silent no-ops), then inserts
    (upsert: overwrite if the cell survived, new nonzero otherwise).  The
    result is built through :meth:`SparseMatrix._from_canonical` with an
    incrementally patched CSR ``indptr``; an empty batch returns ``matrix``
    itself, digest unchanged.
    """
    delta.validate_against(matrix.n_rows, matrix.n_cols)
    if delta.is_empty:
        return matrix, _empty_info(matrix)

    n_cols = np.int64(max(matrix.n_cols, 1))
    old_keys = matrix.rows * n_cols + matrix.cols  # strictly increasing

    # --- deletes: mark hits among the existing nonzeros ----------------
    keep = np.ones(matrix.nnz, dtype=bool)
    if delta.n_deletes:
        del_keys = delta.delete_rows * n_cols + delta.delete_cols
        pos = np.searchsorted(old_keys, del_keys)
        in_range = pos < matrix.nnz
        hit = np.zeros(delta.n_deletes, dtype=bool)
        hit[in_range] = old_keys[pos[in_range]] == del_keys[in_range]
        keep[pos[hit]] = False
        del_rows = delta.delete_rows[hit]
        del_cols = delta.delete_cols[hit]
    else:
        del_rows = del_cols = np.zeros(0, dtype=np.int64)

    kept_keys = old_keys[keep]
    kept_rows = matrix.rows[keep]
    kept_cols = matrix.cols[keep]
    kept_vals = matrix.vals[keep]  # fancy indexing already copies

    # --- inserts: split into overwrites and brand-new nonzeros ---------
    if delta.n_inserts:
        ins_keys = delta.insert_rows * n_cols + delta.insert_cols
        pos_k = np.searchsorted(kept_keys, ins_keys)
        in_range = pos_k < kept_keys.shape[0]
        over = np.zeros(delta.n_inserts, dtype=bool)
        over[in_range] = kept_keys[pos_k[in_range]] == ins_keys[in_range]
        kept_vals[pos_k[over]] = delta.insert_vals[over]  # casts to dtype
        new = ~over
        ins_rows = delta.insert_rows[new]
        ins_cols = delta.insert_cols[new]
        ins_vals = delta.insert_vals[new].astype(matrix.dtype)
        insert_at = pos_k[new]  # non-decreasing: keys are sorted
        n_overwrites = int(over.sum())
    else:
        ins_rows = ins_cols = np.zeros(0, dtype=np.int64)
        ins_vals = np.zeros(0, dtype=matrix.dtype)
        insert_at = np.zeros(0, dtype=np.int64)
        n_overwrites = 0

    new_rows = np.insert(kept_rows, insert_at, ins_rows)
    new_cols = np.insert(kept_cols, insert_at, ins_cols)
    new_vals = np.insert(kept_vals, insert_at, ins_vals)

    # Canonical positions on both sides of the merge.
    n_new = ins_rows.shape[0]
    ins_pos = insert_at + np.arange(n_new, dtype=np.int64)
    if n_new:
        ins_keys_new = ins_rows * n_cols + ins_cols
        new_pos_of_kept = (
            np.arange(kept_keys.shape[0], dtype=np.int64)
            + np.searchsorted(ins_keys_new, kept_keys)
        )
    else:
        new_pos_of_kept = np.arange(kept_keys.shape[0], dtype=np.int64)

    # CSR indptr patched by per-row net change instead of a fresh bincount
    # over all nonzeros.
    row_delta = np.bincount(ins_rows, minlength=matrix.n_rows).astype(np.int64)
    row_delta -= np.bincount(del_rows, minlength=matrix.n_rows).astype(np.int64)
    new_indptr = matrix.indptr() + np.concatenate(
        ([0], np.cumsum(row_delta))
    ).astype(np.int64)

    result = SparseMatrix._from_canonical(
        matrix.n_rows, matrix.n_cols, new_rows, new_cols, new_vals, indptr=new_indptr
    )
    info = _MergeInfo(
        keep=keep,
        new_pos_of_kept=new_pos_of_kept,
        ins_pos=ins_pos,
        ins_rows=ins_rows,
        ins_cols=ins_cols,
        del_rows=del_rows,
        del_cols=del_cols,
        n_overwrites=n_overwrites,
    )
    return result, info


def apply_delta_tiled(
    tiled: TiledMatrix, delta: DeltaBatch
) -> Tuple[TiledMatrix, DeltaApplyReport]:
    """Apply ``delta`` to a tiling; return the repaired tiling and report.

    The tile-major permutation, tile offsets, per-tile stats and panel
    stats are merged/patched rather than rebuilt; distinct-index counts are
    recomputed only for structurally dirty tiles, the rest copy over.  An
    empty batch returns ``tiled`` itself.
    """
    if delta.is_empty:
        return tiled, DeltaApplyReport(
            n_inserted=0, n_overwritten=0, n_deleted=0,
            dirty_tile_keys=np.zeros(0, dtype=np.int64),
            tiles_before=tiled.n_tiles, tiles_after=tiled.n_tiles,
            rebuilt=False,
        )

    new_matrix, info = apply_delta_matrix(tiled.matrix, delta)
    th, tw = tiled.tile_height, tiled.tile_width
    npc = np.int64(max(tiled.n_panel_cols, 1))

    # Structurally dirty tiles: any actual delete or brand-new insert.
    dirty_keys = np.union1d(
        (info.del_rows // th) * npc + info.del_cols // tw,
        (info.ins_rows // th) * npc + info.ins_cols // tw,
    ).astype(np.int64)

    def _report(new_tiled: TiledMatrix, rebuilt: bool) -> DeltaApplyReport:
        return DeltaApplyReport(
            n_inserted=int(info.ins_rows.shape[0]),
            n_overwritten=info.n_overwrites,
            n_deleted=int(info.del_rows.shape[0]),
            dirty_tile_keys=dirty_keys,
            tiles_before=tiled.n_tiles,
            tiles_after=new_tiled.n_tiles,
            rebuilt=rebuilt,
        )

    old_counts = np.diff(tiled.tile_offsets)
    old_tile_keys = tiled.stats.tile_row * npc + tiled.stats.tile_col
    ins_keys = (info.ins_rows // th) * npc + info.ins_cols // tw

    # Rank-compress tile keys so the composite merge key
    # ``rank * nnz + canonical_pos`` stays inside int64.
    union_keys = np.union1d(old_tile_keys, ins_keys).astype(np.int64)
    new_nnz = int(new_matrix.nnz)
    if union_keys.shape[0] * max(new_nnz, 1) >= _INT64_SAFE:
        rebuilt = TiledMatrix(new_matrix, th, tw)
        return rebuilt, _report(rebuilt, rebuilt=True)

    # Survivors, in old tile-major order (which is already sorted by
    # (tile_key, canonical position) -- the merge invariant).
    keep_tm = info.keep[tiled.perm]
    new_pos_full = np.empty(tiled.matrix.nnz, dtype=np.int64)
    new_pos_full[info.keep] = info.new_pos_of_kept
    surv_pos = new_pos_full[tiled.perm[keep_tm]]
    surv_rank = np.searchsorted(
        union_keys, np.repeat(old_tile_keys, old_counts)[keep_tm]
    )

    # Brand-new nonzeros, sorted the same way.
    ins_rank = np.searchsorted(union_keys, ins_keys)
    ins_order = np.lexsort((info.ins_pos, ins_rank))
    ins_rank = ins_rank[ins_order]
    ins_pos = info.ins_pos[ins_order]

    # Merge the two sorted runs.
    nnz64 = np.int64(max(new_nnz, 1))
    ins_at = np.searchsorted(
        surv_rank * nnz64 + surv_pos, ins_rank * nnz64 + ins_pos
    )
    perm = np.insert(surv_pos, ins_at, ins_pos)
    merged_rank = np.insert(surv_rank, ins_at, ins_rank)

    # Tile boundaries, exactly as the constructor finds them.
    if merged_rank.size:
        boundary = np.empty(merged_rank.shape[0], dtype=bool)
        boundary[0] = True
        np.not_equal(merged_rank[1:], merged_rank[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        tile_keys = union_keys[merged_rank[starts]]
        counts = np.diff(np.append(starts, merged_rank.shape[0]))
    else:
        starts = np.zeros(0, dtype=np.int64)
        tile_keys = np.zeros(0, dtype=np.int64)
        counts = np.zeros(0, dtype=np.int64)
    tile_offsets = np.append(starts, merged_rank.shape[0]).astype(np.int64)

    rows = new_matrix.rows[perm]
    cols = new_matrix.cols[perm]
    vals = new_matrix.vals[perm]

    # Per-tile distinct-index counts: clean tiles copy the old values,
    # dirty tiles recompute over just their own segments.
    is_dirty = np.isin(tile_keys, dirty_keys, assume_unique=True)
    uniq_rids = np.empty(tile_keys.shape[0], dtype=np.int64)
    uniq_cids = np.empty(tile_keys.shape[0], dtype=np.int64)
    clean_idx = np.flatnonzero(~is_dirty)
    if clean_idx.size:
        old_idx = np.searchsorted(old_tile_keys, tile_keys[clean_idx])
        uniq_rids[clean_idx] = tiled.stats.uniq_rids[old_idx]
        uniq_cids[clean_idx] = tiled.stats.uniq_cids[old_idx]
    dirty_idx = np.flatnonzero(is_dirty)
    if dirty_idx.size:
        seg_counts = counts[dirty_idx]
        gather = concat_ranges(starts[dirty_idx], seg_counts)
        seg_key = np.repeat(np.arange(dirty_idx.shape[0], dtype=np.int64), seg_counts)
        seg_starts = np.concatenate(([0], np.cumsum(seg_counts)[:-1]))
        # Rows are non-decreasing inside a tile (canonical order is
        # row-major), columns are not.
        uniq_rids[dirty_idx] = _unique_per_segment(
            seg_key, rows[gather], seg_starts, presorted=True
        )
        uniq_cids[dirty_idx] = _unique_per_segment(
            seg_key, cols[gather], seg_starts, presorted=False
        )

    stats = TileStats(
        tile_row=(tile_keys // npc).astype(np.int64),
        tile_col=(tile_keys % npc).astype(np.int64),
        nnz=counts.astype(np.int64),
        uniq_rids=uniq_rids,
        uniq_cids=uniq_cids,
    )

    # Panel stats: nnz patched by net change; distinct rows re-derived from
    # the already-patched CSR indptr (O(n_rows)).
    n_panels = max(tiled.n_panel_rows, 1)
    panel_nnz = (
        tiled.panel_nnz
        + np.bincount(info.ins_rows // th, minlength=n_panels).astype(np.int64)
        - np.bincount(info.del_rows // th, minlength=n_panels).astype(np.int64)
    )
    present_rows = np.flatnonzero(np.diff(new_matrix.indptr()) > 0)
    panel_uniq_rids = np.bincount(
        present_rows // th, minlength=n_panels
    ).astype(np.int64)

    result = TiledMatrix._from_parts(
        matrix=new_matrix,
        tile_height=th,
        tile_width=tw,
        n_panel_rows=tiled.n_panel_rows,
        n_panel_cols=tiled.n_panel_cols,
        perm=perm,
        rows=rows,
        cols=cols,
        vals=vals,
        tile_offsets=tile_offsets,
        stats=stats,
        panel_uniq_rids=panel_uniq_rids,
        panel_nnz=panel_nnz,
    )
    return result, _report(result, rebuilt=False)
