"""Streaming matrix deltas and incremental plan repair.

Graph workloads mutate continuously; re-planning a mutated matrix from
scratch throws away almost all of the previous plan's work.  This package
makes the sparsity structure a *moving target* the rest of the stack can
track cheaply:

- :mod:`repro.streaming.delta` -- the :class:`DeltaBatch` record (nnz
  inserts / deletes / value overwrites) with seeded generators for tests
  and load generation,
- :mod:`repro.streaming.apply` -- incremental application:
  :func:`apply_delta_matrix` merges a batch into the canonical COO/CSR
  arrays without a global re-sort, and :func:`apply_delta_tiled` repairs a
  :class:`~repro.sparse.tiling.TiledMatrix` in place of retiling,
  bit-identical to the from-scratch construction, while reporting which
  tiles went structurally dirty,
- :mod:`repro.streaming.lineage` -- the service-side
  :class:`MatrixLineage` / :class:`LineageRegistry` tracking the mutable
  head of each registered matrix so ``POST /matrices/{digest}/delta`` can
  apply batches and repair plans incrementally.

``SparseMatrix.apply_delta`` and ``TiledMatrix.apply_delta`` are thin
method wrappers over the functions here.  The partition-repair entry point
(:func:`repro.core.partition.repair_plan`) lives with the partitioner it
extends.  See docs/streaming.md.
"""

from repro.streaming.apply import DeltaApplyReport, apply_delta_matrix, apply_delta_tiled
from repro.streaming.delta import DeltaBatch, delta_stream
from repro.streaming.lineage import (
    LineageRegistry,
    LineageUpdate,
    MatrixLineage,
    StaleDigestError,
    UnknownLineageError,
)

__all__ = [
    "DeltaBatch",
    "delta_stream",
    "DeltaApplyReport",
    "apply_delta_matrix",
    "apply_delta_tiled",
    "MatrixLineage",
    "LineageRegistry",
    "LineageUpdate",
    "StaleDigestError",
    "UnknownLineageError",
]
