"""Mutable lineage heads for registered matrices.

The plan service is content-addressed: a digest names one immutable plan.
Streaming deltas need a *mutable* notion on top -- "the current state of
the matrix that digest was planned for".  A :class:`MatrixLineage` is
that mutable head: it owns the evolving :class:`~repro.sparse.tiling.
TiledMatrix`, the memoized :class:`~repro.core.partition.PartitionCache`,
and the digest chain

    head_{k+1} = stable_digest(("delta-plan", head_k, delta_digest))

so every post-delta plan gets its own content address while the chain
stays verifiable.  Applying a batch runs the incremental pipeline --
:func:`~repro.streaming.apply.apply_delta_tiled` then
:func:`~repro.core.partition.repair_plan` -- under the lineage's lock,
serializing writers per matrix.

The :class:`LineageRegistry` resolves *any* digest a lineage has ever
carried back to the lineage, which lets ``POST /matrices/{digest}/delta``
answer a precise ``409`` (you addressed a superseded head, here is the
current one) instead of a blunt ``404``.  Lineages are LRU-bounded; the
plan *results* stay in the durable store regardless.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.partition import (
    HotTilesPartitioner,
    HotTilesResult,
    PartitionCache,
    RepairStats,
    plan_cache_from,
    repair_plan,
)
from repro.sparse.tiling import TiledMatrix
from repro.streaming.apply import DeltaApplyReport, apply_delta_tiled
from repro.streaming.delta import DeltaBatch

__all__ = [
    "UnknownLineageError",
    "StaleDigestError",
    "LineageUpdate",
    "MatrixLineage",
    "LineageRegistry",
]


class UnknownLineageError(KeyError):
    """No lineage has ever carried this digest."""

    def __init__(self, digest: str) -> None:
        super().__init__(f"no registered matrix lineage for digest {digest[:12]}")
        self.digest = digest


class StaleDigestError(ValueError):
    """The digest names a superseded head; carries the current one."""

    def __init__(self, digest: str, head_digest: str) -> None:
        super().__init__(
            f"digest {digest[:12]} is a superseded lineage head; "
            f"current head is {head_digest[:12]}"
        )
        self.digest = digest
        self.head_digest = head_digest


@dataclass(frozen=True)
class LineageUpdate:
    """One applied delta: digests, structural report, repair accounting."""

    prev_digest: str
    new_digest: str
    report: DeltaApplyReport
    repair: RepairStats
    partition: HotTilesResult
    nnz: int  #: nonzeros after the delta
    n_tiles: int  #: non-empty tiles after the delta
    hot_nnz_fraction: float  #: of the repaired plan's chosen assignment


class MatrixLineage:
    """The mutable head of one registered matrix.

    ``meta`` is an opaque slot for the owner (the plan service stashes the
    base :class:`~repro.service.protocol.PlanResult` there to derive
    repaired results without re-resolving the request).
    """

    def __init__(
        self,
        digest: str,
        tiled: TiledMatrix,
        partitioner: HotTilesPartitioner,
        result: Optional[HotTilesResult] = None,
        meta: Any = None,
    ) -> None:
        self._lock = threading.Lock()
        self.root_digest = digest
        self.head_digest = digest
        self.tiled = tiled
        self.partitioner = partitioner
        if result is None:
            result = partitioner.partition(tiled)
        self.result = result
        self.cache: PartitionCache = plan_cache_from(partitioner, tiled, result)
        self.meta = meta
        self.deltas_applied = 0
        self.tiles_repaired_total = 0

    def apply(
        self, delta: DeltaBatch, expect_head: Optional[str] = None
    ) -> LineageUpdate:
        """Apply one batch and advance the head; thread-safe.

        ``expect_head`` enables optimistic concurrency: the apply only
        proceeds if the head still matches, else :class:`StaleDigestError`
        (checked under the lineage lock, so two appliers addressing the
        same head cannot both succeed).  An empty batch is a no-op: the
        head digest, tiling and plan are unchanged and the delta counter
        does not advance.
        """
        from repro.experiments.cache import stable_digest

        with self._lock:
            if expect_head is not None and expect_head != self.head_digest:
                raise StaleDigestError(expect_head, self.head_digest)
            if delta.is_empty:
                n = self.tiled.n_tiles
                return LineageUpdate(
                    prev_digest=self.head_digest,
                    new_digest=self.head_digest,
                    report=DeltaApplyReport(
                        n_inserted=0, n_overwritten=0, n_deleted=0,
                        dirty_tile_keys=self.cache.tile_keys[:0],
                        tiles_before=n, tiles_after=n, rebuilt=False,
                    ),
                    repair=RepairStats(
                        n_tiles=n, tiles_repaired=0, tiles_pinned=n,
                        new_tiles=0, dropped_tiles=0,
                    ),
                    partition=self.result,
                    nnz=self.tiled.matrix.nnz,
                    n_tiles=n,
                    hot_nnz_fraction=self.result.chosen.hot_nnz_fraction(self.tiled),
                )
            new_tiled, report = apply_delta_tiled(self.tiled, delta)
            outcome = repair_plan(
                self.partitioner, new_tiled, self.cache, report.dirty_tile_keys
            )
            prev = self.head_digest
            new_digest = stable_digest(
                ("delta-plan", prev, delta.content_digest())
            )
            self.tiled = new_tiled
            self.cache = outcome.cache
            self.result = outcome.result
            self.head_digest = new_digest
            self.deltas_applied += 1
            self.tiles_repaired_total += outcome.stats.tiles_repaired
            return LineageUpdate(
                prev_digest=prev,
                new_digest=new_digest,
                report=report,
                repair=outcome.stats,
                partition=outcome.result,
                nnz=new_tiled.matrix.nnz,
                n_tiles=new_tiled.n_tiles,
                hot_nnz_fraction=outcome.result.chosen.hot_nnz_fraction(new_tiled),
            )


class LineageRegistry:
    """Digest -> lineage resolution with LRU-bounded retention."""

    def __init__(self, max_lineages: int = 64) -> None:
        if max_lineages < 1:
            raise ValueError("max_lineages must be >= 1")
        self.max_lineages = int(max_lineages)
        self._lock = threading.Lock()
        #: root digest -> lineage, in LRU order (most recent last)
        self._lineages: "OrderedDict[str, MatrixLineage]" = OrderedDict()
        #: every digest a lineage has carried -> its root digest
        self._alias: Dict[str, str] = {}
        #: root digest -> all aliases, for eviction cleanup
        self._carried: Dict[str, List[str]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._lineages)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._alias

    def register(self, lineage: MatrixLineage) -> None:
        """Adopt a lineage (idempotent per root digest)."""
        with self._lock:
            root = lineage.root_digest
            if root in self._lineages:
                self._lineages.move_to_end(root)
                return
            self._lineages[root] = lineage
            self._alias[root] = root
            self._carried[root] = [root]
            while len(self._lineages) > self.max_lineages:
                evicted_root, _ = self._lineages.popitem(last=False)
                for digest in self._carried.pop(evicted_root, ()):
                    self._alias.pop(digest, None)

    def resolve(self, digest: str) -> MatrixLineage:
        """The lineage that carries (or once carried) ``digest``."""
        with self._lock:
            root = self._alias.get(digest)
            if root is None:
                raise UnknownLineageError(digest)
            self._lineages.move_to_end(root)
            return self._lineages[root]

    def apply(self, digest: str, delta: DeltaBatch) -> LineageUpdate:
        """Apply a batch addressed at ``digest``.

        Raises :class:`UnknownLineageError` for digests never seen and
        :class:`StaleDigestError` when ``digest`` is not the current head
        (optimistic concurrency: the caller re-reads the head and retries).
        """
        lineage = self.resolve(digest)
        update = lineage.apply(delta, expect_head=digest)
        if update.new_digest != update.prev_digest:
            with self._lock:
                root = lineage.root_digest
                if root in self._lineages:
                    self._alias[update.new_digest] = root
                    self._carried[root].append(update.new_digest)
        return update
