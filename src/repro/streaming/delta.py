"""The :class:`DeltaBatch` record: one batch of nnz mutations.

A batch names coordinate-level edits against a sparse matrix:

- *deletes* -- ``(row, col)`` cells whose nonzero is removed (deleting an
  absent cell is a silent no-op, so replayed batches are idempotent),
- *inserts* -- ``(row, col, val)`` upserts: a new nonzero if the cell was
  empty, a value overwrite if it already held one.

Application order within a batch is deletes first, then inserts, so a
cell named by both ends up holding the inserted value.  Batches are
canonicalized at construction (coordinates sorted row-major, duplicate
delete cells collapsed, duplicate insert cells resolved last-wins) and
frozen, which makes :meth:`DeltaBatch.content_digest` a stable content
address -- the lineage-chain component of a repaired plan's digest.

Seeded generators (:meth:`DeltaBatch.random`, :func:`delta_stream`)
produce reproducible mutation workloads for the differential tests, the
``hottiles delta-replay`` experiment, and CI.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sparse.matrix import SparseMatrix

__all__ = ["DeltaBatch", "delta_stream"]


def _as_index_array(values: Any, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a 1-D integer array")
    if arr.size and arr.min() < 0:
        raise ValueError(f"{name} must be non-negative")
    return arr


class DeltaBatch:
    """One canonical, immutable batch of sparse-matrix mutations."""

    __slots__ = (
        "insert_rows", "insert_cols", "insert_vals",
        "delete_rows", "delete_cols", "_digest",
    )

    def __init__(
        self,
        insert_rows: Any = (),
        insert_cols: Any = (),
        insert_vals: Any = (),
        delete_rows: Any = (),
        delete_cols: Any = (),
    ) -> None:
        ir = _as_index_array(insert_rows, "insert_rows")
        ic = _as_index_array(insert_cols, "insert_cols")
        iv = np.asarray(insert_vals, dtype=np.float64)
        if iv.ndim != 1 or iv.shape != ir.shape or ic.shape != ir.shape:
            raise ValueError(
                "insert_rows / insert_cols / insert_vals must be 1-D arrays "
                "of equal length"
            )
        dr = _as_index_array(delete_rows, "delete_rows")
        dc = _as_index_array(delete_cols, "delete_cols")
        if dc.shape != dr.shape:
            raise ValueError("delete_rows and delete_cols must have equal length")

        ir, ic, iv = _canonicalize_inserts(ir, ic, iv)
        dr, dc = _canonicalize_deletes(dr, dc)
        self.insert_rows = ir
        self.insert_cols = ic
        self.insert_vals = iv
        self.delete_rows = dr
        self.delete_cols = dc
        self._digest: Optional[str] = None
        for arr in (ir, ic, iv, dr, dc):
            arr.flags.writeable = False

    # ------------------------------------------------------------------
    @property
    def n_inserts(self) -> int:
        return int(self.insert_rows.shape[0])

    @property
    def n_deletes(self) -> int:
        return int(self.delete_rows.shape[0])

    @property
    def is_empty(self) -> bool:
        return self.n_inserts == 0 and self.n_deletes == 0

    def __len__(self) -> int:
        return self.n_inserts + self.n_deletes

    def __repr__(self) -> str:
        return f"DeltaBatch(inserts={self.n_inserts}, deletes={self.n_deletes})"

    def validate_against(self, n_rows: int, n_cols: int) -> None:
        """Raise :class:`ValueError` unless every coordinate fits the shape."""
        for rows, cols, what in (
            (self.insert_rows, self.insert_cols, "insert"),
            (self.delete_rows, self.delete_cols, "delete"),
        ):
            if rows.size == 0:
                continue
            if rows.max() >= n_rows or cols.max() >= n_cols:
                raise ValueError(
                    f"{what} coordinate out of range for a {n_rows}x{n_cols} "
                    f"matrix (max row {rows.max()}, max col {cols.max()})"
                )

    # ------------------------------------------------------------------
    def content_digest(self) -> str:
        """Stable hex digest over the canonical batch content (memoized)."""
        if self._digest is None:
            h = hashlib.sha256()
            h.update(f"DeltaBatch:{self.n_inserts}:{self.n_deletes}:".encode())
            for arr in (
                self.insert_rows, self.insert_cols, self.insert_vals,
                self.delete_rows, self.delete_cols,
            ):
                h.update(arr.tobytes())
            self._digest = h.hexdigest()
        return self._digest

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the ``POST /matrices/{digest}/delta`` body)."""
        return {
            "insert_rows": self.insert_rows.tolist(),
            "insert_cols": self.insert_cols.tolist(),
            "insert_vals": self.insert_vals.tolist(),
            "delete_rows": self.delete_rows.tolist(),
            "delete_cols": self.delete_cols.tolist(),
        }

    _FIELDS = ("insert_rows", "insert_cols", "insert_vals", "delete_rows", "delete_cols")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeltaBatch":
        """Validate and build a batch from a decoded JSON object."""
        if not isinstance(payload, Mapping):
            raise ValueError("delta body must be a JSON object")
        unknown = set(payload) - set(cls._FIELDS)
        if unknown:
            raise ValueError(f"unknown delta field(s): {', '.join(sorted(unknown))}")
        kwargs = {}
        for field in cls._FIELDS:
            value = payload.get(field, ())
            if not isinstance(value, (list, tuple)):
                raise ValueError(f"{field} must be a list")
            numeric = float if field == "insert_vals" else int
            for item in value:
                if isinstance(item, bool) or not isinstance(item, (int, float)):
                    raise ValueError(f"{field} entries must be numbers")
                if numeric is int and int(item) != item:
                    raise ValueError(f"{field} entries must be integers")
            kwargs[field] = [numeric(item) for item in value]
        return cls(**kwargs)

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        matrix: SparseMatrix,
        inserts: int,
        deletes: int,
        seed: int = 0,
        insert_region: Optional[Tuple[int, int, int, int]] = None,
        value_scale: float = 1.0,
    ) -> "DeltaBatch":
        """A seeded batch targeting ``matrix``.

        Deletes are drawn without replacement from the existing nonzeros;
        inserts are uniform over the matrix shape (or over
        ``insert_region`` = ``(row_lo, row_hi, col_lo, col_hi)``, which the
        tests use to concentrate churn in chosen tiles).  Insert cells may
        coincide with existing nonzeros -- those become value overwrites,
        exercising the value-only (structurally clean) path.
        """
        if inserts < 0 or deletes < 0:
            raise ValueError("inserts and deletes must be non-negative")
        if deletes > matrix.nnz:
            raise ValueError(f"cannot delete {deletes} of {matrix.nnz} nonzeros")
        rng = np.random.default_rng(seed)
        if deletes:
            picked = rng.choice(matrix.nnz, size=deletes, replace=False)
            dr, dc = matrix.rows[picked], matrix.cols[picked]
        else:
            dr = dc = np.zeros(0, dtype=np.int64)
        if inserts:
            row_lo, row_hi, col_lo, col_hi = (
                insert_region
                if insert_region is not None
                else (0, matrix.n_rows, 0, matrix.n_cols)
            )
            if not (0 <= row_lo < row_hi <= matrix.n_rows
                    and 0 <= col_lo < col_hi <= matrix.n_cols):
                raise ValueError(f"bad insert_region {insert_region!r}")
            ir = rng.integers(row_lo, row_hi, inserts)
            ic = rng.integers(col_lo, col_hi, inserts)
            iv = rng.standard_normal(inserts) * value_scale
        else:
            ir = ic = np.zeros(0, dtype=np.int64)
            iv = np.zeros(0, dtype=np.float64)
        return cls(ir, ic, iv, dr, dc)


def delta_stream(
    matrix: SparseMatrix,
    steps: int,
    inserts: int,
    deletes: int,
    seed: int = 0,
    insert_region: Optional[Tuple[int, int, int, int]] = None,
) -> Iterator[Tuple[DeltaBatch, SparseMatrix]]:
    """Yield ``(batch, matrix_after)`` pairs for a seeded mutation stream.

    Each batch is generated against the *current* matrix (so deletes always
    name live nonzeros) with an independent per-step sub-seed, then applied
    to produce the next state.  The experiment harness and CI smoke replay
    these streams both incrementally and from scratch.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    current = matrix
    for step in range(steps):
        batch = DeltaBatch.random(
            current,
            inserts=inserts,
            deletes=min(deletes, current.nnz),
            seed=seed * 1_000_003 + step,
            insert_region=insert_region,
        )
        current = current.apply_delta(batch)
        yield batch, current


# ----------------------------------------------------------------------
def _canonicalize_inserts(
    rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort inserts row-major; duplicate cells resolve last-wins."""
    if rows.size == 0:
        return rows.copy(), cols.copy(), vals.copy()
    order = np.lexsort((cols, rows))  # stable: ties keep input order
    rows, cols, vals = rows[order], cols[order], vals[order]
    # Last entry of each (row, col) group wins.
    last = np.empty(rows.shape[0], dtype=bool)
    last[-1] = True
    np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=last[:-1])
    return rows[last].copy(), cols[last].copy(), vals[last].copy()


def _canonicalize_deletes(
    rows: np.ndarray, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort deletes row-major and drop duplicate cells."""
    if rows.size == 0:
        return rows.copy(), cols.copy()
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]
    first = np.empty(rows.shape[0], dtype=bool)
    first[0] = True
    np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=first[1:])
    return rows[first].copy(), cols[first].copy()
