"""MatrixMarket coordinate-format I/O.

The paper's framework "reads a sparse matrix from disk in MatrixMarket file
format" (Sec. VI-B).  This module implements the coordinate subset of the
format used by the SuiteSparse collection: ``real`` / ``integer`` /
``pattern`` fields and ``general`` / ``symmetric`` / ``skew-symmetric``
symmetries.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.sparse.matrix import SparseMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_FIELDS = {"real", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(
    source: Union[str, Path, io.TextIOBase], dtype: np.dtype = np.float32
) -> SparseMatrix:
    """Parse a MatrixMarket coordinate file into a :class:`SparseMatrix`.

    Symmetric and skew-symmetric storage is expanded to a general matrix,
    matching what the HotTiles preprocessing pipeline operates on.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as fh:
            return read_matrix_market(fh, dtype=dtype)

    header = source.readline()
    parts = header.strip().lower().split()
    if len(parts) != 5 or parts[0] != "%%matrixmarket" or parts[1] != "matrix":
        raise ValueError(f"not a MatrixMarket matrix header: {header.strip()!r}")
    layout, field, symmetry = parts[2], parts[3], parts[4]
    if layout != "coordinate":
        raise ValueError(f"only coordinate layout is supported, got {layout!r}")
    if field not in _FIELDS:
        raise ValueError(f"unsupported field {field!r} (supported: {sorted(_FIELDS)})")
    if symmetry not in _SYMMETRIES:
        raise ValueError(f"unsupported symmetry {symmetry!r} (supported: {sorted(_SYMMETRIES)})")

    line = source.readline()
    while line.startswith("%"):
        line = source.readline()
    dims = line.split()
    if len(dims) != 3:
        raise ValueError(f"bad size line: {line.strip()!r}")
    try:
        n_rows, n_cols, nnz = (int(x) for x in dims)
    except ValueError:
        raise ValueError(
            f"size line must be three integers, got {line.strip()!r}"
        ) from None
    if n_rows < 0 or n_cols < 0 or nnz < 0:
        raise ValueError(
            f"size line values must be non-negative, got {line.strip()!r}"
        )

    try:
        body = np.loadtxt(source, ndmin=2) if nnz else np.zeros((0, 3))
    except ValueError as exc:
        raise ValueError(f"malformed coordinate entries: {exc}") from None
    if body.shape[0] != nnz:
        raise ValueError(f"expected {nnz} entries, found {body.shape[0]}")
    expected_cols = 2 if field == "pattern" else 3
    if nnz and body.shape[1] != expected_cols:
        raise ValueError(
            f"{field} entries need {expected_cols} columns, found {body.shape[1]}"
        )
    rows = body[:, 0].astype(np.int64) - 1
    cols = body[:, 1].astype(np.int64) - 1
    if nnz:
        for name, idx, bound in (("row", rows, n_rows), ("column", cols, n_cols)):
            lo, hi = int(idx.min()), int(idx.max())
            if lo < 0 or hi >= bound:
                bad = lo + 1 if lo < 0 else hi + 1
                raise ValueError(
                    f"{name} index {bad} out of range for a "
                    f"{n_rows}x{n_cols} matrix (1-based indices expected)"
                )
    vals = np.ones(nnz, dtype=dtype) if field == "pattern" else body[:, 2].astype(dtype)

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = rows != cols
        mirror_vals = vals[off_diag]
        if symmetry == "skew-symmetric":
            mirror_vals = -mirror_vals
        rows = np.concatenate([rows, cols[off_diag]])
        cols = np.concatenate([cols, body[:, 0].astype(np.int64)[off_diag] - 1])
        vals = np.concatenate([vals, mirror_vals])
    return SparseMatrix(n_rows, n_cols, rows, cols, vals, dtype=dtype)


def write_matrix_market(
    matrix: SparseMatrix, target: Union[str, Path, io.TextIOBase], comment: str = ""
) -> None:
    """Write a matrix in general real coordinate MatrixMarket format."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as fh:
            write_matrix_market(matrix, fh, comment=comment)
        return
    target.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        target.write(f"% {line}\n")
    target.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
    for r, c, v in zip(matrix.rows, matrix.cols, matrix.vals):
        target.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")
