"""Immutable sparse-matrix container used throughout the reproduction.

The HotTiles pipeline only needs a handful of sparse-matrix capabilities:
canonical COO storage (row-major sorted, deduplicated), CSR views, a
reference SpMM for correctness checks, and cheap structural queries
(degrees, density).  ``scipy.sparse`` would provide these, but the paper's
software stack generates custom accelerator formats from raw index arrays,
so we keep the representation explicit and dependency-light.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

import numpy as np

__all__ = ["SparseMatrix"]


class SparseMatrix:
    """A 2-D sparse matrix in canonical COO form.

    The nonzeros are stored row-major sorted (primary key ``row``, secondary
    key ``col``) with duplicates summed.  Instances are treated as immutable:
    the underlying arrays are flagged non-writeable and every transformation
    returns a new object.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    rows, cols:
        Integer coordinate arrays of equal length.
    vals:
        Nonzero values; if omitted, all values are 1.0 (pattern matrix).
    dtype:
        Floating-point dtype for the values (``float32`` for the
        SPADE-Sextans experiments, ``float64`` for PIUMA, as in the paper).
    """

    __slots__ = ("n_rows", "n_cols", "rows", "cols", "vals", "_indptr", "_digest")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: Optional[np.ndarray] = None,
        dtype: np.dtype = np.float32,
    ) -> None:
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"matrix dimensions must be non-negative, got {n_rows}x{n_cols}")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.ndim != 1 or cols.ndim != 1 or rows.shape != cols.shape:
            raise ValueError("rows and cols must be 1-D arrays of equal length")
        if vals is None:
            vals = np.ones(rows.shape[0], dtype=dtype)
        else:
            vals = np.asarray(vals, dtype=dtype)
            if vals.shape != rows.shape:
                raise ValueError("vals must have the same length as rows/cols")
        if rows.size:
            if rows.min(initial=0) < 0 or cols.min(initial=0) < 0:
                raise ValueError("negative indices are not allowed")
            if rows.max(initial=-1) >= n_rows or cols.max(initial=-1) >= n_cols:
                raise ValueError(
                    f"index out of range for a {n_rows}x{n_cols} matrix "
                    f"(max row {rows.max()}, max col {cols.max()})"
                )
        rows, cols, vals = _canonicalize(n_rows, n_cols, rows, cols, vals)
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self._indptr: Optional[np.ndarray] = None
        self._digest: Optional[str] = None
        for arr in (self.rows, self.cols, self.vals):
            arr.flags.writeable = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, dtype: np.dtype = np.float32) -> "SparseMatrix":
        """Build from a dense 2-D array, keeping exact nonzeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols], dtype=dtype)

    @classmethod
    def from_csr(
        cls,
        n_rows: int,
        n_cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        vals: Optional[np.ndarray] = None,
        dtype: np.dtype = np.float32,
    ) -> "SparseMatrix":
        """Build from CSR arrays (``indptr`` of length ``n_rows + 1``)."""
        indptr = np.asarray(indptr, dtype=np.int64)
        if indptr.shape != (n_rows + 1,):
            raise ValueError(f"indptr must have length n_rows + 1 = {n_rows + 1}")
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        indices = np.asarray(indices, dtype=np.int64)
        if indptr[-1] != indices.shape[0]:
            raise ValueError("indptr[-1] must equal len(indices)")
        rows = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))
        return cls(n_rows, n_cols, rows, indices, vals, dtype=dtype)

    @classmethod
    def identity(cls, n: int, dtype: np.dtype = np.float32) -> "SparseMatrix":
        """The ``n x n`` identity matrix."""
        idx = np.arange(n, dtype=np.int64)
        return cls(n, n, idx, idx, np.ones(n, dtype=dtype), dtype=dtype)

    @classmethod
    def empty(cls, n_rows: int, n_cols: int, dtype: np.dtype = np.float32) -> "SparseMatrix":
        """A matrix with no nonzeros."""
        z = np.zeros(0, dtype=np.int64)
        return cls(n_rows, n_cols, z, z, np.zeros(0, dtype=dtype), dtype=dtype)

    @classmethod
    def _from_canonical(
        cls,
        n_rows: int,
        n_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        indptr: Optional[np.ndarray] = None,
    ) -> "SparseMatrix":
        """Wrap arrays that are *already* canonical, skipping validation.

        Trusted internal constructor for the incremental delta-merge path
        (:mod:`repro.streaming.apply`), which maintains the canonical order
        by construction.  ``indptr``, when given, must be the matching CSR
        row-pointer array; it is adopted as the cached value.
        """
        self = object.__new__(cls)
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.rows = rows
        self.cols = cols
        self.vals = vals
        if indptr is not None:
            indptr.flags.writeable = False
        self._indptr = indptr
        self._digest = None
        for arr in (rows, cols, vals):
            arr.flags.writeable = False
        return self

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.rows.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def dtype(self) -> np.dtype:
        return self.vals.dtype

    @property
    def density(self) -> float:
        """Fraction of cells that hold a nonzero (0 for empty shapes)."""
        cells = self.n_rows * self.n_cols
        return self.nnz / cells if cells else 0.0

    def row_degrees(self) -> np.ndarray:
        """Number of nonzeros in each row."""
        return np.bincount(self.rows, minlength=self.n_rows).astype(np.int64)

    def col_degrees(self) -> np.ndarray:
        """Number of nonzeros in each column."""
        return np.bincount(self.cols, minlength=self.n_cols).astype(np.int64)

    def to_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(indptr, indices, vals)`` CSR views of this matrix."""
        return self.indptr(), self.cols, self.vals

    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (cached; nonzeros are already row-sorted)."""
        if self._indptr is None:
            counts = np.bincount(self.rows, minlength=self.n_rows)
            indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indptr.flags.writeable = False
            self._indptr = indptr
        return self._indptr

    def content_digest(self) -> str:
        """Stable hex digest of the matrix content (shape, dtype, nonzeros).

        Two matrices with identical canonical COO content share a digest
        across processes and runs; it is the matrix component of the
        experiment-cache key.  Computed once and memoized.
        """
        if self._digest is None:
            h = hashlib.sha256()
            h.update(
                f"SparseMatrix:{self.n_rows}x{self.n_cols}:{self.vals.dtype.str}:".encode()
            )
            h.update(self.rows.tobytes())
            h.update(self.cols.tobytes())
            h.update(self.vals.tobytes())
            self._digest = h.hexdigest()
        return self._digest

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (use on small matrices only)."""
        out = np.zeros(self.shape, dtype=self.vals.dtype)
        out[self.rows, self.cols] = self.vals
        return out

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "SparseMatrix":
        """The transposed matrix."""
        return SparseMatrix(
            self.n_cols, self.n_rows, self.cols, self.rows, self.vals, dtype=self.vals.dtype
        )

    def astype(self, dtype: np.dtype) -> "SparseMatrix":
        """Copy with values cast to ``dtype``."""
        return SparseMatrix(
            self.n_rows, self.n_cols, self.rows, self.cols, self.vals.astype(dtype), dtype=dtype
        )

    def permute(
        self, row_perm: Optional[np.ndarray] = None, col_perm: Optional[np.ndarray] = None
    ) -> "SparseMatrix":
        """Apply row/column permutations.

        ``row_perm[i]`` gives the *new* index of old row ``i`` (and likewise
        for columns), i.e. the scatter convention used by reordering
        algorithms.
        """
        rows, cols = self.rows, self.cols
        if row_perm is not None:
            row_perm = _check_perm(row_perm, self.n_rows, "row_perm")
            rows = row_perm[rows]
        if col_perm is not None:
            col_perm = _check_perm(col_perm, self.n_cols, "col_perm")
            cols = col_perm[cols]
        return SparseMatrix(self.n_rows, self.n_cols, rows, cols, self.vals, dtype=self.vals.dtype)

    def select_nonzeros(self, mask: np.ndarray) -> "SparseMatrix":
        """Keep only the nonzeros selected by a boolean mask (same shape)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.rows.shape:
            raise ValueError("mask must have one entry per nonzero")
        return SparseMatrix(
            self.n_rows,
            self.n_cols,
            self.rows[mask],
            self.cols[mask],
            self.vals[mask],
            dtype=self.vals.dtype,
        )

    def symmetrized(self) -> "SparseMatrix":
        """Return ``A + A^T`` pattern-wise (values summed on collisions)."""
        rows = np.concatenate([self.rows, self.cols])
        cols = np.concatenate([self.cols, self.rows])
        vals = np.concatenate([self.vals, self.vals])
        return SparseMatrix(
            max(self.n_rows, self.n_cols),
            max(self.n_rows, self.n_cols),
            rows,
            cols,
            vals,
            dtype=self.vals.dtype,
        )

    def without_diagonal(self) -> "SparseMatrix":
        """Drop nonzeros on the main diagonal."""
        return self.select_nonzeros(self.rows != self.cols)

    def apply_delta(self, delta) -> "SparseMatrix":
        """Apply a :class:`repro.streaming.delta.DeltaBatch` incrementally.

        Returns a new matrix (or ``self`` for an empty batch) whose arrays
        are bit-identical to rebuilding from the mutated coordinates; see
        :func:`repro.streaming.apply.apply_delta_matrix` for the merge.
        """
        from repro.streaming.apply import apply_delta_matrix

        return apply_delta_matrix(self, delta)[0]

    # ------------------------------------------------------------------
    # Reference kernels
    # ------------------------------------------------------------------
    def spmm(self, dense: np.ndarray) -> np.ndarray:
        """Reference SpMM: ``A @ Din`` for a dense ``Din`` of shape (n_cols, K).

        This is the functional ground truth used by the tests to verify that
        the accelerator formats generated by :mod:`repro.pipeline.formats`
        preserve the computation.
        """
        dense = np.asarray(dense)
        if dense.ndim != 2 or dense.shape[0] != self.n_cols:
            raise ValueError(
                f"dense input must have shape ({self.n_cols}, K), got {dense.shape}"
            )
        out = np.zeros((self.n_rows, dense.shape[1]), dtype=np.result_type(self.vals, dense))
        np.add.at(out, self.rows, self.vals[:, None] * dense[self.cols])
        return out

    def spmv(self, vec: np.ndarray) -> np.ndarray:
        """Reference SpMV: ``A @ x``."""
        vec = np.asarray(vec)
        if vec.shape != (self.n_cols,):
            raise ValueError(f"vector must have shape ({self.n_cols},), got {vec.shape}")
        return self.spmm(vec[:, None])[:, 0]

    # ------------------------------------------------------------------
    # Dunder support
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"SparseMatrix(shape={self.n_rows}x{self.n_cols}, nnz={self.nnz}, "
            f"density={self.density:.2e}, dtype={self.vals.dtype})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.nnz == other.nnz
            and bool(np.array_equal(self.rows, other.rows))
            and bool(np.array_equal(self.cols, other.cols))
            and bool(np.array_equal(self.vals, other.vals))
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __setstate__(self, state: Tuple[None, dict]) -> None:
        # Default __slots__ pickling, plus re-flagging the coordinate
        # arrays read-only: numpy does not preserve writeability across a
        # pickle round trip, and instances must stay immutable in pool
        # worker processes too.
        _, slots = state
        for name, value in slots.items():
            setattr(self, name, value)
        for arr in (self.rows, self.cols, self.vals):
            arr.flags.writeable = False


def _canonicalize(
    n_rows: int, n_cols: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort nonzeros row-major and sum duplicate coordinates."""
    if rows.size == 0:
        return rows.copy(), cols.copy(), vals.copy()
    keys = rows * np.int64(n_cols) + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    vals = vals[order]
    unique_mask = np.empty(keys.shape[0], dtype=bool)
    unique_mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=unique_mask[1:])
    if unique_mask.all():
        return rows[order], cols[order], vals.copy()
    group_ids = np.cumsum(unique_mask) - 1
    summed = np.zeros(int(group_ids[-1]) + 1, dtype=vals.dtype)
    np.add.at(summed, group_ids, vals)
    keys = keys[unique_mask]
    return keys // n_cols, keys % n_cols, summed


def _check_perm(perm: np.ndarray, n: int, name: str) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (n,):
        raise ValueError(f"{name} must have length {n}")
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True
    if not seen.all():
        raise ValueError(f"{name} is not a permutation of 0..{n - 1}")
    return perm
