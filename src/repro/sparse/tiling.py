"""Tile decomposition of a sparse matrix.

HotTiles operates on fixed-size tiles of the sparse input (paper Sec. IV):
the matrix is cut into a grid of ``tile_height x tile_width`` tiles, empty
tiles are eliminated during preprocessing, and the analytical model consumes
three statistics per surviving tile:

- ``tile_nnzs``       -- nonzeros in the tile,
- ``tile_uniq_rids``  -- distinct row indices among them (drives *Dout*
  intra-tile demand reuse, Table I),
- ``tile_uniq_cids``  -- distinct column indices (drives *Din* demand reuse).

A *row panel* (Fig. 6) is the set of tiles sharing a tile-row; inter-tile
reuse happens along row panels, so the decomposition also records per-panel
statistics and groups tiles by panel in traversal order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.sparse.matrix import SparseMatrix

__all__ = ["TileStats", "TiledMatrix", "concat_ranges"]


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``[starts[i], starts[i] + lengths[i])`` ranges.

    Vectorized equivalent of
    ``np.concatenate([np.arange(s, s + l) for s, l in zip(starts, lengths)])``
    without materializing a Python list of per-range arrays -- the plan
    builder uses it to gather the nonzero indices of many tiles at once.
    Zero-length ranges contribute nothing.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    # Element at global position p inside range k equals
    # starts[k] + (p - out_offset[k]); np.repeat broadcasts the per-range
    # correction so one np.arange covers every range.
    return np.repeat(starts - (ends - lengths), lengths) + np.arange(
        total, dtype=np.int64
    )


@dataclass(frozen=True)
class TileStats:
    """Struct-of-arrays statistics for the non-empty tiles of a matrix.

    All arrays have one entry per non-empty tile, ordered row-panel-major
    (increasing tile row, then increasing tile column), matching the tiled
    traversal order of Fig. 6(b).
    """

    tile_row: np.ndarray  #: tile-grid row (row-panel index) of each tile
    tile_col: np.ndarray  #: tile-grid column of each tile
    nnz: np.ndarray  #: nonzeros per tile
    uniq_rids: np.ndarray  #: distinct nonzero row indices per tile
    uniq_cids: np.ndarray  #: distinct nonzero column indices per tile

    @property
    def n_tiles(self) -> int:
        return int(self.nnz.shape[0])


class TiledMatrix:
    """A sparse matrix cut into a grid of tiles with per-tile statistics.

    Parameters
    ----------
    matrix:
        The sparse input ``A``.
    tile_height, tile_width:
        Tile dimensions in matrix elements.  Scratchpad-constrained workers
        dictate these (paper Sec. IV); free dimensions may be searched over
        with :func:`repro.core.tilesize.search_tile_size`.
    """

    def __init__(self, matrix: SparseMatrix, tile_height: int, tile_width: int) -> None:
        if tile_height <= 0 or tile_width <= 0:
            raise ValueError("tile dimensions must be positive")
        self.matrix = matrix
        self.tile_height = int(tile_height)
        self.tile_width = int(tile_width)
        self.n_panel_rows = -(-matrix.n_rows // tile_height) if matrix.n_rows else 0
        self.n_panel_cols = -(-matrix.n_cols // tile_width) if matrix.n_cols else 0

        trow = matrix.rows // tile_height
        tcol = matrix.cols // tile_width
        key = trow * np.int64(max(self.n_panel_cols, 1)) + tcol
        order = np.argsort(key, kind="stable")

        #: nonzeros permuted into tile-major order (tiles sorted row-panel
        #: major; inside a tile the original row-major order is preserved).
        self.perm = order
        self.rows = matrix.rows[order]
        self.cols = matrix.cols[order]
        self.vals = matrix.vals[order]

        sorted_key = key[order]
        if sorted_key.size:
            boundary = np.empty(sorted_key.shape[0], dtype=bool)
            boundary[0] = True
            np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            tile_keys = sorted_key[starts]
            counts = np.diff(np.append(starts, sorted_key.shape[0]))
        else:
            starts = np.zeros(0, dtype=np.int64)
            tile_keys = np.zeros(0, dtype=np.int64)
            counts = np.zeros(0, dtype=np.int64)

        #: offset of each tile's first nonzero in the permuted arrays,
        #: with a trailing sentinel equal to nnz.
        self.tile_offsets = np.append(starts, sorted_key.shape[0]).astype(np.int64)

        tile_row = tile_keys // max(self.n_panel_cols, 1)
        tile_col = tile_keys % max(self.n_panel_cols, 1)
        uniq_rids = _unique_per_segment(sorted_key, self.rows, starts, presorted=True)
        uniq_cids = _unique_per_segment(sorted_key, self.cols, starts, presorted=False)
        self.stats = TileStats(
            tile_row=tile_row.astype(np.int64),
            tile_col=tile_col.astype(np.int64),
            nnz=counts.astype(np.int64),
            uniq_rids=uniq_rids,
            uniq_cids=uniq_cids,
        )

        # Per-panel statistics.  Each matrix row lives in exactly one panel,
        # so the distinct rows of a panel are the distinct row values binned
        # by panel index.
        present_rows = np.unique(matrix.rows)
        self.panel_uniq_rids = np.bincount(
            present_rows // tile_height, minlength=max(self.n_panel_rows, 1)
        ).astype(np.int64)
        self.panel_nnz = np.bincount(
            trow, minlength=max(self.n_panel_rows, 1)
        ).astype(np.int64)

        self._inv_perm: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def _from_parts(
        cls,
        matrix: SparseMatrix,
        tile_height: int,
        tile_width: int,
        n_panel_rows: int,
        n_panel_cols: int,
        perm: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        tile_offsets: np.ndarray,
        stats: TileStats,
        panel_uniq_rids: np.ndarray,
        panel_nnz: np.ndarray,
    ) -> "TiledMatrix":
        """Assemble a tiling from precomputed parts, skipping the argsort.

        Trusted internal constructor for the incremental delta-merge path
        (:mod:`repro.streaming.apply`), which repairs every field so that
        the result is bit-identical to ``TiledMatrix(matrix, th, tw)``.
        The inverse permutation is refreshed eagerly: the merge already
        holds the new ``perm``, so one scatter keeps the cache warm instead
        of invalidating it.
        """
        self = object.__new__(cls)
        self.matrix = matrix
        self.tile_height = int(tile_height)
        self.tile_width = int(tile_width)
        self.n_panel_rows = int(n_panel_rows)
        self.n_panel_cols = int(n_panel_cols)
        self.perm = perm
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self.tile_offsets = tile_offsets
        self.stats = stats
        self.panel_uniq_rids = panel_uniq_rids
        self.panel_nnz = panel_nnz
        inv = np.empty(perm.shape[0], dtype=np.int64)
        inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
        inv.flags.writeable = False
        self._inv_perm = inv
        return self

    def apply_delta(self, delta) -> "TiledMatrix":
        """Apply a :class:`repro.streaming.delta.DeltaBatch` incrementally.

        Returns a repaired tiling (or ``self`` for an empty batch)
        bit-identical to retiling the mutated matrix from scratch; see
        :func:`repro.streaming.apply.apply_delta_tiled`, which also reports
        the structurally dirty tiles.
        """
        from repro.streaming.apply import apply_delta_tiled

        return apply_delta_tiled(self, delta)[0]

    @property
    def n_tiles(self) -> int:
        """Number of non-empty tiles (empty tiles are eliminated)."""
        return self.stats.n_tiles

    def inverse_perm(self) -> np.ndarray:
        """Original (row-major) nonzero position -> tile-permuted position.

        The inverse of :attr:`perm`, computed lazily and cached; returned
        read-only.  Lets consumers recover the canonical row-major order of
        any subset of the permuted nonzeros without sorting.
        """
        if self._inv_perm is None:
            inv = np.empty(self.perm.shape[0], dtype=np.int64)
            inv[self.perm] = np.arange(self.perm.shape[0], dtype=np.int64)
            inv.flags.writeable = False
            self._inv_perm = inv
        return self._inv_perm

    def tile_nonzeros(self, i: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, cols, vals)`` of tile ``i`` in global coordinates."""
        lo, hi = self.tile_offsets[i], self.tile_offsets[i + 1]
        return self.rows[lo:hi], self.cols[lo:hi], self.vals[lo:hi]

    def tiles_in_panel(self, panel: int) -> np.ndarray:
        """Indices of the non-empty tiles in row panel ``panel``."""
        return np.flatnonzero(self.stats.tile_row == panel)

    def iter_panels(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(panel_index, tile_indices)`` for non-empty panels.

        Tiles are already sorted panel-major, so each panel's indices are a
        contiguous ascending range.
        """
        if self.n_tiles == 0:
            return
        trow = self.stats.tile_row
        boundary = np.empty(trow.shape[0], dtype=bool)
        boundary[0] = True
        np.not_equal(trow[1:], trow[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        ends = np.append(starts[1:], trow.shape[0])
        for s, e in zip(starts, ends):
            yield int(trow[s]), np.arange(s, e)

    def content_digest(self) -> str:
        """Stable digest: the matrix content digest plus the tile geometry.

        Everything else on the instance is derived deterministically from
        those inputs, so they fully identify a tiling.
        """
        return hashlib.sha256(
            f"TiledMatrix:{self.matrix.content_digest()}:"
            f"{self.tile_height}x{self.tile_width}".encode()
        ).hexdigest()

    def density_map(self) -> np.ndarray:
        """Full ``n_panel_rows x n_panel_cols`` grid of per-tile nnz counts.

        Used to reproduce Fig. 5 (hot/cold tile assignment maps).
        """
        grid = np.zeros((max(self.n_panel_rows, 1), max(self.n_panel_cols, 1)), dtype=np.int64)
        grid[self.stats.tile_row, self.stats.tile_col] = self.stats.nnz
        return grid[: self.n_panel_rows, : self.n_panel_cols]

    def __repr__(self) -> str:
        return (
            f"TiledMatrix({self.matrix.n_rows}x{self.matrix.n_cols}, "
            f"tile={self.tile_height}x{self.tile_width}, "
            f"grid={self.n_panel_rows}x{self.n_panel_cols}, "
            f"non_empty_tiles={self.n_tiles})"
        )


def _unique_per_segment(
    sorted_key: np.ndarray, values: np.ndarray, starts: np.ndarray, presorted: bool
) -> np.ndarray:
    """Count distinct ``values`` inside each segment of ``sorted_key``.

    ``sorted_key`` is non-decreasing; segments begin at ``starts``.  When
    ``presorted`` the values are already non-decreasing within each segment
    (true for row ids, because the canonical nonzero order is row-major);
    otherwise pairs are sorted first.
    """
    n = sorted_key.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    span = np.int64(values.max(initial=0)) + 1
    pair = sorted_key * span + values
    if not presorted:
        pair = np.sort(pair)
    new_pair = np.empty(n, dtype=bool)
    new_pair[0] = True
    np.not_equal(pair[1:], pair[:-1], out=new_pair[1:])
    # Distinct pairs per segment: cumulative distinct-pair count evaluated at
    # segment boundaries.
    cum = np.cumsum(new_pair)
    seg_end = np.append(starts[1:], n) - 1
    seg_begin_cum = np.concatenate(([0], cum[seg_end[:-1]]))
    return (cum[seg_end] - seg_begin_cum).astype(np.int64)
